// Schedule-space exploration engine.
//
// Hand-written fault campaigns only exercise the schedules their authors
// imagined; the paper's claims (total order, validity, fail-signal implies
// fault) are universally quantified over schedules. The `Explorer` searches
// that space systematically, Jepsen-style: for every (system, group size,
// batch size) cell it runs N seeded episodes, each sampling
//
//   * a random schedule perturbation — a seed for the Simulation's
//     same-timestamp tie-break policy (sim::Simulation::set_tie_break),
//     permuting equal-time events into a different but network-legal
//     interleaving, and
//   * a random fault script drawn from a budgeted grammar (crashes,
//     Byzantine fs::FaultPlans, delay surges, PBFT timeout firings, bursts,
//     open-loop load) that respects each system's fault assumption (at most
//     a minority / at most f faulty members) and capability surface (fault
//     plans need a fail-signal layer, host faults need Placement::kFull),
//
// then replays it through deploy::make_deployment via the scenario engine
// and judges the trace with the invariant checkers. Episodes are pure
// functions of (config seed, cell, episode index): the report is
// byte-identical at any worker-pool job count, and any episode re-runs in
// isolation. On a violation, the delta-debugging shrinker
// (explore/shrink.hpp) minimizes the script and the emitted reproducer
// (explore/repro.hpp) re-runs it anywhere.
//
// The default grammar is *sound by construction*: it only draws fault
// combinations under which every applicable invariant is expected to hold,
// so any violation is a finding, and CI can gate on "zero violations". The
// knobs it keeps off by default (timeout suspectors on plain NewTOP —
// exactly the paper's false-suspicion pathology) are available for
// deliberately exploring known-unsound territory. Member faults overlapping
// dense traffic used to be quarantined out of the sound set too (the GC
// installed views without a flush); since the view-synchronous flush landed
// the overlap is part of the default grammar — it is the flush protocol's
// hardest axis and the regression surface CI fuzzes hardest.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"

namespace failsig::explore {

using scenario::Scenario;
using scenario::SystemKind;

/// Budgeted randomized fault/schedule grammar. Every knob bounds what an
/// episode may contain; the defaults are the sound subset (see file
/// comment).
struct FaultGrammar {
    /// Fault-script events sampled per episode (0..max, uniform).
    int max_fault_events{3};
    /// Event times are drawn uniformly from [0, horizon).
    TimePoint horizon{2 * kSecond};
    bool crashes{true};
    bool fault_plans{true};    ///< FS-NewTOP only (needs a fail-signal layer)
    bool delay_surges{true};
    bool bursts{true};
    bool loads{true};
    bool pbft_timeouts{true};  ///< PBFT only (fire_timeouts)
    /// DELIBERATELY UNSOUND when combined with delay surges: timeout-based
    /// suspicion on plain NewTOP is the false-exclusion pathology the paper
    /// exists to fix. Off by default so the default grammar stays sound;
    /// turn on to watch the explorer rediscover the paper's Figure-of-merit
    /// failure (no-false-exclusion trips).
    bool newtop_suspectors{false};
    /// Churn episodes: the grammar may draw a crash -> recover pair for one
    /// victim (links healed and the rejoin protocol run a generous gap after
    /// the crash), exercising checkpoint transfer and the rejoined-state /
    /// KV-linearizability checkers inside one episode. Crashed members must
    /// actually be excluded before they can rejoin, so on plain NewTOP the
    /// draw additionally requires `newtop_suspectors`. Off by default: churn
    /// runs under a dedicated CI campaign with a pinned seed, not inside the
    /// default soundness sweep.
    bool churn{false};
    /// Historical quarantine knob: when true, on stacks with membership
    /// exclusions (FS-NewTOP; NewTOP when suspectors run) an episode draws
    /// EITHER dense-traffic events (load phases, bursts) OR member-fault
    /// events, never both. It guarded the one hole the explorer itself
    /// found — the GC used to install views without a flush round, so
    /// excluding a member while multicasts were in flight could deliver
    /// them at different positions on different survivors. The
    /// view-synchronous flush closed that hole (the minimal reproducer,
    /// tests/fixtures/flush_gap_agreement.scenario, is now a passing
    /// regression), so the overlap is back in the sound default grammar:
    /// member faults under dense traffic is the flush's hardest axis and
    /// exactly what CI should keep fuzzing. Set true only to reproduce the
    /// historical quarantined campaigns.
    bool exclusive_traffic_and_member_faults{false};
};

struct ExploreConfig {
    std::vector<SystemKind> systems{SystemKind::kNewTop, SystemKind::kFsNewTop,
                                    SystemKind::kPbft};
    std::vector<int> group_sizes{3, 4};
    /// BatchConfig::max_requests axis; 1 = batching off.
    std::vector<std::size_t> batch_sizes{1};
    int episodes_per_cell{8};
    std::uint64_t seed{1};
    FaultGrammar grammar{};
    /// Background workload every episode runs (the grammar adds bursts and
    /// load phases on top).
    scenario::Workload workload{};
    /// Worker threads for the episode fan-out (0 = hardware concurrency).
    /// The report is byte-identical for every value.
    int jobs{0};
    /// Minimize violations and emit reproducers (off = report-only, used by
    /// determinism tests to keep run counts predictable).
    bool shrink{true};
    /// Oracle set; empty = the builtin invariant checkers. Tests inject
    /// deliberately weakened checkers here to exercise the shrinker
    /// pipeline end-to-end.
    std::vector<const scenario::Invariant*> checkers;
    /// Heartbeat: call `progress` after every `progress_every` completed
    /// episodes (and once at the end). 0 or an empty callback = off. The
    /// fan-out is chunked to honour the cadence, but episodes are
    /// independent pure functions, so the report stays byte-identical.
    int progress_every{0};
    std::function<void(std::size_t done, std::size_t total, std::size_t violated)> progress;
};

struct EpisodeOutcome {
    Scenario scenario;
    std::vector<scenario::InvariantResult> invariants;
    bool violated{false};
    /// First failing checker (the violation the shrinker preserves).
    std::string violated_invariant;
    std::uint64_t trace_events{0};
    /// FNV-1a of the canonical trace: a compact determinism witness that
    /// lands in the report (byte-identical across job counts) without
    /// inlining whole traces.
    std::uint64_t trace_hash{0};
};

struct ViolationRecord {
    /// Index into ExploreReport::episodes.
    std::size_t episode{0};
    std::string invariant;
    Scenario minimal;
    /// Emitted reproducer (explore/repro.hpp spec text, expect_violation
    /// recorded); explore_cli also writes it to --repro-dir.
    std::string spec;
    /// Canonical trace of the minimal scenario's run.
    std::string minimal_trace;
    /// Flight-recorder dump from a deterministic obs-enabled re-run of the
    /// minimal scenario: each node's recent event timeline at the moment
    /// the violation fired. Forensic evidence beside the reproducer —
    /// excluded from to_json (the report stays trace-hash sized);
    /// explore_cli writes it to `<repro>.flight`.
    std::string flight_dump;
    int original_events{0};
    int minimal_events{0};
    int oracle_runs{0};
};

struct ExploreReport {
    ExploreConfig config;
    std::vector<EpisodeOutcome> episodes;
    std::vector<ViolationRecord> violations;

    [[nodiscard]] bool clean() const { return violations.empty(); }
    /// Machine-readable rendering ("failsig-explore-report-v1"); a pure
    /// function of the outcomes, byte-identical across job counts.
    [[nodiscard]] std::string to_json() const;
};

/// FNV-1a 64-bit (the trace_hash function; exposed for tests).
std::uint64_t fnv1a(const std::string& text);

/// Deterministic per-episode master seed: a splitmix64 chain over
/// (config seed, system, group size, batch size, episode index). Like the
/// sweep's derive_cell_seed, deliberately independent of the cell's position
/// in the config axes, so narrowing the config reproduces an episode.
std::uint64_t derive_episode_seed(std::uint64_t config_seed, SystemKind system, int n,
                                  std::size_t batch, int episode);

/// Generates the `episode`-th scenario of cell (system, n, batch): the
/// schedule perturbation seed plus a grammar-sampled fault script. Pure.
Scenario generate_episode(const ExploreConfig& config, SystemKind system, int n,
                          std::size_t batch, int episode);

/// Runs the full exploration: every cell × episode on the worker pool, then
/// shrinks violations (serially, in episode order) when config.shrink.
ExploreReport explore(const ExploreConfig& config);

}  // namespace failsig::explore
