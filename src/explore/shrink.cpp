#include "explore/shrink.hpp"

#include <utility>

#include "scenario/runner.hpp"

namespace failsig::explore {

namespace {

using scenario::Invariant;
using scenario::InvariantResult;
using scenario::Scenario;
using scenario::ScenarioEvent;

}  // namespace

std::vector<InvariantResult> run_and_evaluate(const Scenario& s,
                                              const std::vector<const Invariant*>& checkers,
                                              std::string* trace_out) {
    try {
        const auto report = scenario::run_scenario(s);
        if (trace_out != nullptr) *trace_out = report.trace.canonical();
        if (checkers.empty()) return report.invariants;
        return scenario::evaluate(report.scenario, report.trace, checkers);
    } catch (const scenario::ScenarioRejected&) {
        // A shrink candidate the deployment cannot express (e.g. only the
        // placement-changing context was removed): not a failure.
        if (trace_out != nullptr) trace_out->clear();
        return {};
    }
}

bool still_fails(const Scenario& s, const std::string& invariant,
                 const std::vector<const Invariant*>& checkers, int* oracle_runs) {
    if (oracle_runs != nullptr) ++*oracle_runs;
    const auto results = run_and_evaluate(s, checkers);
    const auto* verdict = scenario::find_result(results, invariant);
    return verdict != nullptr && !verdict->passed;
}

namespace {

/// Applies `mutate` to a copy of `current`; keeps the copy when the failure
/// survives. Returns true when the candidate was accepted.
template <typename Fn>
bool try_step(Scenario& current, const std::string& invariant,
              const std::vector<const Invariant*>& checkers, int& runs, Fn mutate) {
    Scenario candidate = current;
    mutate(candidate);
    if (!still_fails(candidate, invariant, checkers, &runs)) return false;
    current = std::move(candidate);
    return true;
}

/// Phase 2: event removal to a fixpoint. After this returns, removing any
/// single remaining event makes the violation vanish (1-minimality).
void remove_events(Scenario& current, const std::string& invariant,
                   const std::vector<const Invariant*>& checkers, int& runs) {
    bool removed = true;
    while (removed) {
        removed = false;
        for (std::size_t i = 0; i < current.timeline.size(); ++i) {
            if (try_step(current, invariant, checkers, runs, [i](Scenario& c) {
                    c.timeline.erase(c.timeline.begin() +
                                     static_cast<std::ptrdiff_t>(i));
                })) {
                removed = true;
                break;  // indices shifted; rescan from the front
            }
        }
    }
}

/// Phase 3: simplify surviving events field-by-field. Each accepted step
/// strictly reduces the event's "surface" (fewer flags, smaller numbers),
/// so the loop terminates.
void simplify_events(Scenario& current, const std::string& invariant,
                     const std::vector<const Invariant*>& checkers, int& runs) {
    for (std::size_t i = 0; i < current.timeline.size(); ++i) {
        // NOTE: an accepted try_step replaces `current` wholesale, so the
        // event must be re-read through the index after every attempt —
        // holding a reference across attempts is a use-after-free (ASan
        // caught exactly that in an earlier version of this loop).
        const auto kind = current.timeline[i].kind;
        if (kind == ScenarioEvent::Kind::kFaultPlan) {
            const auto plan = [&]() -> const fs::FaultPlan& {
                return current.timeline[i].fault_plan;
            };
            const auto clear = [&](auto field) {
                try_step(current, invariant, checkers, runs,
                         [i, field](Scenario& c) { field(c.timeline[i].fault_plan); });
            };
            if (plan().corrupt_outputs) {
                clear([](fs::FaultPlan& p) { p.corrupt_outputs = false; });
            }
            if (plan().drop_outputs) {
                clear([](fs::FaultPlan& p) { p.drop_outputs = false; });
            }
            if (plan().misorder_inputs) {
                clear([](fs::FaultPlan& p) { p.misorder_inputs = false; });
            }
            if (plan().spontaneous_fail_signals) {
                clear([](fs::FaultPlan& p) { p.spontaneous_fail_signals = false; });
            }
            if (plan().extra_processing_delay > 0) {
                clear([](fs::FaultPlan& p) { p.extra_processing_delay = 0; });
            }
            if (plan().probability != 1.0) {
                clear([](fs::FaultPlan& p) { p.probability = 1.0; });
            }
        } else if (kind == ScenarioEvent::Kind::kBurst) {
            while (current.timeline[i].burst_messages > 1 &&
                   try_step(current, invariant, checkers, runs, [i](Scenario& c) {
                       c.timeline[i].burst_messages /= 2;
                   })) {
            }
        }
    }
}

/// Phase 4: shrink the background workload — try none at all, then halve to
/// a local minimum.
void shrink_workload(Scenario& current, const std::string& invariant,
                     const std::vector<const Invariant*>& checkers, int& runs) {
    if (current.workload.msgs_per_member == 0) return;
    if (try_step(current, invariant, checkers, runs,
                 [](Scenario& c) { c.workload.msgs_per_member = 0; })) {
        return;
    }
    while (current.workload.msgs_per_member > 1 &&
           try_step(current, invariant, checkers, runs, [](Scenario& c) {
               c.workload.msgs_per_member /= 2;
           })) {
    }
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const std::string& invariant,
                    const std::vector<const Invariant*>& checkers) {
    ShrinkResult result;
    Scenario current = failing;
    int runs = 0;

    // Phase 1: prefer the default FIFO schedule — a reproducer that fails
    // without the perturbation is strictly easier to reason about.
    if (current.tie_break_seed != 0) {
        try_step(current, invariant, checkers, runs,
                 [](Scenario& c) { c.tie_break_seed = 0; });
    }
    remove_events(current, invariant, checkers, runs);
    simplify_events(current, invariant, checkers, runs);
    shrink_workload(current, invariant, checkers, runs);
    // Workload shrinking can make previously load-bearing events redundant
    // (e.g. a burst that only mattered under full traffic); re-run removal
    // so the final scenario is 1-minimal again.
    remove_events(current, invariant, checkers, runs);

    result.minimal = std::move(current);
    result.invariants = run_and_evaluate(result.minimal, checkers, &result.trace);
    result.oracle_runs = runs + 1;
    return result;
}

}  // namespace failsig::explore
