#include "explore/explore.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/rng.hpp"
#include "explore/repro.hpp"
#include "explore/shrink.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"

namespace failsig::explore {

namespace {

using scenario::ScenarioEvent;

/// Fault-event kinds the grammar can draw for one system. Kept in a fixed
/// order so sampling is a pure function of the RNG stream.
enum class Draw : std::uint8_t {
    kCrash,
    kFaultPlan,
    kDelaySurge,
    kBurst,
    kLoad,
    kPbftTimeouts,
    kChurn,
};

std::vector<Draw> allowed_draws(const FaultGrammar& g, SystemKind system, int n,
                                int member_fault_budget, bool has_dense_traffic,
                                bool has_member_fault) {
    // The exclusive-traffic/member-fault gate (see FaultGrammar) only binds
    // on stacks where a member fault triggers a membership exclusion.
    const bool excludes_members =
        system == SystemKind::kFsNewTop ||
        (system == SystemKind::kNewTop && g.newtop_suspectors);
    const bool gate = g.exclusive_traffic_and_member_faults && excludes_members;

    std::vector<Draw> draws;
    const bool member_fault_ok = member_fault_budget > 0 && !(gate && has_dense_traffic);
    const bool dense_traffic_ok = !(gate && has_member_fault);
    if (g.crashes && member_fault_ok) {
        // NewTOP/PBFT crash hosts directly; FS-NewTOP episodes run the
        // dedicated-node placement (set in generate_episode) so host faults
        // are always expressible.
        draws.push_back(Draw::kCrash);
    }
    if (g.fault_plans && member_fault_ok && system == SystemKind::kFsNewTop) {
        draws.push_back(Draw::kFaultPlan);
    }
    if (g.delay_surges) draws.push_back(Draw::kDelaySurge);
    if (g.bursts && n > 0 && dense_traffic_ok) draws.push_back(Draw::kBurst);
    if (g.loads && dense_traffic_ok) draws.push_back(Draw::kLoad);
    if (g.pbft_timeouts && system == SystemKind::kPbft) draws.push_back(Draw::kPbftTimeouts);
    if (g.churn && member_fault_ok &&
        (system != SystemKind::kNewTop || g.newtop_suspectors)) {
        // A member must actually be excluded before it can rejoin; plain
        // NewTOP only excludes when timeout suspectors run.
        draws.push_back(Draw::kChurn);
    }
    return draws;
}

/// How many members may become genuinely faulty without breaking the
/// assumption the invariants are proved under: a minority for the NewTOP
/// family (paper assumption A2), f = (n-1)/3 for PBFT.
int member_fault_budget(SystemKind system, int n) {
    if (system == SystemKind::kPbft) return (n - 1) / 3;
    return (n - 1) / 2;
}

ScenarioEvent sample_fault_plan(Rng& rng, int member, TimePoint at) {
    fs::FaultPlan plan;
    // One primary fault mode, uniformly; secondary modes pile on with low
    // probability so most scripts stay single-mode (easier shrinks).
    switch (rng.uniform(5)) {
        case 0: plan.corrupt_outputs = true; break;
        case 1: plan.drop_outputs = true; break;
        case 2: plan.misorder_inputs = true; break;
        case 3: plan.spontaneous_fail_signals = true; break;
        case 4: plan.extra_processing_delay = 5 * kMillisecond +
                    static_cast<Duration>(rng.uniform(95 * kMillisecond));
                break;
    }
    if (rng.chance(0.2)) plan.corrupt_outputs = true;
    if (rng.chance(0.2)) plan.probability = 0.5;
    const auto node =
        rng.chance(0.5) ? scenario::PairNode::kLeader : scenario::PairNode::kFollower;
    return ScenarioEvent::fault(at, member, node, plan);
}

}  // namespace

std::uint64_t fnv1a(const std::string& text) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t derive_episode_seed(std::uint64_t config_seed, SystemKind system, int n,
                                  std::size_t batch, int episode) {
    std::uint64_t state = config_seed;
    std::uint64_t h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(system);
    h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(n);
    h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(batch);
    h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(episode);
    return splitmix64(state);
}

Scenario generate_episode(const ExploreConfig& config, SystemKind system, int n,
                          std::size_t batch, int episode) {
    const std::uint64_t master = derive_episode_seed(config.seed, system, n, batch, episode);
    // Independent streams for the network seed, the schedule perturbation
    // and the grammar draws: a change in one axis never shifts the others.
    std::uint64_t state = master ^ 0x6e657477ULL;  // "netw"
    const std::uint64_t net_seed = splitmix64(state);
    state = master ^ 0x74696562ULL;  // "tieb"
    std::uint64_t tie_seed = splitmix64(state);
    if (tie_seed == 0) tie_seed = 1;  // 0 means "FIFO default"; stay on the axis
    state = master ^ 0x6772616dULL;  // "gram"
    Rng rng(splitmix64(state));

    Scenario s;
    s.name = std::string("explore/") + scenario::name_of(system) + "/n" + std::to_string(n) +
             "/b" + std::to_string(batch) + "/e" + std::to_string(episode);
    s.system = system;
    s.group_size = n;
    s.seed = net_seed;
    s.tie_break_seed = tie_seed;
    s.workload = config.workload;
    s.batch.max_requests = batch;
    if (system == SystemKind::kFsNewTop) {
        // Dedicated pair nodes: host-level faults stay expressible for every
        // script the grammar can draw.
        s.placement = fsnewtop::Placement::kFull;
    }
    if (system == SystemKind::kNewTop && config.grammar.newtop_suspectors) {
        s.start_suspectors = true;
        s.suspector.ping_interval = 50 * kMillisecond;
        s.suspector.suspect_timeout = 300 * kMillisecond;
    }
    if (config.grammar.churn) {
        // Churn campaigns run the replicated app with periodic checkpoints so
        // a drawn crash -> recover arc exercises the state-transfer path
        // (and PBFT's log truncation) rather than replaying from genesis.
        s.checkpoint_interval = 25;
    }

    const FaultGrammar& g = config.grammar;
    int fault_budget = member_fault_budget(system, n);
    std::set<int> faulted;
    bool has_dense_traffic = false;
    TimePoint churn_end = 0;
    const int events = static_cast<int>(rng.uniform(
        static_cast<std::uint64_t>(std::max(0, g.max_fault_events)) + 1));
    for (int k = 0; k < events; ++k) {
        const auto draws =
            allowed_draws(g, system, n, fault_budget, has_dense_traffic, !faulted.empty());
        if (draws.empty()) break;
        const Draw draw = draws[rng.uniform(draws.size())];
        const TimePoint at = static_cast<TimePoint>(
            rng.uniform(static_cast<std::uint64_t>(std::max<TimePoint>(g.horizon, 1))));
        switch (draw) {
            case Draw::kCrash:
            case Draw::kFaultPlan: {
                // Victims are distinct and bounded by the fault budget.
                int member = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
                while (faulted.contains(member)) member = (member + 1) % n;
                faulted.insert(member);
                --fault_budget;
                if (draw == Draw::kCrash) {
                    s.timeline.push_back(ScenarioEvent::crash(at, member));
                } else {
                    s.timeline.push_back(sample_fault_plan(rng, member, at));
                }
                break;
            }
            case Draw::kDelaySurge: {
                const Duration extra = 10 * kMillisecond +
                    static_cast<Duration>(rng.uniform(490 * kMillisecond));
                const Duration span = 200 * kMillisecond +
                    static_cast<Duration>(rng.uniform(1800 * kMillisecond));
                s.timeline.push_back(ScenarioEvent::delay_surge(at, extra, at + span));
                break;
            }
            case Draw::kBurst: {
                const int member = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
                const int messages = 1 + static_cast<int>(rng.uniform(6));
                s.timeline.push_back(ScenarioEvent::burst(at, member, messages));
                has_dense_traffic = true;
                break;
            }
            case Draw::kLoad: {
                scenario::LoadSpec load;
                load.rate = 50.0 + static_cast<double>(rng.uniform(200));
                load.duration = 100 * kMillisecond +
                    static_cast<Duration>(rng.uniform(300 * kMillisecond));
                load.payload = 8 + static_cast<std::size_t>(rng.uniform(25));
                s.timeline.push_back(ScenarioEvent::load(at, load));
                has_dense_traffic = true;
                break;
            }
            case Draw::kPbftTimeouts:
                s.timeline.push_back(ScenarioEvent::fire_timeouts(at));
                break;
            case Draw::kChurn: {
                // One crash -> recover -> rejoin arc. The gap is generous
                // (suspicion, exclusion and the flush must all land before
                // the rejoin starts) and the recovery instant extends the
                // deadline so the state transfer has room to finish.
                int member = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
                while (faulted.contains(member)) member = (member + 1) % n;
                faulted.insert(member);
                --fault_budget;
                const Duration gap =
                    1 * kSecond + static_cast<Duration>(rng.uniform(1 * kSecond));
                s.timeline.push_back(ScenarioEvent::crash(at, member));
                s.timeline.push_back(ScenarioEvent::recover(at + gap, member));
                churn_end = std::max(churn_end, at + gap);
                break;
            }
        }
    }
    // Canonical timeline order (stable in the sampled order for equal
    // times): reproducer specs read chronologically.
    std::stable_sort(s.timeline.begin(), s.timeline.end(),
                     [](const ScenarioEvent& a, const ScenarioEvent& b) { return a.at < b.at; });

    // Always bound the run: crashes can stall quiescence-reaching protocols
    // behind missing ACKs, and spontaneous fail-signal plans never quiesce.
    s.deadline = std::max({s.workload_end(), g.horizon, churn_end}) + 5 * kSecond;
    return s;
}

ExploreReport explore(const ExploreConfig& config) {
    ExploreReport report;
    report.config = config;

    // Materialize every episode in canonical cell order first — generation
    // is pure and cheap; the expensive runs then fan out on the worker pool
    // with results landing back in this order regardless of job count.
    std::vector<Scenario> episodes;
    for (const SystemKind system : config.systems) {
        for (const int n : config.group_sizes) {
            if (n < deploy::traits_of(system).min_group_size) continue;
            for (const std::size_t batch : config.batch_sizes) {
                for (int e = 0; e < config.episodes_per_cell; ++e) {
                    episodes.push_back(generate_episode(config, system, n, batch, e));
                }
            }
        }
    }

    // Heartbeat mode chunks the fan-out so the callback fires on cadence;
    // episodes are independent pure functions, so chunking (like the job
    // count) cannot change a single report byte.
    const bool heartbeat = config.progress_every > 0 && config.progress;
    const std::size_t chunk =
        heartbeat ? static_cast<std::size_t>(config.progress_every) : episodes.size();
    report.episodes.reserve(episodes.size());
    std::size_t violated_count = 0;
    for (std::size_t start = 0; start < episodes.size(); start += chunk) {
        const std::size_t end = std::min(episodes.size(), start + chunk);
        const std::vector<Scenario> slice(episodes.begin() + static_cast<std::ptrdiff_t>(start),
                                          episodes.begin() + static_cast<std::ptrdiff_t>(end));
        const auto runs = scenario::run_scenarios(slice, config.jobs);
        for (std::size_t i = 0; i < runs.size(); ++i) {
            EpisodeOutcome outcome;
            outcome.scenario = episodes[start + i];
            outcome.invariants = config.checkers.empty()
                                     ? runs[i].invariants
                                     : scenario::evaluate(runs[i].scenario, runs[i].trace,
                                                          config.checkers);
            for (const auto& inv : outcome.invariants) {
                if (!inv.passed) {
                    outcome.violated = true;
                    outcome.violated_invariant = inv.name;
                    break;
                }
            }
            if (outcome.violated) ++violated_count;
            outcome.trace_events = runs[i].trace.size();
            outcome.trace_hash = fnv1a(runs[i].trace.canonical());
            report.episodes.push_back(std::move(outcome));
        }
        if (heartbeat) config.progress(end, episodes.size(), violated_count);
    }

    // Violations shrink serially, in episode order (the shrinker re-runs
    // scenarios; determinism of the report does not depend on it). With
    // shrinking off, the episode itself is recorded as the "minimal" form.
    for (std::size_t i = 0; i < report.episodes.size(); ++i) {
        const auto& outcome = report.episodes[i];
        if (!outcome.violated) continue;
        ViolationRecord record;
        record.episode = i;
        record.invariant = outcome.violated_invariant;
        record.original_events = static_cast<int>(outcome.scenario.timeline.size());
        if (config.shrink) {
            auto shrunk =
                shrink(outcome.scenario, outcome.violated_invariant, config.checkers);
            record.minimal = std::move(shrunk.minimal);
            record.minimal_trace = std::move(shrunk.trace);
            record.oracle_runs = shrunk.oracle_runs;
        } else {
            record.minimal = outcome.scenario;
        }
        record.minimal_events = static_cast<int>(record.minimal.timeline.size());
        record.spec = to_spec(record.minimal, outcome.violated_invariant);
        // Forensics beside the reproducer: re-run the minimal scenario with
        // the flight recorder on (deterministic — same trace, now with each
        // node's recent timeline captured) and attach the dump.
        Scenario forensic = record.minimal;
        forensic.obs.enabled = true;
        record.flight_dump = scenario::run_scenario(forensic).flight_dump;
        report.violations.push_back(std::move(record));
    }
    return report;
}

std::string ExploreReport::to_json() const {
    scenario::JsonWriter w;
    w.begin_object();
    w.field("format", "failsig-explore-report-v1");

    w.key("config");
    w.begin_object();
    w.begin_array("systems");
    for (const SystemKind system : config.systems) {
        w.begin_object();
        w.field("system", scenario::name_of(system));
        w.end_object();
    }
    w.end_array();
    w.begin_array("group_sizes");
    for (const int n : config.group_sizes) {
        w.begin_object();
        w.field("n", n);
        w.end_object();
    }
    w.end_array();
    w.begin_array("batch_sizes");
    for (const std::size_t b : config.batch_sizes) {
        w.begin_object();
        w.field("batch", static_cast<std::uint64_t>(b));
        w.end_object();
    }
    w.end_array();
    w.field("episodes_per_cell", config.episodes_per_cell);
    w.field("seed", static_cast<std::uint64_t>(config.seed));
    w.field("max_fault_events", config.grammar.max_fault_events);
    w.field("horizon_us", static_cast<std::int64_t>(config.grammar.horizon));
    w.field("crashes", config.grammar.crashes);
    w.field("fault_plans", config.grammar.fault_plans);
    w.field("delay_surges", config.grammar.delay_surges);
    w.field("bursts", config.grammar.bursts);
    w.field("loads", config.grammar.loads);
    w.field("pbft_timeouts", config.grammar.pbft_timeouts);
    w.field("newtop_suspectors", config.grammar.newtop_suspectors);
    w.field("churn", config.grammar.churn);
    w.field("exclusive_traffic_and_member_faults",
            config.grammar.exclusive_traffic_and_member_faults);
    w.field("shrink", config.shrink);
    w.field("custom_checkers", !config.checkers.empty());
    w.end_object();

    w.begin_array("episodes");
    for (const auto& e : episodes) {
        w.begin_object();
        w.field("name", e.scenario.name);
        w.field("system", scenario::name_of(e.scenario.system));
        w.field("group_size", e.scenario.group_size);
        w.field("batch", static_cast<std::uint64_t>(e.scenario.batch.max_requests));
        w.field("seed", static_cast<std::uint64_t>(e.scenario.seed));
        w.field("tie_break_seed", static_cast<std::uint64_t>(e.scenario.tie_break_seed));
        w.field("fault_events", static_cast<std::uint64_t>(e.scenario.timeline.size()));
        w.field("violated", e.violated);
        if (e.violated) w.field("violated_invariant", e.violated_invariant);
        w.field("trace_events", e.trace_events);
        w.field("trace_hash", e.trace_hash);
        w.end_object();
    }
    w.end_array();

    w.begin_array("violations");
    for (const auto& v : violations) {
        w.begin_object();
        w.field("episode", static_cast<std::uint64_t>(v.episode));
        w.field("episode_name", episodes[v.episode].scenario.name);
        w.field("invariant", v.invariant);
        w.field("original_events", v.original_events);
        w.field("minimal_events", v.minimal_events);
        w.field("oracle_runs", v.oracle_runs);
        w.field("spec", v.spec);
        w.end_object();
    }
    w.end_array();

    w.field("episode_count", static_cast<std::uint64_t>(episodes.size()));
    w.field("violation_count", static_cast<std::uint64_t>(violations.size()));
    w.field("clean", clean());
    w.end_object();
    return w.take() + "\n";
}

}  // namespace failsig::explore
