// Scenario spec files: the explorer's reproducer currency.
//
// A minimal failing scenario found by the explorer is only useful if it can
// leave the process that found it. `to_spec` renders a scenario::Scenario
// (plus the invariant it violates) as a small, stable, line-oriented text
// file; `parse_spec` turns that file back into a runnable Scenario. Because
// a run is a pure function of its Scenario, shipping the spec ships the
// bug: `explore_cli --replay file.scenario` re-runs it to the identical
// trace and the identical invariant verdicts on any machine. The format is
// deliberately dumb — `key = value` lines and one `event = ...` line per
// timeline entry — so reproducers are hand-editable and diff-friendly, and
// round-trip byte-identically (to_spec(parse_spec(x)) == x).
#pragma once

#include <string>

#include "common/result.hpp"
#include "scenario/scenario.hpp"

namespace failsig::explore {

inline constexpr const char* kSpecFormat = "failsig-scenario-spec-v1";

/// A parsed spec: the scenario plus the explorer's recorded expectation.
struct ReproSpec {
    scenario::Scenario scenario;
    /// Name of the invariant this reproducer violates; empty when the spec
    /// is a plain scenario file with no recorded expectation.
    std::string expect_violation;
};

/// Renders a scenario (and optional expected violation) as spec text.
/// Field order is fixed, numbers are canonical, and the timeline appears in
/// its stored order — the output is a pure function of the inputs.
std::string to_spec(const scenario::Scenario& scenario,
                    const std::string& expect_violation = "");

/// Parses spec text. Unknown keys, malformed events and missing mandatory
/// fields are errors (never best-effort guesses), so a typo in a
/// hand-edited reproducer fails loudly instead of silently running a
/// different scenario.
Result<ReproSpec> parse_spec(const std::string& text);

}  // namespace failsig::explore
