// Delta-debugging trace shrinker.
//
// When the explorer finds a schedule/fault script that violates an
// invariant, the raw episode is rarely the story: most of its events are
// incidental. `shrink` minimizes a failing Scenario while preserving the
// *same* invariant violation, with the run itself as the oracle (runs are
// pure functions of the Scenario, so the oracle is deterministic):
//
//   1. drop the schedule perturbation (tie_break_seed = 0) if the failure
//      survives the default FIFO schedule;
//   2. remove timeline events one at a time to a fixpoint — the result is
//      1-minimal: removing ANY remaining event makes the violation vanish;
//   3. simplify surviving events field-by-field (clear fault-plan flags,
//      zero extra delays, shrink burst sizes, force probability to 1);
//   4. shrink the background workload (fewer messages per member).
//
// Greedy one-at-a-time removal (not the classic logarithmic ddmin splits)
// is deliberate: episode timelines are small (grammar-budgeted), so the
// oracle-call count stays low and the fixpoint guarantees 1-minimality,
// which is the property tests and reproducer consumers actually rely on.
#pragma once

#include <string>
#include <vector>

#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"

namespace failsig::explore {

struct ShrinkResult {
    /// The minimized scenario: still violates `invariant`, and removing any
    /// remaining timeline event makes it pass.
    scenario::Scenario minimal;
    /// Invariant verdicts of the minimal scenario's run.
    std::vector<scenario::InvariantResult> invariants;
    /// Canonical trace of the minimal scenario's run (the evidence).
    std::string trace;
    /// Oracle invocations spent (diagnostic; reported, not bounded).
    int oracle_runs{0};
};

/// Runs `s` and evaluates `checkers` (empty = the builtin invariant set)
/// over its trace. A ScenarioRejected run yields an empty result vector —
/// callers treat "cannot run" as "does not fail".
std::vector<scenario::InvariantResult> run_and_evaluate(
    const scenario::Scenario& s, const std::vector<const scenario::Invariant*>& checkers,
    std::string* trace_out = nullptr);

/// True when the named invariant fails on `s` under `checkers`.
bool still_fails(const scenario::Scenario& s, const std::string& invariant,
                 const std::vector<const scenario::Invariant*>& checkers,
                 int* oracle_runs = nullptr);

/// Minimizes `failing`, preserving the failure of `invariant`. Precondition:
/// `still_fails(failing, invariant, checkers)` — callers pass a scenario the
/// explorer just saw fail.
ShrinkResult shrink(const scenario::Scenario& failing, const std::string& invariant,
                    const std::vector<const scenario::Invariant*>& checkers);

}  // namespace failsig::explore
