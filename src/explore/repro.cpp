#include "explore/repro.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string_view>
#include <vector>

namespace failsig::explore {

namespace {

using scenario::Scenario;
using scenario::ScenarioEvent;

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

const char* service_name(newtop::ServiceType service) {
    switch (service) {
        case newtop::ServiceType::kSymmetricTotalOrder: return "symmetric";
        case newtop::ServiceType::kAsymmetricTotalOrder: return "asymmetric";
        case newtop::ServiceType::kCausalOrder: return "causal";
        case newtop::ServiceType::kReliableMulticast: return "reliable";
        case newtop::ServiceType::kUnreliableMulticast: return "unreliable";
    }
    return "?";
}

bool service_from(const std::string& name, newtop::ServiceType& out) {
    if (name == "symmetric") out = newtop::ServiceType::kSymmetricTotalOrder;
    else if (name == "asymmetric") out = newtop::ServiceType::kAsymmetricTotalOrder;
    else if (name == "causal") out = newtop::ServiceType::kCausalOrder;
    else if (name == "reliable") out = newtop::ServiceType::kReliableMulticast;
    else if (name == "unreliable") out = newtop::ServiceType::kUnreliableMulticast;
    else return false;
    return true;
}

bool system_from(const std::string& name, scenario::SystemKind& out) {
    using scenario::SystemKind;
    for (const SystemKind kind :
         {SystemKind::kNewTop, SystemKind::kFsNewTop, SystemKind::kPbft}) {
        if (name == scenario::name_of(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::string event_line(const ScenarioEvent& e) {
    using Kind = ScenarioEvent::Kind;
    std::string s;
    const auto at = " at=" + std::to_string(e.at);
    switch (e.kind) {
        case Kind::kCrashMember:
            return "crash" + at + " member=" + std::to_string(e.member);
        case Kind::kFaultPlan: {
            const auto& p = e.fault_plan;
            s = "fault" + at + " member=" + std::to_string(e.member) +
                " node=" +
                (e.pair_node == scenario::PairNode::kLeader ? "leader" : "follower") +
                " corrupt=" + std::to_string(p.corrupt_outputs ? 1 : 0) +
                " drop=" + std::to_string(p.drop_outputs ? 1 : 0) +
                " misorder=" + std::to_string(p.misorder_inputs ? 1 : 0) +
                " spontaneous=" + std::to_string(p.spontaneous_fail_signals ? 1 : 0) +
                " spontaneous_interval_us=" + std::to_string(p.spontaneous_interval) +
                " delay_us=" + std::to_string(p.extra_processing_delay) +
                " probability=" + fmt_double(p.probability) +
                " active_from_us=" + std::to_string(p.active_from);
            return s;
        }
        case Kind::kDelaySurge:
            return "delay_surge" + at + " extra_us=" + std::to_string(e.surge_extra) +
                   " until_us=" + std::to_string(e.surge_until);
        case Kind::kPartition: {
            s = "partition" + at + " groups=";
            for (std::size_t g = 0; g < e.groups.size(); ++g) {
                if (g) s += "|";
                for (std::size_t i = 0; i < e.groups[g].size(); ++i) {
                    if (i) s += ",";
                    s += std::to_string(e.groups[g][i]);
                }
            }
            return s;
        }
        case Kind::kHealPartition:
            return "heal_partition" + at;
        case Kind::kDropProbability:
            return "drop" + at + " probability=" + fmt_double(e.drop_probability);
        case Kind::kBurst:
            return "burst" + at + " member=" + std::to_string(e.member) +
                   " messages=" + std::to_string(e.burst_messages);
        case Kind::kFireTimeouts:
            return "fire_timeouts" + at;
        case Kind::kLoad:
            return "load" + at + " rate=" + fmt_double(e.load_spec.rate) +
                   " duration_us=" + std::to_string(e.load_spec.duration) +
                   " payload=" + std::to_string(e.load_spec.payload);
        case Kind::kRecoverMember:
            return "recover" + at + " member=" + std::to_string(e.member);
    }
    return "?";
}

// --- parsing helpers --------------------------------------------------------

std::string trim(const std::string& s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
    return s.substr(b, e - b);
}

// Strict integer parsing, same contract as scenario::parse_cli: digits only
// (one leading '-' for signed), no '+', no whitespace, no trailing garbage.
bool all_digits(std::string_view s) {
    if (s.empty()) return false;
    for (const char c : s) {
        if (c < '0' || c > '9') return false;
    }
    return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
    if (!all_digits(s)) return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtoull(s.c_str(), &end, 10);
    return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_i64(const std::string& s, std::int64_t& out) {
    const bool negative = !s.empty() && s[0] == '-';
    if (!all_digits(negative ? std::string_view(s).substr(1) : std::string_view(s))) {
        return false;
    }
    char* end = nullptr;
    errno = 0;
    out = std::strtoll(s.c_str(), &end, 10);
    return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_double(const std::string& s, double& out) {
    if (s.empty()) return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtod(s.c_str(), &end);
    return errno == 0 && end != nullptr && *end == '\0';
}

bool parse_bool(const std::string& s, bool& out) {
    if (s == "0") out = false;
    else if (s == "1") out = true;
    else return false;
    return true;
}

/// Splits "k1=v1 k2=v2 ..." into a map; returns false on malformed tokens.
bool kv_pairs(const std::string& text, std::map<std::string, std::string>& out) {
    std::size_t pos = 0;
    while (pos < text.size()) {
        while (pos < text.size() && text[pos] == ' ') ++pos;
        if (pos >= text.size()) break;
        const std::size_t sp = text.find(' ', pos);
        const std::string token =
            text.substr(pos, sp == std::string::npos ? std::string::npos : sp - pos);
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) return false;
        out[token.substr(0, eq)] = token.substr(eq + 1);
        pos = sp == std::string::npos ? text.size() : sp + 1;
    }
    return true;
}

using Err = Result<ReproSpec>;

/// Fetches a required field from a parsed event's pairs.
bool fetch(const std::map<std::string, std::string>& kv, const char* key,
           std::string& out) {
    const auto it = kv.find(key);
    if (it == kv.end()) return false;
    out = it->second;
    return true;
}

bool parse_event(const std::string& body, ScenarioEvent& e, std::string& error) {
    const std::size_t sp = body.find(' ');
    const std::string kind = body.substr(0, sp);
    std::map<std::string, std::string> kv;
    if (sp != std::string::npos && !kv_pairs(body.substr(sp + 1), kv)) {
        error = "malformed event tokens: " + body;
        return false;
    }
    std::string v;
    const auto need_i64 = [&](const char* key, std::int64_t& out) {
        if (!fetch(kv, key, v) || !parse_i64(v, out)) {
            error = "event '" + kind + "': bad or missing " + key;
            return false;
        }
        return true;
    };
    // Fail loudly on out-of-range or sign-violating values instead of
    // truncating/wrapping into a silently different scenario (the codec's
    // whole contract). Every numeric event field is semantically
    // non-negative (times, durations, member indices, counts, sizes).
    const auto need_non_negative = [&](const char* key, std::int64_t& out) {
        if (!need_i64(key, out)) return false;
        if (out < 0) {
            error = "event '" + kind + "': " + key + " must be >= 0";
            return false;
        }
        return true;
    };
    const auto need_int = [&](const char* key, int& out) {
        std::int64_t wide = 0;
        if (!need_non_negative(key, wide)) return false;
        if (wide > INT32_MAX) {
            error = "event '" + kind + "': " + key + " out of range";
            return false;
        }
        out = static_cast<int>(wide);
        return true;
    };
    const auto need_double = [&](const char* key, double& out) {
        if (!fetch(kv, key, v) || !parse_double(v, out)) {
            error = "event '" + kind + "': bad or missing " + key;
            return false;
        }
        return true;
    };
    const auto need_bool = [&](const char* key, bool& out) {
        if (!fetch(kv, key, v) || !parse_bool(v, out)) {
            error = "event '" + kind + "': bad or missing " + key;
            return false;
        }
        return true;
    };

    std::int64_t at = 0;
    if (!need_non_negative("at", at)) return false;

    if (kind == "crash") {
        int member = 0;
        if (!need_int("member", member)) return false;
        e = ScenarioEvent::crash(at, member);
        return true;
    }
    if (kind == "fault") {
        int member = 0;
        if (!need_int("member", member)) return false;
        if (!fetch(kv, "node", v) || (v != "leader" && v != "follower")) {
            error = "event 'fault': node must be leader|follower";
            return false;
        }
        const auto node = v == "leader" ? scenario::PairNode::kLeader
                                        : scenario::PairNode::kFollower;
        fs::FaultPlan plan;
        if (!need_bool("corrupt", plan.corrupt_outputs)) return false;
        if (!need_bool("drop", plan.drop_outputs)) return false;
        if (!need_bool("misorder", plan.misorder_inputs)) return false;
        if (!need_bool("spontaneous", plan.spontaneous_fail_signals)) return false;
        if (!need_non_negative("spontaneous_interval_us", plan.spontaneous_interval)) {
            return false;
        }
        if (!need_non_negative("delay_us", plan.extra_processing_delay)) return false;
        if (!need_double("probability", plan.probability)) return false;
        if (!need_non_negative("active_from_us", plan.active_from)) return false;
        e = ScenarioEvent::fault(at, member, node, plan);
        return true;
    }
    if (kind == "delay_surge") {
        std::int64_t extra = 0;
        std::int64_t until = 0;
        if (!need_non_negative("extra_us", extra) || !need_non_negative("until_us", until)) {
            return false;
        }
        e = ScenarioEvent::delay_surge(at, extra, until);
        return true;
    }
    if (kind == "partition") {
        if (!fetch(kv, "groups", v)) {
            error = "event 'partition': missing groups";
            return false;
        }
        std::vector<std::vector<int>> groups(1);
        std::string num;
        for (const char c : v + "|") {
            if (c == ',' || c == '|') {
                // A '|' right after a delimiter closes an empty group (a
                // degenerate but serializable partition); an empty member
                // between commas is still an error.
                if (num.empty() && c == ',') {
                    error = "event 'partition': bad member ''";
                    return false;
                }
                if (!num.empty()) {
                    std::int64_t member = 0;
                    if (!parse_i64(num, member) || member < 0 || member > INT32_MAX) {
                        error = "event 'partition': bad member '" + num + "'";
                        return false;
                    }
                    groups.back().push_back(static_cast<int>(member));
                    num.clear();
                }
                if (c == '|') groups.emplace_back();
            } else {
                num += c;
            }
        }
        groups.pop_back();  // the sentinel '|' opened one empty group
        e = ScenarioEvent::partition(at, std::move(groups));
        return true;
    }
    if (kind == "heal_partition") {
        e = ScenarioEvent::heal_partition(at);
        return true;
    }
    if (kind == "drop") {
        double p = 0;
        if (!need_double("probability", p)) return false;
        e = ScenarioEvent::drop(at, p);
        return true;
    }
    if (kind == "burst") {
        int member = 0;
        int messages = 0;
        if (!need_int("member", member) || !need_int("messages", messages)) return false;
        e = ScenarioEvent::burst(at, member, messages);
        return true;
    }
    if (kind == "fire_timeouts") {
        e = ScenarioEvent::fire_timeouts(at);
        return true;
    }
    if (kind == "recover") {
        int member = 0;
        if (!need_int("member", member)) return false;
        e = ScenarioEvent::recover(at, member);
        return true;
    }
    if (kind == "load") {
        scenario::LoadSpec spec;
        std::int64_t payload = 0;
        if (!need_double("rate", spec.rate) ||
            !need_non_negative("duration_us", spec.duration) ||
            !need_non_negative("payload", payload)) {
            return false;
        }
        spec.payload = static_cast<std::size_t>(payload);
        e = ScenarioEvent::load(at, spec);
        return true;
    }
    error = "unknown event kind '" + kind + "'";
    return false;
}

}  // namespace

std::string to_spec(const Scenario& s, const std::string& expect_violation) {
    std::string out;
    out += "# failsig scenario spec — re-run with: explore_cli --replay <this file>\n";
    out += std::string("format = ") + kSpecFormat + "\n";
    out += "name = " + s.name + "\n";
    out += std::string("system = ") + scenario::name_of(s.system) + "\n";
    out += "group_size = " + std::to_string(s.group_size) + "\n";
    out += "seed = " + std::to_string(s.seed) + "\n";
    out += "tie_break_seed = " + std::to_string(s.tie_break_seed) + "\n";
    out += "threads_per_node = " + std::to_string(s.threads_per_node) + "\n";
    out += "deadline_us = " + std::to_string(s.deadline) + "\n";
    out += "settle_us = " + std::to_string(s.settle) + "\n";
    out += "msgs_per_member = " + std::to_string(s.workload.msgs_per_member) + "\n";
    out += "payload_size = " + std::to_string(s.workload.payload_size) + "\n";
    out += "send_interval_us = " + std::to_string(s.workload.send_interval) + "\n";
    out += std::string("service = ") + service_name(s.workload.service) + "\n";
    out += "batch_max_requests = " + std::to_string(s.batch.max_requests) + "\n";
    out += "batch_max_bytes = " + std::to_string(s.batch.max_bytes) + "\n";
    out += "batch_flush_after_us = " + std::to_string(s.batch.flush_after) + "\n";
    out += "start_suspectors = " + std::to_string(s.start_suspectors ? 1 : 0) + "\n";
    out += "suspector_ping_us = " + std::to_string(s.suspector.ping_interval) + "\n";
    out += "suspector_timeout_us = " + std::to_string(s.suspector.suspect_timeout) + "\n";
    out += std::string("placement = ") +
           (s.placement == fsnewtop::Placement::kFull ? "full" : "collocated") + "\n";
    // FS-NewTOP timing-bound parameters (fs::FsConfig): behavior-bearing, so
    // the spec must carry them — a reproducer replayed under different
    // δ/κ/σ bounds is a different scenario.
    out += "fs_delta_us = " + std::to_string(s.fs_config.delta) + "\n";
    out += "fs_kappa = " + fmt_double(s.fs_config.kappa) + "\n";
    out += "fs_sigma = " + fmt_double(s.fs_config.sigma) + "\n";
    out += "fs_t1_us = " + std::to_string(s.fs_config.t1) + "\n";
    out += "fs_t2_us = " + std::to_string(s.fs_config.t2) + "\n";
    out += "fs_compare_slack_us = " + std::to_string(s.fs_config.compare_slack) + "\n";
    out += "fs_order_link_mac = " + std::to_string(s.fs_config.order_link_mac ? 1 : 0) + "\n";
    // Written only when set: pre-recovery specs (and their byte-level
    // fixtures) never carried the key, and 0 is its documented default.
    if (s.checkpoint_interval != 0) {
        out += "checkpoint_interval = " + std::to_string(s.checkpoint_interval) + "\n";
    }
    if (!expect_violation.empty()) out += "expect_violation = " + expect_violation + "\n";
    for (const auto& e : s.timeline) out += "event = " + event_line(e) + "\n";
    return out;
}

Result<ReproSpec> parse_spec(const std::string& text) {
    ReproSpec spec;
    Scenario& s = spec.scenario;
    bool saw_format = false;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string raw =
            text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++line_no;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#') continue;

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            return Err::err("spec line " + std::to_string(line_no) + ": expected key = value");
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        const auto bad = [&](const char* what) {
            return Err::err("spec line " + std::to_string(line_no) + ": bad " +
                            std::string(what) + " '" + value + "'");
        };

        std::uint64_t u64 = 0;
        std::int64_t i64 = 0;
        if (key == "format") {
            if (value != kSpecFormat) return bad("format (want failsig-scenario-spec-v1)");
            saw_format = true;
        } else if (key == "name") {
            s.name = value;
        } else if (key == "system") {
            if (!system_from(value, s.system)) return bad("system");
        } else if (key == "group_size") {
            if (!parse_i64(value, i64) || i64 < 1 || i64 > INT32_MAX) return bad("group_size");
            s.group_size = static_cast<int>(i64);
        } else if (key == "seed") {
            if (!parse_u64(value, u64)) return bad("seed");
            s.seed = u64;
        } else if (key == "tie_break_seed") {
            if (!parse_u64(value, u64)) return bad("tie_break_seed");
            s.tie_break_seed = u64;
        } else if (key == "threads_per_node") {
            if (!parse_i64(value, i64) || i64 < 1 || i64 > INT32_MAX) {
                return bad("threads_per_node");
            }
            s.threads_per_node = static_cast<int>(i64);
        } else if (key == "deadline_us") {
            if (!parse_i64(value, s.deadline)) return bad("deadline_us");
        } else if (key == "settle_us") {
            if (!parse_i64(value, s.settle)) return bad("settle_us");
        } else if (key == "msgs_per_member") {
            if (!parse_i64(value, i64) || i64 < 0 || i64 > INT32_MAX) {
                return bad("msgs_per_member");
            }
            s.workload.msgs_per_member = static_cast<int>(i64);
        } else if (key == "payload_size") {
            if (!parse_u64(value, u64)) return bad("payload_size");
            s.workload.payload_size = static_cast<std::size_t>(u64);
        } else if (key == "send_interval_us") {
            if (!parse_i64(value, s.workload.send_interval)) return bad("send_interval_us");
        } else if (key == "service") {
            if (!service_from(value, s.workload.service)) return bad("service");
        } else if (key == "batch_max_requests") {
            if (!parse_u64(value, u64)) return bad("batch_max_requests");
            s.batch.max_requests = static_cast<std::size_t>(u64);
        } else if (key == "batch_max_bytes") {
            if (!parse_u64(value, u64)) return bad("batch_max_bytes");
            s.batch.max_bytes = static_cast<std::size_t>(u64);
        } else if (key == "batch_flush_after_us") {
            if (!parse_i64(value, s.batch.flush_after)) return bad("batch_flush_after_us");
        } else if (key == "start_suspectors") {
            if (!parse_bool(value, s.start_suspectors)) return bad("start_suspectors");
        } else if (key == "suspector_ping_us") {
            if (!parse_i64(value, s.suspector.ping_interval)) return bad("suspector_ping_us");
        } else if (key == "suspector_timeout_us") {
            if (!parse_i64(value, s.suspector.suspect_timeout)) {
                return bad("suspector_timeout_us");
            }
        } else if (key == "placement") {
            if (value == "full") s.placement = fsnewtop::Placement::kFull;
            else if (value == "collocated") s.placement = fsnewtop::Placement::kCollocated;
            else return bad("placement (want full|collocated)");
        } else if (key == "fs_delta_us") {
            if (!parse_i64(value, s.fs_config.delta) || s.fs_config.delta < 0) {
                return bad("fs_delta_us");
            }
        } else if (key == "fs_kappa") {
            if (!parse_double(value, s.fs_config.kappa)) return bad("fs_kappa");
        } else if (key == "fs_sigma") {
            if (!parse_double(value, s.fs_config.sigma)) return bad("fs_sigma");
        } else if (key == "fs_t1_us") {
            if (!parse_i64(value, s.fs_config.t1) || s.fs_config.t1 < 0) {
                return bad("fs_t1_us");
            }
        } else if (key == "fs_t2_us") {
            if (!parse_i64(value, s.fs_config.t2) || s.fs_config.t2 < 0) {
                return bad("fs_t2_us");
            }
        } else if (key == "fs_compare_slack_us") {
            if (!parse_i64(value, s.fs_config.compare_slack) ||
                s.fs_config.compare_slack < 0) {
                return bad("fs_compare_slack_us");
            }
        } else if (key == "fs_order_link_mac") {
            if (!parse_bool(value, s.fs_config.order_link_mac)) {
                return bad("fs_order_link_mac");
            }
        } else if (key == "checkpoint_interval") {
            if (!parse_u64(value, u64)) return bad("checkpoint_interval");
            s.checkpoint_interval = u64;
        } else if (key == "expect_violation") {
            spec.expect_violation = value;
        } else if (key == "event") {
            scenario::ScenarioEvent e;
            std::string error;
            if (!parse_event(value, e, error)) {
                return Err::err("spec line " + std::to_string(line_no) + ": " + error);
            }
            s.timeline.push_back(std::move(e));
        } else {
            return Err::err("spec line " + std::to_string(line_no) + ": unknown key '" +
                            key + "'");
        }
    }
    if (!saw_format) return Err::err("spec: missing 'format = failsig-scenario-spec-v1'");
    return spec;
}

}  // namespace failsig::explore
