// Mini-ORB: location-independent oneway invocation with portable
// interceptors and a per-node request-handling thread pool.
//
// This is the substrate the paper leans on (§3, §3.1):
//  * location independence — callers hold ObjectRefs, never pointers, so a
//    servant can live on any node ("that GC' is hosted on a different node
//    to the Invocation layer will not matter since the communication between
//    the two is via the ORB");
//  * interceptors — requests can be observed/modified/fanned-out/suppressed
//    on the fly, which is how FS wrapping stays transparent to the wrapped
//    GC object ("a call to NewTOP GC ... is intercepted on the fly and is
//    submitted to both GC and GC'");
//  * a configurable thread pool (default 10) handling incoming requests —
//    the contention source behind Figure 7's throughput shape.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "orb/request.hpp"
#include "sim/cost_model.hpp"
#include "sim/thread_pool.hpp"

namespace failsig::orb {

class Orb;

/// An object implementation. dispatch() runs on the ORB's (simulated) pool
/// after unmarshalling; it may invoke other objects via its Orb.
class Servant {
public:
    virtual ~Servant() = default;
    virtual void dispatch(const Request& request) = 0;
};

/// Client-side interceptor: sees every outgoing request before marshalling.
/// It may mutate the request (e.g. add signature service contexts) and may
/// rewrite the target list (e.g. fan a GC-bound call out to FSO and FSO').
class ClientInterceptor {
public:
    virtual ~ClientInterceptor() = default;
    virtual void send_request(Request& request, std::vector<ObjectRef>& targets) = 0;
};

/// Server-side interceptor: sees every incoming request after unmarshalling
/// and before servant dispatch. Returning false suppresses delivery (used to
/// drop duplicate double-signed responses and reject bad signatures).
class ServerInterceptor {
public:
    virtual ~ServerInterceptor() = default;
    virtual bool receive_request(Request& request) = 0;
};

/// One ORB instance; binds one endpoint on its node and hosts any number of
/// servants keyed by object key.
class Orb {
public:
    Orb(sim::Simulation& sim, net::Transport& net, sim::SimThreadPool& pool, Endpoint endpoint,
        const sim::CostModel& costs);
    ~Orb();

    Orb(const Orb&) = delete;
    Orb& operator=(const Orb&) = delete;

    /// Registers `servant` under `key`; returns its location-independent ref.
    ObjectRef activate(const std::string& key, Servant* servant);
    void deactivate(const std::string& key);

    /// Oneway invocation through the client interceptor chain. When
    /// interceptors fan the call out to several targets, the request body is
    /// encoded once and shared (zero-copy) across all of them.
    void invoke(const ObjectRef& target, const std::string& operation, Any args,
                ServiceContexts contexts = {});

    /// Fan-out invocation: one logical request, many targets. Equivalent to
    /// one invoke() per target — same per-target marshal charge on the pool,
    /// same wire bytes — except the interceptor chain runs once over the
    /// whole target list and the body is encoded once and shared. The
    /// protocol out-queues (GC broadcast, PBFT broadcast, FS client
    /// replica pairs) use this so a multicast costs O(1) encodes.
    void invoke_fanout(const std::vector<ObjectRef>& targets, const std::string& operation,
                       Any args, ServiceContexts contexts = {});

    void add_client_interceptor(std::shared_ptr<ClientInterceptor> interceptor);
    void add_server_interceptor(std::shared_ptr<ServerInterceptor> interceptor);

    [[nodiscard]] Endpoint endpoint() const { return endpoint_; }
    [[nodiscard]] NodeId node() const { return endpoint_.node; }
    [[nodiscard]] sim::Simulation& simulation() { return sim_; }
    [[nodiscard]] sim::SimThreadPool& pool() { return pool_; }
    [[nodiscard]] const sim::CostModel& costs() const { return costs_; }

    [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }
    [[nodiscard]] std::uint64_t requests_dispatched() const { return requests_dispatched_; }

private:
    void on_network_message(const net::Message& msg);

    sim::Simulation& sim_;
    net::Transport& net_;
    sim::SimThreadPool& pool_;
    Endpoint endpoint_;
    sim::CostModel costs_;
    std::uint64_t next_request_id_{1};
    std::unordered_map<std::string, Servant*> servants_;
    std::vector<std::shared_ptr<ClientInterceptor>> client_interceptors_;
    std::vector<std::shared_ptr<ServerInterceptor>> server_interceptors_;
    std::uint64_t requests_sent_{0};
    std::uint64_t requests_dispatched_{0};
    std::shared_ptr<bool> alive_;
};

/// Factory and registry for ORBs: owns one thread pool per node so that
/// collocated ORBs (e.g. FSO_i and FSO'_j on one host in the paper's
/// Figure 5 set-up) contend for the same simulated CPU.
///
/// The domain resolves which event loop a node runs on through a
/// `SimProvider`: the classic deployments map every node onto one shared
/// Simulation (byte-identical to the historical single-loop behavior),
/// while the TCP backend hands each node its executor thread's private
/// loop. ORBs, pools and everything scheduled through them inherit the
/// node's loop automatically.
class OrbDomain {
public:
    /// Event loop lookup for a node. Must stay valid for the domain's
    /// lifetime and return the same Simulation for the same node.
    using SimProvider = std::function<sim::Simulation&(NodeId)>;

    /// Single-loop domain: every node shares `sim` (the simulator backends).
    OrbDomain(sim::Simulation& sim, net::Transport& net, sim::CostModel costs,
              int threads_per_node = 10);
    /// Multi-loop domain: `sim_of` maps each node to its own event loop
    /// (the TCP backend's per-node executors).
    OrbDomain(SimProvider sim_of, net::Transport& net, sim::CostModel costs,
              int threads_per_node = 10);

    /// Creates an ORB on `node` with a fresh port.
    Orb& create_orb(NodeId node);

    [[nodiscard]] sim::SimThreadPool& pool(NodeId node);
    [[nodiscard]] sim::Simulation& simulation(NodeId node) { return sim_of_(node); }
    [[nodiscard]] net::Transport& network() { return net_; }
    [[nodiscard]] const sim::CostModel& costs() const { return costs_; }

private:
    SimProvider sim_of_;
    net::Transport& net_;
    sim::CostModel costs_;
    int threads_per_node_;
    std::uint32_t next_port_{1};
    std::unordered_map<NodeId, std::unique_ptr<sim::SimThreadPool>> pools_;
    std::vector<std::unique_ptr<Orb>> orbs_;
};

}  // namespace failsig::orb
