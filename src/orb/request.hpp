// ORB request model: object references, service contexts and the wire codec.
//
// An ObjectRef is an IOR-lite: the endpoint the object's ORB listens on plus
// the object key. Service contexts are named byte blobs piggybacked on a
// request — exactly the CORBA mechanism that signature-carrying interceptors
// use (the FS wrappers put single/double signatures there, transparently to
// the target object).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/payload.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "orb/any.hpp"

namespace failsig::orb {

/// Location-independent object reference.
struct ObjectRef {
    Endpoint endpoint;
    std::string key;

    friend auto operator<=>(const ObjectRef&, const ObjectRef&) = default;
};

/// Named out-of-band blobs attached to a request (CORBA service contexts).
using ServiceContexts = std::map<std::string, Bytes>;

/// A oneway invocation in flight.
struct Request {
    std::string object_key;    ///< target object on the receiving ORB
    std::string operation;     ///< operation name
    Any args;                  ///< marshalled arguments
    ObjectRef reply_to;        ///< where responses should be directed (optional)
    std::uint64_t request_id{0};
    ServiceContexts contexts;  ///< interceptor-managed metadata (signatures &c)
    Endpoint sender;           ///< filled in by the receiving ORB

    // The wire image is [header][body]: the header is the length-prefixed
    // object key (the only per-target field), the body is everything else.
    // A multicast encodes the body once and shares it across all n targets
    // via Payload::prefixed — encode() remains the concatenation, so the
    // byte layout is unchanged from the pre-zero-copy plane.
    [[nodiscard]] Bytes encode() const;
    /// The per-target header for `key` (a length-prefixed string).
    static Bytes encode_key(const std::string& key);
    /// Everything after the object key, shared across a fan-out.
    [[nodiscard]] Bytes encode_body() const;

    static Result<Request> decode(std::span<const std::uint8_t> data);
    /// Segment-aware decode: reads the object key from the payload's header
    /// prefix (when present) and the body from the shared segment, without
    /// materializing a contiguous copy. (Named distinctly so Bytes callers
    /// of decode() never face an implicit-conversion ambiguity.)
    static Result<Request> decode_message(const Payload& payload);

    /// Payload size proxy used by the cost model (args + contexts).
    [[nodiscard]] std::size_t wire_size() const;
    /// wire_size() minus the object key — per-target costs add the actual
    /// target key length back on.
    [[nodiscard]] std::size_t wire_size_sans_key() const;
};

inline std::string to_string(const ObjectRef& ref) {
    return to_string(ref.endpoint) + "/" + ref.key;
}

}  // namespace failsig::orb
