#include "orb/any.hpp"

namespace failsig::orb {

namespace {
enum Tag : std::uint8_t {
    kNull = 0,
    kBool = 1,
    kI64 = 2,
    kU64 = 3,
    kF64 = 4,
    kString = 5,
    kBytes = 6,
    kSequence = 7,
    kStruct = 8,
};

constexpr int kMaxDepth = 32;
}  // namespace

void Any::encode_into(ByteWriter& w) const {
    std::visit(
        [&w](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::monostate>) {
                w.u8(kNull);
            } else if constexpr (std::is_same_v<T, bool>) {
                w.u8(kBool);
                w.u8(v ? 1 : 0);
            } else if constexpr (std::is_same_v<T, std::int64_t>) {
                w.u8(kI64);
                w.i64(v);
            } else if constexpr (std::is_same_v<T, std::uint64_t>) {
                w.u8(kU64);
                w.u64(v);
            } else if constexpr (std::is_same_v<T, double>) {
                w.u8(kF64);
                w.f64(v);
            } else if constexpr (std::is_same_v<T, std::string>) {
                w.u8(kString);
                w.str(v);
            } else if constexpr (std::is_same_v<T, Bytes>) {
                w.u8(kBytes);
                w.bytes(v);
            } else if constexpr (std::is_same_v<T, AnySequence>) {
                w.u8(kSequence);
                w.u32(static_cast<std::uint32_t>(v.size()));
                for (const auto& item : v) item.encode_into(w);
            } else if constexpr (std::is_same_v<T, AnyStruct>) {
                w.u8(kStruct);
                w.u32(static_cast<std::uint32_t>(v.size()));
                for (const auto& [key, value] : v) {
                    w.str(key);
                    value.encode_into(w);
                }
            }
        },
        v_);
}

Bytes Any::encode() const {
    ByteWriter w;
    w.reserve(encoded_size());
    encode_into(w);
    return w.take();
}

void Any::encode_into_prefixed(ByteWriter& w) const {
    w.u32(static_cast<std::uint32_t>(encoded_size()));
    encode_into(w);
}

std::size_t Any::encoded_size() const {
    return std::visit(
        [](const auto& v) -> std::size_t {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::monostate>) {
                return 1;
            } else if constexpr (std::is_same_v<T, bool>) {
                return 2;
            } else if constexpr (std::is_same_v<T, std::int64_t> ||
                                 std::is_same_v<T, std::uint64_t> ||
                                 std::is_same_v<T, double>) {
                return 1 + 8;
            } else if constexpr (std::is_same_v<T, std::string> || std::is_same_v<T, Bytes>) {
                return 1 + 4 + v.size();
            } else if constexpr (std::is_same_v<T, AnySequence>) {
                std::size_t size = 1 + 4;
                for (const auto& item : v) size += item.encoded_size();
                return size;
            } else if constexpr (std::is_same_v<T, AnyStruct>) {
                std::size_t size = 1 + 4;
                for (const auto& [key, value] : v) {
                    size += 4 + key.size() + value.encoded_size();
                }
                return size;
            }
        },
        v_);
}

Any Any::decode_from(ByteReader& r, int depth) {
    if (depth > kMaxDepth) throw std::out_of_range("Any: nesting too deep");
    const auto tag = r.u8();
    switch (tag) {
        case kNull: return Any{};
        case kBool: return Any{r.u8() != 0};
        case kI64: return Any{r.i64()};
        case kU64: return Any{r.u64()};
        case kF64: return Any{r.f64()};
        case kString: return Any{r.str()};
        case kBytes: return Any{r.bytes()};
        case kSequence: {
            const auto n = r.u32();
            if (n > r.remaining()) throw std::out_of_range("Any: sequence length lies");
            AnySequence seq;
            seq.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) seq.push_back(decode_from(r, depth + 1));
            return Any{std::move(seq)};
        }
        case kStruct: {
            const auto n = r.u32();
            if (n > r.remaining()) throw std::out_of_range("Any: struct length lies");
            AnyStruct st;
            for (std::uint32_t i = 0; i < n; ++i) {
                auto key = r.str();
                st.emplace(std::move(key), decode_from(r, depth + 1));
            }
            return Any{std::move(st)};
        }
        default: throw std::out_of_range("Any: unknown tag");
    }
}

Result<Any> Any::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        Any v = decode_from(r);
        if (!r.done()) return Result<Any>::err("trailing bytes after Any");
        return v;
    } catch (const std::out_of_range& e) {
        return Result<Any>::err(e.what());
    }
}

}  // namespace failsig::orb
