#include "orb/request.hpp"

namespace failsig::orb {

Bytes Request::encode() const {
    ByteWriter w;
    w.str(object_key);
    w.str(operation);
    const Bytes args_wire = args.encode();
    w.bytes(args_wire);
    w.u32(reply_to.endpoint.node.value);
    w.u32(reply_to.endpoint.port.value);
    w.str(reply_to.key);
    w.u64(request_id);
    w.u32(static_cast<std::uint32_t>(contexts.size()));
    for (const auto& [name, blob] : contexts) {
        w.str(name);
        w.bytes(blob);
    }
    return w.take();
}

Result<Request> Request::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        Request req;
        req.object_key = r.str();
        req.operation = r.str();
        const Bytes args_wire = r.bytes();
        auto args = Any::decode(args_wire);
        if (!args.has_value()) return Result<Request>::err("bad args: " + args.error().message);
        req.args = std::move(args).value();
        req.reply_to.endpoint.node.value = r.u32();
        req.reply_to.endpoint.port.value = r.u32();
        req.reply_to.key = r.str();
        req.request_id = r.u64();
        const auto n = r.u32();
        if (n > 64) return Result<Request>::err("implausible context count");
        for (std::uint32_t i = 0; i < n; ++i) {
            auto name = r.str();
            req.contexts.emplace(std::move(name), r.bytes());
        }
        if (!r.done()) return Result<Request>::err("trailing bytes in request");
        return req;
    } catch (const std::out_of_range&) {
        return Result<Request>::err("truncated request");
    }
}

std::size_t Request::wire_size() const {
    std::size_t size = object_key.size() + operation.size() + args.encode().size();
    for (const auto& [name, blob] : contexts) size += name.size() + blob.size();
    return size;
}

}  // namespace failsig::orb
