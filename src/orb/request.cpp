#include "orb/request.hpp"

namespace failsig::orb {

namespace {

void encode_body_into(ByteWriter& w, const Request& req) {
    w.str(req.operation);
    req.args.encode_into_prefixed(w);
    w.u32(req.reply_to.endpoint.node.value);
    w.u32(req.reply_to.endpoint.port.value);
    w.str(req.reply_to.key);
    w.u64(req.request_id);
    w.u32(static_cast<std::uint32_t>(req.contexts.size()));
    for (const auto& [name, blob] : req.contexts) {
        w.str(name);
        w.bytes(blob);
    }
}

/// Decodes everything after the object key; throws std::out_of_range on
/// truncation, returns an error message for semantic failures.
Result<Request> decode_body(ByteReader& r, Request req) {
    req.operation = r.str();
    const auto args_wire = r.bytes_view();
    auto args = Any::decode(args_wire);
    if (!args.has_value()) return Result<Request>::err("bad args: " + args.error().message);
    req.args = std::move(args).value();
    req.reply_to.endpoint.node.value = r.u32();
    req.reply_to.endpoint.port.value = r.u32();
    req.reply_to.key = r.str();
    req.request_id = r.u64();
    const auto n = r.u32();
    if (n > 64) return Result<Request>::err("implausible context count");
    for (std::uint32_t i = 0; i < n; ++i) {
        auto name = r.str();
        req.contexts.emplace(std::move(name), r.bytes());
    }
    if (!r.done()) return Result<Request>::err("trailing bytes in request");
    return req;
}

}  // namespace

Bytes Request::encode_key(const std::string& key) {
    ByteWriter w;
    w.reserve(4 + key.size());
    w.str(key);
    return w.take();
}

Bytes Request::encode_body() const {
    ByteWriter w;
    w.reserve(wire_size_sans_key() + 64);
    encode_body_into(w, *this);
    return w.take();
}

Bytes Request::encode() const {
    ByteWriter w;
    w.reserve(wire_size() + 64);
    w.str(object_key);
    encode_body_into(w, *this);
    return w.take();
}

Result<Request> Request::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        Request req;
        req.object_key = r.str();
        return decode_body(r, std::move(req));
    } catch (const std::out_of_range&) {
        return Result<Request>::err("truncated request");
    }
}

Result<Request> Request::decode_message(const Payload& payload) {
    if (!payload.has_prefix()) return decode(payload.body());
    try {
        ByteReader header(payload.prefix());
        Request req;
        req.object_key = header.str();
        if (!header.done()) return Result<Request>::err("trailing bytes in request header");
        ByteReader r(payload.body());
        return decode_body(r, std::move(req));
    } catch (const std::out_of_range&) {
        return Result<Request>::err("truncated request");
    }
}

std::size_t Request::wire_size() const { return object_key.size() + wire_size_sans_key(); }

std::size_t Request::wire_size_sans_key() const {
    std::size_t size = operation.size() + args.encoded_size();
    for (const auto& [name, blob] : contexts) size += name.size() + blob.size();
    return size;
}

}  // namespace failsig::orb
