#include "orb/orb.hpp"

#include "common/log.hpp"

namespace failsig::orb {

Orb::Orb(sim::Simulation& sim, net::Transport& net, sim::SimThreadPool& pool, Endpoint endpoint,
         const sim::CostModel& costs)
    : sim_(sim),
      net_(net),
      pool_(pool),
      endpoint_(endpoint),
      costs_(costs),
      alive_(std::make_shared<bool>(true)) {
    net_.bind(endpoint_, [this](const net::Message& msg) { on_network_message(msg); });
}

Orb::~Orb() {
    *alive_ = false;
    net_.unbind(endpoint_);
}

ObjectRef Orb::activate(const std::string& key, Servant* servant) {
    servants_[key] = servant;
    return ObjectRef{endpoint_, key};
}

void Orb::deactivate(const std::string& key) { servants_.erase(key); }

void Orb::add_client_interceptor(std::shared_ptr<ClientInterceptor> interceptor) {
    client_interceptors_.push_back(std::move(interceptor));
}

void Orb::add_server_interceptor(std::shared_ptr<ServerInterceptor> interceptor) {
    server_interceptors_.push_back(std::move(interceptor));
}

void Orb::invoke(const ObjectRef& target, const std::string& operation, Any args,
                 ServiceContexts contexts) {
    Request req;
    req.object_key = target.key;
    req.operation = operation;
    req.args = std::move(args);
    req.request_id = next_request_id_++;
    req.contexts = std::move(contexts);
    req.sender = endpoint_;

    std::vector<ObjectRef> targets{target};
    for (const auto& interceptor : client_interceptors_) {
        interceptor->send_request(req, targets);
    }

    // Marshalling happens once per outgoing request on the sender's CPU.
    const Duration marshal_cost = costs_.marshal(req.wire_size());
    pool_.submit(marshal_cost, [this, req = std::move(req), targets = std::move(targets)] {
        // One body for all targets; only the tiny object-key header is
        // materialized per target.
        const Payload body{req.encode_body()};
        for (const auto& t : targets) {
            ++requests_sent_;
            net_.send(endpoint_, t.endpoint,
                      Payload::prefixed(Request::encode_key(t.key), body));
        }
    });
}

void Orb::invoke_fanout(const std::vector<ObjectRef>& targets, const std::string& operation,
                        Any args, ServiceContexts contexts) {
    if (targets.empty()) return;
    Request req;
    req.object_key = targets.front().key;
    req.operation = operation;
    req.args = std::move(args);
    req.request_id = next_request_id_++;
    req.contexts = std::move(contexts);
    req.sender = endpoint_;

    std::vector<ObjectRef> resolved = targets;
    for (const auto& interceptor : client_interceptors_) {
        interceptor->send_request(req, resolved);
    }

    // One pool task per target — byte-for-byte the same simulated marshal
    // charge a per-target invoke() loop would incur — but the body they
    // send is encoded exactly once, here, and shared.
    const Payload body{req.encode_body()};
    const std::size_t body_wire = req.wire_size_sans_key();
    for (const auto& t : resolved) {
        const Duration marshal_cost = costs_.marshal(body_wire + t.key.size());
        pool_.submit(marshal_cost, [this, t, body] {
            ++requests_sent_;
            net_.send(endpoint_, t.endpoint,
                      Payload::prefixed(Request::encode_key(t.key), body));
        });
    }
}

void Orb::on_network_message(const net::Message& msg) {
    auto decoded = Request::decode_message(msg.payload);
    if (!decoded.has_value()) {
        FAILSIG_LOG(LogLevel::kWarn, ORB)
            << to_string(endpoint_) << " dropping undecodable request: "
            << decoded.error().message;
        return;
    }
    auto req = std::make_shared<Request>(std::move(decoded).value());
    req->sender = msg.src;

    const Duration cost = costs_.dispatch_fixed + costs_.marshal(req->wire_size());
    // Guard against this ORB being destroyed while the task sits in the pool.
    pool_.submit(cost, [this, alive = alive_, req] {
        if (!*alive) return;
        for (const auto& interceptor : server_interceptors_) {
            if (!interceptor->receive_request(*req)) return;
        }
        const auto it = servants_.find(req->object_key);
        if (it == servants_.end()) {
            FAILSIG_LOG(LogLevel::kDebug, ORB)
                << to_string(endpoint_) << " no servant for key '" << req->object_key << "'";
            return;
        }
        ++requests_dispatched_;
        it->second->dispatch(*req);
    });
}

OrbDomain::OrbDomain(sim::Simulation& sim, net::Transport& net, sim::CostModel costs,
                     int threads_per_node)
    : sim_of_([&sim](NodeId) -> sim::Simulation& { return sim; }),
      net_(net),
      costs_(costs),
      threads_per_node_(threads_per_node) {}

OrbDomain::OrbDomain(SimProvider sim_of, net::Transport& net, sim::CostModel costs,
                     int threads_per_node)
    : sim_of_(std::move(sim_of)),
      net_(net),
      costs_(costs),
      threads_per_node_(threads_per_node) {}

sim::SimThreadPool& OrbDomain::pool(NodeId node) {
    auto it = pools_.find(node);
    if (it == pools_.end()) {
        it = pools_
                 .emplace(node, std::make_unique<sim::SimThreadPool>(sim_of_(node),
                                                                     threads_per_node_))
                 .first;
    }
    return *it->second;
}

Orb& OrbDomain::create_orb(NodeId node) {
    const Endpoint endpoint{node, PortId{next_port_++}};
    orbs_.push_back(
        std::make_unique<Orb>(sim_of_(node), net_, pool(node), endpoint, costs_));
    return *orbs_.back();
}

}  // namespace failsig::orb
