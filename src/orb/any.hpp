// `Any`: a self-describing tagged value, modelled on the CORBA `any` type.
//
// The NewTOP Invocation service "marshals a multicast message ... into a
// generic CORBA type any" (paper §3); our Invocation service does the same
// with this type. Supports null, bool, i64, u64, f64, string, bytes,
// sequences, and named-field structs, with a compact binary encoding.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace failsig::orb {

class Any;

using AnySequence = std::vector<Any>;
using AnyStruct = std::map<std::string, Any>;

class Any {
public:
    Any() = default;
    Any(bool v) : v_(v) {}                          // NOLINT(google-explicit-constructor)
    Any(std::int64_t v) : v_(v) {}                  // NOLINT(google-explicit-constructor)
    Any(std::uint64_t v) : v_(v) {}                 // NOLINT(google-explicit-constructor)
    Any(double v) : v_(v) {}                        // NOLINT(google-explicit-constructor)
    Any(std::string v) : v_(std::move(v)) {}        // NOLINT(google-explicit-constructor)
    Any(const char* v) : v_(std::string(v)) {}      // NOLINT(google-explicit-constructor)
    Any(Bytes v) : v_(std::move(v)) {}              // NOLINT(google-explicit-constructor)
    Any(AnySequence v) : v_(std::move(v)) {}        // NOLINT(google-explicit-constructor)
    Any(AnyStruct v) : v_(std::move(v)) {}          // NOLINT(google-explicit-constructor)

    [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

    template <typename T>
    [[nodiscard]] bool is() const {
        return std::holds_alternative<T>(v_);
    }

    /// Throws std::bad_variant_access on type mismatch.
    template <typename T>
    [[nodiscard]] const T& as() const {
        return std::get<T>(v_);
    }

    friend bool operator==(const Any&, const Any&) = default;

    /// Compact binary encoding (1 tag byte + value).
    [[nodiscard]] Bytes encode() const;
    void encode_into(ByteWriter& w) const;
    /// Writes the length-prefixed form (`w.bytes(encode())`) without
    /// materializing the intermediate buffer.
    void encode_into_prefixed(ByteWriter& w) const;
    /// Exact size of encode()'s output, computed without encoding — the
    /// cost model and the hot encoders' reserve() calls use this.
    [[nodiscard]] std::size_t encoded_size() const;

    static Result<Any> decode(std::span<const std::uint8_t> data);
    /// Decodes one Any from the reader (for nested use); throws on truncation.
    static Any decode_from(ByteReader& r, int depth = 0);

private:
    std::variant<std::monostate, bool, std::int64_t, std::uint64_t, double, std::string, Bytes,
                 AnySequence, AnyStruct>
        v_;
};

}  // namespace failsig::orb
