// Fail-Signal wrapper Object (FSO) — the paper's core construction (§2,
// Appendix A).
//
// An FS process is a pair {FSO, FSO'} hosted on two nodes joined by a
// synchronous link (bound δ). Each FSO bundles:
//   * a replica of the wrapped deterministic service (p or p'),
//   * an Order process — the leader assigns a total order to inputs and
//     forwards (seq, input) records to the follower; the follower checks
//     that everything it receives directly is eventually ordered by the
//     leader (IRMP pool, timeouts t1/t2),
//   * a Compare process — every locally produced output is signed once and
//     sent to the counterpart (ICMP/ECMP pools); on a successful match the
//     counterpart's single-signed copy is countersigned and the double-
//     signed output is transmitted to its destinations; on mismatch or
//     timeout the pre-armed fail-signal is countersigned and emitted, and
//     the pair exchange ceases (failure modes fs1/fs2).
//
// In this implementation the Order and Compare processes run on a dedicated
// single-worker pool per FSO (the paper's nodes are dual-processor and its
// concluding remarks require the wrapper threads to run at high priority);
// the wrapped service's processing runs on the node's shared ORB thread
// pool, where it contends with everything else on that host.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "crypto/envelope.hpp"
#include "crypto/keys.hpp"
#include "fs/directory.hpp"
#include "fs/fault.hpp"
#include "fs/service.hpp"
#include "fs/wire.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "orb/orb.hpp"

namespace failsig::fs {

enum class FsoRole { kLeader, kFollower };

/// Tunables of the FS construction (paper §2.1/§2.2 and Appendix A).
struct FsConfig {
    /// δ: synchronous-link delay bound (assumption A2).
    Duration delta = 500 * kMicrosecond;
    /// κ: processing-speed ratio bound (assumption A3).
    double kappa = 2.0;
    /// σ: send-scheduling ratio bound (assumption A4).
    double sigma = 2.0;
    /// Follower's first IRMP timeout before dispatching to the leader
    /// ("in the implementation the t1 is set to 0").
    Duration t1 = 0;
    /// Follower's second IRMP timeout ("t2 is set to 2δ"); 0 = derive from δ.
    Duration t2 = 0;
    /// Engineering margin added to compare/order timeouts. The analytic
    /// bound (2δ+κπ+στ) assumes the pair's progress is symmetric at every
    /// instant; transient asymmetries (bursty countersign arrivals, ORB
    /// dispatch queues) need a real-world cushion on top, exactly like the
    /// generous timeouts of the paper's experimental set-up ("the large
    /// timeouts degrade performance only when nodes do fail").
    Duration compare_slack = 50 * kMillisecond;
    /// Opt-in MAC session authenticator for the pair link's Order records
    /// (the paper's signature-vs-MAC cost trade-off): when set, the
    /// leader/follower ordering stream is authenticated with a pairwise
    /// HMAC session key instead of the sender's RSA signature. Only the
    /// pair itself ever checks Order records, so no third-party
    /// verifiability is lost; Compare outputs keep real signatures because
    /// their countersigned form must convince everyone else. Off by
    /// default — the default wire format is unchanged.
    bool order_link_mac = false;
};

/// Shared infrastructure handed to every FS component. Time is *not* here:
/// each FSO schedules on its own node's event loop (resolved through its
/// ORB), which is the shared Simulation on the simulator backends and the
/// executor thread's private loop on the TCP backend.
struct FsRuntime {
    net::Transport& net;
    orb::OrbDomain& domain;
    crypto::KeyService& keys;
    FsDirectory& directory;
    /// Observability context (nullptr = off): wrapper objects attribute
    /// their simulated sign/verify time here. Trailing default keeps the
    /// existing five-field aggregate initializers valid.
    obs::Obs* obs{nullptr};
};

class Fso final : public orb::Servant {
public:
    Fso(FsRuntime& rt, std::string name, FsoRole role, orb::Orb& orb, Endpoint pair_endpoint,
        std::unique_ptr<DeterministicService> service, FsConfig config);
    ~Fso() override;

    Fso(const Fso&) = delete;
    Fso& operator=(const Fso&) = delete;

    /// Wires up the counterpart after both wrapper objects exist. The
    /// pre-armed fail-signal is this process's fail-signal already signed by
    /// the *counterpart's* Compare (supplied at start-up time, §2.1).
    void set_peer(Endpoint peer_pair_endpoint, const std::string& peer_principal,
                  crypto::SignedEnvelope prearmed_fail_signal);

    /// Injects an authenticated-Byzantine fault plan into this node.
    void set_fault_plan(const FaultPlan& plan);

    /// Invoked once per fail-signalling *episode* (the scenario tracer taps
    /// this; reasons are human-readable): once when this wrapper object
    /// starts fail-signalling (fs1 — mismatch/timeout, after which the pair
    /// exchange ceases), and once when an fs2 fault plan begins spontaneous
    /// fail-signal emission — not once per emission tick. Downstream,
    /// scenario metrics therefore count signalling episodes, not ticks.
    using FailSignalObserver = std::function<void(const std::string& name,
                                                  const std::string& reason)>;
    void set_fail_signal_observer(FailSignalObserver observer) {
        fail_signal_observer_ = std::move(observer);
    }

    // orb::Servant — handles "receiveNew" requests from the environment.
    void dispatch(const orb::Request& request) override;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] FsoRole role() const { return role_; }
    [[nodiscard]] const std::string& principal() const { return principal_; }
    [[nodiscard]] bool signalling() const { return signalling_; }
    [[nodiscard]] std::uint64_t inputs_ordered() const { return inputs_ordered_; }
    [[nodiscard]] std::uint64_t outputs_transmitted() const { return outputs_transmitted_; }
    [[nodiscard]] std::uint64_t fail_signals_sent() const { return fail_signals_sent_; }
    [[nodiscard]] DeterministicService& service() { return *service_; }

    /// Next input order sequence this wrapper object would assign/execute.
    [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

    /// Crash-recovery reset: cancels every pending Order/Compare timer,
    /// drops the pools' bookkeeping (DMQ, IRMP, ICMP/ECMP) and the
    /// fail-signalling latch, and re-bases the input order at `seq_base`.
    /// Both wrapper objects of a pair MUST be reset to the same base (the
    /// max of their next_seq()) before the link is unblocked, or the first
    /// ordered input after recovery mismatches and the pair re-signals.
    /// The wrapped service is NOT touched — the caller follows up with a
    /// service-level recovery input (e.g. the GC's "__rejoin") that both
    /// replicas execute deterministically.
    void reset_for_recovery(std::uint64_t seq_base);

    /// Effective follower IRMP timeout (t2).
    [[nodiscard]] Duration t2_effective() const;

private:
    struct PendingInput {
        FsInput input;
        TimePoint submitted_at{0};
    };
    struct IrmpEntry {
        FsInput input;
        sim::Simulation::EventId timer{0};
    };
    struct IcmpEntry {
        FsOutput out;
        Bytes encoded;
        sim::Simulation::EventId timer{0};
        bool matched{false};
    };
    using OutputId = std::pair<std::uint64_t, std::uint32_t>;

    [[nodiscard]] bool fault_active() const;
    [[nodiscard]] sim::SimThreadPool& node_pool() { return orb_.pool(); }

    /// Principal that signs our outgoing Order records, and the principal we
    /// expect on the counterpart's (the shared link principal in MAC mode).
    [[nodiscard]] const std::string& order_signing_principal() const {
        return (cfg_.order_link_mac && peer_set_) ? link_principal_ : principal_;
    }
    [[nodiscard]] const std::string& order_expected_principal() const {
        return (cfg_.order_link_mac && peer_set_) ? link_principal_ : peer_principal_;
    }

    // --- input path (Order process) --------------------------------------
    void handle_receive_new(const crypto::SignedEnvelope& env);
    void order_input(const FsInput& input);                    // leader
    void follower_receive_new(const FsInput& input);           // follower
    void handle_order(const crypto::SignedEnvelope& env);      // pair link
    void on_irmp_timeout(const std::string& uid);
    void enqueue_ordered(std::uint64_t seq, const FsInput& input);

    // --- execution ---------------------------------------------------------
    void maybe_execute();
    void on_executed(std::uint64_t seq, const PendingInput& pending);

    // --- output path (Compare process) -------------------------------------
    /// `pi` is π of §2.2: elapsed time from input submission to output
    /// production, measured locally.
    void emit_output(FsOutput record, Duration pi);
    void arm_icmp_timer(const OutputId& id, Duration pi, Duration tau);
    void handle_single(const crypto::SignedEnvelope& env);     // pair link
    void try_match(const OutputId& id);
    void on_icmp_timeout(const OutputId& id);

    // --- fail-signalling -----------------------------------------------------
    void start_signalling(const std::string& reason);
    void send_fail_signal_to_fs(const std::string& fs_name);
    void send_fail_signal_to_ref(const orb::ObjectRef& ref);
    void send_fail_signal_for_output(const FsOutput& out);
    void reply_fail_signal_to_origin(const FsInput& input);
    [[nodiscard]] const Bytes& fail_signal_wire();
    void schedule_spontaneous_fail_signal();

    // --- transport helpers ----------------------------------------------------
    void pair_send(const crypto::SignedEnvelope& env);
    void raw_request(const orb::ObjectRef& target, const std::string& operation, Bytes wire);
    /// One logical request to many targets: the body is encoded once and
    /// shared; only the per-target object-key header is materialized.
    void fanout_raw(const std::vector<orb::ObjectRef>& targets, const std::string& operation,
                    Bytes wire);
    void transmit(const FsOutput& record, Bytes wire);

    FsRuntime& rt_;
    std::string name_;
    FsoRole role_;
    orb::Orb& orb_;
    /// This node's event loop — every FSO timer and clock read goes here.
    sim::Simulation& sim_;
    Endpoint pair_ep_;
    std::unique_ptr<DeterministicService> service_;
    FsConfig cfg_;
    sim::CostModel costs_;
    std::string principal_;
    std::string peer_principal_;
    /// Pairwise session-MAC principal (order_link_mac mode); set by
    /// set_peer(). Order records are then signed/verified under this name.
    std::string link_principal_;
    Endpoint peer_pair_ep_{};
    bool peer_set_{false};
    crypto::SignedEnvelope prearmed_fail_;
    std::optional<Bytes> cached_fail_wire_;
    // The wrapper objects run Order and Compare as separate threads (paper
    // Fig. 1); keeping them on distinct single-worker pools means a signing
    // backlog on the Compare thread can never starve input ordering.
    std::unique_ptr<sim::SimThreadPool> order_pool_;
    std::unique_ptr<sim::SimThreadPool> compare_pool_;

    bool signalling_{false};
    std::uint64_t next_seq_{1};
    std::uint64_t next_exec_seq_{1};
    bool exec_busy_{false};
    std::map<std::uint64_t, PendingInput> dmq_;
    std::unordered_set<std::string> ordered_uids_;
    std::unordered_map<std::string, IrmpEntry> irmp_;
    std::map<OutputId, IcmpEntry> icmp_;
    std::map<OutputId, crypto::SignedEnvelope> ecmp_;

    FaultPlan fault_;
    bool fault_configured_{false};
    Rng fault_rng_;
    FailSignalObserver fail_signal_observer_;
    /// fs2 bookkeeping: the spontaneous-emission episode has been reported
    /// to the observer (it fires once per episode, not per emission tick).
    bool spontaneous_episode_reported_{false};

    std::uint64_t next_raw_request_id_{1};
    std::uint64_t inputs_ordered_{0};
    std::uint64_t outputs_transmitted_{0};
    std::uint64_t fail_signals_sent_{0};
};

}  // namespace failsig::fs
