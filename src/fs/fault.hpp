// Fault injection for one node of an FS pair (assumption A1 allows at most
// one faulty node per pair; tests inject faults into exactly one member and
// assert that the environment sees only fs1/fs2 behaviour).
#pragma once

#include "common/types.hpp"

namespace failsig::fs {

/// Authenticated-Byzantine fault plan applied to one wrapper object's node.
/// The faulty node cannot forge the other node's signature (A5); everything
/// else is fair game.
struct FaultPlan {
    /// Corrupt each produced output's body (bit flip) with `probability`.
    bool corrupt_outputs{false};
    /// Produce no outputs at all (crash of the service thread).
    bool drop_outputs{false};
    /// Add this much delay to each input's processing (violates A3 when it
    /// exceeds the κ bound).
    Duration extra_processing_delay{0};
    /// Leader only: process inputs in a different order than announced.
    bool misorder_inputs{false};
    /// Compare process spontaneously emits this node's fail-signal at
    /// arbitrary times (failure mode fs2).
    bool spontaneous_fail_signals{false};
    /// Interval between spontaneous fail-signal emissions.
    Duration spontaneous_interval{50 * kMillisecond};
    /// Probability that an applicable fault fires for a given output.
    double probability{1.0};
    /// Simulated time at which the node becomes faulty.
    TimePoint active_from{0};
};

}  // namespace failsig::fs
