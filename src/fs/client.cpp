#include "fs/client.hpp"

namespace failsig::fs {

FsClient::FsClient(FsRuntime& rt, orb::Orb& orb, const std::string& key) : rt_(rt), orb_(orb) {
    self_ref_ = orb_.activate(key, this);
}

void FsClient::send(const std::string& fs_name, const std::string& operation, Bytes body) {
    const FsProcessInfo* info = rt_.directory.lookup(fs_name);
    if (info == nullptr) return;

    FsInput input;
    input.uid = "client:" + self_ref_.key + ":" + std::to_string(next_uid_++);
    input.operation = operation;
    input.body = std::move(body);
    input.origin_ref = self_ref_;

    // Unsigned envelope: clients are not FS processes. The pair dedups the
    // two copies by uid. One fan-out: both replicas share one encoded body.
    const crypto::SignedEnvelope env(input.encode());
    orb_.invoke_fanout({info->leader, info->follower}, "receiveNew", orb::Any{env.encode()});
}

void FsClient::dispatch(const orb::Request& request) {
    if (!request.args.is<Bytes>()) return;
    auto env = crypto::SignedEnvelope::decode(request.args.as<Bytes>());
    if (!env.has_value()) {
        ++invalid_dropped_;
        return;
    }
    const crypto::SignedEnvelope& envelope = env.value();
    const auto kind = peek_kind(envelope.payload());
    if (!kind.has_value()) {
        ++invalid_dropped_;
        return;
    }

    switch (kind.value()) {
        case WireKind::kOutput: {
            auto out = FsOutput::decode(envelope.payload());
            if (!out.has_value()) {
                ++invalid_dropped_;
                return;
            }
            const FsOutput& record = out.value();
            const FsProcessInfo* source = rt_.directory.lookup(record.source_fs);
            if (source == nullptr ||
                !envelope.is_valid_double_signed(rt_.keys, source->leader_principal,
                                                 source->follower_principal)) {
                ++invalid_dropped_;
                return;
            }
            const std::string uid = record.source_fs + ":" + std::to_string(record.input_seq) +
                                    ":" + std::to_string(record.out_index);
            if (!seen_outputs_.insert(uid).second) {
                ++duplicates_suppressed_;
                return;  // the other Compare's copy
            }
            ++responses_received_;
            if (response_handler_) {
                response_handler_(record.source_fs, record.operation, record.body);
            }
            break;
        }
        case WireKind::kFailSignal: {
            auto fsig = FsFailSignal::decode(envelope.payload());
            if (!fsig.has_value()) {
                ++invalid_dropped_;
                return;
            }
            const FsProcessInfo* source = rt_.directory.lookup(fsig.value().source_fs);
            if (source == nullptr ||
                !envelope.is_valid_double_signed(rt_.keys, source->leader_principal,
                                                 source->follower_principal)) {
                ++invalid_dropped_;
                return;
            }
            if (signalled_sources_.insert(fsig.value().source_fs).second && fail_handler_) {
                fail_handler_(fsig.value().source_fs);
            }
            break;
        }
        default: ++invalid_dropped_; break;
    }
}

}  // namespace failsig::fs
