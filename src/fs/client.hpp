// FsClient: a plain (non-replicated) party interacting with FS processes.
//
// Handles the client half of the FS protocol: sends each logical input to
// *both* wrapper objects of the target pair (with one shared uid so the pair
// deduplicates), validates double signatures on responses, suppresses the
// duplicate copies that the two Compare processes emit, and surfaces
// fail-signals. This is exactly what the NewTOP Invocation layer's
// interceptors do in FS-NewTOP; it is also directly useful to applications
// (see examples/quickstart.cpp).
#pragma once

#include <functional>
#include <string>
#include <unordered_set>

#include "fs/fso.hpp"

namespace failsig::fs {

class FsClient final : public orb::Servant {
public:
    using ResponseHandler =
        std::function<void(const std::string& source_fs, const std::string& operation,
                           const Bytes& body)>;
    using FailSignalHandler = std::function<void(const std::string& source_fs)>;

    /// Registers the client as object `key` on `orb`.
    FsClient(FsRuntime& rt, orb::Orb& orb, const std::string& key);

    void on_response(ResponseHandler handler) { response_handler_ = std::move(handler); }
    void on_fail_signal(FailSignalHandler handler) { fail_handler_ = std::move(handler); }

    /// Sends one logical input to the named FS process (both replicas).
    void send(const std::string& fs_name, const std::string& operation, Bytes body);

    void dispatch(const orb::Request& request) override;

    [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }
    [[nodiscard]] std::uint64_t responses_received() const { return responses_received_; }
    [[nodiscard]] std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
    [[nodiscard]] std::uint64_t invalid_dropped() const { return invalid_dropped_; }

private:
    FsRuntime& rt_;
    orb::Orb& orb_;
    orb::ObjectRef self_ref_;
    std::uint64_t next_uid_{1};
    std::unordered_set<std::string> seen_outputs_;
    std::unordered_set<std::string> signalled_sources_;
    ResponseHandler response_handler_;
    FailSignalHandler fail_handler_;
    std::uint64_t responses_received_{0};
    std::uint64_t duplicates_suppressed_{0};
    std::uint64_t invalid_dropped_{0};
};

}  // namespace failsig::fs
