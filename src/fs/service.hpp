// The contract a middleware process must satisfy to be made fail-signalling.
//
// Requirement R1 (paper §2.1): "the execution of an operation by p in a given
// state and with a given set of arguments must always produce the same
// result" — i.e. the wrapped process is a deterministic state machine. The
// FS wrapper instantiates the factory twice ({p, p'}), feeds both replicas
// identical inputs in identical order, and cross-checks their outputs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "orb/request.hpp"

namespace failsig::fs {

/// Where a service output should go: another FS process (addressed by
/// logical name; the wrapper transmits to both of its replicas) or a plain
/// (non-replicated) object reference such as a client.
struct Destination {
    bool is_fs{false};
    std::string fs_name;
    orb::ObjectRef ref;

    static Destination fs(std::string name) {
        Destination d;
        d.is_fs = true;
        d.fs_name = std::move(name);
        return d;
    }
    static Destination plain(orb::ObjectRef target) {
        Destination d;
        d.ref = std::move(target);
        return d;
    }

    friend bool operator==(const Destination&, const Destination&) = default;
};

/// One output message produced by the wrapped service. A single logical
/// output may have several destinations (a multicast): the FS wrapper
/// compares and double-signs it once and transmits the same signed message
/// to every destination.
struct Outbound {
    std::vector<Destination> dests;
    std::string operation;
    Bytes body;

    Outbound() = default;
    Outbound(Destination dest, std::string op, Bytes payload)
        : dests{std::move(dest)}, operation(std::move(op)), body(std::move(payload)) {}
};

/// Operation name under which fail-signals from other FS processes are
/// delivered to the wrapped service as ordered inputs (body = source name).
inline constexpr const char* kFailSignalOp = "__failsignal";

/// A deterministic state machine (requirement R1).
class DeterministicService {
public:
    virtual ~DeterministicService() = default;

    /// Processes one input and returns the outputs it generates. Must be
    /// deterministic: same state + same input => same outputs.
    virtual std::vector<Outbound> process(const std::string& operation, const Bytes& body) = 0;

    /// Simulated CPU cost of processing this input (charged to the host
    /// node's thread pool before process() is invoked).
    [[nodiscard]] virtual Duration processing_cost(const std::string& operation,
                                                   const Bytes& body) const {
        (void)operation;
        return 100 * kMicrosecond + static_cast<Duration>(body.size()) / 50;
    }
};

/// Creates a fresh replica in its initial state; called once per pair member.
using ServiceFactory = std::function<std::unique_ptr<DeterministicService>()>;

}  // namespace failsig::fs
