// Registry of FS processes: where each pair's wrapper objects live and which
// signing principals their Compare processes use. Receivers consult it to
// validate double-signed outputs and fail-signals.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "orb/request.hpp"

namespace failsig::fs {

struct FsProcessInfo {
    std::string name;
    orb::ObjectRef leader;          ///< FSO (ORB-visible object)
    orb::ObjectRef follower;        ///< FSO'
    Endpoint leader_pair_ep;        ///< leader end of the synchronous pair link
    Endpoint follower_pair_ep;      ///< follower end of the synchronous pair link
    std::string leader_principal;   ///< Compare's signing identity
    std::string follower_principal; ///< Compare''s signing identity
};

class FsDirectory {
public:
    void register_process(FsProcessInfo info) {
        const std::string name = info.name;
        order_.push_back(name);
        infos_[name] = std::move(info);
    }

    [[nodiscard]] const FsProcessInfo* lookup(const std::string& name) const {
        const auto it = infos_.find(name);
        return it == infos_.end() ? nullptr : &it->second;
    }

    /// Names in registration order.
    [[nodiscard]] const std::vector<std::string>& names() const { return order_; }

private:
    std::unordered_map<std::string, FsProcessInfo> infos_;
    std::vector<std::string> order_;
};

}  // namespace failsig::fs
