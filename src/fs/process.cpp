#include "fs/process.hpp"

namespace failsig::fs {

FsProcessHandles FsHost::create_process(const std::string& name, NodeId leader_node,
                                        NodeId follower_node, const ServiceFactory& factory,
                                        FsConfig config) {
    ensure(leader_node != follower_node, "FS pair must span two distinct nodes (A1)");

    orb::Orb& leader_orb = rt_.domain.create_orb(leader_node);
    orb::Orb& follower_orb = rt_.domain.create_orb(follower_node);

    const Endpoint leader_pair_ep{leader_node, PortId{next_pair_port_++}};
    const Endpoint follower_pair_ep{follower_node, PortId{next_pair_port_++}};

    // Assumption A2: the pair's nodes share a synchronous link with bound δ.
    rt_.net.set_lan_pair(leader_node, follower_node, config.delta);

    auto leader = std::make_unique<Fso>(rt_, name, FsoRole::kLeader, leader_orb, leader_pair_ep,
                                        factory(), config);
    auto follower = std::make_unique<Fso>(rt_, name, FsoRole::kFollower, follower_orb,
                                          follower_pair_ep, factory(), config);

    FsProcessInfo info;
    info.name = name;
    info.leader = leader_orb.activate("fso:" + name, leader.get());
    info.follower = follower_orb.activate("fso:" + name, follower.get());
    info.leader_pair_ep = leader_pair_ep;
    info.follower_pair_ep = follower_pair_ep;
    info.leader_principal = leader->principal();
    info.follower_principal = follower->principal();
    rt_.directory.register_process(info);

    // §2.1: at start-up each Compare is supplied with this process's
    // fail-signal already signed by the *other* Compare.
    const Bytes fail_payload = FsFailSignal{name}.encode();
    crypto::SignedEnvelope for_leader(fail_payload);
    for_leader.add_signature(rt_.keys.signer(follower->principal()));
    crypto::SignedEnvelope for_follower(fail_payload);
    for_follower.add_signature(rt_.keys.signer(leader->principal()));

    leader->set_peer(follower_pair_ep, follower->principal(), std::move(for_leader));
    follower->set_peer(leader_pair_ep, leader->principal(), std::move(for_follower));

    FsProcessHandles handles;
    handles.info = info;
    handles.leader = leader.get();
    handles.follower = follower.get();
    fsos_.push_back(std::move(leader));
    fsos_.push_back(std::move(follower));
    return handles;
}

}  // namespace failsig::fs
