// FsHost: builds and owns fail-signal process pairs.
//
// One call wires up everything §2 requires for an FS process: two wrapper
// objects on distinct nodes, the synchronous pair link with bound δ, signing
// principals for both Compare processes, mutual pre-armed fail-signals, and
// a directory entry so other parties can validate this process's outputs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fs/fso.hpp"

namespace failsig::fs {

struct FsProcessHandles {
    FsProcessInfo info;
    Fso* leader{nullptr};
    Fso* follower{nullptr};
};

class FsHost {
public:
    explicit FsHost(FsRuntime runtime) : rt_(runtime) {}

    FsHost(const FsHost&) = delete;
    FsHost& operator=(const FsHost&) = delete;

    /// Creates the FS process `name` as a self-checking pair on
    /// {leader_node, follower_node}. The factory is invoked twice so both
    /// replicas start from identical initial state (requirement R1).
    FsProcessHandles create_process(const std::string& name, NodeId leader_node,
                                    NodeId follower_node, const ServiceFactory& factory,
                                    FsConfig config = {});

    [[nodiscard]] FsRuntime& runtime() { return rt_; }

private:
    FsRuntime rt_;
    std::vector<std::unique_ptr<Fso>> fsos_;
    std::uint32_t next_pair_port_{10000};
};

}  // namespace failsig::fs
