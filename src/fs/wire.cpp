#include "fs/wire.hpp"

namespace failsig::fs {

void encode_object_ref(ByteWriter& w, const orb::ObjectRef& ref) {
    w.u32(ref.endpoint.node.value);
    w.u32(ref.endpoint.port.value);
    w.str(ref.key);
}

orb::ObjectRef decode_object_ref(ByteReader& r) {
    orb::ObjectRef ref;
    ref.endpoint.node.value = r.u32();
    ref.endpoint.port.value = r.u32();
    ref.key = r.str();
    return ref;
}

Result<WireKind> peek_kind(std::span<const std::uint8_t> data) {
    if (data.empty()) return Result<WireKind>::err("empty wire payload");
    const auto tag = data[0];
    if (tag < 1 || tag > 4) return Result<WireKind>::err("unknown wire kind");
    return static_cast<WireKind>(tag);
}

// --- FsInput ---------------------------------------------------------------

std::size_t FsInput::wire_size() const {
    return 1 + (4 + uid.size()) + (4 + operation.size()) + (4 + body.size()) +
           (4 + origin_fs.size()) + (4 + 4 + 4 + origin_ref.key.size());
}

Bytes FsInput::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(WireKind::kInput));
    w.str(uid);
    w.str(operation);
    w.bytes(body);
    w.str(origin_fs);
    encode_object_ref(w, origin_ref);
    return w.take();
}

Result<FsInput> FsInput::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        if (r.u8() != static_cast<std::uint8_t>(WireKind::kInput)) {
            return Result<FsInput>::err("not an FsInput");
        }
        FsInput in;
        in.uid = r.str();
        in.operation = r.str();
        in.body = r.bytes();
        in.origin_fs = r.str();
        in.origin_ref = decode_object_ref(r);
        if (!r.done()) return Result<FsInput>::err("trailing bytes");
        return in;
    } catch (const std::out_of_range&) {
        return Result<FsInput>::err("truncated FsInput");
    }
}

// --- FsOrder ---------------------------------------------------------------

std::size_t FsOrder::wire_size() const { return 1 + 8 + 4 + input.wire_size(); }

Bytes FsOrder::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(WireKind::kOrder));
    w.u64(seq);
    w.bytes(input.encode());
    return w.take();
}

Result<FsOrder> FsOrder::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        if (r.u8() != static_cast<std::uint8_t>(WireKind::kOrder)) {
            return Result<FsOrder>::err("not an FsOrder");
        }
        FsOrder order;
        order.seq = r.u64();
        const Bytes inner = r.bytes();
        auto input = FsInput::decode(inner);
        if (!input.has_value()) return Result<FsOrder>::err(input.error().message);
        order.input = std::move(input).value();
        if (!r.done()) return Result<FsOrder>::err("trailing bytes");
        return order;
    } catch (const std::out_of_range&) {
        return Result<FsOrder>::err("truncated FsOrder");
    }
}

// --- FsOutput ----------------------------------------------------------------

std::size_t FsOutput::wire_size() const {
    std::size_t size = 1 + (4 + source_fs.size()) + 8 + 4 + 4;
    for (const auto& d : dests) {
        size += 1 + (4 + d.fs_name.size()) + (4 + 4 + 4 + d.ref.key.size());
    }
    return size + (4 + operation.size()) + (4 + body.size());
}

Bytes FsOutput::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(WireKind::kOutput));
    w.str(source_fs);
    w.u64(input_seq);
    w.u32(out_index);
    w.u32(static_cast<std::uint32_t>(dests.size()));
    for (const auto& d : dests) {
        w.u8(d.is_fs ? 1 : 0);
        w.str(d.fs_name);
        encode_object_ref(w, d.ref);
    }
    w.str(operation);
    w.bytes(body);
    return w.take();
}

Result<FsOutput> FsOutput::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        if (r.u8() != static_cast<std::uint8_t>(WireKind::kOutput)) {
            return Result<FsOutput>::err("not an FsOutput");
        }
        FsOutput out;
        out.source_fs = r.str();
        out.input_seq = r.u64();
        out.out_index = r.u32();
        const auto dest_count = r.u32();
        if (dest_count > 4096) return Result<FsOutput>::err("implausible destination count");
        for (std::uint32_t i = 0; i < dest_count; ++i) {
            Destination d;
            d.is_fs = r.u8() != 0;
            d.fs_name = r.str();
            d.ref = decode_object_ref(r);
            out.dests.push_back(std::move(d));
        }
        out.operation = r.str();
        out.body = r.bytes();
        if (!r.done()) return Result<FsOutput>::err("trailing bytes");
        return out;
    } catch (const std::out_of_range&) {
        return Result<FsOutput>::err("truncated FsOutput");
    }
}

// --- FsFailSignal ------------------------------------------------------------

Bytes FsFailSignal::encode() const {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(WireKind::kFailSignal));
    w.str(source_fs);
    return w.take();
}

Result<FsFailSignal> FsFailSignal::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        if (r.u8() != static_cast<std::uint8_t>(WireKind::kFailSignal)) {
            return Result<FsFailSignal>::err("not an FsFailSignal");
        }
        FsFailSignal fsig;
        fsig.source_fs = r.str();
        if (!r.done()) return Result<FsFailSignal>::err("trailing bytes");
        return fsig;
    } catch (const std::out_of_range&) {
        return Result<FsFailSignal>::err("truncated FsFailSignal");
    }
}

}  // namespace failsig::fs
