// Wire formats used by the fail-signal machinery.
//
//  * FsInput      — a logical input to an FS process (deduplicated by uid).
//  * FsOrder      — leader/follower input-ordering records (Appendix A:
//                   receiveDouble traffic; seq 0 means "not yet ordered").
//  * FsOutput     — an output record: identity (input seq, output index),
//                   destination, operation and body. The *entire* record is
//                   what the Compare processes match, so a faulty replica
//                   that keeps the payload but redirects the message is
//                   caught too.
//  * FsFailSignal — the unique fail-signal of an FS process.
//
// Each is carried inside a crypto::SignedEnvelope; a one-byte kind tag leads
// every payload so receivers can dispatch without guessing.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "fs/service.hpp"
#include "orb/request.hpp"

namespace failsig::fs {

enum class WireKind : std::uint8_t {
    kInput = 1,
    kOrder = 2,
    kOutput = 3,
    kFailSignal = 4,
};

/// Reads the kind tag without consuming the buffer.
Result<WireKind> peek_kind(std::span<const std::uint8_t> data);

struct FsInput {
    std::string uid;            ///< global dedup key for this logical input
    std::string operation;      ///< target service operation
    Bytes body;                 ///< service-level payload
    std::string origin_fs;      ///< source FS process name; empty for clients
    orb::ObjectRef origin_ref;  ///< client reply reference; empty for FS origin

    /// Exact encoded size; hot encoders reserve() this up front.
    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<FsInput> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const FsInput&, const FsInput&) = default;
};

struct FsOrder {
    std::uint64_t seq{0};  ///< leader-assigned order; 0 = unordered dispatch
    FsInput input;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<FsOrder> decode(std::span<const std::uint8_t> data);
};

struct FsOutput {
    std::string source_fs;
    std::uint64_t input_seq{0};
    std::uint32_t out_index{0};
    std::vector<fs::Destination> dests;
    std::string operation;
    Bytes body;

    /// Output identity within its FS process.
    [[nodiscard]] std::pair<std::uint64_t, std::uint32_t> id() const {
        return {input_seq, out_index};
    }

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<FsOutput> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const FsOutput&, const FsOutput&) = default;
};

struct FsFailSignal {
    std::string source_fs;

    [[nodiscard]] Bytes encode() const;
    static Result<FsFailSignal> decode(std::span<const std::uint8_t> data);
};

void encode_object_ref(ByteWriter& w, const orb::ObjectRef& ref);
orb::ObjectRef decode_object_ref(ByteReader& r);

}  // namespace failsig::fs
