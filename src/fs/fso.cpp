#include "fs/fso.hpp"

#include "common/log.hpp"

namespace failsig::fs {

namespace {
/// CPU charge for light Order/Compare bookkeeping on the wrapper thread.
constexpr Duration kBookkeepingCost = 20 * kMicrosecond;
}  // namespace

Fso::Fso(FsRuntime& rt, std::string name, FsoRole role, orb::Orb& orb, Endpoint pair_endpoint,
         std::unique_ptr<DeterministicService> service, FsConfig config)
    : rt_(rt),
      name_(std::move(name)),
      role_(role),
      orb_(orb),
      sim_(orb.simulation()),
      pair_ep_(pair_endpoint),
      service_(std::move(service)),
      cfg_(config),
      costs_(rt.domain.costs()),
      principal_(name_ + (role == FsoRole::kLeader ? "/L" : "/F")),
      order_pool_(std::make_unique<sim::SimThreadPool>(sim_, 1)),
      compare_pool_(std::make_unique<sim::SimThreadPool>(sim_, 1)),
      fault_rng_(0xfa017 + std::hash<std::string>{}(principal_)) {
    rt_.keys.register_principal(principal_);
    rt_.net.bind(pair_ep_, [this](const net::Message& msg) {
        // Pair-link traffic: Order records (-> Order thread) and
        // single-signed outputs (-> Compare thread).
        auto env = crypto::SignedEnvelope::decode(msg.payload);
        if (!env.has_value()) return;
        auto shared = std::make_shared<crypto::SignedEnvelope>(std::move(env).value());
        const auto kind = peek_kind(shared->payload());
        if (!kind.has_value()) return;
        // Both kinds are handled on the fast wrapper thread: ordering must
        // never wait behind signature computation, and matching a received
        // single-signed output is a byte comparison plus one verification —
        // if it queued behind pending sign operations, a backlog of signs
        // would fire the compare timeout spuriously.
        if (kind.value() == WireKind::kOrder) {
            // Order records jump the queue: the follower's Order' thread
            // checks the leader's stream before new external input, so a
            // burst of receiveNew verifications cannot delay the
            // cancellation of IRMP t2 timers past their deadline.
            const Duration cost = kBookkeepingCost + costs_.hash(shared->payload().size());
            order_pool_->submit_priority(cost, [this, shared] { handle_order(*shared); });
        } else if (kind.value() == WireKind::kOutput) {
            // Single-signed outputs are matched on the Compare thread, ahead
            // of pending signature computations: the τ term of the §2.2
            // timeout already accounts for the *peer's* signing backlog, so
            // the match must not queue behind ours a second time.
            const Duration verify_cost = costs_.verify(shared->payload().size());
            if (rt_.obs != nullptr) rt_.obs->crypto_verify(verify_cost);
            const Duration cost = kBookkeepingCost + verify_cost;
            compare_pool_->submit_priority(cost, [this, shared] { handle_single(*shared); });
        }
    });
}

Fso::~Fso() { rt_.net.unbind(pair_ep_); }

void Fso::set_peer(Endpoint peer_pair_endpoint, const std::string& peer_principal,
                   crypto::SignedEnvelope prearmed_fail_signal) {
    peer_pair_ep_ = peer_pair_endpoint;
    peer_principal_ = peer_principal;
    prearmed_fail_ = std::move(prearmed_fail_signal);
    if (cfg_.order_link_mac) {
        rt_.keys.register_link(principal_, peer_principal_);
        link_principal_ = crypto::KeyService::link_principal(principal_, peer_principal_);
    }
    peer_set_ = true;
}

void Fso::set_fault_plan(const FaultPlan& plan) {
    fault_ = plan;
    fault_configured_ = true;
    spontaneous_episode_reported_ = false;  // a fresh plan starts a fresh episode
    if (fault_.spontaneous_fail_signals) schedule_spontaneous_fail_signal();
}

bool Fso::fault_active() const {
    return fault_configured_ && sim_.now() >= fault_.active_from;
}

Duration Fso::t2_effective() const {
    const Duration base = cfg_.t2 != 0 ? cfg_.t2 : 2 * cfg_.delta;
    return base + cfg_.compare_slack;
}

void Fso::reset_for_recovery(std::uint64_t seq_base) {
    for (auto& [uid, entry] : irmp_) {
        if (entry.timer != 0) sim_.cancel(entry.timer);
    }
    for (auto& [id, entry] : icmp_) {
        if (entry.timer != 0) sim_.cancel(entry.timer);
    }
    irmp_.clear();
    icmp_.clear();
    ecmp_.clear();
    dmq_.clear();
    ordered_uids_.clear();
    signalling_ = false;
    exec_busy_ = false;
    next_seq_ = seq_base;
    next_exec_seq_ = seq_base;
}

// ---------------------------------------------------------------------------
// Input path (receiveNew / Order process)
// ---------------------------------------------------------------------------

void Fso::dispatch(const orb::Request& request) {
    if (request.operation != "receiveNew" || !request.args.is<Bytes>()) return;
    auto env = crypto::SignedEnvelope::decode(request.args.as<Bytes>());
    if (!env.has_value()) return;
    auto shared = std::make_shared<crypto::SignedEnvelope>(std::move(env).value());

    // Authenticating inputs is one of the paper's three FS latency sources;
    // charge it on the Order thread, then run the ordering logic.
    Duration cost = kBookkeepingCost;
    for (std::size_t i = 0; i < shared->signatures().size(); ++i) {
        const Duration verify_cost = costs_.verify(shared->payload().size());
        if (rt_.obs != nullptr) rt_.obs->crypto_verify(verify_cost);
        cost += verify_cost;
    }
    order_pool_->submit(cost, [this, shared] { handle_receive_new(*shared); });
}

void Fso::handle_receive_new(const crypto::SignedEnvelope& env) {
    const auto kind = peek_kind(env.payload());
    if (!kind.has_value()) return;

    FsInput input;
    switch (kind.value()) {
        case WireKind::kOutput: {
            auto out = FsOutput::decode(env.payload());
            if (!out.has_value()) return;
            const FsOutput& record = out.value();
            const FsProcessInfo* source = rt_.directory.lookup(record.source_fs);
            if (source == nullptr) return;
            if (!env.is_valid_double_signed(rt_.keys, source->leader_principal,
                                            source->follower_principal)) {
                return;  // forged or single-signed: not a valid FS output (A5)
            }
            input.uid = "fs:" + record.source_fs + ":" + std::to_string(record.input_seq) + ":" +
                        std::to_string(record.out_index);
            input.operation = record.operation;
            input.body = record.body;
            input.origin_fs = record.source_fs;
            break;
        }
        case WireKind::kFailSignal: {
            auto fsig = FsFailSignal::decode(env.payload());
            if (!fsig.has_value()) return;
            const FsProcessInfo* source = rt_.directory.lookup(fsig.value().source_fs);
            if (source == nullptr) return;
            if (!env.is_valid_double_signed(rt_.keys, source->leader_principal,
                                            source->follower_principal)) {
                return;
            }
            // A valid fail-signal is converted into an ordered input so both
            // replicas observe it at the same point in the input sequence.
            // Flight-note the conversion: for a wrapped GC this is the
            // instant the suspicion — and with it the view-change flush —
            // is triggered, so the recorder can time flush rounds against
            // their cause.
            if (rt_.obs != nullptr) {
                rt_.obs->note(-1, principal_ + " accepts fail-signal from " +
                                      fsig.value().source_fs);
            }
            input.uid = "failsig:" + fsig.value().source_fs;
            input.operation = kFailSignalOp;
            input.body = bytes_of(fsig.value().source_fs);
            input.origin_fs = fsig.value().source_fs;
            break;
        }
        case WireKind::kInput: {
            auto in = FsInput::decode(env.payload());
            if (!in.has_value()) return;
            input = std::move(in).value();
            break;
        }
        default: return;
    }

    if (signalling_) {
        // Reply to the sender with our fail-signal (§2.1) — except when the
        // incoming message IS a fail-signal: answering those would make two
        // signalling processes bounce fail-signals forever.
        if (input.operation != kFailSignalOp) reply_fail_signal_to_origin(input);
        return;
    }

    if (role_ == FsoRole::kLeader) {
        order_input(input);
    } else {
        follower_receive_new(input);
    }
}

void Fso::order_input(const FsInput& input) {
    if (signalling_) {
        reply_fail_signal_to_origin(input);
        return;
    }
    if (ordered_uids_.contains(input.uid)) return;
    ordered_uids_.insert(input.uid);
    const std::uint64_t seq = next_seq_++;
    ++inputs_ordered_;

    enqueue_ordered(seq, input);

    // Forward the order record to the follower over the synchronous link.
    FsOrder record{seq, input};
    crypto::SignedEnvelope env(record.encode());
    env.add_signature(rt_.keys.signer(order_signing_principal()));
    pair_send(env);

    // Byzantine leader: announce one order, execute another (swap the two
    // most recent still-pending inputs locally).
    if (fault_active() && fault_.misorder_inputs && seq >= 2 &&
        fault_rng_.chance(fault_.probability)) {
        const auto a = dmq_.find(seq);
        const auto b = dmq_.find(seq - 1);
        if (a != dmq_.end() && b != dmq_.end()) std::swap(a->second.input, b->second.input);
    }
}

void Fso::enqueue_ordered(std::uint64_t seq, const FsInput& input) {
    dmq_[seq] = PendingInput{input, sim_.now()};
    maybe_execute();
}

void Fso::follower_receive_new(const FsInput& input) {
    if (ordered_uids_.contains(input.uid)) return;  // already ordered by leader
    if (irmp_.contains(input.uid)) return;

    const auto dispatch_to_leader = [this, input] {
        if (signalling_ || ordered_uids_.contains(input.uid)) return;
        FsOrder record{0, input};  // seq 0 = "please order this"
        crypto::SignedEnvelope env(record.encode());
        env.add_signature(rt_.keys.signer(order_signing_principal()));
        pair_send(env);
    };

    // Appendix A: t1 = 0 in the implementation — dispatch immediately.
    if (cfg_.t1 == 0) {
        dispatch_to_leader();
    } else {
        sim_.schedule_after(cfg_.t1, dispatch_to_leader);
    }

    IrmpEntry entry;
    entry.input = input;
    entry.timer = sim_.schedule_after(
        t2_effective(), [this, uid = input.uid] { on_irmp_timeout(uid); });
    irmp_.emplace(input.uid, std::move(entry));
}

void Fso::handle_order(const crypto::SignedEnvelope& env) {
    if (signalling_ || !peer_set_) return;
    if (env.signatures().size() != 1 ||
        env.signatures()[0].principal != order_expected_principal() ||
        !env.verify_chain(rt_.keys)) {
        return;  // not authentically from the counterpart
    }
    auto order = FsOrder::decode(env.payload());
    if (!order.has_value()) return;
    const FsOrder& record = order.value();

    if (role_ == FsoRole::kFollower) {
        if (record.seq == 0) return;  // leaders never send unordered records
        if (ordered_uids_.contains(record.input.uid)) return;
        ordered_uids_.insert(record.input.uid);
        ++inputs_ordered_;
        const auto irmp_it = irmp_.find(record.input.uid);
        if (irmp_it != irmp_.end()) {
            sim_.cancel(irmp_it->second.timer);
            irmp_.erase(irmp_it);
        }
        enqueue_ordered(record.seq, record.input);
    } else {
        // Follower dispatched an input the leader may not have seen yet.
        order_input(record.input);
    }
}

void Fso::on_irmp_timeout(const std::string& uid) {
    const auto it = irmp_.find(uid);
    if (it == irmp_.end()) return;
    const FsInput input = it->second.input;
    irmp_.erase(it);
    // The leader failed to order an input within t2: it has failed (Appendix
    // A) — start fail-signalling and tell the input's origin.
    start_signalling("leader did not order input " + uid + " within t2");
    reply_fail_signal_to_origin(input);
}

// ---------------------------------------------------------------------------
// Execution of ordered inputs
// ---------------------------------------------------------------------------

void Fso::maybe_execute() {
    if (exec_busy_) return;
    const auto it = dmq_.find(next_exec_seq_);
    if (it == dmq_.end()) return;
    const std::uint64_t seq = it->first;
    const PendingInput pending = std::move(it->second);
    dmq_.erase(it);
    exec_busy_ = true;

    Duration cost = service_->processing_cost(pending.input.operation, pending.input.body);
    if (fault_active() && fault_.extra_processing_delay > 0) {
        cost += fault_.extra_processing_delay;
    }
    // The wrapped service computes on the node's shared pool, contending
    // with every other object hosted there.
    node_pool().submit(cost, [this, seq, pending] { on_executed(seq, pending); });
}

void Fso::on_executed(std::uint64_t seq, const PendingInput& pending) {
    exec_busy_ = false;
    next_exec_seq_ = seq + 1;

    std::vector<Outbound> outputs =
        service_->process(pending.input.operation, pending.input.body);
    const Duration pi = sim_.now() - pending.submitted_at;  // π of §2.2

    for (std::uint32_t idx = 0; idx < outputs.size(); ++idx) {
        Outbound& out = outputs[idx];
        FsOutput record;
        record.source_fs = name_;
        record.input_seq = seq;
        record.out_index = idx;
        record.dests = std::move(out.dests);
        record.operation = out.operation;
        record.body = std::move(out.body);

        if (fault_active() && fault_.drop_outputs && fault_rng_.chance(fault_.probability)) {
            continue;  // faulty node silently produces nothing
        }
        if (fault_active() && fault_.corrupt_outputs && fault_rng_.chance(fault_.probability)) {
            if (record.body.empty()) record.body.push_back(0);
            record.body[fault_rng_.uniform(record.body.size())] ^= 0x01;
        }

        if (signalling_) {
            // After failure the Compare replaces every locally produced
            // output with the fail-signal (§2.1).
            send_fail_signal_for_output(record);
            continue;
        }
        emit_output(std::move(record), pi);
    }
    maybe_execute();
}

// ---------------------------------------------------------------------------
// Output path (Compare process)
// ---------------------------------------------------------------------------

void Fso::emit_output(FsOutput record, Duration pi) {
    const OutputId id = record.id();
    Bytes encoded = record.encode();

    IcmpEntry entry;
    entry.out = std::move(record);
    entry.encoded = encoded;
    icmp_.emplace(id, std::move(entry));

    // Sign once and forward to the counterpart Compare. §2.2 measures τ as
    // "the time taken to sign and forward the output to its remote
    // counterpart" — so τ is the *observed* elapsed time including any
    // Compare-thread backlog, and the wait timer is armed only once the
    // single-signed copy has actually left.
    const TimePoint produced_at = sim_.now();
    if (rt_.obs != nullptr) rt_.obs->crypto_sign(costs_.sign(encoded.size()));
    compare_pool_->submit(
        costs_.sign(encoded.size()), [this, id, pi, produced_at, encoded = std::move(encoded)] {
            if (signalling_ || !peer_set_) return;
            crypto::SignedEnvelope env(encoded);
            env.add_signature(rt_.keys.signer(principal_));
            pair_send(env);
            const Duration tau = sim_.now() - produced_at;
            arm_icmp_timer(id, pi, tau);
        });

    try_match(id);
}

void Fso::arm_icmp_timer(const OutputId& id, Duration pi, Duration tau) {
    const auto it = icmp_.find(id);
    if (it == icmp_.end() || it->second.matched) return;
    // §2.2: Compare (leader) waits 2δ+κπ+στ; Compare' (follower) δ+κπ+στ.
    const Duration base = (role_ == FsoRole::kLeader ? 2 : 1) * cfg_.delta;
    const Duration timeout = base + static_cast<Duration>(cfg_.kappa * static_cast<double>(pi)) +
                             static_cast<Duration>(cfg_.sigma * static_cast<double>(tau)) +
                             cfg_.compare_slack;
    it->second.timer = sim_.schedule_after(timeout, [this, id] { on_icmp_timeout(id); });
}

void Fso::handle_single(const crypto::SignedEnvelope& env) {
    if (signalling_ || !peer_set_) return;
    if (env.signatures().size() != 1 || env.signatures()[0].principal != peer_principal_ ||
        !env.verify_chain(rt_.keys)) {
        return;  // unauthentic single-signed output: let the timeout catch it
    }
    auto out = FsOutput::decode(env.payload());
    if (!out.has_value()) return;
    const OutputId id = out.value().id();
    ecmp_.emplace(id, env);
    try_match(id);
}

void Fso::try_match(const OutputId& id) {
    const auto icmp_it = icmp_.find(id);
    const auto ecmp_it = ecmp_.find(id);
    if (icmp_it == icmp_.end() || ecmp_it == ecmp_.end()) return;
    if (icmp_it->second.matched) return;

    if (icmp_it->second.encoded != ecmp_it->second.payload()) {
        // The two replicas produced different results for the same input:
        // one of the nodes is faulty.
        start_signalling("output comparison mismatch");
        return;
    }

    icmp_it->second.matched = true;
    sim_.cancel(icmp_it->second.timer);
    crypto::SignedEnvelope env = ecmp_it->second;
    ecmp_.erase(ecmp_it);

    // Countersign the counterpart-signed copy — the transmitted output then
    // bears both signatures, first the counterpart's, then ours.
    if (rt_.obs != nullptr) rt_.obs->crypto_sign(costs_.sign(env.payload().size()));
    compare_pool_->submit(costs_.sign(env.payload().size()), [this, id, env]() mutable {
        const auto it = icmp_.find(id);
        if (it == icmp_.end()) return;
        const FsOutput record = it->second.out;
        icmp_.erase(it);
        if (signalling_) {
            send_fail_signal_for_output(record);
            return;
        }
        env.add_signature(rt_.keys.signer(principal_));
        ++outputs_transmitted_;
        transmit(record, env.encode());
    });
}

void Fso::on_icmp_timeout(const OutputId& id) {
    const auto it = icmp_.find(id);
    if (it == icmp_.end() || it->second.matched) return;
    start_signalling("compare timeout for output " + std::to_string(id.first) + ":" +
                     std::to_string(id.second));
}

// ---------------------------------------------------------------------------
// Fail-signalling
// ---------------------------------------------------------------------------

const Bytes& Fso::fail_signal_wire() {
    if (!cached_fail_wire_.has_value()) {
        crypto::SignedEnvelope env = prearmed_fail_;
        env.add_signature(rt_.keys.signer(principal_));
        cached_fail_wire_ = env.encode();
    }
    return *cached_fail_wire_;
}

void Fso::start_signalling(const std::string& reason) {
    if (signalling_) return;
    signalling_ = true;
    FAILSIG_LOG(LogLevel::kInfo, FSO) << principal_ << " starts fail-signalling: " << reason;
    if (fail_signal_observer_) fail_signal_observer_(name_, reason);

    // Every entity expecting a response gets the fail-signal.
    for (auto& [id, entry] : icmp_) {
        sim_.cancel(entry.timer);
        send_fail_signal_for_output(entry.out);
    }
    icmp_.clear();
    ecmp_.clear();
    for (auto& [uid, entry] : irmp_) {
        sim_.cancel(entry.timer);
        reply_fail_signal_to_origin(entry.input);
    }
    irmp_.clear();
}

void Fso::send_fail_signal_for_output(const FsOutput& out) {
    for (const auto& dest : out.dests) {
        if (dest.is_fs) {
            send_fail_signal_to_fs(dest.fs_name);
        } else {
            send_fail_signal_to_ref(dest.ref);
        }
    }
}

void Fso::reply_fail_signal_to_origin(const FsInput& input) {
    if (!input.origin_fs.empty()) {
        send_fail_signal_to_fs(input.origin_fs);
    } else if (!input.origin_ref.key.empty()) {
        send_fail_signal_to_ref(input.origin_ref);
    }
}

void Fso::send_fail_signal_to_fs(const std::string& fs_name) {
    const FsProcessInfo* info = rt_.directory.lookup(fs_name);
    if (info == nullptr || fs_name == name_) return;
    ++fail_signals_sent_;
    fanout_raw({info->leader, info->follower}, "receiveNew", fail_signal_wire());
}

void Fso::send_fail_signal_to_ref(const orb::ObjectRef& ref) {
    if (ref.key.empty()) return;
    ++fail_signals_sent_;
    raw_request(ref, kFailSignalOp, fail_signal_wire());
}

void Fso::schedule_spontaneous_fail_signal() {
    const Duration interval =
        fault_.spontaneous_interval > 0 ? fault_.spontaneous_interval : 50 * kMillisecond;
    const TimePoint first = std::max(fault_.active_from, sim_.now() + interval);
    sim_.schedule_at(first, [this] {
        if (fault_configured_ && fault_.spontaneous_fail_signals && fault_active()) {
            // fs2: emit this process's fail-signal at an arbitrary instant to
            // arbitrary destinations, while the process may keep working.
            // The observer fires once per signalling episode, not per tick.
            if (!spontaneous_episode_reported_) {
                spontaneous_episode_reported_ = true;
                if (fail_signal_observer_) {
                    fail_signal_observer_(name_, "spontaneous fail-signal emission (fs2)");
                }
            }
            for (const auto& other : rt_.directory.names()) {
                if (other != name_) send_fail_signal_to_fs(other);
            }
        }
        schedule_spontaneous_fail_signal();
    });
}

// ---------------------------------------------------------------------------
// Transport helpers
// ---------------------------------------------------------------------------

void Fso::pair_send(const crypto::SignedEnvelope& env) {
    if (!peer_set_) return;
    rt_.net.send(pair_ep_, peer_pair_ep_, env.encode());
}

void Fso::raw_request(const orb::ObjectRef& target, const std::string& operation, Bytes wire) {
    fanout_raw({target}, operation, std::move(wire));
}

void Fso::fanout_raw(const std::vector<orb::ObjectRef>& targets, const std::string& operation,
                     Bytes wire) {
    if (targets.empty()) return;
    orb::Request req;
    req.object_key = targets.front().key;
    req.operation = operation;
    req.args = orb::Any{std::move(wire)};
    req.request_id = next_raw_request_id_++;
    req.sender = pair_ep_;
    const Payload body{req.encode_body()};
    for (const auto& t : targets) {
        rt_.net.send(pair_ep_, t.endpoint,
                     Payload::prefixed(orb::Request::encode_key(t.key), body));
    }
}

void Fso::transmit(const FsOutput& record, Bytes wire) {
    // One signed message, fanned out to every destination (and to both
    // replicas of FS destinations). The request body is encoded once per
    // distinct operation and shared across targets, but the send order over
    // destinations stays exactly as declared — the network's per-link FIFO
    // and per-message jitter draws depend on it.
    struct SharedBody {
        Payload body;
        bool ready{false};
    };
    SharedBody fs_body, plain_body;
    const orb::Any args{std::move(wire)};
    const auto send_shared = [&](const orb::ObjectRef& ref, SharedBody& slot,
                                 const std::string& operation) {
        if (!slot.ready) {
            orb::Request req;
            req.object_key = ref.key;
            req.operation = operation;
            req.args = args;
            req.request_id = next_raw_request_id_++;
            req.sender = pair_ep_;
            slot.body = Payload{req.encode_body()};
            slot.ready = true;
        }
        rt_.net.send(pair_ep_, ref.endpoint,
                     Payload::prefixed(orb::Request::encode_key(ref.key), slot.body));
    };
    for (const auto& dest : record.dests) {
        if (dest.is_fs) {
            const FsProcessInfo* info = rt_.directory.lookup(dest.fs_name);
            if (info == nullptr) continue;
            send_shared(info->leader, fs_body, "receiveNew");
            send_shared(info->follower, fs_body, "receiveNew");
        } else {
            send_shared(dest.ref, plain_body, record.operation);
        }
    }
}

}  // namespace failsig::fs
