// The transport seam: what a protocol stack needs from a network, split
// into two narrow interfaces.
//
//  * `Transport`     — asynchronous datagram delivery between opaque
//                      `Endpoint`s with receive upcalls, an explicit
//                      connection lifecycle (connect / graceful close), and
//                      delivery statistics. This is everything the ORB, the
//                      FS pairs and the protocol out-queues call.
//  * `FaultInjector` — the drop / partition / delay hooks the scenario
//                      engine and the fault campaigns call. It was always
//                      implicitly part of SimNetwork's contract; naming it
//                      separately lets a real backend implement faults as
//                      frame-dropping at its reactor without pretending to
//                      be a simulator.
//
// `SimNetwork` (net/network.hpp) implements both over a discrete-event
// Simulation, behavior-identical to the pre-split `net::Network`.
// `TcpTransport` (net/tcp_transport.hpp) implements both over real sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "common/payload.hpp"
#include "common/types.hpp"

namespace failsig::net {

/// A message in flight. The payload is a ref-counted immutable view: all n
/// receivers of a multicast share one body buffer (plus a tiny per-target
/// header), so putting a message on the wire never deep-copies it.
struct Message {
    Endpoint src;
    Endpoint dst;
    Payload payload;
};

using MessageHandler = std::function<void(const Message&)>;

/// Abstract asynchronous message transport.
///
/// Threading contract: `bind`/`unbind`/`connect` are topology-building calls
/// made while the deployment is single-threaded (construction / teardown).
/// `send` may be called from any execution context the backend hands upcalls
/// to; the handler for an endpoint is invoked on whatever context the
/// backend assigns to that endpoint's node (the simulation loop for
/// SimNetwork, the node's executor thread for TcpTransport).
class Transport {
public:
    virtual ~Transport() = default;

    /// Registers the handler invoked when a message reaches `endpoint`.
    virtual void bind(Endpoint endpoint, MessageHandler handler) = 0;
    virtual void unbind(Endpoint endpoint) = 0;

    /// Sends `payload` from `src` to `dst` (fire-and-forget datagram).
    virtual void send(Endpoint src, Endpoint dst, Payload payload) = 0;

    // --- connection lifecycle -------------------------------------------
    /// Eagerly establishes the src→dst link (with backoff-retry on a real
    /// backend). Optional: `send` connects lazily; this exists so a
    /// deployment can front-load connection cost out of the measured
    /// window. Default: no-op (the simulator has no connections).
    virtual void connect(NodeId /*src*/, NodeId /*dst*/) {}
    /// Gracefully closes every connection and stops delivering. Further
    /// sends are dropped (counted). Default: no-op.
    virtual void close() {}

    /// Topology hint: nodes a and b share a synchronous link with bound δ.
    /// The simulator models the bound; a real backend may use it only to
    /// exempt the pair from partitions (the cable is point-to-point).
    virtual void set_lan_pair(NodeId /*a*/, NodeId /*b*/, Duration /*delta*/) {}

    // --- statistics ------------------------------------------------------
    // Counters of the logical message plane, shared by the report pipeline
    // across backends. A backend that cannot measure one returns 0.
    [[nodiscard]] virtual std::uint64_t messages_sent() const { return 0; }
    [[nodiscard]] virtual std::uint64_t messages_delivered() const { return 0; }
    [[nodiscard]] virtual std::uint64_t messages_dropped() const { return 0; }
    [[nodiscard]] virtual std::uint64_t bytes_sent() const { return 0; }
    /// Bytes actually materialized to carry the logical wire bytes (see
    /// SimNetwork for the zero-copy accounting rules).
    [[nodiscard]] virtual std::uint64_t payload_bytes_copied() const { return 0; }
    /// Distinct body buffers that entered the plane (== payload encodes).
    [[nodiscard]] virtual std::uint64_t payload_bodies_encoded() const { return 0; }
    virtual void reset_stats() {}
};

/// Mutates or drops messages in flight; returns false to drop.
using Corruptor = std::function<bool(Message&)>;

/// Fault-injection hooks over a transport. All methods take effect on
/// messages sent (or, for a real backend, received at the reactor) after
/// the call; they never retract messages already in flight.
class FaultInjector {
public:
    virtual ~FaultInjector() = default;

    /// Drops every message between the two nodes (both directions).
    virtual void block(NodeId a, NodeId b) = 0;
    virtual void unblock(NodeId a, NodeId b) = 0;
    /// Splits nodes into groups; traffic across groups is dropped until
    /// heal_partition(). LAN pairs are not affected (they are point-to-point
    /// cables in the deployment).
    virtual void partition(const std::vector<std::set<NodeId>>& groups) = 0;
    virtual void heal_partition() = 0;
    /// Adds `extra` delay to all async traffic until time `until` (used to
    /// provoke false suspicions in timeout-based suspectors).
    virtual void delay_surge(Duration extra, TimePoint until) = 0;
    /// Installs a payload corruptor (return false to drop the message).
    virtual void set_corruptor(Corruptor corruptor) = 0;
    /// Random drop probability on async links (LAN pairs stay reliable).
    virtual void set_drop_probability(double p) = 0;
};

}  // namespace failsig::net
