// Length-prefixed wire framing for the TCP transport.
//
// A frame is one transport-level message:
//
//     [u32 body_len][body]
//     body = [endpoint src][endpoint dst][payload bytes...]
//     endpoint = [u32 node][u32 port]
//
// all little-endian via the existing ByteWriter/ByteReader codecs. The
// length prefix is the only thing a byte-stream peer must trust before
// allocating, so `FrameReader` validates it against `kMaxFrameBytes`
// before buffering — a hostile 0xffffffff length is a protocol error, not
// a 4 GiB allocation. The fuzz corpus in tests/test_tcp_frame.cpp feeds
// garbage, truncations and hostile lengths through this exact path.
#pragma once

#include <cstddef>
#include <optional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace failsig::net {

/// A decoded frame: the transport header plus the opaque payload bytes.
struct Frame {
    Endpoint src;
    Endpoint dst;
    Bytes payload;
};

/// Upper bound on one frame's body. Generous (the biggest legitimate frame
/// is a ~1 MiB bench payload plus headers); anything larger is hostile or
/// corrupt and kills the connection.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Wire bytes of the endpoint header inside a frame body.
inline constexpr std::size_t kEndpointWireBytes = 8;

void encode_endpoint(ByteWriter& w, Endpoint e);
Endpoint decode_endpoint(ByteReader& r);

/// Encodes one frame, length prefix included.
Bytes encode_frame(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload);

/// Decodes one complete frame body (the bytes after the length prefix).
Result<Frame> decode_frame_body(std::span<const std::uint8_t> body);

/// Incremental frame parser over an arbitrary-chunked byte stream (what a
/// socket read loop produces). Feed bytes, then pop frames until empty.
/// Once poisoned (hostile length / undecodable body) every later call
/// reports the error: a framing error on a TCP stream is unrecoverable
/// because resynchronization is impossible.
class FrameReader {
public:
    void feed(std::span<const std::uint8_t> data);

    /// Returns the next complete frame, std::nullopt when more bytes are
    /// needed, or sets `error()` and returns std::nullopt on a poisoned
    /// stream.
    std::optional<Frame> next();

    [[nodiscard]] bool failed() const { return !error_.empty(); }
    [[nodiscard]] const std::string& error() const { return error_; }

    /// Bytes buffered but not yet consumed (diagnostic).
    [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

private:
    Bytes buf_;
    std::size_t pos_{0};
    std::string error_;
};

}  // namespace failsig::net
