// The real addressing scheme behind opaque Endpoints.
//
// Protocol code addresses peers by `Endpoint{NodeId, PortId}` — logical
// coordinates with no network meaning. A deployment that runs on real
// sockets owns an `EndpointMap`: the node-id ↔ host:port directory. Ports
// are ephemeral (every listener binds port 0 and publishes the port the
// kernel chose), so parallel test runs never collide; the map is therefore
// built at deployment construction and read-only afterwards.
//
// The map has a wire codec (encode/decode) so a future multi-process
// deployment can hand the directory to children over a pipe; the
// round-trip is covered by tests/test_tcp_frame.cpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace failsig::net {

/// A concrete socket address.
struct SocketAddr {
    std::string host{"127.0.0.1"};
    std::uint16_t port{0};

    friend bool operator==(const SocketAddr&, const SocketAddr&) = default;
};

/// node-id ↔ host:port directory, held by the Deployment.
class EndpointMap {
public:
    /// Publishes (or replaces) the address of `node`.
    void publish(NodeId node, SocketAddr addr);

    /// Address of `node`, or nullptr if the node was never published.
    [[nodiscard]] const SocketAddr* find(NodeId node) const;

    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Node-ordered view (deterministic encode order).
    [[nodiscard]] const std::map<std::uint32_t, SocketAddr>& entries() const {
        return entries_;
    }

    Bytes encode() const;
    static Result<EndpointMap> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const EndpointMap&, const EndpointMap&) = default;

private:
    std::map<std::uint32_t, SocketAddr> entries_;
};

}  // namespace failsig::net
