#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace failsig::net {

namespace {

std::uint64_t pair_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
}

std::pair<std::uint32_t, std::uint32_t> ordered_pair(NodeId a, NodeId b) {
    return a.value <= b.value ? std::pair{a.value, b.value} : std::pair{b.value, a.value};
}

[[noreturn]] void sys_fail(const char* what) {
    throw std::runtime_error(std::string("tcp-transport: ") + what + ": " +
                             std::strerror(errno));
}

Bytes frame_of(Endpoint src, Endpoint dst, const Payload& payload) {
    ByteWriter w;
    w.reserve(4 + 2 * kEndpointWireBytes + payload.size());
    w.u32(static_cast<std::uint32_t>(2 * kEndpointWireBytes + payload.size()));
    encode_endpoint(w, src);
    encode_endpoint(w, dst);
    w.raw(payload.prefix());
    w.raw(payload.body());
    return w.take();
}

}  // namespace

TcpTransport::TcpTransport(Hooks hooks, Rng rng) : hooks_(std::move(hooks)), rng_(rng) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) sys_fail("epoll_create1");
    wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) sys_fail("eventfd");
}

TcpTransport::~TcpTransport() {
    close();
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void TcpTransport::ensure_listener(NodeId node) {
    if (listeners_.contains(node.value)) return;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) sys_fail("socket");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral: the kernel picks, we publish
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) sys_fail("bind");
    if (::listen(fd, 64) < 0) sys_fail("listen");
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        sys_fail("getsockname");
    }
    listeners_[node.value] = fd;
    endpoint_map_.publish(node, SocketAddr{"127.0.0.1", ntohs(addr.sin_port)});
}

void TcpTransport::bind(Endpoint endpoint, MessageHandler handler) {
    std::lock_guard lk(topo_mu_);
    ensure_listener(endpoint.node);
    handlers_[endpoint] = std::move(handler);
}

void TcpTransport::unbind(Endpoint endpoint) {
    std::lock_guard lk(topo_mu_);
    handlers_.erase(endpoint);
}

void TcpTransport::set_lan_pair(NodeId a, NodeId b, Duration /*delta*/) {
    // The bound δ is a simulator concept; on real sockets the hint only
    // marks the pair as a point-to-point cable (exempt from partitions).
    std::lock_guard lk(fault_mu_);
    lan_pairs_.insert(ordered_pair(a, b));
}

void TcpTransport::start() {
    std::lock_guard lk(topo_mu_);
    if (started_) return;
    started_ = true;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) sys_fail("epoll_ctl wake");
    for (const auto& [node, fd] : listeners_) {
        epoll_event lev{};
        lev.events = EPOLLIN;
        lev.data.fd = fd;
        if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &lev) < 0) sys_fail("epoll_ctl listen");
    }
    reactor_ = std::thread([this] { reactor_loop(); });
}

void TcpTransport::close() {
    {
        std::lock_guard lk(topo_mu_);
        if (closed_.exchange(true)) return;
    }
    stopping_.store(true);
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
    if (reactor_.joinable()) reactor_.join();
    // Graceful close: connections first (senders are quiesced by the host
    // before close()), then listeners.
    {
        std::lock_guard lk(conn_mu_);
        for (auto& [key, conn] : conns_) {
            std::lock_guard ck(conn->mu);
            if (conn->fd >= 0) {
                ::shutdown(conn->fd, SHUT_RDWR);
                ::close(conn->fd);
                conn->fd = -1;
            }
        }
        conns_.clear();
    }
    {
        std::lock_guard lk(topo_mu_);
        for (auto& [node, fd] : listeners_) ::close(fd);
        listeners_.clear();
    }
    for (auto& [fd, reader] : streams_) ::close(fd);
    streams_.clear();
}

void TcpTransport::isolate(NodeId node) {
    std::lock_guard lk(fault_mu_);
    dead_nodes_.insert(node.value);
}

void TcpTransport::restore(NodeId node) {
    std::lock_guard lk(fault_mu_);
    dead_nodes_.erase(node.value);
}

// --- fault injection -----------------------------------------------------

void TcpTransport::block(NodeId a, NodeId b) {
    std::lock_guard lk(fault_mu_);
    blocked_.insert(ordered_pair(a, b));
}

void TcpTransport::unblock(NodeId a, NodeId b) {
    std::lock_guard lk(fault_mu_);
    blocked_.erase(ordered_pair(a, b));
}

void TcpTransport::partition(const std::vector<std::set<NodeId>>& groups) {
    std::lock_guard lk(fault_mu_);
    partition_groups_ = groups;
}

void TcpTransport::heal_partition() {
    std::lock_guard lk(fault_mu_);
    partition_groups_.clear();
}

void TcpTransport::delay_surge(Duration extra, TimePoint until) {
    std::lock_guard lk(fault_mu_);
    surge_extra_ = extra;
    surge_until_ = until;
}

void TcpTransport::set_corruptor(Corruptor corruptor) {
    std::lock_guard lk(fault_mu_);
    corruptor_ = std::move(corruptor);
}

void TcpTransport::set_drop_probability(double p) {
    std::lock_guard lk(fault_mu_);
    drop_probability_ = p;
}

// --- statistics ----------------------------------------------------------

std::uint64_t TcpTransport::messages_sent() const {
    std::lock_guard lk(stats_mu_);
    return messages_sent_;
}
std::uint64_t TcpTransport::messages_delivered() const {
    std::lock_guard lk(stats_mu_);
    return messages_delivered_;
}
std::uint64_t TcpTransport::messages_dropped() const {
    std::lock_guard lk(stats_mu_);
    return messages_dropped_;
}
std::uint64_t TcpTransport::bytes_sent() const {
    std::lock_guard lk(stats_mu_);
    return bytes_sent_;
}
std::uint64_t TcpTransport::payload_bytes_copied() const {
    std::lock_guard lk(stats_mu_);
    return payload_bytes_copied_;
}
std::uint64_t TcpTransport::payload_bodies_encoded() const {
    std::lock_guard lk(stats_mu_);
    return payload_bodies_encoded_;
}

void TcpTransport::reset_stats() {
    std::lock_guard lk(stats_mu_);
    messages_sent_ = 0;
    messages_delivered_ = 0;
    messages_dropped_ = 0;
    bytes_sent_ = 0;
    payload_bytes_copied_ = 0;
    payload_bodies_encoded_ = 0;
    seen_bodies_.clear();
}

// --- send path -----------------------------------------------------------

int TcpTransport::connect_with_backoff(NodeId dst) {
    SocketAddr target;
    {
        std::lock_guard lk(topo_mu_);
        const SocketAddr* addr = endpoint_map_.find(dst);
        if (addr == nullptr) return -1;
        target = *addr;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(target.port);
    if (inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) return -1;
    // Bounded exponential backoff: the peer's listener exists before any
    // executor runs, so refusals here mean kernel backlog pressure, not a
    // missing peer.
    Duration backoff_us = 1000;
    for (int attempt = 0; attempt < 10; ++attempt) {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) return -1;
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return fd;
        }
        ::close(fd);
        if (errno != ECONNREFUSED && errno != EINTR && errno != ETIMEDOUT) return -1;
        ::usleep(static_cast<useconds_t>(backoff_us));
        backoff_us *= 2;
    }
    return -1;
}

void TcpTransport::write_frame(int fd, const Bytes& frame) {
    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        // Peer gone (reactor shut down / connection reset): the frame is
        // lost, which the drop counters already account for at the reactor
        // side; stop writing.
        return;
    }
}

void TcpTransport::send(Endpoint src, Endpoint dst, Payload payload) {
    {
        std::lock_guard lk(stats_mu_);
        ++messages_sent_;
        bytes_sent_ += payload.size();
        // The socket path flattens every payload into its frame, so unlike
        // the simulator the copied bytes equal the logical bytes; bodies
        // are still counted once so encode amortization stays visible.
        payload_bytes_copied_ += payload.size();
        if (payload.body_seq() != 0 && seen_bodies_.insert(payload.body_seq()).second) {
            ++payload_bodies_encoded_;
        }
    }
    if (closed_.load()) {
        std::lock_guard lk(stats_mu_);
        ++messages_dropped_;
        return;
    }
    {
        // Sender-side checks that never reach the reactor: dead endpoints.
        std::lock_guard lk(fault_mu_);
        if (dead_nodes_.contains(src.node.value) || dead_nodes_.contains(dst.node.value)) {
            std::lock_guard sk(stats_mu_);
            ++messages_dropped_;
            return;
        }
    }

    if (src.node == dst.node) {
        // In-process upcall: no socket, no random drop (see SimNetwork's
        // loopback rule), but the corruptor still sees it.
        Message msg{src, dst, std::move(payload)};
        {
            std::lock_guard lk(fault_mu_);
            if (corruptor_ && !corruptor_(msg)) {
                std::lock_guard sk(stats_mu_);
                ++messages_dropped_;
                return;
            }
        }
        deliver(std::move(msg), /*count_wire_settle=*/false);
        return;
    }

    const Bytes frame = frame_of(src, dst, payload);
    std::shared_ptr<Conn> conn;
    {
        std::lock_guard lk(conn_mu_);
        auto& slot = conns_[pair_key(src.node, dst.node)];
        if (!slot) slot = std::make_shared<Conn>();
        conn = slot;
    }
    if (hooks_.on_wire) hooks_.on_wire();
    {
        std::lock_guard ck(conn->mu);
        if (conn->fd < 0) conn->fd = connect_with_backoff(dst.node);
        if (conn->fd < 0) {
            std::lock_guard sk(stats_mu_);
            ++messages_dropped_;
            if (hooks_.on_settled) hooks_.on_settled();
            return;
        }
        write_frame(conn->fd, frame);
    }
}

void TcpTransport::connect(NodeId src, NodeId dst) {
    std::shared_ptr<Conn> conn;
    {
        std::lock_guard lk(conn_mu_);
        auto& slot = conns_[pair_key(src, dst)];
        if (!slot) slot = std::make_shared<Conn>();
        conn = slot;
    }
    std::lock_guard ck(conn->mu);
    if (conn->fd < 0) conn->fd = connect_with_backoff(dst);
}

// --- reactor -------------------------------------------------------------

void TcpTransport::reactor_loop() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    Bytes chunk(64 * 1024);
    while (!stopping_.load()) {
        const int n = epoll_wait(epoll_fd_, events, kMaxEvents, 100);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wake_fd_) {
                std::uint64_t drain = 0;
                [[maybe_unused]] const auto r = ::read(wake_fd_, &drain, sizeof drain);
                continue;
            }
            bool is_listener = false;
            {
                std::lock_guard lk(topo_mu_);
                for (const auto& [node, lfd] : listeners_) {
                    if (lfd == fd) {
                        is_listener = true;
                        break;
                    }
                }
            }
            if (is_listener) {
                for (;;) {
                    const int conn_fd = ::accept4(fd, nullptr, nullptr,
                                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
                    if (conn_fd < 0) break;
                    epoll_event cev{};
                    cev.events = EPOLLIN;
                    cev.data.fd = conn_fd;
                    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn_fd, &cev) == 0) {
                        streams_.emplace(conn_fd, FrameReader{});
                    } else {
                        ::close(conn_fd);
                    }
                }
                continue;
            }
            auto stream_it = streams_.find(fd);
            if (stream_it == streams_.end()) continue;
            FrameReader& reader = stream_it->second;
            bool dead = false;
            for (;;) {
                const ssize_t got = ::read(fd, chunk.data(), chunk.size());
                if (got > 0) {
                    reader.feed(std::span(chunk.data(), static_cast<std::size_t>(got)));
                    continue;
                }
                if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
                if (got < 0 && errno == EINTR) continue;
                dead = true;  // orderly EOF or hard error
                break;
            }
            while (auto frame = reader.next()) handle_frame(std::move(*frame));
            if (reader.failed()) {
                FAILSIG_LOG(LogLevel::kWarn, NET)
                    << "tcp reactor: poisoned stream (" << reader.error()
                    << "), closing connection";
                dead = true;
            }
            if (dead) {
                epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
                ::close(fd);
                streams_.erase(stream_it);
            }
        }
    }
}

bool TcpTransport::admit(Message& msg) {
    std::lock_guard lk(fault_mu_);
    const NodeId a = msg.src.node;
    const NodeId b = msg.dst.node;
    if (dead_nodes_.contains(a.value) || dead_nodes_.contains(b.value)) return false;
    const auto pair = ordered_pair(a, b);
    if (blocked_.contains(pair)) return false;
    const bool is_lan = lan_pairs_.contains(pair);
    if (!partition_groups_.empty() && !is_lan) {
        for (const auto& group : partition_groups_) {
            const bool has_a = group.contains(a);
            const bool has_b = group.contains(b);
            if (has_a && has_b) break;
            if (has_a != has_b) {
                for (const auto& other : partition_groups_) {
                    if (&other == &group) continue;
                    if (other.contains(has_a ? b : a)) return false;
                }
            }
        }
    }
    if (!is_lan && drop_probability_ > 0.0 && rng_.chance(drop_probability_)) return false;
    if (corruptor_ && !corruptor_(msg)) return false;
    return true;
}

void TcpTransport::deliver(Message msg, bool count_wire_settle) {
    MessageHandler handler;
    {
        std::lock_guard lk(topo_mu_);
        const auto it = handlers_.find(msg.dst);
        if (it != handlers_.end()) handler = it->second;
    }
    if (!handler) {
        std::lock_guard lk(stats_mu_);
        ++messages_dropped_;
        if (count_wire_settle && hooks_.on_settled) hooks_.on_settled();
        return;
    }
    const NodeId dst_node = msg.dst.node;
    auto task = [this, handler = std::move(handler), msg = std::move(msg)]() mutable {
        {
            std::lock_guard lk(stats_mu_);
            ++messages_delivered_;
        }
        handler(msg);
    };

    Duration surge = 0;
    TimePoint now = 0;
    if (hooks_.now && hooks_.post_at) {
        std::lock_guard lk(fault_mu_);
        now = hooks_.now();
        if (now < surge_until_) surge = surge_extra_;
    }
    if (surge > 0) {
        hooks_.post_at(dst_node, now + surge, std::move(task));
    } else {
        hooks_.post(dst_node, std::move(task));
    }
    if (count_wire_settle && hooks_.on_settled) hooks_.on_settled();
}

void TcpTransport::handle_frame(Frame frame) {
    Message msg{frame.src, frame.dst, Payload{std::move(frame.payload)}};
    if (!admit(msg)) {
        std::lock_guard lk(stats_mu_);
        ++messages_dropped_;
        if (hooks_.on_settled) hooks_.on_settled();
        return;
    }
    deliver(std::move(msg), /*count_wire_settle=*/true);
}

}  // namespace failsig::net
