#include "net/endpoint_map.hpp"

namespace failsig::net {

namespace {
constexpr std::uint32_t kMagic = 0x45504d31;  // "EPM1"
// A directory bigger than this is corrupt input, not a deployment.
constexpr std::uint32_t kMaxEntries = 1u << 20;
}  // namespace

void EndpointMap::publish(NodeId node, SocketAddr addr) {
    entries_[node.value] = std::move(addr);
}

const SocketAddr* EndpointMap::find(NodeId node) const {
    const auto it = entries_.find(node.value);
    return it == entries_.end() ? nullptr : &it->second;
}

Bytes EndpointMap::encode() const {
    ByteWriter w;
    w.u32(kMagic);
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const auto& [node, addr] : entries_) {
        w.u32(node);
        w.str(addr.host);
        w.u16(addr.port);
    }
    return w.take();
}

Result<EndpointMap> EndpointMap::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        if (r.u32() != kMagic) return Result<EndpointMap>::err("endpoint-map: bad magic");
        const std::uint32_t count = r.u32();
        if (count > kMaxEntries) {
            return Result<EndpointMap>::err("endpoint-map: hostile entry count");
        }
        EndpointMap map;
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint32_t node = r.u32();
            SocketAddr addr;
            addr.host = r.str();
            addr.port = r.u16();
            map.entries_[node] = std::move(addr);
        }
        if (!r.done()) return Result<EndpointMap>::err("endpoint-map: trailing bytes");
        return map;
    } catch (const std::out_of_range&) {
        return Result<EndpointMap>::err("endpoint-map: truncated");
    }
}

}  // namespace failsig::net
