// Simulated network: deterministic message delivery between endpoints.
//
// The paper's deployment (Figure 4) uses two kinds of links:
//  * a reliable *synchronous* LAN between the two nodes of each FS pair,
//    delivering within a known bound δ (assumption A2), and
//  * a reliable *asynchronous* network between FS processes, with no known
//    bound on message delays.
// `SimNetwork` models both, plus the fault injection the experiments need.
//
// The transport API itself lives in net/transport.hpp: `net::Transport`
// (delivery) and `net::FaultInjector` (fault hooks). SimNetwork implements
// both over one discrete-event Simulation, behavior-identical to the
// pre-split monolithic `net::Network` class.
#pragma once

#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/bytes.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace failsig::net {

/// Delay parameters for the asynchronous network.
struct AsyncLinkParams {
    /// Minimum propagation delay.
    Duration base = 1000 * kMicrosecond;
    /// Mean of the exponential jitter added on top.
    double jitter_mean_us = 500.0;
    /// Serialization delay per payload byte (100 Mb/s ~ 0.08 us/byte).
    double per_byte_us = 0.08;
};

/// Deterministic simulated network over a Simulation event queue.
///
/// Channels are reliable and FIFO per (src-node, dst-node) pair unless fault
/// injection says otherwise. LAN pairs registered with `set_lan_pair` get
/// delay <= δ; all other traffic uses the asynchronous delay model.
class SimNetwork final : public Transport, public FaultInjector {
public:
    SimNetwork(sim::Simulation& sim, Rng rng, AsyncLinkParams params = {});

    void bind(Endpoint endpoint, MessageHandler handler) override;
    void unbind(Endpoint endpoint) override;
    void send(Endpoint src, Endpoint dst, Payload payload) override;

    /// Declares nodes a and b connected by a synchronous link with bound δ.
    void set_lan_pair(NodeId a, NodeId b, Duration delta) override;

    // --- fault injection (net::FaultInjector) ---------------------------
    void block(NodeId a, NodeId b) override;
    void unblock(NodeId a, NodeId b) override;
    void partition(const std::vector<std::set<NodeId>>& groups) override;
    void heal_partition() override;
    void delay_surge(Duration extra, TimePoint until) override;
    void set_corruptor(Corruptor corruptor) override;
    void set_drop_probability(double p) override;

    // --- statistics ------------------------------------------------------
    [[nodiscard]] std::uint64_t messages_sent() const override { return messages_sent_; }
    [[nodiscard]] std::uint64_t messages_delivered() const override {
        return messages_delivered_;
    }
    [[nodiscard]] std::uint64_t messages_dropped() const override { return messages_dropped_; }
    [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_sent_; }
    /// Copy counters of the zero-copy plane. `bytes_sent()` counts *logical*
    /// wire bytes; `payload_bytes_copied()` counts the bytes that were
    /// actually materialized to carry them — per-target header bytes plus
    /// each distinct body buffer once. A multicast of one B-byte body to n
    /// receivers therefore adds n*B to bytes_sent but only B + n*header to
    /// payload_bytes_copied (O(1) body encodes, the acceptance criterion).
    [[nodiscard]] std::uint64_t payload_bytes_copied() const override {
        return payload_bytes_copied_;
    }
    /// Distinct body buffers that entered the plane (== payload encodes).
    [[nodiscard]] std::uint64_t payload_bodies_encoded() const override {
        return payload_bodies_encoded_;
    }
    void reset_stats() override;

private:
    struct NodePair {
        NodeId a, b;
        bool operator==(const NodePair&) const = default;
    };
    struct NodePairHash {
        std::size_t operator()(const NodePair& p) const {
            return (static_cast<std::size_t>(p.a.value) << 32) ^ p.b.value;
        }
    };
    static NodePair ordered(NodeId x, NodeId y) {
        return x.value <= y.value ? NodePair{x, y} : NodePair{y, x};
    }

    [[nodiscard]] bool is_blocked(NodeId a, NodeId b) const;
    [[nodiscard]] Duration delay_for(NodeId a, NodeId b, std::size_t size);

    sim::Simulation& sim_;
    Rng rng_;
    AsyncLinkParams params_;

    std::unordered_map<Endpoint, MessageHandler> handlers_;
    std::unordered_map<NodePair, Duration, NodePairHash> lan_pairs_;
    std::set<std::pair<std::uint32_t, std::uint32_t>> blocked_;
    std::vector<std::set<NodeId>> partition_groups_;
    Duration surge_extra_{0};
    TimePoint surge_until_{0};
    Corruptor corruptor_;
    double drop_probability_{0.0};

    // FIFO enforcement: last scheduled delivery per directed node pair.
    std::unordered_map<std::uint64_t, TimePoint> last_delivery_;

    std::uint64_t messages_sent_{0};
    std::uint64_t messages_delivered_{0};
    std::uint64_t messages_dropped_{0};
    std::uint64_t bytes_sent_{0};
    std::uint64_t payload_bytes_copied_{0};
    std::uint64_t payload_bodies_encoded_{0};
    /// Process-unique sequence ids of every body buffer seen, so a shared
    /// body counts once even when two senders' fan-out tasks interleave
    /// their sends (robust against allocator address recycling too).
    std::unordered_set<std::uint64_t> seen_bodies_;
};

}  // namespace failsig::net
