// Real-socket transport: TCP on localhost behind the net::Transport seam.
//
// Architecture (the nfs-ganesha RPC layer is the exemplar: dedicated
// dispatcher thread multiplexing sockets, worker pools doing the actual
// request work):
//
//  * one listening socket per node, bound to 127.0.0.1 port 0 — the kernel
//    picks an ephemeral port which is published in the EndpointMap, so any
//    number of deployments run concurrently (ctest -j) without colliding;
//  * one *reactor* thread running epoll over every listener and accepted
//    connection: it reads byte streams, reassembles length-prefixed frames
//    (net/frame.hpp), applies fault injection (partition/block/drop are
//    frame-dropping *at the reactor*, exactly where a firewall would sit),
//    and posts the bound handler's invocation onto the destination node's
//    executor via the host hooks;
//  * lazy per-directed-pair connections on first send, with bounded
//    backoff-retry, established from the sending node's executor thread —
//    TCP's stream order then gives the same per-link FIFO the simulator
//    guarantees;
//  * same-node traffic short-circuits the socket layer: a replica handing
//    a committed request to its own application sink is an in-process
//    upcall, as reliable as on the simulator (and exempt from random drop
//    for the same holdback-wedging reason — see SimNetwork).
//
// The transport knows nothing about virtual time or executors: the hosting
// deployment injects `Hooks` (post a task to a node's loop, in-flight
// accounting for quiescence detection, a time source for delay surges).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "net/endpoint_map.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"

namespace failsig::net {

class TcpTransport final : public Transport, public FaultInjector {
public:
    struct Hooks {
        /// Posts a delivery task onto `node`'s executor. Must mark the
        /// executor busy synchronously (quiescence correctness). Called
        /// from the reactor thread and, for same-node traffic, from the
        /// sending executor.
        std::function<void(NodeId node, std::function<void()> task)> post;
        /// Delay-surge variant: run the task on `node`'s loop at virtual
        /// time `at`. Optional; when absent surges degrade to immediate.
        std::function<void(NodeId node, TimePoint at, std::function<void()> task)> post_at;
        /// In-flight accounting for socket-routed frames: `on_wire` before
        /// the frame enters the socket, `on_settled` once it is enqueued at
        /// the destination executor or dropped. The host must not report
        /// quiescence while wire > settled.
        std::function<void()> on_wire;
        std::function<void()> on_settled;
        /// Current virtual time (delay-surge bookkeeping). Optional.
        std::function<TimePoint()> now;
    };

    TcpTransport(Hooks hooks, Rng rng);
    ~TcpTransport() override;

    TcpTransport(const TcpTransport&) = delete;
    TcpTransport& operator=(const TcpTransport&) = delete;

    // --- net::Transport --------------------------------------------------
    /// First bind for a node creates its listener (ephemeral port) and
    /// publishes the address. Topology building is single-threaded and
    /// must finish before start().
    void bind(Endpoint endpoint, MessageHandler handler) override;
    void unbind(Endpoint endpoint) override;
    void send(Endpoint src, Endpoint dst, Payload payload) override;
    void connect(NodeId src, NodeId dst) override;
    void close() override;
    void set_lan_pair(NodeId a, NodeId b, Duration delta) override;

    [[nodiscard]] std::uint64_t messages_sent() const override;
    [[nodiscard]] std::uint64_t messages_delivered() const override;
    [[nodiscard]] std::uint64_t messages_dropped() const override;
    [[nodiscard]] std::uint64_t bytes_sent() const override;
    [[nodiscard]] std::uint64_t payload_bytes_copied() const override;
    [[nodiscard]] std::uint64_t payload_bodies_encoded() const override;
    void reset_stats() override;

    // --- net::FaultInjector (frame-dropping at the reactor) --------------
    void block(NodeId a, NodeId b) override;
    void unblock(NodeId a, NodeId b) override;
    void partition(const std::vector<std::set<NodeId>>& groups) override;
    void heal_partition() override;
    void delay_surge(Duration extra, TimePoint until) override;
    void set_corruptor(Corruptor corruptor) override;
    void set_drop_probability(double p) override;

    // --- host integration ------------------------------------------------
    /// Starts the reactor thread (listeners must all exist). Idempotent.
    void start();
    /// Crash-as-teardown support: frames to or from `node` are dropped
    /// from now on, at send and at the reactor.
    void isolate(NodeId node);
    /// Recovery: undoes isolate(node); the node's frames flow again.
    void restore(NodeId node);
    [[nodiscard]] const EndpointMap& endpoints() const { return endpoint_map_; }

private:
    struct Conn {
        std::mutex mu;  // serializes writers of one directed pair
        int fd{-1};
    };

    void ensure_listener(NodeId node);
    [[nodiscard]] int connect_with_backoff(NodeId dst);
    void write_frame(int fd, const Bytes& frame);
    void reactor_loop();
    void handle_frame(Frame frame);
    /// Fault verdict for a frame arriving at the reactor; also applies the
    /// corruptor. Returns false to drop.
    bool admit(Message& msg);
    void deliver(Message msg, bool count_wire_settle);

    Hooks hooks_;

    // Fault state + rng: touched from the reactor and from driver-side
    // fault calls.
    mutable std::mutex fault_mu_;
    Rng rng_;
    std::set<std::pair<std::uint32_t, std::uint32_t>> blocked_;
    std::vector<std::set<NodeId>> partition_groups_;
    std::set<std::pair<std::uint32_t, std::uint32_t>> lan_pairs_;
    std::unordered_set<std::uint32_t> dead_nodes_;
    Duration surge_extra_{0};
    TimePoint surge_until_{0};
    Corruptor corruptor_;
    double drop_probability_{0.0};

    // Endpoint directory + handlers: built single-threaded, read from the
    // reactor and sender threads afterwards.
    mutable std::mutex topo_mu_;
    EndpointMap endpoint_map_;
    std::unordered_map<Endpoint, MessageHandler> handlers_;
    std::unordered_map<std::uint32_t, int> listeners_;  // node -> listen fd

    // Directed-pair connections (src<<32|dst -> Conn).
    std::mutex conn_mu_;
    std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;

    // Statistics (same accounting rules as SimNetwork).
    mutable std::mutex stats_mu_;
    std::uint64_t messages_sent_{0};
    std::uint64_t messages_delivered_{0};
    std::uint64_t messages_dropped_{0};
    std::uint64_t bytes_sent_{0};
    std::uint64_t payload_bytes_copied_{0};
    std::uint64_t payload_bodies_encoded_{0};
    std::unordered_set<std::uint64_t> seen_bodies_;

    // Reactor.
    std::thread reactor_;
    int epoll_fd_{-1};
    int wake_fd_{-1};
    bool started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> closed_{false};
    std::unordered_map<int, FrameReader> streams_;  // accepted fd -> parser
};

}  // namespace failsig::net
