// External execution environment for a stack deployment.
//
// Default-constructed (all fields null) a stack owns its whole world: one
// Simulation every node shares and one SimNetwork built from its options —
// the historical, byte-identical simulator path. The TCP backend fills all
// three fields instead: frames go through its TcpTransport, faults are
// injected at its reactor, and every node schedules on its own executor
// thread's private event loop.
#pragma once

#include <functional>

#include "common/result.hpp"
#include "net/transport.hpp"

namespace failsig::sim {
class Simulation;
}  // namespace failsig::sim

namespace failsig::net {

struct RuntimeEnv {
    /// Message plane (null = the stack builds its own SimNetwork).
    Transport* transport{nullptr};
    /// Fault-injection plane; must be set whenever `transport` is.
    FaultInjector* faults{nullptr};
    /// Event loop per node (null = one shared stack-owned Simulation). Must
    /// return the same Simulation for the same node, for the stack's
    /// lifetime.
    std::function<sim::Simulation&(NodeId)> sim_of{};

    [[nodiscard]] bool external() const { return transport != nullptr; }
};

/// Binding helpers for stack deployment constructors: pick the external
/// plane when provided, else the stack-owned fallback.
[[nodiscard]] inline Transport& transport_or(const RuntimeEnv& env, Transport* own) {
    Transport* chosen = env.transport != nullptr ? env.transport : own;
    ensure(chosen != nullptr, "RuntimeEnv: no transport available");
    return *chosen;
}

[[nodiscard]] inline FaultInjector& faults_or(const RuntimeEnv& env, FaultInjector* own) {
    FaultInjector* chosen = env.faults != nullptr ? env.faults : own;
    ensure(chosen != nullptr, "RuntimeEnv: an external transport needs an external fault plane");
    return *chosen;
}

[[nodiscard]] inline std::function<sim::Simulation&(NodeId)> sim_of_or(const RuntimeEnv& env,
                                                                       sim::Simulation& own) {
    if (env.sim_of) return env.sim_of;
    return [&own](NodeId) -> sim::Simulation& { return own; };
}

}  // namespace failsig::net
