#include "net/network.hpp"

#include <algorithm>

namespace failsig::net {

SimNetwork::SimNetwork(sim::Simulation& sim, Rng rng, AsyncLinkParams params)
    : sim_(sim), rng_(rng), params_(params) {}

void SimNetwork::bind(Endpoint endpoint, MessageHandler handler) {
    handlers_[endpoint] = std::move(handler);
}

void SimNetwork::unbind(Endpoint endpoint) { handlers_.erase(endpoint); }

void SimNetwork::set_lan_pair(NodeId a, NodeId b, Duration delta) {
    lan_pairs_[ordered(a, b)] = delta;
}

void SimNetwork::block(NodeId a, NodeId b) {
    const auto p = ordered(a, b);
    blocked_.insert({p.a.value, p.b.value});
}

void SimNetwork::unblock(NodeId a, NodeId b) {
    const auto p = ordered(a, b);
    blocked_.erase({p.a.value, p.b.value});
}

void SimNetwork::partition(const std::vector<std::set<NodeId>>& groups) {
    partition_groups_ = groups;
}

void SimNetwork::heal_partition() { partition_groups_.clear(); }

void SimNetwork::delay_surge(Duration extra, TimePoint until) {
    surge_extra_ = extra;
    surge_until_ = until;
}

void SimNetwork::set_corruptor(Corruptor corruptor) { corruptor_ = std::move(corruptor); }

void SimNetwork::set_drop_probability(double p) { drop_probability_ = p; }

void SimNetwork::reset_stats() {
    messages_sent_ = 0;
    messages_delivered_ = 0;
    messages_dropped_ = 0;
    bytes_sent_ = 0;
    payload_bytes_copied_ = 0;
    payload_bodies_encoded_ = 0;
    seen_bodies_.clear();
}

bool SimNetwork::is_blocked(NodeId a, NodeId b) const {
    if (a == b) return false;
    const auto p = ordered(a, b);
    if (blocked_.contains({p.a.value, p.b.value})) return true;
    if (!partition_groups_.empty() && !lan_pairs_.contains(p)) {
        // Across-group traffic is cut; traffic inside a group flows.
        for (const auto& group : partition_groups_) {
            const bool has_a = group.contains(a);
            const bool has_b = group.contains(b);
            if (has_a && has_b) return false;
            if (has_a != has_b) {
                // One endpoint inside this group, the other outside: blocked
                // only if the other endpoint belongs to some *other* group.
                for (const auto& other : partition_groups_) {
                    if (&other == &group) continue;
                    if (other.contains(has_a ? b : a)) return true;
                }
            }
        }
    }
    return false;
}

Duration SimNetwork::delay_for(NodeId a, NodeId b, std::size_t size) {
    if (a == b) {
        // Loopback: small constant.
        return 20 * kMicrosecond;
    }
    const auto lan_it = lan_pairs_.find(ordered(a, b));
    if (lan_it != lan_pairs_.end()) {
        // Synchronous link: delay uniform in (0, δ], never above the bound.
        const Duration delta = lan_it->second;
        const Duration lo = std::max<Duration>(1, delta / 4);
        return rng_.uniform_range(lo, delta);
    }
    const auto jitter = static_cast<Duration>(rng_.exponential(params_.jitter_mean_us));
    const auto serialization =
        static_cast<Duration>(params_.per_byte_us * static_cast<double>(size));
    Duration d = params_.base + jitter + serialization;
    if (sim_.now() < surge_until_) d += surge_extra_;
    return d;
}

void SimNetwork::send(Endpoint src, Endpoint dst, Payload payload) {
    ++messages_sent_;
    bytes_sent_ += payload.size();
    // Copy accounting: the per-target header is always materialized; the
    // body buffer counts only the first time it is seen (the fan-out loop
    // of a multicast sends the same shared buffer consecutively).
    payload_bytes_copied_ += payload.prefix().size();
    if (payload.body_seq() != 0 && seen_bodies_.insert(payload.body_seq()).second) {
        ++payload_bodies_encoded_;
        payload_bytes_copied_ += payload.body().size();
    }

    const bool is_lan = lan_pairs_.contains(ordered(src.node, dst.node));

    if (is_blocked(src.node, dst.node)) {
        ++messages_dropped_;
        return;
    }
    // Random drop models a lossy *async link*; loopback traffic is an
    // in-process upcall (e.g. a replica handing a committed request to its
    // own application sink) and is as reliable as the LAN pairs. Without
    // this exemption, a dropped local delivery would park every later
    // upcall in a seq-holdback forever while the truncated stream still
    // looks like a valid prefix to the agreement checker.
    if (!is_lan && src.node != dst.node && drop_probability_ > 0.0 &&
        rng_.chance(drop_probability_)) {
        ++messages_dropped_;
        return;
    }

    Message msg{src, dst, std::move(payload)};
    if (corruptor_ && !corruptor_(msg)) {
        ++messages_dropped_;
        return;
    }

    const Duration delay = delay_for(src.node, dst.node, msg.payload.size());
    TimePoint deliver_at = sim_.now() + delay;

    // FIFO per directed node pair: never deliver earlier than a previously
    // sent message on the same link.
    const std::uint64_t link_key =
        (static_cast<std::uint64_t>(src.node.value) << 32) | dst.node.value;
    auto [it, inserted] = last_delivery_.try_emplace(link_key, deliver_at);
    if (!inserted) {
        deliver_at = std::max(deliver_at, it->second + 1);
        it->second = deliver_at;
    }

    sim_.schedule_at(deliver_at, [this, msg = std::move(msg)]() {
        const auto handler_it = handlers_.find(msg.dst);
        if (handler_it == handlers_.end()) {
            ++messages_dropped_;
            return;
        }
        ++messages_delivered_;
        handler_it->second(msg);
    });
}

}  // namespace failsig::net
