#include "net/frame.hpp"

namespace failsig::net {

void encode_endpoint(ByteWriter& w, Endpoint e) {
    w.u32(e.node.value);
    w.u32(e.port.value);
}

Endpoint decode_endpoint(ByteReader& r) {
    Endpoint e;
    e.node = NodeId{r.u32()};
    e.port = PortId{r.u32()};
    return e;
}

Bytes encode_frame(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload) {
    ByteWriter w;
    w.reserve(4 + 2 * kEndpointWireBytes + payload.size());
    w.u32(static_cast<std::uint32_t>(2 * kEndpointWireBytes + payload.size()));
    encode_endpoint(w, src);
    encode_endpoint(w, dst);
    w.raw(payload);
    return w.take();
}

Result<Frame> decode_frame_body(std::span<const std::uint8_t> body) {
    try {
        ByteReader r(body);
        Frame f;
        f.src = decode_endpoint(r);
        f.dst = decode_endpoint(r);
        f.payload = r.rest();
        return f;
    } catch (const std::out_of_range&) {
        return Result<Frame>::err("frame: truncated body");
    }
}

void FrameReader::feed(std::span<const std::uint8_t> data) {
    if (failed()) return;
    // Compact lazily: drop consumed prefix once it dominates the buffer so
    // a long-lived connection never accretes history.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameReader::next() {
    if (failed()) return std::nullopt;
    if (buffered() < 4) return std::nullopt;
    const std::span<const std::uint8_t> buffered_bytes(buf_);
    ByteReader prefix(buffered_bytes.subspan(pos_, 4));
    const std::uint32_t len = prefix.u32();
    if (len < 2 * kEndpointWireBytes || len > kMaxFrameBytes) {
        error_ = "frame: hostile length " + std::to_string(len);
        return std::nullopt;
    }
    if (buffered() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
    auto body = std::span(buf_).subspan(pos_ + 4, len);
    auto decoded = decode_frame_body(body);
    if (!decoded.has_value()) {
        error_ = decoded.error().message;
        return std::nullopt;
    }
    pos_ += 4 + static_cast<std::size_t>(len);
    return std::move(decoded).value();
}

}  // namespace failsig::net
