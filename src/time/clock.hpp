// Time sources behind one interface.
//
// Everything that stamps an observation — the scenario engine's observers,
// the obs histograms, the invariant checkers' trace events — reads time
// through `time::Clock` instead of reaching into a `sim::Simulation`
// directly. Three implementations cover the deployment matrix:
//  * `SimClock`    — simulated ticks from one discrete-event Simulation
//                    (the deterministic backends; byte-identical to the
//                    historical `sim().now()` reads),
//  * `SteadyClock` — monotonic wall-clock microseconds since construction
//                    (real-transport benches, where latency is measured on
//                    the host, not in the model),
//  * whatever a deployment mounts — `deploy::TcpDeployment` publishes a
//    virtual-time clock that all of its executor threads share.
#pragma once

#include <atomic>
#include <chrono>

#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace failsig::time {

/// A monotonic microsecond time source. `now()` must be safe to call from
/// any thread the owning deployment runs upcalls on.
class Clock {
public:
    virtual ~Clock() = default;
    [[nodiscard]] virtual TimePoint now() const = 0;
};

/// Simulated time: reads the event queue's clock. Single-threaded by
/// construction, like the Simulation it wraps.
class SimClock final : public Clock {
public:
    explicit SimClock(const sim::Simulation& sim) : sim_(&sim) {}
    [[nodiscard]] TimePoint now() const override { return sim_->now(); }

private:
    const sim::Simulation* sim_;
};

/// Wall-clock time: monotonic microseconds since this clock was built.
/// Thread-safe (steady_clock reads only).
class SteadyClock final : public Clock {
public:
    SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}
    [[nodiscard]] TimePoint now() const override {
        const auto elapsed = std::chrono::steady_clock::now() - epoch_;
        return static_cast<TimePoint>(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
    }

private:
    std::chrono::steady_clock::time_point epoch_;
};

/// Shared virtual time: a deployment-owned tick counter advanced by a
/// coordinator and read from many threads. The TCP backend uses this so a
/// 8-simulated-seconds fault timeline replays in milliseconds of wall time
/// while every thread still agrees on "now".
class VirtualClock final : public Clock {
public:
    [[nodiscard]] TimePoint now() const override {
        return now_.load(std::memory_order_acquire);
    }
    void advance_to(TimePoint t) { now_.store(t, std::memory_order_release); }

private:
    std::atomic<TimePoint> now_{0};
};

}  // namespace failsig::time
