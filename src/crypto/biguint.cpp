#include "crypto/biguint.hpp"

#include <algorithm>
#include <stdexcept>

namespace failsig::crypto {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigUint::BigUint(u64 v) {
    if (v != 0) limbs_.push_back(v);
}

void BigUint::normalize() {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes_be(std::span<const std::uint8_t> data) {
    BigUint out;
    out.limbs_.assign((data.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < data.size(); ++i) {
        // byte i (big-endian) contributes to bit position 8*(size-1-i)
        const std::size_t bit_pos = 8 * (data.size() - 1 - i);
        out.limbs_[bit_pos / 64] |= static_cast<u64>(data[i]) << (bit_pos % 64);
    }
    out.normalize();
    return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
    std::string padded(hex);
    if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
    return from_bytes_be(failsig::from_hex(padded));
}

Bytes BigUint::to_bytes_be(std::size_t min_size) const {
    const std::size_t nbytes = std::max<std::size_t>(min_size, (bit_length() + 7) / 8);
    Bytes out(std::max<std::size_t>(nbytes, 1), 0);
    if (is_zero()) {
        if (out.size() < min_size) out.assign(min_size, 0);
        return out;
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::size_t bit_pos = 8 * (out.size() - 1 - i);
        const std::size_t limb_idx = bit_pos / 64;
        if (limb_idx < limbs_.size()) {
            out[i] = static_cast<std::uint8_t>(limbs_[limb_idx] >> (bit_pos % 64));
        }
    }
    return out;
}

std::string BigUint::to_hex() const {
    if (is_zero()) return "0";
    auto s = failsig::to_hex(to_bytes_be());
    const auto first = s.find_first_not_of('0');
    return s.substr(first);
}

std::size_t BigUint::bit_length() const {
    if (limbs_.empty()) return 0;
    const u64 top = limbs_.back();
    std::size_t bits = (limbs_.size() - 1) * 64;
    return bits + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUint::bit(std::size_t i) const {
    const std::size_t limb_idx = i / 64;
    if (limb_idx >= limbs_.size()) return false;
    return (limbs_[limb_idx] >> (i % 64)) & 1;
}

std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) {
    if (a.limbs_.size() != b.limbs_.size()) {
        return a.limbs_.size() <=> b.limbs_.size();
    }
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
    }
    return std::strong_ordering::equal;
}

BigUint operator+(const BigUint& a, const BigUint& b) {
    BigUint out;
    const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    out.limbs_.reserve(n + 1);
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(a.limb(i)) + b.limb(i) + carry;
        out.limbs_.push_back(static_cast<u64>(sum));
        carry = static_cast<u64>(sum >> 64);
    }
    if (carry) out.limbs_.push_back(carry);
    return out;
}

BigUint operator-(const BigUint& a, const BigUint& b) {
    if (a < b) throw std::underflow_error("BigUint subtraction underflow");
    BigUint out;
    out.limbs_.reserve(a.limbs_.size());
    u64 borrow = 0;
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        const u64 bi = b.limb(i);
        const u64 ai = a.limbs_[i];
        const u64 d1 = ai - bi;
        const u64 borrow1 = ai < bi;
        const u64 d2 = d1 - borrow;
        const u64 borrow2 = d1 < borrow;
        out.limbs_.push_back(d2);
        borrow = borrow1 | borrow2;
    }
    out.normalize();
    return out;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
    if (a.is_zero() || b.is_zero()) return BigUint{};
    BigUint out;
    out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        u64 carry = 0;
        for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
            const u128 cur = static_cast<u128>(out.limbs_[i + j]) +
                             static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        out.limbs_[i + b.limbs_.size()] += carry;
    }
    out.normalize();
    return out;
}

BigUint operator<<(const BigUint& a, std::size_t bits) {
    if (a.is_zero() || bits == 0) {
        BigUint out = a;
        return out;
    }
    const std::size_t limb_shift = bits / 64;
    const std::size_t bit_shift = bits % 64;
    BigUint out;
    out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
        out.limbs_[i + limb_shift] |= a.limbs_[i] << bit_shift;
        if (bit_shift != 0) {
            out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
        }
    }
    out.normalize();
    return out;
}

BigUint operator>>(const BigUint& a, std::size_t bits) {
    const std::size_t limb_shift = bits / 64;
    if (limb_shift >= a.limbs_.size()) return BigUint{};
    const std::size_t bit_shift = bits % 64;
    BigUint out;
    out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        out.limbs_[i] = a.limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
            out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
        }
    }
    out.normalize();
    return out;
}

BigUint BigUint::mod(const BigUint& m) const { return divmod(m).remainder; }

BigUintDivMod BigUint::divmod(const BigUint& divisor) const {
    if (divisor.is_zero()) throw std::domain_error("BigUint divide by zero");
    if (*this < divisor) return {BigUint{}, *this};

    const std::size_t total_bits = bit_length();
    BigUint quotient;
    quotient.limbs_.assign((total_bits + 63) / 64, 0);
    BigUint remainder;
    remainder.limbs_.reserve(divisor.limbs_.size() + 1);

    for (std::size_t i = total_bits; i-- > 0;) {
        // remainder = (remainder << 1) | bit(i), in place.
        u64 carry = bit(i) ? 1 : 0;
        for (auto& limb : remainder.limbs_) {
            const u64 next_carry = limb >> 63;
            limb = (limb << 1) | carry;
            carry = next_carry;
        }
        if (carry) remainder.limbs_.push_back(carry);

        if (remainder >= divisor) {
            remainder = remainder - divisor;
            quotient.limbs_[i / 64] |= (u64{1} << (i % 64));
        }
    }
    quotient.normalize();
    remainder.normalize();
    return {std::move(quotient), std::move(remainder)};
}

BigUint mod_inverse(const BigUint& a, const BigUint& m) {
    // Extended Euclid with sign tracking on the Bezout coefficient for `a`.
    BigUint old_r = m;
    BigUint r = a.mod(m);
    BigUint old_t{};  // coefficient of a producing old_r
    bool old_t_neg = false;
    BigUint t{1};
    bool t_neg = false;

    while (!r.is_zero()) {
        const auto [q, rem] = old_r.divmod(r);
        old_r = r;
        r = rem;

        // new_t = old_t - q * t (signed)
        const BigUint qt = q * t;
        BigUint new_t;
        bool new_t_neg;
        if (old_t_neg == t_neg) {
            // same sign: old_t - q*t may flip sign
            if (old_t >= qt) {
                new_t = old_t - qt;
                new_t_neg = old_t_neg;
            } else {
                new_t = qt - old_t;
                new_t_neg = !old_t_neg;
            }
        } else {
            new_t = old_t + qt;
            new_t_neg = old_t_neg;
        }
        old_t = t;
        old_t_neg = t_neg;
        t = std::move(new_t);
        t_neg = new_t_neg;
    }

    if (!(old_r == BigUint{1})) throw std::domain_error("mod_inverse: not coprime");
    BigUint result = old_t.mod(m);
    if (old_t_neg && !result.is_zero()) result = m - result;
    return result;
}

// ---------------------------------------------------------------------------
// Montgomery
// ---------------------------------------------------------------------------

Montgomery::Montgomery(BigUint modulus) : n_(std::move(modulus)) {
    if (!n_.is_odd() || n_ <= BigUint{1}) {
        throw std::domain_error("Montgomery: modulus must be odd and > 1");
    }
    const std::size_t k = n_.limb_count();
    n_limbs_.resize(k);
    for (std::size_t i = 0; i < k; ++i) n_limbs_[i] = n_.limb(i);

    // n0inv = -n^{-1} mod 2^64 via Newton iteration.
    u64 inv = 1;
    const u64 n0 = n_limbs_[0];
    for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;
    n0inv_ = ~inv + 1;  // negate mod 2^64

    const BigUint r = BigUint{1} << (64 * k);
    r1_ = to_limbs(r.mod(n_));
    r2_ = to_limbs((r * r).mod(n_));
}

Montgomery::Limbs Montgomery::to_limbs(const BigUint& v) const {
    Limbs out(n_.limb_count(), 0);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = v.limb(i);
    return out;
}

BigUint Montgomery::from_limbs(const Limbs& v) const {
    Bytes be(v.size() * 8, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
        for (std::size_t b = 0; b < 8; ++b) {
            be[be.size() - 1 - (i * 8 + b)] = static_cast<std::uint8_t>(v[i] >> (8 * b));
        }
    }
    return BigUint::from_bytes_be(be);
}

Montgomery::Limbs Montgomery::mont_mul(const Limbs& a, const Limbs& b) const {
    const std::size_t k = n_limbs_.size();
    Limbs t(k + 2, 0);

    for (std::size_t i = 0; i < k; ++i) {
        // t += a[i] * b
        u64 carry = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const u128 cur = static_cast<u128>(t[j]) + static_cast<u128>(a[i]) * b[j] + carry;
            t[j] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        u128 cur = static_cast<u128>(t[k]) + carry;
        t[k] = static_cast<u64>(cur);
        t[k + 1] = static_cast<u64>(cur >> 64);

        // reduce: add m * n where m makes t[0] vanish, then shift down one limb
        const u64 m = t[0] * n0inv_;
        cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_limbs_[0];
        carry = static_cast<u64>(cur >> 64);
        for (std::size_t j = 1; j < k; ++j) {
            cur = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_limbs_[j] + carry;
            t[j - 1] = static_cast<u64>(cur);
            carry = static_cast<u64>(cur >> 64);
        }
        cur = static_cast<u128>(t[k]) + carry;
        t[k - 1] = static_cast<u64>(cur);
        t[k] = t[k + 1] + static_cast<u64>(cur >> 64);
        t[k + 1] = 0;
    }

    // Conditional final subtraction: result may be in [0, 2n).
    bool ge = t[k] != 0;
    if (!ge) {
        ge = true;
        for (std::size_t i = k; i-- > 0;) {
            if (t[i] != n_limbs_[i]) {
                ge = t[i] > n_limbs_[i];
                break;
            }
        }
    }
    Limbs out(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k));
    if (ge) {
        u64 borrow = 0;
        for (std::size_t i = 0; i < k; ++i) {
            const u64 d1 = out[i] - n_limbs_[i];
            const u64 b1 = out[i] < n_limbs_[i];
            const u64 d2 = d1 - borrow;
            const u64 b2 = d1 < borrow;
            out[i] = d2;
            borrow = b1 | b2;
        }
    }
    return out;
}

BigUint Montgomery::modexp(const BigUint& base, const BigUint& exponent) const {
    const BigUint b = base.mod(n_);
    if (exponent.is_zero()) return BigUint{1}.mod(n_);

    Limbs acc = r1_;                              // 1 in Montgomery form
    const Limbs bm = mont_mul(to_limbs(b), r2_);  // base in Montgomery form

    for (std::size_t i = exponent.bit_length(); i-- > 0;) {
        acc = mont_mul(acc, acc);
        if (exponent.bit(i)) acc = mont_mul(acc, bm);
    }

    // Convert out of Montgomery form: multiply by 1.
    Limbs one(n_limbs_.size(), 0);
    one[0] = 1;
    return from_limbs(mont_mul(acc, one));
}

BigUint Montgomery::modmul(const BigUint& a, const BigUint& b) const {
    const Limbs am = mont_mul(to_limbs(a.mod(n_)), r2_);
    const Limbs bm = mont_mul(to_limbs(b.mod(n_)), r2_);
    const Limbs prod = mont_mul(am, bm);
    Limbs one(n_limbs_.size(), 0);
    one[0] = 1;
    return from_limbs(mont_mul(prod, one));
}

}  // namespace failsig::crypto
