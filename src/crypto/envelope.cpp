#include "crypto/envelope.hpp"

namespace failsig::crypto {

Bytes SignedEnvelope::signed_region(std::size_t index) const {
    ByteWriter w;
    w.bytes(payload_);
    w.u32(static_cast<std::uint32_t>(index));
    for (std::size_t i = 0; i < index; ++i) {
        w.str(signatures_[i].principal);
        w.bytes(signatures_[i].signature);
    }
    return w.take();
}

void SignedEnvelope::add_signature(const Signer& signer) {
    const Bytes region = signed_region(signatures_.size());
    signatures_.push_back(SignatureBlock{signer.principal(), signer.sign(region)});
}

bool SignedEnvelope::verify_chain(const KeyService& keys) const {
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
        const auto& block = signatures_[i];
        if (!keys.has_principal(block.principal)) return false;
        const Bytes region = signed_region(i);
        if (!keys.verifier(block.principal).verify(region, block.signature)) return false;
    }
    return true;
}

bool SignedEnvelope::is_valid_double_signed(const KeyService& keys, const std::string& a,
                                            const std::string& b) const {
    if (signatures_.size() != 2) return false;
    const auto& first = signatures_[0].principal;
    const auto& second = signatures_[1].principal;
    const bool order_ok = (first == a && second == b) || (first == b && second == a);
    return order_ok && verify_chain(keys);
}

Bytes SignedEnvelope::encode() const {
    ByteWriter w;
    w.bytes(payload_);
    w.u32(static_cast<std::uint32_t>(signatures_.size()));
    for (const auto& block : signatures_) {
        w.str(block.principal);
        w.bytes(block.signature);
    }
    return w.take();
}

Result<SignedEnvelope> SignedEnvelope::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        SignedEnvelope env(r.bytes());
        const auto count = r.u32();
        if (count > 16) return Result<SignedEnvelope>::err("implausible signature count");
        for (std::uint32_t i = 0; i < count; ++i) {
            SignatureBlock block;
            block.principal = r.str();
            block.signature = r.bytes();
            env.signatures_.push_back(std::move(block));
        }
        if (!r.done()) return Result<SignedEnvelope>::err("trailing bytes in envelope");
        return env;
    } catch (const std::out_of_range&) {
        return Result<SignedEnvelope>::err("truncated envelope");
    }
}

}  // namespace failsig::crypto
