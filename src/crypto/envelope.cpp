#include "crypto/envelope.hpp"

namespace failsig::crypto {

namespace {
/// Offset of the patched u32 index field: right after bytes(payload).
std::size_t index_offset(const Bytes& payload) { return 4 + payload.size(); }
}  // namespace

void SignedEnvelope::ensure_scratch() const {
    if (scratch_.empty()) {
        ByteWriter w;
        w.reserve(index_offset(payload_) + 4);
        w.bytes(payload_);
        w.u32(0);  // placeholder for the region index, patched per view
        scratch_ = w.take();
    }
    // Append any signature blocks not yet materialized (new signatures, or
    // an envelope freshly built by decode()).
    while (scratch_end_.size() < signatures_.size()) {
        const auto& block = signatures_[scratch_end_.size()];
        ByteWriter w(std::move(scratch_));
        w.reserve(w.size() + 8 + block.principal.size() + block.signature.size());
        w.str(block.principal);
        w.bytes(block.signature);
        scratch_ = w.take();
        scratch_end_.push_back(scratch_.size());
    }
}

std::span<const std::uint8_t> SignedEnvelope::region_view(std::size_t index) const {
    ensure_scratch();
    const std::size_t pos = index_offset(payload_);
    for (std::size_t i = 0; i < 4; ++i) {
        scratch_[pos + i] = static_cast<std::uint8_t>(index >> (8 * i));
    }
    const std::size_t len = index == 0 ? pos + 4 : scratch_end_[index - 1];
    return std::span<const std::uint8_t>(scratch_).first(len);
}

void SignedEnvelope::add_signature(const Signer& signer) {
    const auto region = region_view(signatures_.size());
    signatures_.push_back(SignatureBlock{signer.principal(), signer.sign(region)});
}

bool SignedEnvelope::verify_chain(const KeyService& keys) const {
    for (std::size_t i = 0; i < signatures_.size(); ++i) {
        const auto& block = signatures_[i];
        if (!keys.has_principal(block.principal)) return false;
        if (!keys.verify_cached(block.principal, region_view(i), block.signature)) return false;
    }
    return true;
}

bool SignedEnvelope::is_valid_double_signed(const KeyService& keys, const std::string& a,
                                            const std::string& b) const {
    if (signatures_.size() != 2) return false;
    const auto& first = signatures_[0].principal;
    const auto& second = signatures_[1].principal;
    const bool order_ok = (first == a && second == b) || (first == b && second == a);
    return order_ok && verify_chain(keys);
}

Bytes SignedEnvelope::encode() const {
    ByteWriter w;
    std::size_t size = 8 + payload_.size();
    for (const auto& block : signatures_) {
        size += 8 + block.principal.size() + block.signature.size();
    }
    w.reserve(size);
    w.bytes(payload_);
    w.u32(static_cast<std::uint32_t>(signatures_.size()));
    for (const auto& block : signatures_) {
        w.str(block.principal);
        w.bytes(block.signature);
    }
    return w.take();
}

Result<SignedEnvelope> SignedEnvelope::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        SignedEnvelope env(r.bytes());
        const auto count = r.u32();
        if (count > 16) return Result<SignedEnvelope>::err("implausible signature count");
        for (std::uint32_t i = 0; i < count; ++i) {
            SignatureBlock block;
            block.principal = r.str();
            block.signature = r.bytes();
            env.signatures_.push_back(std::move(block));
        }
        if (!r.done()) return Result<SignedEnvelope>::err("trailing bytes in envelope");
        return env;
    } catch (const std::out_of_range&) {
        return Result<SignedEnvelope>::err("truncated envelope");
    }
}

}  // namespace failsig::crypto
