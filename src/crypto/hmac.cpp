#include "crypto/hmac.hpp"

#include "crypto/md5.hpp"
#include "crypto/sha256.hpp"

namespace failsig::crypto {

namespace {

template <typename Hasher>
Bytes hmac(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
    constexpr std::size_t kBlock = 64;  // both MD5 and SHA-256 use 64-byte blocks

    Bytes k(kBlock, 0);
    if (key.size() > kBlock) {
        const auto kd = Hasher::hash(key);
        std::copy(kd.begin(), kd.end(), k.begin());
    } else {
        std::copy(key.begin(), key.end(), k.begin());
    }

    Bytes ipad(kBlock), opad(kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) {
        ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }

    Hasher inner;
    inner.update(ipad);
    inner.update(data);
    const auto inner_digest = inner.finish();

    Hasher outer;
    outer.update(opad);
    outer.update(std::span(inner_digest.data(), inner_digest.size()));
    const auto tag = outer.finish();
    return Bytes(tag.begin(), tag.end());
}

}  // namespace

Bytes hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
    return hmac<Sha256>(key, data);
}

Bytes hmac_md5(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
    return hmac<Md5>(key, data);
}

}  // namespace failsig::crypto
