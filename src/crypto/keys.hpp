// Principal key management: maps named principals (e.g. "FSO:3", "GC:1") to
// signing and verification capabilities — assumption A5 of the paper
// ("a process of a correct node can sign the messages it sends and the signed
// message cannot be generated nor undetectably altered by ... another node").
//
// Two backends:
//  * kRsa  — real RSA signatures (the paper's scheme); slower, used by the
//            crypto benchmarks and when fidelity matters more than speed.
//  * kHmac — HMAC-SHA256 tags under per-principal secrets; fast, with real
//            tamper detection, used inside large simulated deployments where
//            RSA's CPU cost is charged in *simulated* time by the cost model.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/rsa.hpp"

namespace failsig::crypto {

/// Signs messages on behalf of one principal.
class Signer {
public:
    virtual ~Signer() = default;
    [[nodiscard]] virtual Bytes sign(std::span<const std::uint8_t> message) const = 0;
    [[nodiscard]] virtual const std::string& principal() const = 0;
};

/// Verifies signatures attributed to one principal.
class Verifier {
public:
    virtual ~Verifier() = default;
    [[nodiscard]] virtual bool verify(std::span<const std::uint8_t> message,
                                      std::span<const std::uint8_t> signature) const = 0;
};

/// Registry of principals and their keys.
class KeyService {
public:
    enum class Backend { kRsa, kHmac };

    /// `rsa_bits` only applies to the kRsa backend; `seed` makes key material
    /// reproducible.
    explicit KeyService(Backend backend, std::size_t rsa_bits = 512,
                        std::uint64_t seed = 0x5eedf00d);

    /// Creates keys for `name`; idempotent.
    void register_principal(const std::string& name);

    /// Regenerates `name`'s key material (epoch change / compromise) and
    /// drops every memoized verify verdict for the principal — a signature
    /// that verified under the old key must be re-checked under the new one.
    void rotate_principal(const std::string& name);

    /// Registers a pairwise HMAC session key shared by exactly {a, b},
    /// under `link_principal(a, b)` — the paper's MAC-authenticator
    /// trade-off: point-to-point traffic that needs no third-party
    /// verification can be authenticated at symmetric-crypto cost even when
    /// the backend signs everything else with RSA. Idempotent.
    void register_link(const std::string& a, const std::string& b);
    [[nodiscard]] static std::string link_principal(const std::string& a, const std::string& b);

    /// Throws std::out_of_range for unknown principals.
    [[nodiscard]] const Signer& signer(const std::string& name) const;
    [[nodiscard]] const Verifier& verifier(const std::string& name) const;
    [[nodiscard]] bool has_principal(const std::string& name) const;

    /// Verifies through a digest-keyed memo: a (principal, message,
    /// signature) triple that already verified costs one hash instead of a
    /// public-key operation. This is what makes relaying a double-signed
    /// envelope O(1) RSA verifies per (principal, digest) across all hops.
    [[nodiscard]] bool verify_cached(const std::string& name,
                                     std::span<const std::uint8_t> message,
                                     std::span<const std::uint8_t> signature) const;

    [[nodiscard]] Backend backend() const { return backend_; }

    /// Real verifier invocations (memo misses) and memo hits, for the
    /// perf-regression bench.
    [[nodiscard]] std::uint64_t verify_ops() const { return verify_ops_; }
    [[nodiscard]] std::uint64_t verify_cache_hits() const { return verify_cache_hits_; }

private:
    struct Entry {
        std::unique_ptr<Signer> signer;
        std::unique_ptr<Verifier> verifier;
    };

    void make_entry(const std::string& name);

    Backend backend_;
    std::size_t rsa_bits_;
    Rng rng_;
    std::unordered_map<std::string, Entry> entries_;
    /// principal -> digest(message, signature) -> verdict.
    mutable std::unordered_map<std::string, std::unordered_map<std::string, bool>> memo_;
    mutable std::uint64_t verify_ops_{0};
    mutable std::uint64_t verify_cache_hits_{0};
};

}  // namespace failsig::crypto
