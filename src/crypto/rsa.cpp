#include "crypto/rsa.hpp"

#include <stdexcept>

#include "crypto/md5.hpp"
#include "crypto/sha256.hpp"

namespace failsig::crypto {

namespace {

// Small primes for fast trial division before Miller-Rabin.
constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347};

BigUint random_bits(std::size_t bits, Rng& rng) {
    Bytes bytes((bits + 7) / 8, 0);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    // Clear excess bits, set the top bit so the value has exactly `bits` bits.
    const std::size_t excess = bytes.size() * 8 - bits;
    bytes[0] = static_cast<std::uint8_t>(bytes[0] & (0xff >> excess));
    bytes[0] |= static_cast<std::uint8_t>(0x80 >> excess);
    return BigUint::from_bytes_be(bytes);
}

BigUint random_prime(std::size_t bits, Rng& rng) {
    for (;;) {
        BigUint candidate = random_bits(bits, rng);
        // Force odd and set the second-highest bit so that p*q has full width.
        if (!candidate.is_odd()) candidate = candidate + BigUint{1};
        if (bits >= 2) {
            candidate = candidate + (BigUint{1} << (bits - 2));
            if (candidate.bit_length() > bits) continue;  // rare carry overflow
        }
        if (!candidate.is_odd()) candidate = candidate + BigUint{1};
        if (is_probable_prime(candidate, rng)) return candidate;
    }
}

Bytes digest_of(DigestAlgorithm algo, std::span<const std::uint8_t> message) {
    switch (algo) {
        case DigestAlgorithm::kMd5: return md5(message);
        case DigestAlgorithm::kSha256: return sha256(message);
    }
    throw std::invalid_argument("unknown digest algorithm");
}

// EMSA-PKCS1-v1.5-like encoding:
//   0x00 0x01 FF..FF 0x00 <algo tag byte> <digest>
Bytes emsa_encode(DigestAlgorithm algo, std::span<const std::uint8_t> digest,
                  std::size_t em_len) {
    const std::size_t overhead = 3 + 1;  // 00 01 .. 00 + tag
    if (em_len < digest.size() + overhead + 8) {
        throw std::invalid_argument("RSA modulus too small for digest");
    }
    Bytes em(em_len, 0xff);
    em[0] = 0x00;
    em[1] = 0x01;
    const std::size_t digest_start = em_len - digest.size();
    em[digest_start - 2] = 0x00;
    em[digest_start - 1] = static_cast<std::uint8_t>(algo);
    std::copy(digest.begin(), digest.end(), em.begin() + static_cast<std::ptrdiff_t>(digest_start));
    return em;
}

}  // namespace

bool is_probable_prime(const BigUint& n, Rng& rng, int rounds) {
    if (n < BigUint{2}) return false;
    if (n == BigUint{2} || n == BigUint{3}) return true;
    if (!n.is_odd()) return false;

    for (const auto p : kSmallPrimes) {
        const BigUint bp{p};
        if (n == bp) return true;
        if (n.mod(bp).is_zero()) return false;
    }

    // Write n-1 = d * 2^r with d odd.
    const BigUint n_minus_1 = n - BigUint{1};
    BigUint d = n_minus_1;
    std::size_t r = 0;
    while (!d.is_odd()) {
        d = d >> 1;
        ++r;
    }

    const Montgomery mont(n);
    const BigUint n_minus_2 = n - BigUint{2};

    for (int round = 0; round < rounds; ++round) {
        // witness a in [2, n-2]
        BigUint a;
        do {
            a = random_bits(n.bit_length() - 1, rng);
        } while (a < BigUint{2} || a > n_minus_2);

        BigUint x = mont.modexp(a, d);
        if (x == BigUint{1} || x == n_minus_1) continue;

        bool composite = true;
        for (std::size_t i = 0; i + 1 < r; ++i) {
            x = mont.modmul(x, x);
            if (x == n_minus_1) {
                composite = false;
                break;
            }
        }
        if (composite) return false;
    }
    return true;
}

RsaKeyPair rsa_generate(std::size_t bits, Rng& rng) {
    if (bits < 256) throw std::invalid_argument("rsa_generate: need >= 256 bits");
    const BigUint e{65537};

    for (;;) {
        const std::size_t p_bits = bits / 2;
        const std::size_t q_bits = bits - p_bits;
        const BigUint p = random_prime(p_bits, rng);
        BigUint q = random_prime(q_bits, rng);
        if (p == q) continue;

        const BigUint n = p * q;
        if (n.bit_length() != bits) continue;

        const BigUint p1 = p - BigUint{1};
        const BigUint q1 = q - BigUint{1};
        const BigUint phi = p1 * q1;

        BigUint d;
        try {
            d = mod_inverse(e, phi);
        } catch (const std::domain_error&) {
            continue;  // gcd(e, phi) != 1; re-draw primes
        }

        RsaPrivateKey priv;
        priv.n = n;
        priv.e = e;
        priv.d = d;
        priv.p = p;
        priv.q = q;
        priv.dp = d.mod(p1);
        priv.dq = d.mod(q1);
        priv.qinv = mod_inverse(q, p);
        priv.bits = bits;

        RsaPublicKey pub;
        pub.n = n;
        pub.e = e;
        pub.bits = bits;

        return RsaKeyPair{std::move(pub), std::move(priv)};
    }
}

Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> message,
               DigestAlgorithm digest) {
    const Bytes dg = digest_of(digest, message);
    const Bytes em = emsa_encode(digest, dg, key.byte_size());
    const BigUint m = BigUint::from_bytes_be(em);
    if (m >= key.n) throw std::invalid_argument("rsa_sign: message representative too large");

    // CRT: s1 = m^dp mod p, s2 = m^dq mod q, h = qinv (s1 - s2) mod p,
    // s = s2 + h q.
    const Montgomery mp(key.p);
    const Montgomery mq(key.q);
    const BigUint s1 = mp.modexp(m, key.dp);
    const BigUint s2 = mq.modexp(m, key.dq);

    const BigUint s1p = s1.mod(key.p);
    const BigUint s2p = s2.mod(key.p);
    const BigUint diff = (s1p >= s2p) ? (s1p - s2p) : (key.p - (s2p - s1p));
    const BigUint h = mp.modmul(key.qinv, diff);
    const BigUint s = s2 + h * key.q;

    return s.to_bytes_be(key.byte_size());
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature, DigestAlgorithm digest) {
    if (signature.size() != key.byte_size()) return false;
    const BigUint s = BigUint::from_bytes_be(signature);
    if (s >= key.n) return false;

    const Montgomery mont(key.n);
    const BigUint m = mont.modexp(s, key.e);
    const Bytes em = m.to_bytes_be(key.byte_size());

    const Bytes dg = digest_of(digest, message);
    Bytes expected;
    try {
        expected = emsa_encode(digest, dg, key.byte_size());
    } catch (const std::invalid_argument&) {
        return false;
    }
    return constant_time_equal(em, expected);
}

}  // namespace failsig::crypto
