// Arbitrary-precision unsigned integers and Montgomery modular arithmetic.
//
// This is the arithmetic substrate for the RSA implementation (the paper's
// signature scheme). It is deliberately small: schoolbook multiplication,
// binary long division (rare operations: key generation and padding
// reduction), and CIOS Montgomery multiplication for the hot modexp path.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace failsig::crypto {

class BigUint;

/// Quotient/remainder pair returned by BigUint::divmod.
struct BigUintDivMod;

/// Unsigned big integer, little-endian 64-bit limbs, always normalized
/// (no trailing zero limbs; zero is the empty limb vector).
class BigUint {
public:
    BigUint() = default;
    explicit BigUint(std::uint64_t v);

    static BigUint from_bytes_be(std::span<const std::uint8_t> data);
    static BigUint from_hex(std::string_view hex);

    /// Big-endian bytes, left-padded with zeros to at least `min_size`.
    [[nodiscard]] Bytes to_bytes_be(std::size_t min_size = 0) const;
    [[nodiscard]] std::string to_hex() const;

    [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
    [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
    [[nodiscard]] std::size_t bit_length() const;
    [[nodiscard]] bool bit(std::size_t i) const;
    [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }
    [[nodiscard]] std::uint64_t limb(std::size_t i) const {
        return i < limbs_.size() ? limbs_[i] : 0;
    }
    [[nodiscard]] std::uint64_t low_u64() const { return limb(0); }

    friend bool operator==(const BigUint& a, const BigUint& b) { return a.limbs_ == b.limbs_; }
    friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b);

    friend BigUint operator+(const BigUint& a, const BigUint& b);
    /// Requires a >= b; throws std::underflow_error otherwise.
    friend BigUint operator-(const BigUint& a, const BigUint& b);
    friend BigUint operator*(const BigUint& a, const BigUint& b);
    friend BigUint operator<<(const BigUint& a, std::size_t bits);
    friend BigUint operator>>(const BigUint& a, std::size_t bits);

    /// Long division; throws std::domain_error on divide-by-zero.
    [[nodiscard]] BigUintDivMod divmod(const BigUint& divisor) const;
    [[nodiscard]] BigUint mod(const BigUint& m) const;

private:
    void normalize();

    std::vector<std::uint64_t> limbs_;
};

struct BigUintDivMod {
    BigUint quotient;
    BigUint remainder;
};

/// Modular inverse of `a` modulo `m` (extended Euclid).
/// Throws std::domain_error when gcd(a, m) != 1.
BigUint mod_inverse(const BigUint& a, const BigUint& m);

/// Montgomery context for a fixed odd modulus; provides fast modexp.
class Montgomery {
public:
    /// `modulus` must be odd and > 1; throws std::domain_error otherwise.
    explicit Montgomery(BigUint modulus);

    [[nodiscard]] const BigUint& modulus() const { return n_; }

    /// (base ^ exponent) mod modulus.
    [[nodiscard]] BigUint modexp(const BigUint& base, const BigUint& exponent) const;

    /// (a * b) mod modulus — via Montgomery domain round-trip.
    [[nodiscard]] BigUint modmul(const BigUint& a, const BigUint& b) const;

private:
    using Limbs = std::vector<std::uint64_t>;

    [[nodiscard]] Limbs to_limbs(const BigUint& v) const;
    [[nodiscard]] BigUint from_limbs(const Limbs& v) const;
    /// CIOS Montgomery product: returns (a * b * R^-1) mod n.
    [[nodiscard]] Limbs mont_mul(const Limbs& a, const Limbs& b) const;

    BigUint n_;
    Limbs n_limbs_;
    std::uint64_t n0inv_{0};  // -n^{-1} mod 2^64
    Limbs r1_;                // R mod n (Montgomery form of 1)
    Limbs r2_;                // R^2 mod n
};

}  // namespace failsig::crypto
