#include "crypto/md5.hpp"

#include <cmath>
#include <cstring>

namespace failsig::crypto {

namespace {

// Per-round left-rotate amounts (RFC 1321).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|), computed once at start-up; this matches
// the RFC table and avoids transcription errors.
const std::array<std::uint32_t, 64>& k_table() {
    static const std::array<std::uint32_t, 64> table = [] {
        std::array<std::uint32_t, 64> t{};
        for (int i = 0; i < 64; ++i) {
            t[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(
                std::floor(std::abs(std::sin(static_cast<double>(i) + 1.0)) * 4294967296.0));
        }
        return t;
    }();
    return table;
}

std::uint32_t rotl(std::uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

}  // namespace

Md5::Md5() { reset(); }

void Md5::reset() {
    state_[0] = 0x67452301u;
    state_[1] = 0xefcdab89u;
    state_[2] = 0x98badcfeu;
    state_[3] = 0x10325476u;
    total_len_ = 0;
    buffer_len_ = 0;
}

void Md5::update(std::span<const std::uint8_t> data) {
    total_len_ += data.size();
    std::size_t offset = 0;
    if (buffer_len_ > 0) {
        const std::size_t need = 64 - buffer_len_;
        const std::size_t take = std::min(need, data.size());
        std::memcpy(buffer_ + buffer_len_, data.data(), take);
        buffer_len_ += take;
        offset = take;
        if (buffer_len_ == 64) {
            process_block(buffer_);
            buffer_len_ = 0;
        }
    }
    while (offset + 64 <= data.size()) {
        process_block(data.data() + offset);
        offset += 64;
    }
    if (offset < data.size()) {
        std::memcpy(buffer_, data.data() + offset, data.size() - offset);
        buffer_len_ = data.size() - offset;
    }
}

std::array<std::uint8_t, Md5::kDigestSize> Md5::finish() {
    const std::uint64_t bit_len = total_len_ * 8;
    const std::uint8_t pad_byte = 0x80;
    update(std::span(&pad_byte, 1));
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) update(std::span(&zero, 1));
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
    // The length bytes were counted by update(); that is harmless because the
    // digest only depends on total_len_ captured above.
    update(std::span(len_bytes, 8));

    std::array<std::uint8_t, kDigestSize> out{};
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            out[static_cast<std::size_t>(i * 4 + j)] =
                static_cast<std::uint8_t>(state_[i] >> (8 * j));
        }
    }
    return out;
}

void Md5::process_block(const std::uint8_t* block) {
    std::uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
        m[i] = static_cast<std::uint32_t>(block[i * 4]) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 8) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 3]) << 24);
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    const auto& k = k_table();

    for (int i = 0; i < 64; ++i) {
        std::uint32_t f;
        int g;
        if (i < 16) {
            f = (b & c) | (~b & d);
            g = i;
        } else if (i < 32) {
            f = (d & b) | (~d & c);
            g = (5 * i + 1) % 16;
        } else if (i < 48) {
            f = b ^ c ^ d;
            g = (3 * i + 5) % 16;
        } else {
            f = c ^ (b | ~d);
            g = (7 * i) % 16;
        }
        const std::uint32_t tmp = d;
        d = c;
        c = b;
        b = b + rotl(a + f + k[static_cast<std::size_t>(i)] + m[g], kShift[i]);
        a = tmp;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
}

std::array<std::uint8_t, Md5::kDigestSize> Md5::hash(std::span<const std::uint8_t> data) {
    Md5 h;
    h.update(data);
    return h.finish();
}

Bytes md5(std::span<const std::uint8_t> data) {
    const auto d = Md5::hash(data);
    return Bytes(d.begin(), d.end());
}

}  // namespace failsig::crypto
