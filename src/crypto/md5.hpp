// MD5 message digest (RFC 1321).
//
// The paper's FS-NewTOP signs middleware outputs with "MD5 using RSA
// encryption" (Java's MD5withRSA). We implement the same digest from scratch
// so the signature path exercised by the benchmarks is real work, not a stub.
// MD5 is cryptographically broken for collision resistance; it is kept for
// fidelity to the paper, and SHA-256 is provided as the modern alternative.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace failsig::crypto {

/// Incremental MD5 hasher.
class Md5 {
public:
    static constexpr std::size_t kDigestSize = 16;

    Md5();

    /// Absorbs more input.
    void update(std::span<const std::uint8_t> data);

    /// Finalizes and returns the 16-byte digest. The hasher must not be
    /// reused afterwards without calling reset().
    std::array<std::uint8_t, kDigestSize> finish();

    void reset();

    /// One-shot convenience.
    static std::array<std::uint8_t, kDigestSize> hash(std::span<const std::uint8_t> data);

private:
    void process_block(const std::uint8_t* block);

    std::uint32_t state_[4];
    std::uint64_t total_len_{0};
    std::uint8_t buffer_[64];
    std::size_t buffer_len_{0};
};

/// One-shot MD5 digest as Bytes.
Bytes md5(std::span<const std::uint8_t> data);

}  // namespace failsig::crypto
