// SHA-256 (FIPS 180-4). Modern digest used by HMAC authentication and as the
// recommended alternative to the paper's MD5.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace failsig::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
public:
    static constexpr std::size_t kDigestSize = 32;

    Sha256();

    void update(std::span<const std::uint8_t> data);
    std::array<std::uint8_t, kDigestSize> finish();
    void reset();

    static std::array<std::uint8_t, kDigestSize> hash(std::span<const std::uint8_t> data);

private:
    void process_block(const std::uint8_t* block);

    std::uint32_t state_[8];
    std::uint64_t total_len_{0};
    std::uint8_t buffer_[64];
    std::size_t buffer_len_{0};
};

/// One-shot SHA-256 digest as Bytes.
Bytes sha256(std::span<const std::uint8_t> data);

}  // namespace failsig::crypto
