#include "crypto/sha256.hpp"

#include <cmath>
#include <cstring>

namespace failsig::crypto {

namespace {

// Round constants: first 32 bits of the fractional parts of the cube roots of
// the first 64 primes; initial state: fractional parts of the square roots of
// the first 8 primes. Generated at start-up from the definition to avoid
// transcription errors; verified against FIPS test vectors in the test suite.
const std::uint32_t* primes64() {
    static const auto table = [] {
        std::array<std::uint32_t, 64> p{};
        std::uint32_t count = 0;
        for (std::uint32_t n = 2; count < 64; ++n) {
            bool prime = true;
            for (std::uint32_t d = 2; d * d <= n; ++d) {
                if (n % d == 0) {
                    prime = false;
                    break;
                }
            }
            if (prime) p[count++] = n;
        }
        return p;
    }();
    return table.data();
}

std::uint32_t frac_bits(long double v) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint64_t>((v - std::floor(v)) * 4294967296.0L));
}

const std::array<std::uint32_t, 64>& k_table() {
    static const auto table = [] {
        std::array<std::uint32_t, 64> k{};
        for (int i = 0; i < 64; ++i) {
            k[static_cast<std::size_t>(i)] =
                frac_bits(std::cbrt(static_cast<long double>(primes64()[i])));
        }
        return k;
    }();
    return table;
}

const std::array<std::uint32_t, 8>& h_init() {
    static const auto table = [] {
        std::array<std::uint32_t, 8> h{};
        for (int i = 0; i < 8; ++i) {
            h[static_cast<std::size_t>(i)] =
                frac_bits(std::sqrt(static_cast<long double>(primes64()[i])));
        }
        return h;
    }();
    return table;
}

std::uint32_t rotr(std::uint32_t x, int c) { return (x >> c) | (x << (32 - c)); }

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
    const auto& h = h_init();
    for (int i = 0; i < 8; ++i) state_[i] = h[static_cast<std::size_t>(i)];
    total_len_ = 0;
    buffer_len_ = 0;
}

void Sha256::update(std::span<const std::uint8_t> data) {
    total_len_ += data.size();
    std::size_t offset = 0;
    if (buffer_len_ > 0) {
        const std::size_t take = std::min(64 - buffer_len_, data.size());
        std::memcpy(buffer_ + buffer_len_, data.data(), take);
        buffer_len_ += take;
        offset = take;
        if (buffer_len_ == 64) {
            process_block(buffer_);
            buffer_len_ = 0;
        }
    }
    while (offset + 64 <= data.size()) {
        process_block(data.data() + offset);
        offset += 64;
    }
    if (offset < data.size()) {
        std::memcpy(buffer_, data.data() + offset, data.size() - offset);
        buffer_len_ = data.size() - offset;
    }
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::finish() {
    const std::uint64_t bit_len = total_len_ * 8;
    const std::uint8_t pad_byte = 0x80;
    update(std::span(&pad_byte, 1));
    const std::uint8_t zero = 0x00;
    while (buffer_len_ != 56) update(std::span(&zero, 1));
    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
        len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));  // big-endian
    }
    update(std::span(len_bytes, 8));

    std::array<std::uint8_t, kDigestSize> out{};
    for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 4; ++j) {
            out[static_cast<std::size_t>(i * 4 + j)] =
                static_cast<std::uint8_t>(state_[i] >> (8 * (3 - j)));
        }
    }
    return out;
}

void Sha256::process_block(const std::uint8_t* block) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
        const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    const auto& k = k_table();

    for (int i = 0; i < 64; ++i) {
        const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        const std::uint32_t ch = (e & f) ^ (~e & g);
        const std::uint32_t t1 = h + s1 + ch + k[static_cast<std::size_t>(i)] + w[i];
        const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

std::array<std::uint8_t, Sha256::kDigestSize> Sha256::hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finish();
}

Bytes sha256(std::span<const std::uint8_t> data) {
    const auto d = Sha256::hash(data);
    return Bytes(d.begin(), d.end());
}

}  // namespace failsig::crypto
