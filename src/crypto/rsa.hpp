// RSA signatures with PKCS#1-v1.5-style padding over MD5 or SHA-256 digests.
//
// Reproduces the paper's "MD5 using RSA encryption signature algorithm"
// (Java MD5withRSA) from scratch: key generation (Miller-Rabin primes),
// CRT-accelerated signing, and verification. The padding uses a one-byte
// algorithm tag instead of the full ASN.1 DigestInfo — a documented
// simplification that preserves the security-relevant structure (fixed
// padding, unambiguous digest algorithm binding).
#pragma once

#include <cstddef>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/biguint.hpp"

namespace failsig::crypto {

/// Digest algorithm bound into the signature padding.
enum class DigestAlgorithm : std::uint8_t { kMd5 = 1, kSha256 = 2 };

struct RsaPublicKey {
    BigUint n;
    BigUint e;
    std::size_t bits{0};

    [[nodiscard]] std::size_t byte_size() const { return (bits + 7) / 8; }
};

struct RsaPrivateKey {
    BigUint n;
    BigUint e;
    BigUint d;
    // CRT components (p > q convention not required; qinv = q^{-1} mod p).
    BigUint p;
    BigUint q;
    BigUint dp;
    BigUint dq;
    BigUint qinv;
    std::size_t bits{0};

    [[nodiscard]] std::size_t byte_size() const { return (bits + 7) / 8; }
};

struct RsaKeyPair {
    RsaPublicKey pub;
    RsaPrivateKey priv;
};

/// Generates an RSA key pair with modulus of exactly `bits` bits (>= 256)
/// and public exponent 65537. The Rng makes generation reproducible.
RsaKeyPair rsa_generate(std::size_t bits, Rng& rng);

/// Miller-Rabin probabilistic primality test (exposed for testing).
bool is_probable_prime(const BigUint& n, Rng& rng, int rounds = 24);

/// Signs `message` (full message; it is digested internally).
Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> message,
               DigestAlgorithm digest = DigestAlgorithm::kMd5);

/// Verifies a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature,
                DigestAlgorithm digest = DigestAlgorithm::kMd5);

}  // namespace failsig::crypto
