// HMAC (RFC 2104) over SHA-256 or MD5.
//
// Used as the fast message-authentication backend inside simulated
// deployments (where RSA's CPU cost is charged in *simulated* time via the
// cost model) while still providing real tamper detection in tests.
#pragma once

#include <span>

#include "common/bytes.hpp"

namespace failsig::crypto {

/// HMAC-SHA256 of `data` under `key` (32-byte tag).
Bytes hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

/// HMAC-MD5 of `data` under `key` (16-byte tag).
Bytes hmac_md5(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

}  // namespace failsig::crypto
