// Signed message envelopes with ordered signature chains.
//
// The paper's fail-signal construction distinguishes *single-signed* outputs
// (Compare -> Compare' exchange) from *double-signed* outputs (valid FS
// process outputs carry "authentic signatures of both Compare and Compare'
// ... but in different order"). A SignedEnvelope carries the payload plus an
// ordered list of signature blocks, where signature k covers the payload and
// all signature blocks before it — so a countersignature also authenticates
// the first signature, and signature order is verifiable.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"

namespace failsig::crypto {

struct SignatureBlock {
    std::string principal;
    Bytes signature;

    friend bool operator==(const SignatureBlock&, const SignatureBlock&) = default;
};

class SignedEnvelope {
public:
    SignedEnvelope() = default;
    explicit SignedEnvelope(Bytes payload) : payload_(std::move(payload)) {}

    [[nodiscard]] const Bytes& payload() const { return payload_; }
    [[nodiscard]] const std::vector<SignatureBlock>& signatures() const { return signatures_; }

    /// Appends a signature block covering the payload and all prior blocks.
    void add_signature(const Signer& signer);

    /// Verifies every signature block, in order, against the key service.
    /// Returns false if any principal is unknown or any signature is invalid.
    [[nodiscard]] bool verify_chain(const KeyService& keys) const;

    /// True if the envelope carries valid signatures by exactly the two given
    /// principals, in either order — the paper's validity rule for FS
    /// process outputs.
    [[nodiscard]] bool is_valid_double_signed(const KeyService& keys, const std::string& a,
                                              const std::string& b) const;

    [[nodiscard]] Bytes encode() const;
    static Result<SignedEnvelope> decode(std::span<const std::uint8_t> data);

private:
    /// Bytes covered by signature block `index`.
    [[nodiscard]] Bytes signed_region(std::size_t index) const;

    Bytes payload_;
    std::vector<SignatureBlock> signatures_;
};

}  // namespace failsig::crypto
