// Signed message envelopes with ordered signature chains.
//
// The paper's fail-signal construction distinguishes *single-signed* outputs
// (Compare -> Compare' exchange) from *double-signed* outputs (valid FS
// process outputs carry "authentic signatures of both Compare and Compare'
// ... but in different order"). A SignedEnvelope carries the payload plus an
// ordered list of signature blocks, where signature k covers the payload and
// all signature blocks before it — so a countersignature also authenticates
// the first signature, and signature order is verifiable.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/keys.hpp"

namespace failsig::crypto {

struct SignatureBlock {
    std::string principal;
    Bytes signature;

    friend bool operator==(const SignatureBlock&, const SignatureBlock&) = default;
};

class SignedEnvelope {
public:
    SignedEnvelope() = default;
    explicit SignedEnvelope(Bytes payload) : payload_(std::move(payload)) {}

    // Copies drop the signed-region scratch cache (it is a pure
    // acceleration structure the copy would rebuild on first use):
    // envelopes are copied on hot paths (ICMP/ECMP pools, countersign
    // lambdas) far more often than a copy re-verifies. Moves keep it.
    SignedEnvelope(const SignedEnvelope& other)
        : payload_(other.payload_), signatures_(other.signatures_) {}
    SignedEnvelope& operator=(const SignedEnvelope& other) {
        if (this != &other) {
            payload_ = other.payload_;
            signatures_ = other.signatures_;
            scratch_.clear();
            scratch_end_.clear();
        }
        return *this;
    }
    SignedEnvelope(SignedEnvelope&&) = default;
    SignedEnvelope& operator=(SignedEnvelope&&) = default;

    [[nodiscard]] const Bytes& payload() const { return payload_; }
    [[nodiscard]] const std::vector<SignatureBlock>& signatures() const { return signatures_; }

    /// Appends a signature block covering the payload and all prior blocks.
    void add_signature(const Signer& signer);

    /// Verifies every signature block, in order, against the key service.
    /// Returns false if any principal is unknown or any signature is invalid.
    [[nodiscard]] bool verify_chain(const KeyService& keys) const;

    /// True if the envelope carries valid signatures by exactly the two given
    /// principals, in either order — the paper's validity rule for FS
    /// process outputs.
    [[nodiscard]] bool is_valid_double_signed(const KeyService& keys, const std::string& a,
                                              const std::string& b) const;

    [[nodiscard]] Bytes encode() const;
    static Result<SignedEnvelope> decode(std::span<const std::uint8_t> data);

private:
    // Incremental signed-region builder. The region covered by block k is
    //   bytes(payload) ++ u32(k) ++ block_0 ++ ... ++ block_{k-1}
    // — the layout the original per-call serializer produced. Regions are
    // nested prefixes except for the u32(k) in the middle, so one growing
    // scratch buffer serves them all: sign/verify of block k patches the
    // 4 index bytes in place and takes a length-k prefix view, turning the
    // old O(k²) re-serialization into O(1) amortized per operation.
    void ensure_scratch() const;
    [[nodiscard]] std::span<const std::uint8_t> region_view(std::size_t index) const;

    Bytes payload_;
    std::vector<SignatureBlock> signatures_;
    mutable Bytes scratch_;
    /// scratch_ length that covers blocks [0, k) for each k appended so far.
    mutable std::vector<std::size_t> scratch_end_;
};

}  // namespace failsig::crypto
