#include "crypto/keys.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace failsig::crypto {

namespace {

class RsaSigner final : public Signer {
public:
    RsaSigner(std::string principal, RsaPrivateKey key)
        : principal_(std::move(principal)), key_(std::move(key)) {}

    [[nodiscard]] Bytes sign(std::span<const std::uint8_t> message) const override {
        return rsa_sign(key_, message, DigestAlgorithm::kMd5);
    }
    [[nodiscard]] const std::string& principal() const override { return principal_; }

private:
    std::string principal_;
    RsaPrivateKey key_;
};

class RsaVerifier final : public Verifier {
public:
    explicit RsaVerifier(RsaPublicKey key) : key_(std::move(key)) {}

    [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                              std::span<const std::uint8_t> signature) const override {
        return rsa_verify(key_, message, signature, DigestAlgorithm::kMd5);
    }

private:
    RsaPublicKey key_;
};

class HmacSigner final : public Signer {
public:
    HmacSigner(std::string principal, Bytes key)
        : principal_(std::move(principal)), key_(std::move(key)) {}

    [[nodiscard]] Bytes sign(std::span<const std::uint8_t> message) const override {
        return hmac_sha256(key_, message);
    }
    [[nodiscard]] const std::string& principal() const override { return principal_; }

private:
    std::string principal_;
    Bytes key_;
};

class HmacVerifier final : public Verifier {
public:
    explicit HmacVerifier(Bytes key) : key_(std::move(key)) {}

    [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                              std::span<const std::uint8_t> signature) const override {
        const Bytes expected = hmac_sha256(key_, message);
        return constant_time_equal(expected, signature);
    }

private:
    Bytes key_;
};

}  // namespace

KeyService::KeyService(Backend backend, std::size_t rsa_bits, std::uint64_t seed)
    : backend_(backend), rsa_bits_(rsa_bits), rng_(seed) {}

void KeyService::make_entry(const std::string& name) {
    Entry entry;
    if (backend_ == Backend::kRsa) {
        auto kp = rsa_generate(rsa_bits_, rng_);
        entry.signer = std::make_unique<RsaSigner>(name, std::move(kp.priv));
        entry.verifier = std::make_unique<RsaVerifier>(std::move(kp.pub));
    } else {
        Bytes key(32);
        for (auto& b : key) b = static_cast<std::uint8_t>(rng_.next());
        entry.signer = std::make_unique<HmacSigner>(name, key);
        entry.verifier = std::make_unique<HmacVerifier>(key);
    }
    entries_[name] = std::move(entry);
}

void KeyService::register_principal(const std::string& name) {
    if (entries_.contains(name)) return;
    make_entry(name);
}

void KeyService::rotate_principal(const std::string& name) {
    make_entry(name);
    memo_.erase(name);
}

std::string KeyService::link_principal(const std::string& a, const std::string& b) {
    const auto& lo = std::min(a, b);
    const auto& hi = std::max(a, b);
    return "link:" + lo + "|" + hi;
}

void KeyService::register_link(const std::string& a, const std::string& b) {
    const std::string name = link_principal(a, b);
    if (entries_.contains(name)) return;
    // Session keys are symmetric regardless of the signing backend: the MAC
    // trade-off only makes sense against asymmetric per-principal keys.
    Bytes key(32);
    for (auto& kb : key) kb = static_cast<std::uint8_t>(rng_.next());
    Entry entry;
    entry.signer = std::make_unique<HmacSigner>(name, key);
    entry.verifier = std::make_unique<HmacVerifier>(key);
    entries_[name] = std::move(entry);
}

bool KeyService::verify_cached(const std::string& name, std::span<const std::uint8_t> message,
                               std::span<const std::uint8_t> signature) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    // Domain-separated digest of (message, signature): length prefix keeps
    // (m, s) and (m', s') with m++s == m'++s' from colliding.
    ByteWriter w;
    w.reserve(12 + message.size() + signature.size());
    w.bytes(message);
    w.bytes(signature);
    const std::string digest = to_hex(sha256(w.view()));
    auto& per_principal = memo_[name];
    const auto hit = per_principal.find(digest);
    if (hit != per_principal.end()) {
        ++verify_cache_hits_;
        return hit->second;
    }
    ++verify_ops_;
    const bool ok = it->second.verifier->verify(message, signature);
    per_principal.emplace(digest, ok);
    return ok;
}

const Signer& KeyService::signer(const std::string& name) const {
    return *entries_.at(name).signer;
}

const Verifier& KeyService::verifier(const std::string& name) const {
    return *entries_.at(name).verifier;
}

bool KeyService::has_principal(const std::string& name) const { return entries_.contains(name); }

}  // namespace failsig::crypto
