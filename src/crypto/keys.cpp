#include "crypto/keys.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace failsig::crypto {

namespace {

class RsaSigner final : public Signer {
public:
    RsaSigner(std::string principal, RsaPrivateKey key)
        : principal_(std::move(principal)), key_(std::move(key)) {}

    [[nodiscard]] Bytes sign(std::span<const std::uint8_t> message) const override {
        return rsa_sign(key_, message, DigestAlgorithm::kMd5);
    }
    [[nodiscard]] const std::string& principal() const override { return principal_; }

private:
    std::string principal_;
    RsaPrivateKey key_;
};

class RsaVerifier final : public Verifier {
public:
    explicit RsaVerifier(RsaPublicKey key) : key_(std::move(key)) {}

    [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                              std::span<const std::uint8_t> signature) const override {
        return rsa_verify(key_, message, signature, DigestAlgorithm::kMd5);
    }

private:
    RsaPublicKey key_;
};

class HmacSigner final : public Signer {
public:
    HmacSigner(std::string principal, Bytes key)
        : principal_(std::move(principal)), key_(std::move(key)) {}

    [[nodiscard]] Bytes sign(std::span<const std::uint8_t> message) const override {
        return hmac_sha256(key_, message);
    }
    [[nodiscard]] const std::string& principal() const override { return principal_; }

private:
    std::string principal_;
    Bytes key_;
};

class HmacVerifier final : public Verifier {
public:
    explicit HmacVerifier(Bytes key) : key_(std::move(key)) {}

    [[nodiscard]] bool verify(std::span<const std::uint8_t> message,
                              std::span<const std::uint8_t> signature) const override {
        const Bytes expected = hmac_sha256(key_, message);
        return constant_time_equal(expected, signature);
    }

private:
    Bytes key_;
};

}  // namespace

KeyService::KeyService(Backend backend, std::size_t rsa_bits, std::uint64_t seed)
    : backend_(backend), rsa_bits_(rsa_bits), rng_(seed) {}

void KeyService::register_principal(const std::string& name) {
    if (entries_.contains(name)) return;

    Entry entry;
    if (backend_ == Backend::kRsa) {
        auto kp = rsa_generate(rsa_bits_, rng_);
        entry.signer = std::make_unique<RsaSigner>(name, std::move(kp.priv));
        entry.verifier = std::make_unique<RsaVerifier>(std::move(kp.pub));
    } else {
        Bytes key(32);
        for (auto& b : key) b = static_cast<std::uint8_t>(rng_.next());
        entry.signer = std::make_unique<HmacSigner>(name, key);
        entry.verifier = std::make_unique<HmacVerifier>(key);
    }
    entries_.emplace(name, std::move(entry));
}

const Signer& KeyService::signer(const std::string& name) const {
    return *entries_.at(name).signer;
}

const Verifier& KeyService::verifier(const std::string& name) const {
    return *entries_.at(name).verifier;
}

bool KeyService::has_principal(const std::string& name) const { return entries_.contains(name); }

}  // namespace failsig::crypto
