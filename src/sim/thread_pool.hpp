// Simulated fixed-size worker pool modelling a node's request-handling
// threads.
//
// NewTOP/FS-NewTOP "have a configurable thread pool with a default of 10
// threads to handle incoming requests" (paper §4) — and the paper explains
// the Figure 7 throughput hump with exactly this pool. Tasks are submitted
// with an explicit CPU cost (from the CostModel); at most `workers` tasks are
// in service at once and the rest queue FIFO, reproducing the contention
// behaviour of a real ORB thread pool on simulated time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulation.hpp"

namespace failsig::sim {

class SimThreadPool {
public:
    SimThreadPool(Simulation& sim, int workers);

    /// Enqueues a task costing `cost` CPU time; `on_complete` runs when the
    /// task finishes executing.
    void submit(Duration cost, std::function<void()> on_complete);

    /// Like submit(), but the task goes to a high-priority lane that drains
    /// before the normal queue (FIFO within the lane). Used for
    /// latency-critical control messages that must not wait behind bulk
    /// work, e.g. the FS Order records and single-signed outputs.
    void submit_priority(Duration cost, std::function<void()> on_complete);

    [[nodiscard]] int workers() const { return workers_; }
    [[nodiscard]] int busy() const { return busy_; }
    [[nodiscard]] std::size_t queue_depth() const {
        return queue_.size() + priority_queue_.size();
    }
    [[nodiscard]] std::uint64_t tasks_completed() const { return tasks_completed_; }
    [[nodiscard]] Duration busy_time() const { return busy_time_; }

private:
    struct Task {
        Duration cost;
        std::function<void()> fn;
    };

    void start(Task task);
    void finish(Task task);

    Simulation& sim_;
    int workers_;
    int busy_{0};
    std::deque<Task> priority_queue_;
    std::deque<Task> queue_;
    std::uint64_t tasks_completed_{0};
    Duration busy_time_{0};
};

}  // namespace failsig::sim
