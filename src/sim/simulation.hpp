// Deterministic discrete-event simulation core.
//
// Everything in a failsig deployment — protocol handlers, CPU execution,
// network delivery, timeouts — runs as events on one `Simulation`. Events at
// equal timestamps fire in scheduling order by default, so a run is a pure
// function of (code, seeds): every experiment and test is exactly
// reproducible. The same-timestamp order is a *pluggable policy*: the
// schedule-space explorer (src/explore) installs a seeded tie-break that
// permutes equal-time events deterministically, exploring interleavings a
// real (tie-order-agnostic) network could produce — with the policy left at
// default, behaviour is byte-identical to the historical FIFO rule.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace failsig::sim {

class Simulation {
public:
    using EventId = std::uint64_t;
    using EventFn = std::function<void()>;
    /// Maps (event id, firing time) to a tie-break key: among events with
    /// equal timestamps, smaller keys fire first (ids break key collisions,
    /// so any policy stays a total, deterministic order). Must be a pure
    /// function — it is evaluated once, at scheduling time.
    using TieBreakFn = std::function<std::uint64_t(EventId id, TimePoint at)>;

    Simulation() = default;
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    [[nodiscard]] TimePoint now() const { return now_; }

    /// Schedules `fn` at absolute time `at` (clamped to now()).
    EventId schedule_at(TimePoint at, EventFn fn);

    /// Schedules `fn` after `delay` from now.
    EventId schedule_after(Duration delay, EventFn fn) {
        return schedule_at(now_ + delay, std::move(fn));
    }

    /// Installs the same-timestamp ordering policy for events scheduled from
    /// now on (already-queued events keep the key they were scheduled with).
    /// Default (unset / nullptr): FIFO — key == id, the historical
    /// scheduling-order rule, byte-identical to builds without this seam.
    void set_tie_break(TieBreakFn policy) { tie_break_ = std::move(policy); }

    /// Cancels a pending event. Returns false if it already fired or is
    /// unknown. The handler closure is destroyed eagerly, and the heap slot
    /// is reclaimed (amortized) by compaction — long campaigns that cancel
    /// many timeouts do not accrete dead state until timestamps pop.
    bool cancel(EventId id);

    /// Runs the next event; returns false when the queue is empty.
    bool step();

    /// Runs until the queue empties or `max_events` fire; returns events fired.
    std::size_t run(std::size_t max_events = SIZE_MAX);

    /// Runs all events with timestamp <= `until`, then advances now() to
    /// `until`. Returns events fired.
    std::size_t run_until(TimePoint until);

    /// Sentinel `next_due()` value: no live event is pending.
    static constexpr TimePoint kNoEvent = INT64_MAX;

    /// Earliest live event's firing time, or kNoEvent if the queue holds no
    /// live events. Prunes cancelled entries off the heap top as a side
    /// effect (owning-thread only, like every other member). This is the
    /// seam a multi-loop host (one Simulation per node, a shared virtual
    /// clock) uses to decide how far time can fast-forward.
    [[nodiscard]] TimePoint next_due();

    [[nodiscard]] bool empty() const { return handlers_.empty(); }
    [[nodiscard]] std::size_t pending() const { return handlers_.size(); }
    [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
    /// Heap slots currently allocated, live + not-yet-reclaimed cancelled
    /// (diagnostic; compaction bounds this by roughly
    /// max(64 + pending(), 2 * pending()) — below 64 dead entries it does
    /// not bother rebuilding).
    [[nodiscard]] std::size_t queue_footprint() const { return heap_.size(); }
    /// High-watermark of queue_footprint() over the run — the peak heap
    /// allocation a run ever needed (diagnostic; exported as an end-of-run
    /// gauge by the observability layer).
    [[nodiscard]] std::size_t max_queue_footprint() const { return max_footprint_; }

private:
    struct Event {
        TimePoint at;
        EventId id;
        /// Tie-break key among equal timestamps; == id under the default
        /// FIFO policy, so the historical ordering is preserved exactly.
        std::uint64_t tie;
        // Ordering: earliest time first; among equal times, smallest
        // tie-break key; ids make the order total under any policy.
        bool operator>(const Event& other) const {
            if (at != other.at) return at > other.at;
            if (tie != other.tie) return tie > other.tie;
            return id > other.id;
        }
    };

    /// An event is live iff its handler is still registered; cancel()
    /// removes the handler and pops/compaction drop the heap entry.
    [[nodiscard]] bool is_live(const Event& event) const {
        return handlers_.contains(event.id);
    }
    void maybe_compact();
    void pop_event();

    TimePoint now_{0};
    EventId next_id_{1};
    std::uint64_t events_fired_{0};
    // Min-heap over `Event::operator>` maintained with std::*_heap so
    // compaction can filter dead entries in place (std::priority_queue
    // cannot).
    std::vector<Event> heap_;
    std::unordered_map<EventId, EventFn> handlers_;
    std::size_t cancelled_in_heap_{0};
    std::size_t max_footprint_{0};
    TieBreakFn tie_break_;
};

}  // namespace failsig::sim
