// Sample accumulator for experiment measurements (latency, throughput).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace failsig::sim {

class Stats {
public:
    void add(double sample) { samples_.push_back(sample); }

    [[nodiscard]] std::size_t count() const { return samples_.size(); }

    [[nodiscard]] double mean() const {
        if (samples_.empty()) return 0.0;
        double sum = 0.0;
        for (const double s : samples_) sum += s;
        return sum / static_cast<double>(samples_.size());
    }

    [[nodiscard]] double min() const {
        return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
    }

    [[nodiscard]] double max() const {
        return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
    }

    /// q in [0, 1]; nearest-rank percentile.
    [[nodiscard]] double percentile(double q) const {
        if (samples_.empty()) return 0.0;
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
        return sorted[idx];
    }

    [[nodiscard]] double stddev() const {
        if (samples_.size() < 2) return 0.0;
        const double m = mean();
        double acc = 0.0;
        for (const double s : samples_) acc += (s - m) * (s - m);
        return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
    }

private:
    std::vector<double> samples_;
};

}  // namespace failsig::sim
