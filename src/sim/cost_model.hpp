// CPU cost model: how much simulated CPU time each middleware operation
// charges to a node's thread pool.
//
// The defaults are calibrated so the simulated deployment reproduces the
// *magnitudes and shapes* of the paper's measurements (Java 1.4 on Pentium
// III dual-processor nodes, MD5withRSA signatures): ordering latencies in
// the 100ms-seconds range and throughputs of tens-to-~150 msg/s. The RSA
// costs can be re-calibrated against this library's own RSA implementation
// with `bench_ab1_crypto`.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace failsig::sim {

struct CostModel {
    /// Fixed cost of dispatching one incoming ORB request to a servant.
    Duration dispatch_fixed = 150 * kMicrosecond;
    /// Fixed marshalling cost per message; the per-byte component lives in
    /// marshal() (~0.08 us/byte, i.e. CPU copy/convert only — wire
    /// serialization time is the network's job).
    Duration marshal_fixed = 100 * kMicrosecond;
    /// Digest cost per byte (MD5 over the message body before signing).
    double hash_per_byte_ns = 40.0;
    /// RSA private-key operation (sign). Dominated by modexp; matches a
    /// ~512-bit key on period hardware / our implementation scaled.
    Duration rsa_sign = 1000 * kMicrosecond;
    /// RSA public-key operation (verify) with e = 65537.
    Duration rsa_verify = 200 * kMicrosecond;
    /// Protocol bookkeeping per GC protocol message (ack tracking, buffer
    /// management, membership checks). Calibrated so the simulated group's
    /// aggregate ordering capacity lands in the paper's ~100-150 msg/s range
    /// (Java 1.4 on Pentium III class nodes).
    Duration gc_protocol_op = 600 * kMicrosecond;
    /// Application-level processing of a delivered message.
    Duration app_deliver = 50 * kMicrosecond;

    [[nodiscard]] Duration marshal(std::size_t payload_bytes) const {
        // ~0.08 us/byte: 100 Mb/s wire speed is modelled in the network; this
        // is the CPU copy/convert cost only.
        return marshal_fixed + static_cast<Duration>(payload_bytes) / 12;
    }

    [[nodiscard]] Duration hash(std::size_t payload_bytes) const {
        return static_cast<Duration>(static_cast<double>(payload_bytes) * hash_per_byte_ns / 1000.0);
    }

    [[nodiscard]] Duration sign(std::size_t payload_bytes) const {
        return rsa_sign + hash(payload_bytes);
    }

    [[nodiscard]] Duration verify(std::size_t payload_bytes) const {
        return rsa_verify + hash(payload_bytes);
    }
};

}  // namespace failsig::sim
