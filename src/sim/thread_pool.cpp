#include "sim/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace failsig::sim {

SimThreadPool::SimThreadPool(Simulation& sim, int workers) : sim_(sim), workers_(workers) {
    if (workers < 1) throw std::invalid_argument("SimThreadPool: need >= 1 worker");
}

void SimThreadPool::submit(Duration cost, std::function<void()> on_complete) {
    Task task{cost, std::move(on_complete)};
    if (busy_ < workers_) {
        start(std::move(task));
    } else {
        queue_.push_back(std::move(task));
    }
}

void SimThreadPool::submit_priority(Duration cost, std::function<void()> on_complete) {
    Task task{cost, std::move(on_complete)};
    if (busy_ < workers_) {
        start(std::move(task));
    } else {
        priority_queue_.push_back(std::move(task));  // FIFO within the lane
    }
}

void SimThreadPool::start(Task task) {
    ++busy_;
    const Duration cost = task.cost;
    sim_.schedule_after(cost, [this, task = std::move(task)]() mutable { finish(std::move(task)); });
}

void SimThreadPool::finish(Task task) {
    ++tasks_completed_;
    busy_time_ += task.cost;
    // The completion callback runs while this worker still counts as busy:
    // tasks submitted from inside a callback must join the queue like
    // everyone else, not steal the worker that is about to free up.
    if (task.fn) task.fn();
    --busy_;
    if (busy_ < workers_) {
        auto& source = !priority_queue_.empty() ? priority_queue_ : queue_;
        if (!source.empty()) {
            Task next = std::move(source.front());
            source.pop_front();
            start(std::move(next));
        }
    }
}

}  // namespace failsig::sim
