#include "sim/simulation.hpp"

#include <algorithm>

namespace failsig::sim {

Simulation::EventId Simulation::schedule_at(TimePoint at, EventFn fn) {
    const EventId id = next_id_++;
    queue_.push(Event{std::max(at, now_), id});
    handlers_.emplace(id, std::move(fn));
    return id;
}

bool Simulation::cancel(EventId id) {
    const auto it = handlers_.find(id);
    if (it == handlers_.end()) return false;
    handlers_.erase(it);
    cancelled_.insert(id);
    return true;
}

bool Simulation::step() {
    while (!queue_.empty()) {
        const Event ev = queue_.top();
        queue_.pop();
        const auto cancelled_it = cancelled_.find(ev.id);
        if (cancelled_it != cancelled_.end()) {
            cancelled_.erase(cancelled_it);
            continue;
        }
        auto handler_it = handlers_.find(ev.id);
        EventFn fn = std::move(handler_it->second);
        handlers_.erase(handler_it);
        now_ = ev.at;
        ++events_fired_;
        fn();
        return true;
    }
    return false;
}

std::size_t Simulation::run(std::size_t max_events) {
    std::size_t fired = 0;
    while (fired < max_events && step()) ++fired;
    return fired;
}

std::size_t Simulation::run_until(TimePoint until) {
    std::size_t fired = 0;
    while (!queue_.empty()) {
        const Event ev = queue_.top();
        if (cancelled_.contains(ev.id)) {
            queue_.pop();
            cancelled_.erase(ev.id);
            continue;
        }
        if (ev.at > until) break;
        step();
        ++fired;
    }
    now_ = std::max(now_, until);
    return fired;
}

}  // namespace failsig::sim
