#include "sim/simulation.hpp"

#include <algorithm>

namespace failsig::sim {

Simulation::EventId Simulation::schedule_at(TimePoint at, EventFn fn) {
    const EventId id = next_id_++;
    const TimePoint fire_at = std::max(at, now_);
    const std::uint64_t tie = tie_break_ ? tie_break_(id, fire_at) : id;
    heap_.push_back(Event{fire_at, id, tie});
    max_footprint_ = std::max(max_footprint_, heap_.size());
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    handlers_.emplace(id, std::move(fn));
    return id;
}

bool Simulation::cancel(EventId id) {
    if (handlers_.erase(id) == 0) return false;
    ++cancelled_in_heap_;
    maybe_compact();
    return true;
}

void Simulation::maybe_compact() {
    // Rebuild once dead entries dominate: O(live) and amortized O(1) per
    // cancel, so a campaign cancelling millions of timeouts keeps the heap
    // proportional to the live events, not to cancellation history.
    if (cancelled_in_heap_ < 64 || cancelled_in_heap_ * 2 < heap_.size()) return;
    std::erase_if(heap_, [this](const Event& event) { return !is_live(event); });
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
    cancelled_in_heap_ = 0;
}

void Simulation::pop_event() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
}

bool Simulation::step() {
    while (!heap_.empty()) {
        const Event ev = heap_.front();
        pop_event();
        if (!is_live(ev)) {
            --cancelled_in_heap_;
            continue;
        }
        const auto handler_it = handlers_.find(ev.id);
        EventFn fn = std::move(handler_it->second);
        handlers_.erase(handler_it);
        now_ = ev.at;
        ++events_fired_;
        fn();
        return true;
    }
    return false;
}

std::size_t Simulation::run(std::size_t max_events) {
    std::size_t fired = 0;
    while (fired < max_events && step()) ++fired;
    return fired;
}

TimePoint Simulation::next_due() {
    while (!heap_.empty()) {
        if (is_live(heap_.front())) return heap_.front().at;
        pop_event();
        --cancelled_in_heap_;
    }
    return kNoEvent;
}

std::size_t Simulation::run_until(TimePoint until) {
    std::size_t fired = 0;
    while (!heap_.empty()) {
        const Event ev = heap_.front();
        if (!is_live(ev)) {
            pop_event();
            --cancelled_in_heap_;
            continue;
        }
        if (ev.at > until) break;
        step();
        ++fired;
    }
    now_ = std::max(now_, until);
    return fired;
}

}  // namespace failsig::sim
