// Simulated deployment of the PBFT-style baseline: n = 3f+1 replicas, one
// per node, exchanging authenticated messages over the asynchronous network.
// Used by the AB5 ablation bench and the baseline tests.
#pragma once

#include <deque>
#include <memory>

#include "baseline/pbft.hpp"
#include "common/batch.hpp"
#include "net/network.hpp"
#include "net/runtime_env.hpp"
#include "orb/orb.hpp"

namespace failsig::baseline {

struct PbftOptions {
    std::uint32_t replicas{4};
    int threads_per_node{10};
    std::uint64_t seed{1};
    sim::CostModel costs{};
    net::AsyncLinkParams net_params{};
    /// Request batching on the submit path: one ClientRequest — hence one
    /// pre-prepare and one three-phase exchange — per batch of b requests.
    BatchConfig batch{};
    /// Per-run observability context (nullptr = off); threaded into the
    /// submit path, replica 0's protocol stamps, and the delivery sinks.
    obs::Obs* obs{nullptr};
    /// External runtime (the TCP backend): transport/fault plane/per-node
    /// event loops. Default (all null) = stack-owned sim world.
    net::RuntimeEnv env{};
    /// Checkpoint every this many delivered requests (log truncation +
    /// state-transfer source); 0 = off.
    std::uint64_t checkpoint_interval{0};
};

/// Hosts one PbftReplica as an ORB servant with serialized execution and
/// per-input CPU cost — the baseline's equivalent of newtop::GcServant.
class PbftServant final : public orb::Servant {
public:
    PbftServant(orb::Orb& orb, const std::string& key, std::unique_ptr<PbftReplica> replica);

    void dispatch(const orb::Request& request) override;
    void submit_local(const std::string& operation, Bytes body);

    [[nodiscard]] PbftReplica& replica() { return *replica_; }
    [[nodiscard]] const PbftReplica& replica() const { return *replica_; }
    [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }

private:
    void maybe_run();

    orb::Orb& orb_;
    std::unique_ptr<PbftReplica> replica_;
    orb::ObjectRef self_ref_;
    std::deque<std::pair<std::string, Bytes>> queue_;
    bool busy_{false};
};

class PbftDeployment {
public:
    explicit PbftDeployment(const PbftOptions& options);
    ~PbftDeployment();  // out of line: DeliverySink is incomplete here

    PbftDeployment(const PbftDeployment&) = delete;
    PbftDeployment& operator=(const PbftDeployment&) = delete;

    [[nodiscard]] sim::Simulation& sim() { return sim_; }
    [[nodiscard]] net::Transport& network() { return net_; }
    [[nodiscard]] net::FaultInjector& faults() { return faults_; }
    [[nodiscard]] std::uint32_t replica_count() const {
        return static_cast<std::uint32_t>(replicas_.size());
    }

    /// Submits a request at replica `at`. With batching configured the
    /// payload may be coalesced with others submitted at the same replica
    /// within the flush window into one ClientRequest (one pre-prepare);
    /// delivery unbatches, so observers see one upcall per request either way.
    void submit(ReplicaId at, Bytes payload);

    /// Fires the view-change timeout input at every replica (the liveness
    /// escape hatch when the primary is silent).
    void fire_timeouts();
    /// Fires one replica's view-change timeout only (the TCP backend posts
    /// these onto the replica's own executor).
    void fire_timeouts(ReplicaId at);

    /// Starts the state-transfer rejoin at `at`: the replica wipes its log
    /// and asks its peers for a stable snapshot + committed suffix.
    void begin_recovery(ReplicaId at);

    [[nodiscard]] PbftReplica& replica(ReplicaId r);
    [[nodiscard]] const PbftReplica& replica(ReplicaId r) const;
    /// Delivered (seq -> "origin:payload") log observed at replica r.
    [[nodiscard]] const std::vector<std::string>& delivered(ReplicaId r) const;

    /// Observes every commit upcall with its structured payload (the
    /// scenario tracer taps this; the string log above stays for tests).
    using DeliveryObserver = std::function<void(ReplicaId replica, const PbftDelivery&)>;
    void on_delivery(DeliveryObserver observer) { delivery_observer_ = std::move(observer); }
    [[nodiscard]] NodeId node_of(ReplicaId r) const {
        return NodeId{static_cast<std::uint32_t>(r + 1)};
    }

    /// Aggregated batching counters over every replica's submit path.
    [[nodiscard]] BatchStats batch_stats() const;

private:
    class DeliverySink;

    void submit_unit(ReplicaId at, Bytes unit);
    /// Stamps kBatched for every request a flushed unit carries and links
    /// them to the unit's span (only called when obs is on).
    void trace_flush(ReplicaId at, const Bytes& unit);

    sim::Simulation sim_;
    std::unique_ptr<net::SimNetwork> own_net_;  // null when env.transport is set
    net::Transport& net_;
    net::FaultInjector& faults_;
    orb::OrbDomain domain_;
    std::vector<std::unique_ptr<PbftServant>> replicas_;
    std::vector<std::unique_ptr<DeliverySink>> sinks_;
    std::vector<std::unique_ptr<Batcher>> batchers_;
    std::vector<std::vector<std::string>> delivered_;
    std::vector<std::uint64_t> next_origin_seq_;
    DeliveryObserver delivery_observer_;
    obs::Obs* obs_{nullptr};
};

}  // namespace failsig::baseline
