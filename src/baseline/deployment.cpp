#include "baseline/deployment.hpp"

namespace failsig::baseline {

PbftServant::PbftServant(orb::Orb& orb, const std::string& key,
                         std::unique_ptr<PbftReplica> replica)
    : orb_(orb), replica_(std::move(replica)) {
    self_ref_ = orb_.activate(key, this);
}

void PbftServant::dispatch(const orb::Request& request) {
    if (!request.args.is<Bytes>()) return;
    submit_local(request.operation, request.args.as<Bytes>());
}

void PbftServant::submit_local(const std::string& operation, Bytes body) {
    queue_.emplace_back(operation, std::move(body));
    maybe_run();
}

void PbftServant::maybe_run() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    auto [operation, body] = std::move(queue_.front());
    queue_.pop_front();
    const Duration cost = replica_->processing_cost(operation, body);
    orb_.pool().submit(cost, [this, operation = std::move(operation), body = std::move(body)] {
        auto outputs = replica_->process(operation, body);
        for (auto& out : outputs) {
            // One fan-out invocation per logical output: the body is
            // marshalled once and shared across all destinations.
            std::vector<orb::ObjectRef> targets;
            targets.reserve(out.dests.size());
            for (const auto& dest : out.dests) {
                if (!dest.is_fs) targets.push_back(dest.ref);
            }
            orb_.invoke_fanout(targets, out.operation, orb::Any{std::move(out.body)});
        }
        busy_ = false;
        maybe_run();
    });
}

/// Collects "deliver" upcalls for one replica.
class PbftDeployment::DeliverySink final : public orb::Servant {
public:
    DeliverySink(orb::Orb& orb, const std::string& key, PbftDeployment& owner, ReplicaId replica)
        : owner_(owner), replica_(replica) {
        ref_ = orb.activate(key, this);
    }

    void dispatch(const orb::Request& request) override {
        if (!request.args.is<Bytes>()) return;
        if (request.operation == "recovered") {
            // The replica restarts its delivery stream at watermark+1 after a
            // state transfer; whatever was held back belongs to the pre-crash
            // stream and is dead.
            const Bytes& body = request.args.as<Bytes>();
            if (body.size() != 8) return;
            ByteReader r(body);
            next_seq_ = r.u64() + 1;
            holdback_.clear();
            return;
        }
        if (request.operation != "deliver") return;
        auto d = PbftDelivery::decode(request.args.as<Bytes>());
        if (!d.has_value()) return;
        // Re-sequence on the replica's commit order: the replica emits
        // deliveries in seq order, but each travels as its own marshal task
        // through the node's thread pool, and two tasks racing to the local
        // link can hit the wire swapped (the schedule-space explorer found
        // exactly this under a permuted tie-break). The application contract
        // is commit order, so hold back until the stream is gapless. On an
        // in-order stream this is a pure pass-through.
        PbftDelivery delivery = std::move(d).value();
        const std::uint64_t seq = delivery.seq;
        holdback_.emplace(seq, std::move(delivery));
        while (true) {
            const auto it = holdback_.find(next_seq_);
            if (it == holdback_.end()) break;
            unbatch_and_upcall(it->second);
            holdback_.erase(it);
            ++next_seq_;
        }
    }

    [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }

private:
    void unbatch_and_upcall(const PbftDelivery& d) {
        if (Batch::is_batch(d.request.payload)) {
            // One committed slot carrying b requests: unbatch into b upcalls
            // in batch order, so observers see the individual submissions.
            auto requests = Batch::decode(d.request.payload);
            if (requests.has_value()) {
                PbftDelivery sub = d;
                for (auto& payload : std::move(requests).value()) {
                    sub.request.payload = std::move(payload);
                    upcall(sub);
                }
                return;
            }
        }
        upcall(d);
    }

    void upcall(const PbftDelivery& d) {
        owner_.delivered_[replica_].push_back(std::to_string(d.request.origin) + ":" +
                                              string_of(d.request.payload));
        if (owner_.obs_ != nullptr) {
            owner_.obs_->span(obs::Stage::kDelivered, d.request.payload,
                              static_cast<int>(replica_));
        }
        if (owner_.delivery_observer_) owner_.delivery_observer_(replica_, d);
    }

    PbftDeployment& owner_;
    ReplicaId replica_;
    orb::ObjectRef ref_;
    std::uint64_t next_seq_{1};
    std::map<std::uint64_t, PbftDelivery> holdback_;
};

PbftDeployment::PbftDeployment(const PbftOptions& options)
    : own_net_(options.env.external() ? nullptr
                                      : std::make_unique<net::SimNetwork>(sim_, Rng(options.seed),
                                                                          options.net_params)),
      net_(net::transport_or(options.env, own_net_.get())),
      faults_(net::faults_or(options.env, own_net_.get())),
      domain_(net::sim_of_or(options.env, sim_), net_, options.costs, options.threads_per_node),
      obs_(options.obs) {
    const std::uint32_t n = options.replicas;
    ensure(n >= 4, "PbftDeployment: need at least 4 replicas");

    delivered_.resize(n);
    next_origin_seq_.assign(n, 1);

    std::vector<orb::Orb*> orbs;
    std::vector<orb::ObjectRef> refs(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        orbs.push_back(&domain_.create_orb(node_of(i)));
        refs[i] = orb::ObjectRef{orbs.back()->endpoint(), "pbft"};
    }

    for (std::uint32_t i = 0; i < n; ++i) {
        sinks_.push_back(std::make_unique<DeliverySink>(*orbs[i], "app", *this, i));

        PbftConfig cfg;
        cfg.self = i;
        cfg.n = n;
        for (std::uint32_t j = 0; j < n; ++j) {
            if (j != i) cfg.peers[j] = fs::Destination::plain(refs[j]);
        }
        cfg.delivery = fs::Destination::plain(sinks_.back()->ref());
        cfg.protocol_op_cost = options.costs.gc_protocol_op;
        cfg.obs = options.obs;
        cfg.obs_member = static_cast<int>(i);
        cfg.checkpoint_interval = options.checkpoint_interval;

        replicas_.push_back(
            std::make_unique<PbftServant>(*orbs[i], "pbft", std::make_unique<PbftReplica>(cfg)));
        batchers_.push_back(std::make_unique<Batcher>(
            options.batch,
            [this, i](Bytes unit, std::size_t) {
                if (obs_ != nullptr) trace_flush(i, unit);
                submit_unit(i, std::move(unit));
            },
            [replica_sim = &orbs[i]->simulation()](Duration delay, std::function<void()> fn) {
                replica_sim->schedule_after(delay, std::move(fn));
            }));
    }
}

PbftDeployment::~PbftDeployment() = default;

void PbftDeployment::submit(ReplicaId at, Bytes payload) {
    if (obs_ != nullptr) obs_->span(obs::Stage::kSubmit, payload, static_cast<int>(at));
    batchers_[at]->submit(std::move(payload));
}

void PbftDeployment::trace_flush(ReplicaId at, const Bytes& unit) {
    const int member = static_cast<int>(at);
    if (Batch::is_batch(unit)) {
        if (auto requests = Batch::decode(unit); requests.has_value()) {
            for (const auto& request : requests.value()) {
                obs_->span_link(unit, request, member);
            }
            return;
        }
    }
    obs_->span_link(unit, unit, member);  // passthrough: unit == request
}

void PbftDeployment::submit_unit(ReplicaId at, Bytes unit) {
    if (obs_ != nullptr) obs_->span(obs::Stage::kEncoded, unit, static_cast<int>(at));
    ClientRequest req;
    req.origin = at;
    req.origin_seq = next_origin_seq_[at]++;
    req.payload = std::move(unit);
    replicas_[at]->submit_local("request", req.encode());
}

BatchStats PbftDeployment::batch_stats() const {
    BatchStats stats;
    for (const auto& b : batchers_) stats += b->stats();
    return stats;
}

void PbftDeployment::fire_timeouts() {
    for (ReplicaId r = 0; r < replica_count(); ++r) fire_timeouts(r);
}

void PbftDeployment::fire_timeouts(ReplicaId at) {
    auto& servant = replicas_.at(at);
    ByteWriter w;
    w.u64(servant->replica().view());
    servant->submit_local("timeout", w.take());
}

void PbftDeployment::begin_recovery(ReplicaId at) {
    replicas_.at(at)->submit_local("recover", Bytes{});
}

PbftReplica& PbftDeployment::replica(ReplicaId r) { return replicas_.at(r)->replica(); }

const PbftReplica& PbftDeployment::replica(ReplicaId r) const {
    return replicas_.at(r)->replica();
}

const std::vector<std::string>& PbftDeployment::delivered(ReplicaId r) const {
    return delivered_.at(r);
}

}  // namespace failsig::baseline
