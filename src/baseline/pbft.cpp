#include "baseline/pbft.hpp"

#include "crypto/md5.hpp"

namespace failsig::baseline {

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

std::size_t ClientRequest::wire_size() const { return 4 + 8 + 4 + payload.size(); }

Bytes ClientRequest::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u32(origin);
    w.u64(origin_seq);
    w.bytes(payload);
    return w.take();
}

Result<ClientRequest> ClientRequest::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        ClientRequest req;
        req.origin = r.u32();
        req.origin_seq = r.u64();
        req.payload = r.bytes();
        if (!r.done()) return Result<ClientRequest>::err("trailing bytes");
        return req;
    } catch (const std::out_of_range&) {
        return Result<ClientRequest>::err("truncated ClientRequest");
    }
}

std::size_t PbftMessage::wire_size() const {
    return 1 + 4 + 8 + 8 + (4 + digest.size()) + (4 + request.wire_size());
}

Bytes PbftMessage::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(sender);
    w.u64(view);
    w.u64(seq);
    w.bytes(digest);
    w.bytes(request.encode());
    return w.take();
}

Result<PbftMessage> PbftMessage::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        PbftMessage m;
        const auto kind_raw = r.u8();
        if (kind_raw < 1 || kind_raw > 5) return Result<PbftMessage>::err("bad PbftKind");
        m.kind = static_cast<PbftKind>(kind_raw);
        m.sender = r.u32();
        m.view = r.u64();
        m.seq = r.u64();
        m.digest = r.bytes();
        const Bytes req_wire = r.bytes();
        auto req = ClientRequest::decode(req_wire);
        if (!req.has_value()) return Result<PbftMessage>::err(req.error().message);
        m.request = std::move(req).value();
        if (!r.done()) return Result<PbftMessage>::err("trailing bytes");
        return m;
    } catch (const std::out_of_range&) {
        return Result<PbftMessage>::err("truncated PbftMessage");
    }
}

std::size_t PbftDelivery::wire_size() const { return 8 + 4 + request.wire_size(); }

Bytes PbftDelivery::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u64(seq);
    w.bytes(request.encode());
    return w.take();
}

Result<PbftDelivery> PbftDelivery::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        PbftDelivery d;
        d.seq = r.u64();
        const Bytes req_wire = r.bytes();
        auto req = ClientRequest::decode(req_wire);
        if (!req.has_value()) return Result<PbftDelivery>::err(req.error().message);
        d.request = std::move(req).value();
        return d;
    } catch (const std::out_of_range&) {
        return Result<PbftDelivery>::err("truncated PbftDelivery");
    }
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

PbftReplica::PbftReplica(PbftConfig config) : cfg_(std::move(config)) {
    ensure(cfg_.n >= 4, "PBFT baseline needs n >= 4 (3f+1 with f >= 1)");
}

Duration PbftReplica::processing_cost(const std::string& operation, const Bytes& body) const {
    (void)operation;
    return cfg_.protocol_op_cost + static_cast<Duration>(body.size()) / 100;
}

std::vector<fs::Outbound> PbftReplica::process(const std::string& operation, const Bytes& body) {
    Out out;
    if (operation == "request") {
        auto req = ClientRequest::decode(body);
        if (req.has_value()) on_request(req.value(), out);
    } else if (operation == "pbft") {
        auto msg = PbftMessage::decode(body);
        if (msg.has_value()) on_pbft(msg.value(), out);
    } else if (operation == "timeout") {
        if (body.size() == 8) {
            ByteReader r(body);
            on_timeout(r.u64(), out);
        }
    }
    return out;
}

void PbftReplica::on_request(const ClientRequest& request, Out& out) {
    if (!seen_requests_.insert({request.origin, request.origin_seq}).second) return;
    if (is_primary()) {
        assign_and_prepreprepare(request, out);
    } else {
        // Keep a copy so a timeout/view change can re-propose, and broadcast
        // the request to every replica (the PBFT client fallback path) so
        // all of them hold liveness evidence against a silent primary.
        pending_.push_back(request);
        PbftMessage relay;
        relay.kind = PbftKind::kPrePrepare;  // reused as a forwarded request
        relay.sender = cfg_.self;
        relay.view = view_;
        relay.request = request;
        broadcast(relay, out);
    }
}

void PbftReplica::assign_and_prepreprepare(const ClientRequest& request, Out& out) {
    // The primary hands the ordered unit's pre-prepare to the network — the
    // span's net-send stage.
    if (cfg_.obs != nullptr) {
        cfg_.obs->span(obs::Stage::kNetSend, request.payload, cfg_.obs_member);
    }
    const std::uint64_t seq = next_assign_++;
    PbftMessage pp;
    pp.kind = PbftKind::kPrePrepare;
    pp.sender = cfg_.self;
    pp.view = view_;
    pp.seq = seq;
    pp.request = request;
    pp.digest = crypto::md5(request.encode());
    broadcast(pp, out);

    Slot& slot = slots_[seq];
    slot.pre_prepared = true;
    slot.request = request;
    slot.digest = pp.digest;
    slot.prepares.insert(cfg_.self);
    maybe_prepare(seq, out);
}

void PbftReplica::on_pbft(const PbftMessage& msg, Out& out) {
    switch (msg.kind) {
        case PbftKind::kPrePrepare: {
            if (msg.sender != primary()) {
                // A forwarded request from a non-primary replica.
                if (!seen_requests_.insert({msg.request.origin, msg.request.origin_seq}).second) {
                    return;
                }
                if (is_primary()) {
                    assign_and_prepreprepare(msg.request, out);
                } else {
                    pending_.push_back(msg.request);  // liveness evidence
                }
                return;
            }
            if (msg.view != view_) return;
            // A primary pre-prepare carrying the ordered unit = the span's
            // receive stage (prepare/commit rounds are protocol-internal).
            if (cfg_.obs != nullptr) {
                cfg_.obs->span(obs::Stage::kReceive, msg.request.payload, cfg_.obs_member);
            }
            Slot& slot = slots_[msg.seq];
            if (slot.pre_prepared && slot.digest != msg.digest) return;  // equivocation
            slot.pre_prepared = true;
            slot.request = msg.request;
            slot.digest = msg.digest;
            slot.prepares.insert(msg.sender);
            slot.prepares.insert(cfg_.self);

            PbftMessage prep;
            prep.kind = PbftKind::kPrepare;
            prep.sender = cfg_.self;
            prep.view = view_;
            prep.seq = msg.seq;
            prep.digest = msg.digest;
            broadcast(prep, out);
            maybe_prepare(msg.seq, out);
            break;
        }
        case PbftKind::kPrepare: {
            if (msg.view != view_) return;
            Slot& slot = slots_[msg.seq];
            if (slot.pre_prepared && slot.digest != msg.digest) return;
            slot.prepares.insert(msg.sender);
            maybe_prepare(msg.seq, out);
            break;
        }
        case PbftKind::kCommit: {
            if (msg.view != view_) return;
            Slot& slot = slots_[msg.seq];
            slot.commits.insert(msg.sender);
            maybe_commit(msg.seq, out);
            break;
        }
        case PbftKind::kViewChange: {
            if (msg.view <= view_) return;
            auto& votes = view_change_votes_[msg.view];
            votes.insert(msg.sender);
            // Join rule: once f+1 replicas demand the view change, follow
            // them even without local timeout evidence.
            if (!votes.contains(cfg_.self) && votes.size() >= f() + 1) {
                votes.insert(cfg_.self);
                PbftMessage vc;
                vc.kind = PbftKind::kViewChange;
                vc.sender = cfg_.self;
                vc.view = msg.view;
                broadcast(vc, out);
            }
            if (votes.size() >= 2 * f() + 1 && msg.view > view_) {
                view_ = msg.view;
                ++view_changes_;
                if (is_primary()) {
                    PbftMessage nv;
                    nv.kind = PbftKind::kNewView;
                    nv.sender = cfg_.self;
                    nv.view = view_;
                    broadcast(nv, out);
                    // Re-propose everything we know about but have not
                    // delivered (simplified new-view).
                    for (const auto& req : pending_) {
                        assign_and_prepreprepare(req, out);
                    }
                    pending_.clear();
                }
            }
            break;
        }
        case PbftKind::kNewView: {
            if (msg.view > view_ &&
                msg.sender == static_cast<ReplicaId>(msg.view % cfg_.n)) {
                view_ = msg.view;
                ++view_changes_;
                // Resend pending requests to the new primary.
                for (const auto& req : pending_) {
                    PbftMessage relay;
                    relay.kind = PbftKind::kPrePrepare;
                    relay.sender = cfg_.self;
                    relay.view = view_;
                    relay.request = req;
                    send_to(primary(), relay, out);
                }
            }
            break;
        }
    }
}

void PbftReplica::on_timeout(std::uint64_t view, Out& out) {
    // Liveness dependence: progress stalls until this timeout elects view+1.
    if (view != view_) return;  // stale timer
    if (next_deliver_ >= next_assign_ && pending_.empty()) return;  // no work stuck
    PbftMessage vc;
    vc.kind = PbftKind::kViewChange;
    vc.sender = cfg_.self;
    vc.view = view_ + 1;
    broadcast(vc, out);
    view_change_votes_[vc.view].insert(cfg_.self);
}

void PbftReplica::maybe_prepare(std::uint64_t seq, Out& out) {
    Slot& slot = slots_[seq];
    // Prepared: pre-prepare + 2f matching prepares.
    if (!slot.pre_prepared || slot.committed) return;
    if (slot.prepares.size() < 2 * f() + 1) return;
    slot.committed = true;  // "prepared" certificate reached; emit commit
    slot.commits.insert(cfg_.self);

    PbftMessage commit;
    commit.kind = PbftKind::kCommit;
    commit.sender = cfg_.self;
    commit.view = view_;
    commit.seq = seq;
    commit.digest = slot.digest;
    broadcast(commit, out);
    maybe_commit(seq, out);
}

void PbftReplica::maybe_commit(std::uint64_t seq, Out& out) {
    Slot& slot = slots_[seq];
    if (!slot.committed || slot.delivered) return;
    if (slot.commits.size() < 2 * f() + 1) return;
    try_deliver(out);
}

void PbftReplica::try_deliver(Out& out) {
    while (true) {
        const auto it = slots_.find(next_deliver_);
        if (it == slots_.end()) break;
        Slot& slot = it->second;
        if (!slot.committed || slot.commits.size() < 2 * f() + 1 || !slot.pre_prepared) break;
        if (!slot.delivered) {
            slot.delivered = true;
            deliver(next_deliver_, slot.request, out);
        }
        ++next_deliver_;
    }
}

void PbftReplica::deliver(std::uint64_t seq, const ClientRequest& request, Out& out) {
    ++delivered_count_;
    if (cfg_.obs != nullptr) {
        cfg_.obs->span(obs::Stage::kOrdered, request.payload, cfg_.obs_member);
    }
    // Retire the request from the pending backlog (it is now ordered).
    std::erase_if(pending_, [&](const ClientRequest& r) {
        return r.origin == request.origin && r.origin_seq == request.origin_seq;
    });
    PbftDelivery d;
    d.seq = seq;
    d.request = request;
    out.emplace_back(cfg_.delivery, "deliver", d.encode());
}

void PbftReplica::broadcast(const PbftMessage& msg, Out& out) {
    fs::Outbound o;
    o.operation = "pbft";
    o.body = msg.encode();
    for (const auto& [r, dest] : cfg_.peers) {
        if (r != cfg_.self) o.dests.push_back(dest);
    }
    if (!o.dests.empty()) out.push_back(std::move(o));
}

void PbftReplica::send_to(ReplicaId r, const PbftMessage& msg, Out& out) {
    const auto it = cfg_.peers.find(r);
    if (it == cfg_.peers.end()) return;
    out.emplace_back(it->second, "pbft", msg.encode());
}

}  // namespace failsig::baseline
