#include "baseline/pbft.hpp"

#include <iterator>

#include "crypto/md5.hpp"

namespace failsig::baseline {

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

std::size_t ClientRequest::wire_size() const { return 4 + 8 + 4 + payload.size(); }

Bytes ClientRequest::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u32(origin);
    w.u64(origin_seq);
    w.bytes(payload);
    return w.take();
}

Result<ClientRequest> ClientRequest::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        ClientRequest req;
        req.origin = r.u32();
        req.origin_seq = r.u64();
        req.payload = r.bytes();
        if (!r.done()) return Result<ClientRequest>::err("trailing bytes");
        return req;
    } catch (const std::out_of_range&) {
        return Result<ClientRequest>::err("truncated ClientRequest");
    }
}

std::size_t PbftMessage::wire_size() const {
    return 1 + 4 + 8 + 8 + (4 + digest.size()) + (4 + request.wire_size());
}

Bytes PbftMessage::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(sender);
    w.u64(view);
    w.u64(seq);
    w.bytes(digest);
    w.bytes(request.encode());
    return w.take();
}

Result<PbftMessage> PbftMessage::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        PbftMessage m;
        const auto kind_raw = r.u8();
        if (kind_raw < 1 || kind_raw > 8) return Result<PbftMessage>::err("bad PbftKind");
        m.kind = static_cast<PbftKind>(kind_raw);
        m.sender = r.u32();
        m.view = r.u64();
        m.seq = r.u64();
        m.digest = r.bytes();
        const Bytes req_wire = r.bytes();
        auto req = ClientRequest::decode(req_wire);
        if (!req.has_value()) return Result<PbftMessage>::err(req.error().message);
        m.request = std::move(req).value();
        if (!r.done()) return Result<PbftMessage>::err("trailing bytes");
        return m;
    } catch (const std::out_of_range&) {
        return Result<PbftMessage>::err("truncated PbftMessage");
    }
}

std::size_t PbftDelivery::wire_size() const { return 8 + 4 + request.wire_size(); }

Bytes PbftDelivery::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u64(seq);
    w.bytes(request.encode());
    return w.take();
}

Result<PbftDelivery> PbftDelivery::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        PbftDelivery d;
        d.seq = r.u64();
        const Bytes req_wire = r.bytes();
        auto req = ClientRequest::decode(req_wire);
        if (!req.has_value()) return Result<PbftDelivery>::err(req.error().message);
        d.request = std::move(req).value();
        return d;
    } catch (const std::out_of_range&) {
        return Result<PbftDelivery>::err("truncated PbftDelivery");
    }
}

std::size_t RecoveryState::wire_size() const {
    std::size_t size = 8 + 8 + 8 + (4 + app_snapshot.size()) + 4;
    for (const auto& [seq, req] : suffix) size += 8 + 4 + req.wire_size();
    return size;
}

Bytes RecoveryState::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u64(view);
    w.u64(snapshot_watermark);
    w.u64(last_delivered);
    w.bytes(app_snapshot);
    w.u32(static_cast<std::uint32_t>(suffix.size()));
    for (const auto& [seq, req] : suffix) {
        w.u64(seq);
        w.bytes(req.encode());
    }
    return w.take();
}

Result<RecoveryState> RecoveryState::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        RecoveryState st;
        st.view = r.u64();
        st.snapshot_watermark = r.u64();
        st.last_delivered = r.u64();
        if (st.snapshot_watermark > st.last_delivered) {
            return Result<RecoveryState>::err("watermark past last_delivered");
        }
        st.app_snapshot = r.bytes();
        const auto count = r.u32();
        // The suffix spans one checkpoint window of committed requests;
        // anything past this bound is a corrupt frame.
        if (count > 65536) return Result<RecoveryState>::err("implausible suffix count");
        if (count != st.last_delivered - st.snapshot_watermark) {
            return Result<RecoveryState>::err("suffix count does not cover (S, W]");
        }
        st.suffix.reserve(count);
        std::uint64_t expect = st.snapshot_watermark + 1;
        for (std::uint32_t i = 0; i < count; ++i) {
            const auto seq = r.u64();
            if (seq != expect) return Result<RecoveryState>::err("non-contiguous suffix");
            ++expect;
            auto req = ClientRequest::decode(r.bytes());
            if (!req.has_value()) {
                return Result<RecoveryState>::err("bad suffix request: " + req.error().message);
            }
            st.suffix.emplace_back(seq, std::move(req).value());
        }
        if (!r.done()) return Result<RecoveryState>::err("trailing bytes in RecoveryState");
        return st;
    } catch (const std::out_of_range&) {
        return Result<RecoveryState>::err("truncated RecoveryState");
    }
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

PbftReplica::PbftReplica(PbftConfig config) : cfg_(std::move(config)) {
    ensure(cfg_.n >= 4, "PBFT baseline needs n >= 4 (3f+1 with f >= 1)");
    app_ = app::KvStore(cfg_.checkpoint_interval);
}

Duration PbftReplica::processing_cost(const std::string& operation, const Bytes& body) const {
    (void)operation;
    return cfg_.protocol_op_cost + static_cast<Duration>(body.size()) / 100;
}

std::vector<fs::Outbound> PbftReplica::process(const std::string& operation, const Bytes& body) {
    Out out;
    if (operation == "request") {
        auto req = ClientRequest::decode(body);
        if (req.has_value()) on_request(req.value(), out);
    } else if (operation == "pbft") {
        auto msg = PbftMessage::decode(body);
        if (msg.has_value()) on_pbft(msg.value(), out);
    } else if (operation == "timeout") {
        if (body.size() == 8) {
            ByteReader r(body);
            on_timeout(r.u64(), out);
        }
    } else if (operation == "recover") {
        begin_recovery(out);
    }
    return out;
}

void PbftReplica::on_request(const ClientRequest& request, Out& out) {
    if (recovering_) return;  // no ordering duties until the snapshot lands
    if (!seen_requests_.insert({request.origin, request.origin_seq}).second) return;
    if (is_primary()) {
        assign_and_prepreprepare(request, out);
    } else {
        // Keep a copy so a timeout/view change can re-propose, and broadcast
        // the request to every replica (the PBFT client fallback path) so
        // all of them hold liveness evidence against a silent primary.
        pending_.push_back(request);
        PbftMessage relay;
        relay.kind = PbftKind::kPrePrepare;  // reused as a forwarded request
        relay.sender = cfg_.self;
        relay.view = view_;
        relay.request = request;
        broadcast(relay, out);
    }
}

void PbftReplica::assign_and_prepreprepare(const ClientRequest& request, Out& out) {
    // The primary hands the ordered unit's pre-prepare to the network — the
    // span's net-send stage.
    if (cfg_.obs != nullptr) {
        cfg_.obs->span(obs::Stage::kNetSend, request.payload, cfg_.obs_member);
    }
    const std::uint64_t seq = next_assign_++;
    PbftMessage pp;
    pp.kind = PbftKind::kPrePrepare;
    pp.sender = cfg_.self;
    pp.view = view_;
    pp.seq = seq;
    pp.request = request;
    pp.digest = crypto::md5(request.encode());
    broadcast(pp, out);

    Slot& slot = slots_[seq];
    note_log_occupancy();
    slot.pre_prepared = true;
    slot.request = request;
    slot.digest = pp.digest;
    slot.prepares.insert(cfg_.self);
    maybe_prepare(seq, out);
}

void PbftReplica::on_pbft(const PbftMessage& msg, Out& out) {
    // A recovering replica holds no usable log: everything except the state
    // transfer it asked for is noise until the snapshot lands.
    if (recovering_ && msg.kind != PbftKind::kStateReply) return;
    switch (msg.kind) {
        case PbftKind::kPrePrepare: {
            if (msg.sender != primary()) {
                // A forwarded request from a non-primary replica.
                if (!seen_requests_.insert({msg.request.origin, msg.request.origin_seq}).second) {
                    return;
                }
                if (is_primary()) {
                    assign_and_prepreprepare(msg.request, out);
                } else {
                    pending_.push_back(msg.request);  // liveness evidence
                }
                return;
            }
            if (msg.view != view_) return;
            // Below the stable checkpoint the slot is truncated history;
            // re-creating it would unbound the log again.
            if (msg.seq <= stable_checkpoint_) return;
            // A primary pre-prepare carrying the ordered unit = the span's
            // receive stage (prepare/commit rounds are protocol-internal).
            if (cfg_.obs != nullptr) {
                cfg_.obs->span(obs::Stage::kReceive, msg.request.payload, cfg_.obs_member);
            }
            Slot& slot = slots_[msg.seq];
            note_log_occupancy();
            if (slot.pre_prepared && slot.digest != msg.digest) return;  // equivocation
            slot.pre_prepared = true;
            slot.request = msg.request;
            slot.digest = msg.digest;
            slot.prepares.insert(msg.sender);
            slot.prepares.insert(cfg_.self);

            PbftMessage prep;
            prep.kind = PbftKind::kPrepare;
            prep.sender = cfg_.self;
            prep.view = view_;
            prep.seq = msg.seq;
            prep.digest = msg.digest;
            broadcast(prep, out);
            maybe_prepare(msg.seq, out);
            break;
        }
        case PbftKind::kPrepare: {
            if (msg.view != view_) return;
            if (msg.seq <= stable_checkpoint_) return;
            Slot& slot = slots_[msg.seq];
            note_log_occupancy();
            if (slot.pre_prepared && slot.digest != msg.digest) return;
            slot.prepares.insert(msg.sender);
            maybe_prepare(msg.seq, out);
            break;
        }
        case PbftKind::kCommit: {
            if (msg.view != view_) return;
            if (msg.seq <= stable_checkpoint_) return;
            Slot& slot = slots_[msg.seq];
            note_log_occupancy();
            slot.commits.insert(msg.sender);
            maybe_commit(msg.seq, out);
            break;
        }
        case PbftKind::kViewChange: {
            if (msg.view <= view_) return;
            auto& votes = view_change_votes_[msg.view];
            votes.insert(msg.sender);
            // Join rule: once f+1 replicas demand the view change, follow
            // them even without local timeout evidence.
            if (!votes.contains(cfg_.self) && votes.size() >= f() + 1) {
                votes.insert(cfg_.self);
                PbftMessage vc;
                vc.kind = PbftKind::kViewChange;
                vc.sender = cfg_.self;
                vc.view = msg.view;
                broadcast(vc, out);
            }
            if (votes.size() >= 2 * f() + 1 && msg.view > view_) {
                view_ = msg.view;
                ++view_changes_;
                if (is_primary()) {
                    PbftMessage nv;
                    nv.kind = PbftKind::kNewView;
                    nv.sender = cfg_.self;
                    nv.view = view_;
                    broadcast(nv, out);
                    // Re-propose everything we know about but have not
                    // delivered (simplified new-view).
                    for (const auto& req : pending_) {
                        assign_and_prepreprepare(req, out);
                    }
                    pending_.clear();
                }
            }
            break;
        }
        case PbftKind::kNewView: {
            if (msg.view > view_ &&
                msg.sender == static_cast<ReplicaId>(msg.view % cfg_.n)) {
                view_ = msg.view;
                ++view_changes_;
                // Resend pending requests to the new primary.
                for (const auto& req : pending_) {
                    PbftMessage relay;
                    relay.kind = PbftKind::kPrePrepare;
                    relay.sender = cfg_.self;
                    relay.view = view_;
                    relay.request = req;
                    send_to(primary(), relay, out);
                }
            }
            break;
        }
        case PbftKind::kCheckpoint: {
            on_checkpoint(msg, out);
            break;
        }
        case PbftKind::kStateRequest: {
            serve_state(msg.sender, out);
            break;
        }
        case PbftKind::kStateReply: {
            on_state_reply(msg, out);
            break;
        }
    }
}

void PbftReplica::on_timeout(std::uint64_t view, Out& out) {
    // Liveness dependence: progress stalls until this timeout elects view+1.
    if (recovering_) return;
    if (view != view_) return;  // stale timer
    if (next_deliver_ >= next_assign_ && pending_.empty()) return;  // no work stuck
    PbftMessage vc;
    vc.kind = PbftKind::kViewChange;
    vc.sender = cfg_.self;
    vc.view = view_ + 1;
    broadcast(vc, out);
    view_change_votes_[vc.view].insert(cfg_.self);
}

void PbftReplica::maybe_prepare(std::uint64_t seq, Out& out) {
    Slot& slot = slots_[seq];
    // Prepared: pre-prepare + 2f matching prepares.
    if (!slot.pre_prepared || slot.committed) return;
    if (slot.prepares.size() < 2 * f() + 1) return;
    slot.committed = true;  // "prepared" certificate reached; emit commit
    slot.commits.insert(cfg_.self);

    PbftMessage commit;
    commit.kind = PbftKind::kCommit;
    commit.sender = cfg_.self;
    commit.view = view_;
    commit.seq = seq;
    commit.digest = slot.digest;
    broadcast(commit, out);
    maybe_commit(seq, out);
}

void PbftReplica::maybe_commit(std::uint64_t seq, Out& out) {
    Slot& slot = slots_[seq];
    if (!slot.committed || slot.delivered) return;
    if (slot.commits.size() < 2 * f() + 1) return;
    try_deliver(out);
}

void PbftReplica::try_deliver(Out& out) {
    while (true) {
        const auto it = slots_.find(next_deliver_);
        if (it == slots_.end()) break;
        Slot& slot = it->second;
        if (!slot.committed || slot.commits.size() < 2 * f() + 1 || !slot.pre_prepared) break;
        if (!slot.delivered) {
            slot.delivered = true;
            deliver(next_deliver_, slot.request, out);
            maybe_checkpoint(next_deliver_, out);
        }
        ++next_deliver_;
    }
}

void PbftReplica::deliver(std::uint64_t seq, const ClientRequest& request, Out& out) {
    ++delivered_count_;
    app_.apply(request.payload);
    if (cfg_.obs != nullptr) {
        cfg_.obs->span(obs::Stage::kOrdered, request.payload, cfg_.obs_member);
    }
    // Retire the request from the pending backlog (it is now ordered).
    std::erase_if(pending_, [&](const ClientRequest& r) {
        return r.origin == request.origin && r.origin_seq == request.origin_seq;
    });
    PbftDelivery d;
    d.seq = seq;
    d.request = request;
    out.emplace_back(cfg_.delivery, "deliver", d.encode());
}

// ---------------------------------------------------------------------------
// Checkpointing, log truncation and state-transfer recovery
// ---------------------------------------------------------------------------

void PbftReplica::note_log_occupancy() {
    if (slots_.size() > log_slots_retained_) log_slots_retained_ = slots_.size();
}

void PbftReplica::maybe_checkpoint(std::uint64_t seq, Out& out) {
    if (cfg_.checkpoint_interval == 0 || seq % cfg_.checkpoint_interval != 0) return;
    // Snapshot the app at this delivery watermark and seek a quorum on its
    // digest; the snapshot is retained locally until the watermark turns
    // stable (or a later one supersedes it).
    ByteWriter dw;
    dw.u64(app_.digest());
    Bytes digest = dw.take();
    checkpoint_snapshots_[seq] = app_.snapshot();
    ++checkpoints_taken_;

    PbftMessage cp;
    cp.kind = PbftKind::kCheckpoint;
    cp.sender = cfg_.self;
    cp.view = view_;
    cp.seq = seq;
    cp.digest = digest;
    broadcast(cp, out);
    checkpoint_votes_[{seq, digest}].insert(cfg_.self);
    maybe_stabilize(seq, digest);
}

void PbftReplica::on_checkpoint(const PbftMessage& msg, Out& out) {
    (void)out;
    if (msg.seq <= stable_checkpoint_) return;
    checkpoint_votes_[{msg.seq, msg.digest}].insert(msg.sender);
    maybe_stabilize(msg.seq, msg.digest);
}

void PbftReplica::maybe_stabilize(std::uint64_t seq, const Bytes& digest) {
    const auto votes = checkpoint_votes_.find({seq, digest});
    if (votes == checkpoint_votes_.end() || votes->second.size() < 2 * f() + 1) return;
    // Truncation is only safe once *this* replica has delivered through seq
    // and holds the matching snapshot; a lagging replica re-checks when its
    // own checkpoint at seq forms.
    if (!votes->second.contains(cfg_.self)) return;
    const auto snap = checkpoint_snapshots_.find(seq);
    if (snap == checkpoint_snapshots_.end()) return;
    stable_checkpoint_ = seq;
    stable_snapshot_ = snap->second;
    // The fix for the unbounded ordered log: drop every slot at or below the
    // stable watermark — its effect lives on in the stable snapshot.
    const auto first_kept = slots_.upper_bound(seq);
    log_slots_truncated_ +=
        static_cast<std::uint64_t>(std::distance(slots_.begin(), first_kept));
    slots_.erase(slots_.begin(), first_kept);
    checkpoint_snapshots_.erase(checkpoint_snapshots_.begin(),
                                checkpoint_snapshots_.upper_bound(seq));
    for (auto it = checkpoint_votes_.begin(); it != checkpoint_votes_.end();) {
        it = it->first.first <= seq ? checkpoint_votes_.erase(it) : std::next(it);
    }
}

void PbftReplica::begin_recovery(Out& out) {
    // A recovering replica's log, backlog and app state are untrusted: wipe
    // them and rebuild from a peer's stable snapshot + committed suffix.
    recovering_ = true;
    slots_.clear();
    pending_.clear();
    seen_requests_.clear();
    view_change_votes_.clear();
    checkpoint_snapshots_.clear();
    checkpoint_votes_.clear();
    stable_checkpoint_ = 0;
    stable_snapshot_.clear();
    next_assign_ = 1;
    next_deliver_ = 1;
    app_ = app::KvStore(cfg_.checkpoint_interval);
    if (cfg_.obs != nullptr) {
        cfg_.obs->note(cfg_.obs_member, "pbft replica requests state transfer");
    }
    PbftMessage req;
    req.kind = PbftKind::kStateRequest;
    req.sender = cfg_.self;
    req.view = view_;
    broadcast(req, out);
}

void PbftReplica::serve_state(ReplicaId requester, Out& out) {
    if (requester == cfg_.self) return;
    RecoveryState st;
    st.view = view_;
    st.snapshot_watermark = stable_checkpoint_;
    st.last_delivered = next_deliver_ - 1;
    if (stable_checkpoint_ != 0) st.app_snapshot = stable_snapshot_;
    for (std::uint64_t seq = stable_checkpoint_ + 1; seq < next_deliver_; ++seq) {
        const auto it = slots_.find(seq);
        if (it == slots_.end() || !it->second.delivered) return;  // gap: cannot serve
        st.suffix.emplace_back(seq, it->second.request);
    }
    ++state_transfers_served_;
    PbftMessage reply;
    reply.kind = PbftKind::kStateReply;
    reply.sender = cfg_.self;
    reply.view = view_;
    reply.seq = st.last_delivered;
    reply.request.origin = cfg_.self;
    reply.request.payload = st.encode();
    send_to(requester, reply, out);
}

void PbftReplica::on_state_reply(const PbftMessage& msg, Out& out) {
    if (!recovering_) return;  // first valid reply wins
    auto decoded = RecoveryState::decode(msg.request.payload);
    if (!decoded.has_value()) return;
    const RecoveryState& st = decoded.value();
    app::KvStore restored(cfg_.checkpoint_interval);
    if (st.snapshot_watermark != 0 && !restored.restore(st.app_snapshot).has_value()) {
        return;  // corrupt snapshot: wait for another peer's reply
    }
    // Tell the delivery sink where the replayed stream restarts BEFORE any
    // replayed delivery reaches it: it resets its re-sequencer to S+1.
    ByteWriter w;
    w.u64(st.snapshot_watermark);
    out.emplace_back(cfg_.delivery, "recovered", w.take());

    app_ = std::move(restored);
    stable_checkpoint_ = st.snapshot_watermark;
    stable_snapshot_ = st.app_snapshot;
    view_ = std::max(view_, st.view);
    next_deliver_ = st.snapshot_watermark + 1;
    recovering_ = false;
    for (const auto& [seq, req] : st.suffix) {
        seen_requests_.insert({req.origin, req.origin_seq});
        deliver(seq, req, out);
        next_deliver_ = seq + 1;
        maybe_checkpoint(seq, out);
    }
    next_assign_ = std::max(next_assign_, next_deliver_);
    ++recoveries_completed_;
    if (cfg_.obs != nullptr) {
        cfg_.obs->note(cfg_.obs_member,
                       "pbft replica rejoined at seq " + std::to_string(next_deliver_ - 1));
    }
}

void PbftReplica::broadcast(const PbftMessage& msg, Out& out) {
    fs::Outbound o;
    o.operation = "pbft";
    o.body = msg.encode();
    for (const auto& [r, dest] : cfg_.peers) {
        if (r != cfg_.self) o.dests.push_back(dest);
    }
    if (!o.dests.empty()) out.push_back(std::move(o));
}

void PbftReplica::send_to(ReplicaId r, const PbftMessage& msg, Out& out) {
    const auto it = cfg_.peers.find(r);
    if (it == cfg_.peers.end()) return;
    out.emplace_back(it->second, "pbft", msg.encode());
}

}  // namespace failsig::baseline
