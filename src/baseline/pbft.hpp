// Baseline comparator: a from-scratch authenticated-Byzantine total-order
// protocol in the style the paper contrasts itself against ([CL99] and the
// class of protocols it cites in §1): 3f+1 replicas, primary-assigned
// sequence numbers, and a three-phase exchange (pre-prepare, prepare,
// commit) with quorum 2f+1. Unlike the fail-signal approach it
//  * needs at least one extra communication round over a crash-tolerant
//    sequencer protocol, and
//  * relies on a *liveness* condition for termination: if the primary is
//    silent, progress resumes only after a timeout-triggered view change —
//    exactly the speculative-timeout dependence FS-NewTOP removes.
//
// The replica is a deterministic state machine (same style as
// newtop::GcService) so it can be driven by the simulator or in-memory.
// Input operations:
//   "request"  body = ClientRequest        (from the local application)
//   "pbft"     body = PbftMessage          (from a peer replica)
//   "timeout"  body = u64 view number      (liveness timer fired)
#pragma once

#include <map>
#include <set>
#include <utility>

#include "app/kv_store.hpp"
#include "fs/service.hpp"
#include "obs/obs.hpp"
#include "orb/request.hpp"

namespace failsig::baseline {

using ReplicaId = std::uint32_t;

enum class PbftKind : std::uint8_t {
    kPrePrepare = 1,
    kPrepare = 2,
    kCommit = 3,
    kViewChange = 4,
    kNewView = 5,
    kCheckpoint = 6,    ///< replica took a checkpoint at seq (digest = app digest)
    kStateRequest = 7,  ///< recovering replica asks peers for a RecoveryState
    kStateReply = 8,    ///< RecoveryState carried in request.payload
};

struct ClientRequest {
    ReplicaId origin{0};
    std::uint64_t origin_seq{0};
    Bytes payload;

    /// Exact encoded size; hot encoders reserve() this up front.
    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<ClientRequest> decode(std::span<const std::uint8_t> data);
    friend bool operator==(const ClientRequest&, const ClientRequest&) = default;
};

struct PbftMessage {
    PbftKind kind{PbftKind::kPrePrepare};
    ReplicaId sender{0};
    std::uint64_t view{0};
    std::uint64_t seq{0};
    Bytes digest;            ///< MD5 of the request (binds phases together)
    ClientRequest request;   ///< carried in pre-prepare only

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<PbftMessage> decode(std::span<const std::uint8_t> data);
};

struct PbftConfig {
    ReplicaId self{0};
    std::uint32_t n{4};  ///< total replicas; tolerates f = (n-1)/3 faults
    std::map<ReplicaId, fs::Destination> peers;
    fs::Destination delivery;
    Duration protocol_op_cost{120 * kMicrosecond};
    /// Observability context (nullptr = off); write-only side channel, the
    /// state machine stays deterministic either way.
    obs::Obs* obs{nullptr};
    /// Member label for this replica's flight-recorder events.
    int obs_member{-1};
    /// Take an application checkpoint every this many delivered requests and
    /// truncate `slots_` at the stable watermark; 0 = off (the pre-existing
    /// unbounded-log behavior, byte-identical on the wire).
    std::uint64_t checkpoint_interval{0};
};

/// Everything a recovering replica needs to catch up: the latest stable
/// application snapshot plus the committed suffix above its watermark.
/// Carried in a kStateReply's request.payload.
struct RecoveryState {
    std::uint64_t view{0};
    /// Stable checkpoint watermark S (0 = no checkpoint yet; snapshot empty).
    std::uint64_t snapshot_watermark{0};
    /// Highest delivered sequence W at the serving replica.
    std::uint64_t last_delivered{0};
    /// app::KvStore snapshot at S (empty when S == 0).
    Bytes app_snapshot;
    /// Committed requests for (S, W], ascending by sequence.
    std::vector<std::pair<std::uint64_t, ClientRequest>> suffix;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<RecoveryState> decode(std::span<const std::uint8_t> data);
    friend bool operator==(const RecoveryState&, const RecoveryState&) = default;
};

/// What a replica hands to the application on commit.
struct PbftDelivery {
    std::uint64_t seq{0};
    ClientRequest request;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<PbftDelivery> decode(std::span<const std::uint8_t> data);
};

class PbftReplica final : public fs::DeterministicService {
public:
    explicit PbftReplica(PbftConfig config);

    std::vector<fs::Outbound> process(const std::string& operation, const Bytes& body) override;
    [[nodiscard]] Duration processing_cost(const std::string& operation,
                                           const Bytes& body) const override;

    [[nodiscard]] std::uint64_t view() const { return view_; }
    [[nodiscard]] ReplicaId primary() const { return static_cast<ReplicaId>(view_ % cfg_.n); }
    [[nodiscard]] bool is_primary() const { return primary() == cfg_.self; }
    [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
    [[nodiscard]] std::uint32_t f() const { return (cfg_.n - 1) / 3; }
    [[nodiscard]] std::uint64_t view_changes() const { return view_changes_; }

    /// Replicated application state (driven by the delivery path).
    [[nodiscard]] const app::KvStore& app() const { return app_; }
    /// Stable checkpoint watermark (sequences <= this are truncated).
    [[nodiscard]] std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }
    /// Current ordered-log occupancy.
    [[nodiscard]] std::size_t slots_live() const { return slots_.size(); }
    /// High-water mark of `slots_` occupancy — the boundedness witness: with
    /// checkpointing on, sustained load keeps this under a small multiple of
    /// the checkpoint interval instead of growing with the run.
    [[nodiscard]] std::uint64_t log_slots_retained() const { return log_slots_retained_; }
    [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
    [[nodiscard]] std::uint64_t log_slots_truncated() const { return log_slots_truncated_; }
    [[nodiscard]] std::uint64_t state_transfers_served() const { return state_transfers_served_; }
    [[nodiscard]] std::uint64_t recoveries_completed() const { return recoveries_completed_; }
    [[nodiscard]] bool recovering() const { return recovering_; }

private:
    using Out = std::vector<fs::Outbound>;

    struct Slot {
        bool pre_prepared{false};
        ClientRequest request;
        Bytes digest;
        std::set<ReplicaId> prepares;
        std::set<ReplicaId> commits;
        bool committed{false};
        bool delivered{false};
    };

    void on_request(const ClientRequest& request, Out& out);
    void on_pbft(const PbftMessage& msg, Out& out);
    void on_timeout(std::uint64_t view, Out& out);
    void maybe_checkpoint(std::uint64_t seq, Out& out);
    void on_checkpoint(const PbftMessage& msg, Out& out);
    void maybe_stabilize(std::uint64_t seq, const Bytes& digest);
    void begin_recovery(Out& out);
    void serve_state(ReplicaId requester, Out& out);
    void on_state_reply(const PbftMessage& msg, Out& out);
    void note_log_occupancy();
    void assign_and_prepreprepare(const ClientRequest& request, Out& out);
    void maybe_prepare(std::uint64_t seq, Out& out);
    void maybe_commit(std::uint64_t seq, Out& out);
    void try_deliver(Out& out);
    void broadcast(const PbftMessage& msg, Out& out);
    void send_to(ReplicaId r, const PbftMessage& msg, Out& out);
    void deliver(std::uint64_t seq, const ClientRequest& request, Out& out);

    PbftConfig cfg_;
    std::uint64_t view_{0};
    std::uint64_t next_assign_{1};
    std::uint64_t next_deliver_{1};
    std::map<std::uint64_t, Slot> slots_;  // keyed by seq (single view history)
    std::set<std::pair<ReplicaId, std::uint64_t>> seen_requests_;
    std::vector<ClientRequest> pending_;   // awaiting assignment (non-primary backlog)
    std::map<std::uint64_t, std::set<ReplicaId>> view_change_votes_;
    std::uint64_t delivered_count_{0};
    std::uint64_t view_changes_{0};

    // --- checkpoint / recovery state ---------------------------------------
    app::KvStore app_;
    std::uint64_t stable_checkpoint_{0};
    Bytes stable_snapshot_;
    /// Local snapshots awaiting stability, keyed by checkpoint seq.
    std::map<std::uint64_t, Bytes> checkpoint_snapshots_;
    /// Votes per (checkpoint seq, app digest) — digest-binding keeps a
    /// diverged replica from stabilizing the wrong state.
    std::map<std::pair<std::uint64_t, Bytes>, std::set<ReplicaId>> checkpoint_votes_;
    bool recovering_{false};
    std::uint64_t checkpoints_taken_{0};
    std::uint64_t log_slots_truncated_{0};
    std::uint64_t log_slots_retained_{0};
    std::uint64_t state_transfers_served_{0};
    std::uint64_t recoveries_completed_{0};
};

}  // namespace failsig::baseline
