// Baseline comparator: a from-scratch authenticated-Byzantine total-order
// protocol in the style the paper contrasts itself against ([CL99] and the
// class of protocols it cites in §1): 3f+1 replicas, primary-assigned
// sequence numbers, and a three-phase exchange (pre-prepare, prepare,
// commit) with quorum 2f+1. Unlike the fail-signal approach it
//  * needs at least one extra communication round over a crash-tolerant
//    sequencer protocol, and
//  * relies on a *liveness* condition for termination: if the primary is
//    silent, progress resumes only after a timeout-triggered view change —
//    exactly the speculative-timeout dependence FS-NewTOP removes.
//
// The replica is a deterministic state machine (same style as
// newtop::GcService) so it can be driven by the simulator or in-memory.
// Input operations:
//   "request"  body = ClientRequest        (from the local application)
//   "pbft"     body = PbftMessage          (from a peer replica)
//   "timeout"  body = u64 view number      (liveness timer fired)
#pragma once

#include <map>
#include <set>

#include "fs/service.hpp"
#include "obs/obs.hpp"
#include "orb/request.hpp"

namespace failsig::baseline {

using ReplicaId = std::uint32_t;

enum class PbftKind : std::uint8_t {
    kPrePrepare = 1,
    kPrepare = 2,
    kCommit = 3,
    kViewChange = 4,
    kNewView = 5,
};

struct ClientRequest {
    ReplicaId origin{0};
    std::uint64_t origin_seq{0};
    Bytes payload;

    /// Exact encoded size; hot encoders reserve() this up front.
    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<ClientRequest> decode(std::span<const std::uint8_t> data);
    friend bool operator==(const ClientRequest&, const ClientRequest&) = default;
};

struct PbftMessage {
    PbftKind kind{PbftKind::kPrePrepare};
    ReplicaId sender{0};
    std::uint64_t view{0};
    std::uint64_t seq{0};
    Bytes digest;            ///< MD5 of the request (binds phases together)
    ClientRequest request;   ///< carried in pre-prepare only

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<PbftMessage> decode(std::span<const std::uint8_t> data);
};

struct PbftConfig {
    ReplicaId self{0};
    std::uint32_t n{4};  ///< total replicas; tolerates f = (n-1)/3 faults
    std::map<ReplicaId, fs::Destination> peers;
    fs::Destination delivery;
    Duration protocol_op_cost{120 * kMicrosecond};
    /// Observability context (nullptr = off); write-only side channel, the
    /// state machine stays deterministic either way.
    obs::Obs* obs{nullptr};
    /// Member label for this replica's flight-recorder events.
    int obs_member{-1};
};

/// What a replica hands to the application on commit.
struct PbftDelivery {
    std::uint64_t seq{0};
    ClientRequest request;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<PbftDelivery> decode(std::span<const std::uint8_t> data);
};

class PbftReplica final : public fs::DeterministicService {
public:
    explicit PbftReplica(PbftConfig config);

    std::vector<fs::Outbound> process(const std::string& operation, const Bytes& body) override;
    [[nodiscard]] Duration processing_cost(const std::string& operation,
                                           const Bytes& body) const override;

    [[nodiscard]] std::uint64_t view() const { return view_; }
    [[nodiscard]] ReplicaId primary() const { return static_cast<ReplicaId>(view_ % cfg_.n); }
    [[nodiscard]] bool is_primary() const { return primary() == cfg_.self; }
    [[nodiscard]] std::uint64_t delivered_count() const { return delivered_count_; }
    [[nodiscard]] std::uint32_t f() const { return (cfg_.n - 1) / 3; }
    [[nodiscard]] std::uint64_t view_changes() const { return view_changes_; }

private:
    using Out = std::vector<fs::Outbound>;

    struct Slot {
        bool pre_prepared{false};
        ClientRequest request;
        Bytes digest;
        std::set<ReplicaId> prepares;
        std::set<ReplicaId> commits;
        bool committed{false};
        bool delivered{false};
    };

    void on_request(const ClientRequest& request, Out& out);
    void on_pbft(const PbftMessage& msg, Out& out);
    void on_timeout(std::uint64_t view, Out& out);
    void assign_and_prepreprepare(const ClientRequest& request, Out& out);
    void maybe_prepare(std::uint64_t seq, Out& out);
    void maybe_commit(std::uint64_t seq, Out& out);
    void try_deliver(Out& out);
    void broadcast(const PbftMessage& msg, Out& out);
    void send_to(ReplicaId r, const PbftMessage& msg, Out& out);
    void deliver(std::uint64_t seq, const ClientRequest& request, Out& out);

    PbftConfig cfg_;
    std::uint64_t view_{0};
    std::uint64_t next_assign_{1};
    std::uint64_t next_deliver_{1};
    std::map<std::uint64_t, Slot> slots_;  // keyed by seq (single view history)
    std::set<std::pair<ReplicaId, std::uint64_t>> seen_requests_;
    std::vector<ClientRequest> pending_;   // awaiting assignment (non-primary backlog)
    std::map<std::uint64_t, std::set<ReplicaId>> view_change_votes_;
    std::uint64_t delivered_count_{0};
    std::uint64_t view_changes_{0};
};

}  // namespace failsig::baseline
