#include "scenario/cli.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace failsig::scenario {

namespace {

void print_usage(const char* program, const std::string& extra) {
    std::printf(
        "usage: %s [options]\n"
        "  --groups a,b,c   group sizes to sweep (comma separated)\n"
        "  --messages N     messages multicast per member\n"
        "  --payload N      payload bytes per message (min 8)\n"
        "  --batch a,b,c    batch sizes to sweep (max requests per ordered\n"
        "                   unit; 1 = batching off)\n"
        "  --seed N         RNG seed\n"
        "  --jobs N         worker threads for independent runs (default:\n"
        "                   hardware concurrency; results are identical for any N)\n"
        "  --out PATH       write a JSON report to PATH\n"
        "  --metrics-out PATH  enable observability and write the metrics\n"
        "                   document (failsig-metrics-v1) to PATH; the main\n"
        "                   report bytes are unaffected\n"
        "  --backend B      execution backend: sim (default; deterministic,\n"
        "                   byte-reproducible reports) or tcp (real sockets\n"
        "                   on localhost; timing is wall-clock)\n"
        "  --only SUBSTR    run only campaigns whose name contains SUBSTR\n"
        "  --help           this text\n%s",
        program, extra.c_str());
}

bool parse_u64(const char* text, std::uint64_t& out) {
    // Digits only: strtoull would silently wrap "-1" to 2^64-1.
    if (*text == '\0') return false;
    for (const char* p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') return false;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

/// Strict positive-int parse: the whole token must be digits, so typos like
/// "4x8" are rejected instead of silently truncating to 4.
bool parse_positive_int(const std::string& token, int& out) {
    char* end = nullptr;
    const long v = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || v <= 0 || v > 1'000'000) return false;
    out = static_cast<int>(v);
    return true;
}

bool parse_int_list(const char* text, std::vector<int>& out) {
    std::string token;
    const std::string input = text;
    for (std::size_t i = 0; i <= input.size(); ++i) {
        if (i == input.size() || input[i] == ',') {
            int value = 0;
            if (!parse_positive_int(token, value)) return false;
            out.push_back(value);
            token.clear();
        } else {
            token += input[i];
        }
    }
    return !out.empty();
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, const std::string& extra_usage) {
    CliOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--help" || arg == "-h") {
            print_usage(argv[0], extra_usage);
            opts.help = true;
            return opts;
        }
        if (arg == "--groups" && has_value) {
            if (!parse_int_list(argv[++i], opts.group_sizes)) {
                std::fprintf(stderr, "%s: bad --groups value '%s'\n", argv[0], argv[i]);
                opts.error = true;
                return opts;
            }
        } else if (arg == "--messages" && has_value) {
            if (!parse_positive_int(argv[++i], opts.msgs_per_member)) {
                std::fprintf(stderr, "%s: bad --messages value '%s'\n", argv[0], argv[i]);
                opts.error = true;
                return opts;
            }
        } else if (arg == "--payload" && has_value) {
            // 16 MiB cap: each member materializes one payload per message,
            // so an unbounded size is an instant out-of-memory, not a sweep.
            constexpr std::uint64_t kMaxPayload = 16ull * 1024 * 1024;
            std::uint64_t v = 0;
            if (!parse_u64(argv[++i], v) || v == 0 || v > kMaxPayload) {
                std::fprintf(stderr, "%s: bad --payload value '%s'\n", argv[0], argv[i]);
                opts.error = true;
                return opts;
            }
            opts.payload_size = static_cast<std::size_t>(v);
        } else if (arg == "--batch" && has_value) {
            std::vector<int> sizes;
            if (!parse_int_list(argv[++i], sizes)) {
                std::fprintf(stderr, "%s: bad --batch value '%s'\n", argv[0], argv[i]);
                opts.error = true;
                return opts;
            }
            for (const int b : sizes) opts.batch_sizes.push_back(static_cast<std::size_t>(b));
        } else if (arg == "--seed" && has_value) {
            if (!parse_u64(argv[++i], opts.seed)) {
                std::fprintf(stderr, "%s: bad --seed value '%s'\n", argv[0], argv[i]);
                opts.error = true;
                return opts;
            }
            opts.seed_set = true;
        } else if (arg == "--jobs" && has_value) {
            if (!parse_positive_int(argv[++i], opts.jobs)) {
                std::fprintf(stderr, "%s: bad --jobs value '%s'\n", argv[0], argv[i]);
                opts.error = true;
                return opts;
            }
        } else if (arg == "--out" && has_value) {
            opts.out_path = argv[++i];
        } else if (arg == "--metrics-out" && has_value) {
            opts.metrics_out_path = argv[++i];
        } else if (arg == "--backend" && has_value) {
            opts.backend = argv[++i];
            if (opts.backend != "sim" && opts.backend != "tcp") {
                std::fprintf(stderr, "%s: bad --backend value '%s' (sim or tcp)\n",
                             argv[0], opts.backend.c_str());
                opts.error = true;
                return opts;
            }
        } else if (arg == "--only" && has_value) {
            opts.only = argv[++i];
        } else {
            std::fprintf(stderr, "%s: unknown or incomplete option '%s' (try --help)\n",
                         argv[0], arg.c_str());
            opts.error = true;
            return opts;
        }
    }
    return opts;
}

}  // namespace failsig::scenario
