#include "scenario/report.hpp"

#include <cinttypes>
#include <cstdio>

namespace failsig::scenario {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonWriter::comma() {
    if (!first_in_scope_.back()) out_ += ",";
    first_in_scope_.back() = false;
}

void JsonWriter::raw(const std::string& s) { out_ += s; }

void JsonWriter::begin_object() {
    if (!pending_key_) comma();
    pending_key_ = false;
    raw("{");
    first_in_scope_.push_back(true);
}

void JsonWriter::end_object() {
    raw("}");
    first_in_scope_.pop_back();
}

void JsonWriter::begin_array(const std::string& k) {
    if (!k.empty()) key(k);
    if (!pending_key_) comma();
    pending_key_ = false;
    raw("[");
    first_in_scope_.push_back(true);
}

void JsonWriter::end_array() {
    raw("]");
    first_in_scope_.pop_back();
}

void JsonWriter::key(const std::string& k) {
    comma();
    raw("\"" + json_escape(k) + "\":");
    pending_key_ = true;
}

void JsonWriter::field(const std::string& k, const std::string& value) {
    key(k);
    pending_key_ = false;
    raw("\"" + json_escape(value) + "\"");
}

void JsonWriter::field(const std::string& k, const char* value) {
    field(k, std::string(value));
}

void JsonWriter::field(const std::string& k, double value) {
    key(k);
    pending_key_ = false;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    raw(buf);
}

void JsonWriter::field(const std::string& k, std::uint64_t value) {
    key(k);
    pending_key_ = false;
    raw(std::to_string(value));
}

void JsonWriter::field(const std::string& k, std::int64_t value) {
    key(k);
    pending_key_ = false;
    raw(std::to_string(value));
}

void JsonWriter::field(const std::string& k, int value) {
    field(k, static_cast<std::int64_t>(value));
}

void JsonWriter::field(const std::string& k, bool value) {
    key(k);
    pending_key_ = false;
    raw(value ? "true" : "false");
}

std::string JsonWriter::take() { return std::move(out_); }

namespace {

const char* service_name(newtop::ServiceType service) {
    switch (service) {
        case newtop::ServiceType::kSymmetricTotalOrder: return "symmetric";
        case newtop::ServiceType::kAsymmetricTotalOrder: return "asymmetric";
        case newtop::ServiceType::kCausalOrder: return "causal";
        case newtop::ServiceType::kReliableMulticast: return "reliable";
        case newtop::ServiceType::kUnreliableMulticast: return "unreliable";
    }
    return "?";
}

void write_report(JsonWriter& w, const ScenarioReport& report) {
    const Scenario& s = report.scenario;
    w.begin_object();
    w.field("scenario", s.name);
    w.field("system", name_of(s.system));
    w.field("group_size", s.group_size);
    w.field("seed", static_cast<std::uint64_t>(s.seed));
    // The seeds-axis coordinates; for sweep cells `seed` above is the
    // per-cell derived hash, so notebooks group/join on these instead of
    // parsing "/s<N>" out of the name.
    w.field("seed_axis", report.from_sweep ? report.seed_axis
                                           : static_cast<std::uint64_t>(s.seed));
    w.field("seed_index", report.from_sweep ? report.seed_index : std::uint64_t{0});
    w.field("status", report.skipped ? "skipped" : "ok");
    if (report.skipped) w.field("skip_reason", report.skip_reason);

    w.key("workload");
    w.begin_object();
    w.field("msgs_per_member", s.workload.msgs_per_member);
    w.field("payload_size", static_cast<std::uint64_t>(s.workload.payload_size));
    w.field("send_interval_us", static_cast<std::int64_t>(s.workload.send_interval));
    w.field("service", service_name(s.workload.service));
    w.field("batch_max_requests", static_cast<std::uint64_t>(s.batch.max_requests));
    w.end_object();

    w.begin_array("events");
    for (const auto& e : s.timeline) {
        w.begin_object();
        w.field("at_us", static_cast<std::int64_t>(e.at));
        w.field("event", e.describe());
        w.end_object();
    }
    w.end_array();

    const auto& m = report.metrics;
    w.key("metrics");
    w.begin_object();
    w.field("mean_latency_ms", m.mean_latency_ms);
    w.field("p95_latency_ms", m.p95_latency_ms);
    w.field("throughput_msg_s", m.throughput_msg_s);
    w.field("network_messages", m.network_messages);
    w.field("network_bytes", m.network_bytes);
    w.field("messages_sent", m.messages_sent);
    w.field("observed_deliveries", m.observed_deliveries);
    w.field("expected_deliveries", m.expected_deliveries);
    w.field("views_installed", m.views_installed);
    w.field("fail_signal_events", m.fail_signal_events);
    w.field("fail_signals", m.fail_signals);
    w.field("requests_submitted", m.requests_submitted);
    w.field("requests_batched", m.requests_batched);
    w.field("batches_formed", m.batches_formed);
    w.field("flushes_on_deadline", m.flushes_on_deadline);
    w.field("finished_at_us", static_cast<std::int64_t>(m.finished_at));
    w.end_object();

    w.begin_array("invariants");
    for (const auto& inv : report.invariants) {
        w.begin_object();
        w.field("name", inv.name);
        w.field("passed", inv.passed);
        if (!inv.detail.empty()) w.field("detail", inv.detail);
        w.end_object();
    }
    w.end_array();
    // Skipped cells never ran their checkers: omit the verdict rather than
    // let the vacuous empty-invariants "pass" inflate gate pass rates.
    if (!report.skipped) w.field("all_invariants_passed", report.all_invariants_passed());
    w.field("trace_events", static_cast<std::uint64_t>(report.trace.size()));
    w.end_object();
}

}  // namespace

std::string to_json(const std::vector<ScenarioReport>& reports) {
    JsonWriter w;
    w.begin_object();
    w.field("format", "failsig-scenario-report-v1");
    w.begin_array("reports");
    for (const auto& report : reports) write_report(w, report);
    w.end_array();
    w.end_object();
    return w.take() + "\n";
}

std::string to_csv(const std::vector<ScenarioReport>& reports) {
    std::string out =
        "scenario,system,group_size,seed,seed_axis,seed_index,"
        "mean_latency_ms,p95_latency_ms,throughput_msg_s,"
        "network_messages,network_bytes,messages_sent,observed_deliveries,expected_deliveries,"
        "views_installed,fail_signal_events,"
        "requests_submitted,requests_batched,batches_formed,flushes_on_deadline,"
        "invariants_passed,status\n";
    for (const auto& report : reports) {
        const auto& s = report.scenario;
        const auto& m = report.metrics;
        // Names and skip reasons are free text (scenario authors and fourth
        // systems supply them); keep the row's column and line structure
        // intact without CSV quoting, and never bound the row length — only
        // the numeric middle goes through a fixed snprintf buffer.
        const auto csv_field = [](std::string text) {
            for (char& c : text) {
                if (c == ',') c = ';';
                if (c == '\n' || c == '\r') c = ' ';
            }
            return text;
        };
        const std::string name = csv_field(s.name);
        const std::string status =
            csv_field(report.skipped ? "skipped(" + report.skip_reason + ")" : "ok");
        const std::uint64_t seed_axis =
            report.from_sweep ? report.seed_axis : static_cast<std::uint64_t>(s.seed);
        const std::uint64_t seed_index = report.from_sweep ? report.seed_index : 0;
        char nums[512];
        std::snprintf(nums, sizeof nums,
                      "%d,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%.3f,%.3f,%.2f,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64,
                      s.group_size, static_cast<std::uint64_t>(s.seed), seed_axis, seed_index,
                      m.mean_latency_ms, m.p95_latency_ms,
                      m.throughput_msg_s, m.network_messages, m.network_bytes, m.messages_sent,
                      m.observed_deliveries, m.expected_deliveries, m.views_installed,
                      m.fail_signal_events, m.requests_submitted, m.requests_batched,
                      m.batches_formed, m.flushes_on_deadline);
        out += name;
        out += ",";
        out += name_of(s.system);
        out += ",";
        out += nums;
        out += ",";
        out += report.skipped ? "n/a" : (report.all_invariants_passed() ? "yes" : "no");
        out += ",";
        out += status;
        out += "\n";
    }
    return out;
}

std::string metrics_document(const std::vector<ScenarioReport>& reports) {
    // Hand-assembled rather than JsonWriter-built: each per-run snapshot is
    // already a complete JSON object and must be embedded verbatim, byte for
    // byte, so the document stays diffable against single-run exports.
    std::string out = "{\n  \"format\": \"failsig-metrics-doc-v1\",\n  \"runs\": [";
    bool first = true;
    for (const auto& report : reports) {
        if (report.metrics_json.empty()) continue;
        if (!first) out += ",";
        first = false;
        out += "\n";
        out += report.metrics_json;
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

bool write_file(const std::string& path, const std::string& content) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "scenario: cannot open %s for writing\n", path.c_str());
        return false;
    }
    const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (written != content.size()) {
        std::fprintf(stderr, "scenario: short write to %s\n", path.c_str());
        return false;
    }
    return true;
}

void print_table(const std::vector<ScenarioReport>& reports) {
    std::printf("%-34s %-10s %4s %-10s %-10s %-11s %-6s %s\n", "scenario", "system", "n",
                "lat(ms)", "thru(m/s)", "deliveries", "fsig", "invariants");
    for (const auto& report : reports) {
        const auto& m = report.metrics;
        if (report.skipped) {
            std::printf("%-34s %-10s %4d %-10s %-10s %-11s %-6s skipped: %s\n",
                        report.scenario.name.c_str(), name_of(report.scenario.system),
                        report.scenario.group_size, "-", "-", "-", "-",
                        report.skip_reason.c_str());
            continue;
        }
        std::string verdict = report.all_invariants_passed() ? "all-pass" : "";
        if (verdict.empty()) {
            for (const auto& inv : report.invariants) {
                if (!inv.passed) {
                    if (!verdict.empty()) verdict += ",";
                    verdict += "FAIL:" + inv.name;
                }
            }
        }
        std::printf("%-34s %-10s %4d %-10.2f %-10.1f %5" PRIu64 "/%-5" PRIu64 " %-6s %s\n",
                    report.scenario.name.c_str(), name_of(report.scenario.system),
                    report.scenario.group_size, m.mean_latency_ms, m.throughput_msg_s,
                    m.observed_deliveries, m.expected_deliveries,
                    m.fail_signals ? "yes" : "no", verdict.c_str());
    }
}

}  // namespace failsig::scenario
