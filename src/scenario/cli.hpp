// Shared command-line parsing for the bench and example binaries.
//
// Every experiment binary accepts the same knobs (group sizes, message
// count, payload size, seed, report path) so sweeps are scriptable without
// editing hard-coded constants:
//     bench_fig7_throughput --groups 2,6,10 --messages 80 --seed 7 --out fig7.json
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace failsig::scenario {

struct CliOptions {
    std::vector<int> group_sizes;  ///< empty = binary default
    int msgs_per_member{0};        ///< 0 = binary default
    std::size_t payload_size{0};   ///< 0 = binary default
    /// Batch-size axis (BatchConfig::max_requests values); empty = binary
    /// default (usually batching off). 1 is a valid entry: "unbatched".
    std::vector<std::size_t> batch_sizes;
    std::uint64_t seed{0};
    bool seed_set{false};
    int jobs{0};           ///< sweep worker threads; 0 = hardware concurrency
    std::string out_path;  ///< empty = no report file
    /// Non-empty = enable observability on every run and write the combined
    /// metrics document (failsig-metrics-v1 snapshots) to this path. The
    /// main report stays byte-identical either way.
    std::string metrics_out_path;
    /// Execution backend: "" = binary default (the deterministic simulator),
    /// "sim" or "tcp" (real sockets on localhost; wall-clock timing,
    /// reports no longer byte-reproducible).
    std::string backend;
    /// Campaign/cell name filter: run only entries whose name contains this
    /// substring. Empty = run everything.
    std::string only;
    bool help{false};      ///< --help given: usage already printed
    bool error{false};     ///< bad flag/value: message already printed
};

/// Parses --groups a,b,c / --messages N / --payload N / --batch a,b,c /
/// --seed N / --jobs N / --out PATH / --backend sim|tcp / --only SUBSTR /
/// --help. `extra_usage` is appended to the usage text.
/// Callers should exit 0 on `.help` and exit 1 on `.error`.
CliOptions parse_cli(int argc, char** argv, const std::string& extra_usage = "");

}  // namespace failsig::scenario
