// Pluggable correctness invariants evaluated over a scenario trace.
//
// Each checker encodes one property the paper argues for (or a pathology it
// argues against):
//   * agreement            — all correct members deliver consistent
//                            sequences (prefix-identical under total order;
//                            per-sender FIFO otherwise);
//   * validity             — on fault-free runs, everything sent is
//                            delivered by every member;
//   * view-convergence     — correct members end in the same view;
//   * no-delivery-from-excluded — nothing multicast by an excluded member
//                            after its exclusion is delivered;
//   * no-false-exclusion   — excluded members were genuinely faulted; this
//                            is the membership-level form of "fail-signal
//                            implies actual fault" and is exactly what a
//                            delay surge violates on crash-tolerant NewTOP
//                            (false suspicions) but never on FS-NewTOP;
//   * fail-signal-implies-fault — FS-NewTOP: only faulted pairs signal.
//
// Checkers are pure functions of (Scenario, Trace), so they run identically
// on live runs, recorded traces, and sweep reports.
#pragma once

#include <memory>

#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace failsig::scenario {

struct InvariantResult {
    std::string name;
    bool passed{false};
    std::string detail;  ///< empty on pass; what went wrong on failure
};

class Invariant {
public:
    virtual ~Invariant() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    /// Whether the property is meaningful for this scenario (e.g. validity
    /// only holds on fault-free runs; view checks need a membership layer).
    [[nodiscard]] virtual bool applicable(const Scenario& scenario) const = 0;
    [[nodiscard]] virtual InvariantResult check(const Scenario& scenario,
                                                const Trace& trace) const = 0;
};

/// The built-in checker set described above.
const std::vector<std::unique_ptr<Invariant>>& builtin_invariants();

/// Runs every applicable checker from `checkers` (or the built-ins when the
/// overload without a list is used) and returns one result per checker.
std::vector<InvariantResult> evaluate(const Scenario& scenario, const Trace& trace);
std::vector<InvariantResult> evaluate(const Scenario& scenario, const Trace& trace,
                                      const std::vector<const Invariant*>& checkers);

/// True when every result passed.
bool all_passed(const std::vector<InvariantResult>& results);

/// The result for a named checker, or nullptr when it did not run.
const InvariantResult* find_result(const std::vector<InvariantResult>& results,
                                   const std::string& name);

}  // namespace failsig::scenario
