// Report output for scenario runs and sweeps.
//
// One format for everything downstream: the scenario_runner example, the
// figure/ablation benches (--out), and future CI regression gates all emit
// the same JSON (machine) and CSV (spreadsheet) renderings of
// `ScenarioReport`s, so a result file is comparable no matter which binary
// produced it.
#pragma once

#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace failsig::scenario {

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string json_escape(const std::string& s);

/// Minimal JSON document builder (objects/arrays/fields); enough for the
/// report shapes here and the benches' custom tables without dragging in a
/// JSON library the container may not have.
class JsonWriter {
public:
    void begin_object();
    void end_object();
    void begin_array(const std::string& key = "");
    void end_array();
    void key(const std::string& k);
    void field(const std::string& k, const std::string& value);
    void field(const std::string& k, const char* value);
    void field(const std::string& k, double value);
    void field(const std::string& k, std::uint64_t value);
    void field(const std::string& k, std::int64_t value);
    void field(const std::string& k, int value);
    void field(const std::string& k, bool value);

    [[nodiscard]] std::string take();

private:
    void comma();
    void raw(const std::string& s);

    std::string out_;
    std::vector<bool> first_in_scope_{true};
    bool pending_key_{false};
};

/// Full machine-readable report: scenario spec summary, metrics, invariant
/// verdicts. The trace itself is summarised (event count), not inlined.
std::string to_json(const std::vector<ScenarioReport>& reports);

/// One row per report; header included.
std::string to_csv(const std::vector<ScenarioReport>& reports);

/// Writes `content` to `path`; returns false (and prints to stderr) on I/O
/// failure.
bool write_file(const std::string& path, const std::string& content);

/// Aggregated observability document ("failsig-metrics-doc-v1"): one entry
/// per run that collected metrics (reports without metrics_json are
/// skipped), each embedding its failsig-metrics-v1 snapshot verbatim.
/// Deterministic: entries follow report order, snapshots are sim-tick
/// stamped, so the document is byte-identical at any --jobs count.
std::string metrics_document(const std::vector<ScenarioReport>& reports);

/// Prints a one-line-per-report summary table to stdout.
void print_table(const std::vector<ScenarioReport>& reports);

}  // namespace failsig::scenario
