#include "scenario/runner.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "baseline/deployment.hpp"
#include "common/result.hpp"
#include "fsnewtop/deployment.hpp"
#include "newtop/deployment.hpp"
#include "sim/stats.hpp"

namespace failsig::scenario {

namespace {

/// Payload: 8-byte (sender, seq) tag padded to the requested size — the
/// same wire shape the paper benches use, so latency can be attributed to
/// individual multicasts at every member.
Bytes make_payload(std::uint32_t sender, std::uint32_t seq, std::size_t size) {
    ByteWriter w;
    w.u32(sender);
    w.u32(seq);
    Bytes out = w.take();
    if (out.size() < size) out.resize(size, 0x5a);
    return out;
}

/// Mutable state shared by the workload scheduler, the observer hooks and
/// the metric computation of one run.
struct RunState {
    const Scenario& s;
    Trace trace;
    sim::Stats latencies_ms;
    std::map<std::pair<std::uint32_t, std::uint32_t>, TimePoint> sent_at;
    TimePoint first_send{0};
    TimePoint last_delivery{0};
    std::uint64_t sent_count{0};
    std::uint64_t delivery_count{0};
    std::vector<std::uint32_t> next_seq;

    explicit RunState(const Scenario& scenario)
        : s(scenario), next_seq(static_cast<std::size_t>(scenario.group_size), 0) {}

    void on_sent(int member, std::uint32_t seq, TimePoint now) {
        if (sent_count == 0) first_send = now;
        ++sent_count;
        sent_at[{static_cast<std::uint32_t>(member), seq}] = now;
        TraceEvent e;
        e.kind = TraceEvent::Kind::kSent;
        e.at = now;
        e.member = member;
        e.sender = static_cast<std::uint32_t>(member);
        e.seq = seq;
        trace.record(std::move(e));
    }

    void on_delivered(int member, const Bytes& payload, TimePoint now) {
        if (payload.size() < 8) return;
        ByteReader r(payload);
        const auto sender = r.u32();
        const auto seq = r.u32();
        TraceEvent e;
        e.kind = TraceEvent::Kind::kDelivered;
        e.at = now;
        e.member = member;
        e.sender = sender;
        e.seq = seq;
        trace.record(std::move(e));
        ++delivery_count;
        last_delivery = std::max(last_delivery, now);
        const auto it = sent_at.find({sender, seq});
        if (it != sent_at.end()) {
            latencies_ms.add(static_cast<double>(now - it->second) / kMillisecond);
        }
    }

    void on_view(int member, const newtop::GroupView& view, TimePoint now) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kViewInstalled;
        e.at = now;
        e.member = member;
        e.seq = view.view_id;
        e.view_members = view.members;
        e.detail = "view_id=" + std::to_string(view.view_id);
        trace.record(std::move(e));
    }

    void on_fail_signal(int member, const std::string& name, const std::string& reason,
                        TimePoint now) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kFailSignal;
        e.at = now;
        e.member = member;
        e.detail = name + ": " + reason;
        trace.record(std::move(e));
    }

    void on_middleware_failure(int member, const std::string& fs_name, TimePoint now) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kMiddlewareFailure;
        e.at = now;
        e.member = member;
        e.detail = fs_name;
        trace.record(std::move(e));
    }
};

using SendFn = std::function<void(int member, Bytes payload)>;

void fire_send(RunState& st, sim::Simulation& sim, int member, const SendFn& send) {
    const std::uint32_t seq = st.next_seq[static_cast<std::size_t>(member)]++;
    Bytes payload = make_payload(static_cast<std::uint32_t>(member), seq,
                                 std::max<std::size_t>(st.s.workload.payload_size, 8));
    st.on_sent(member, seq, sim.now());
    send(member, std::move(payload));
}

/// Members are staggered across the send interval, as independent
/// applications would be (identical to the figure benches' injection).
void schedule_workload(sim::Simulation& sim, RunState& st, const SendFn& send) {
    const auto& w = st.s.workload;
    const int n = st.s.group_size;
    for (int k = 0; k < w.msgs_per_member; ++k) {
        for (int i = 0; i < n; ++i) {
            const TimePoint at = static_cast<TimePoint>(k) * w.send_interval +
                                 (static_cast<TimePoint>(i) * w.send_interval) / n;
            sim.schedule_at(at, [&st, &sim, &send, i] { fire_send(st, sim, i, send); });
        }
    }
}

/// System-specific handlers for the timeline events; null entries record a
/// not-applicable note instead of acting (e.g. FaultPlans on systems with
/// no fail-signal layer).
struct SystemHooks {
    net::SimNetwork* net{nullptr};
    std::function<void(int member)> crash;
    std::function<void(const ScenarioEvent&)> fault;
    std::function<void(const std::vector<std::vector<int>>&)> partition;
    std::function<void()> fire_timeouts;
};

void schedule_timeline(sim::Simulation& sim, RunState& st, const SystemHooks& hooks,
                       const SendFn& send) {
    for (const auto& event : st.s.timeline) {
        sim.schedule_at(event.at, [&st, &sim, &hooks, &send, event] {
            TraceEvent te;
            te.kind = TraceEvent::Kind::kScenarioEvent;
            te.at = sim.now();
            te.member = event.member;
            te.detail = event.describe();
            using Kind = ScenarioEvent::Kind;
            switch (event.kind) {
                case Kind::kCrashMember:
                    hooks.crash(event.member);
                    break;
                case Kind::kFaultPlan:
                    if (hooks.fault) {
                        hooks.fault(event);
                    } else {
                        te.detail += " [ignored: no fail-signal layer]";
                    }
                    break;
                case Kind::kDelaySurge:
                    hooks.net->delay_surge(event.surge_extra, event.surge_until);
                    break;
                case Kind::kPartition:
                    hooks.partition(event.groups);
                    break;
                case Kind::kHealPartition:
                    hooks.net->heal_partition();
                    break;
                case Kind::kDropProbability:
                    hooks.net->set_drop_probability(event.drop_probability);
                    break;
                case Kind::kBurst:
                    for (int b = 0; b < event.burst_messages; ++b) {
                        fire_send(st, sim, event.member, send);
                    }
                    break;
                case Kind::kFireTimeouts:
                    if (hooks.fire_timeouts) {
                        hooks.fire_timeouts();
                    } else {
                        te.detail += " [ignored: no liveness timers]";
                    }
                    break;
            }
            st.trace.record(std::move(te));
        });
    }
}

/// Runs the simulation: to quiescence when possible, otherwise to the
/// (possibly derived) deadline plus a bounded settle window — perpetual
/// event loops (suspector pings, spontaneous fail-signals) can therefore
/// never wedge a run.
template <typename StopPerpetualFn>
void drive(sim::Simulation& sim, const Scenario& s, StopPerpetualFn&& stop_perpetual) {
    TimePoint deadline = s.deadline;
    if (deadline == 0 && s.has_perpetual_activity()) {
        deadline = s.workload_end() + 10 * kSecond;
    }
    if (deadline == 0) {
        sim.run();
        return;
    }
    sim.run_until(deadline);
    stop_perpetual();
    sim.run_until(deadline + s.settle);
}

ScenarioReport finish(RunState& st, net::SimNetwork& net, TimePoint now) {
    ScenarioReport report;
    report.scenario = st.s;
    report.trace = std::move(st.trace);

    auto& m = report.metrics;
    m.mean_latency_ms = st.latencies_ms.mean();
    m.p95_latency_ms = st.latencies_ms.percentile(0.95);
    const double makespan_s = static_cast<double>(st.last_delivery - st.first_send) / kSecond;
    m.throughput_msg_s =
        makespan_s > 0 ? static_cast<double>(st.sent_count) / makespan_s : 0.0;
    m.network_messages = net.messages_sent();
    m.network_bytes = net.bytes_sent();
    m.messages_sent = st.sent_count;
    m.observed_deliveries = st.delivery_count;
    m.expected_deliveries = st.sent_count * static_cast<std::uint64_t>(st.s.group_size);
    m.views_installed = report.trace.count(TraceEvent::Kind::kViewInstalled);
    m.fail_signal_events = report.trace.count(TraceEvent::Kind::kFailSignal) +
                           report.trace.count(TraceEvent::Kind::kMiddlewareFailure);
    m.fail_signals = m.fail_signal_events > 0;
    m.finished_at = now;

    report.invariants = evaluate(report.scenario, report.trace);
    return report;
}

// ---------------------------------------------------------------------------
// Crash-tolerant NewTOP
// ---------------------------------------------------------------------------

ScenarioReport run_newtop(const Scenario& s) {
    newtop::NewTopOptions opts;
    opts.group_size = s.group_size;
    opts.threads_per_node = s.threads_per_node;
    opts.seed = s.seed;
    opts.start_suspectors = s.start_suspectors;
    opts.suspector = s.suspector;
    newtop::NewTopDeployment d(opts);
    RunState st(s);

    for (int i = 0; i < s.group_size; ++i) {
        d.invocation(i).on_delivery([&st, &d, i](const newtop::Delivery& dl) {
            st.on_delivered(i, dl.payload, d.sim().now());
        });
        d.invocation(i).on_view([&st, &d, i](const newtop::GroupView& v) {
            st.on_view(i, v, d.sim().now());
        });
    }

    const SendFn send = [&d, &s](int member, Bytes payload) {
        d.invocation(member).multicast(s.workload.service, std::move(payload));
    };

    SystemHooks hooks;
    hooks.net = &d.network();
    hooks.crash = [&d, &s](int member) {
        // A crashed host stops talking to everyone; its suspector peers see
        // silence and (correctly) suspect it.
        for (int j = 0; j < s.group_size; ++j) {
            if (j != member) d.network().block(d.node_of(member), d.node_of(j));
        }
    };
    hooks.partition = [&d](const std::vector<std::vector<int>>& groups) {
        std::vector<std::set<NodeId>> node_groups;
        for (const auto& group : groups) {
            std::set<NodeId> nodes;
            for (const int m : group) nodes.insert(d.node_of(m));
            node_groups.push_back(std::move(nodes));
        }
        d.network().partition(node_groups);
    };

    schedule_workload(d.sim(), st, send);
    schedule_timeline(d.sim(), st, hooks, send);
    drive(d.sim(), s, [&d] { d.stop_suspectors(); });
    return finish(st, d.network(), d.sim().now());
}

// ---------------------------------------------------------------------------
// FS-NewTOP
// ---------------------------------------------------------------------------

ScenarioReport run_fsnewtop(const Scenario& s) {
    // Crashes and partitions act on hosts. Under the collocated placement
    // (Figure 5) every host is shared between two pairs — member i's leader
    // and member i-1's follower — so a host-level event would sever healthy
    // pairs and produce fail-signals the invariants would (rightly) flag as
    // false. Only the dedicated-node placement expresses these events.
    const bool has_host_event = std::any_of(
        s.timeline.begin(), s.timeline.end(), [](const ScenarioEvent& e) {
            return e.kind == ScenarioEvent::Kind::kCrashMember ||
                   e.kind == ScenarioEvent::Kind::kPartition;
        });
    ensure(!has_host_event || s.placement == fsnewtop::Placement::kFull,
           "scenario: crash/partition events on FS-NewTOP need Placement::kFull "
           "(collocated hosts are shared between pairs)");

    fsnewtop::FsNewTopOptions opts;
    opts.group_size = s.group_size;
    opts.threads_per_node = s.threads_per_node;
    opts.seed = s.seed;
    opts.placement = s.placement;
    opts.fs_config = s.fs_config;
    fsnewtop::FsNewTopDeployment d(opts);
    RunState st(s);

    for (int i = 0; i < s.group_size; ++i) {
        d.invocation(i).on_delivery([&st, &d, i](const newtop::Delivery& dl) {
            st.on_delivered(i, dl.payload, d.sim().now());
        });
        d.invocation(i).on_view([&st, &d, i](const newtop::GroupView& v) {
            st.on_view(i, v, d.sim().now());
        });
        d.invocation(i).on_middleware_failure([&st, &d, i](const std::string& fs_name) {
            st.on_middleware_failure(i, fs_name, d.sim().now());
        });
        const auto observer = [&st, &d, i](const std::string& name, const std::string& reason) {
            st.on_fail_signal(i, name, reason, d.sim().now());
        };
        d.leader_fso(i).set_fail_signal_observer(observer);
        d.follower_fso(i).set_fail_signal_observer(observer);
    }

    const SendFn send = [&d, &s](int member, Bytes payload) {
        d.invocation(member).multicast(s.workload.service, std::move(payload));
    };

    SystemHooks hooks;
    hooks.net = &d.network();
    hooks.crash = [&d](int member) {
        // Killing the pair's synchronous link is the FS-level crash: the
        // pair can no longer self-check and announces its own failure —
        // no timeout guessing at the other members.
        d.network().block(d.leader_node_of(member), d.follower_node_of(member));
    };
    hooks.fault = [&d](const ScenarioEvent& e) {
        fs::Fso& target = e.pair_node == PairNode::kLeader ? d.leader_fso(e.member)
                                                           : d.follower_fso(e.member);
        target.set_fault_plan(e.fault_plan);
    };
    hooks.partition = [&d](const std::vector<std::vector<int>>& groups) {
        // kFull only (enforced above): a member's side of the cut is its app
        // host plus both of its pair's dedicated nodes, so no pair straddles
        // the partition.
        std::vector<std::set<NodeId>> node_groups;
        for (const auto& group : groups) {
            std::set<NodeId> nodes;
            for (const int m : group) {
                nodes.insert(d.app_node_of(m));
                nodes.insert(d.leader_node_of(m));
                nodes.insert(d.follower_node_of(m));
            }
            node_groups.push_back(std::move(nodes));
        }
        d.network().partition(node_groups);
    };

    schedule_workload(d.sim(), st, send);
    schedule_timeline(d.sim(), st, hooks, send);
    drive(d.sim(), s, [] {});
    return finish(st, d.network(), d.sim().now());
}

// ---------------------------------------------------------------------------
// PBFT baseline
// ---------------------------------------------------------------------------

ScenarioReport run_pbft(const Scenario& s) {
    ensure(s.group_size >= 4, "scenario: PBFT needs group_size >= 4 (3f+1)");
    baseline::PbftOptions opts;
    opts.replicas = static_cast<std::uint32_t>(s.group_size);
    opts.threads_per_node = s.threads_per_node;
    opts.seed = s.seed;
    baseline::PbftDeployment d(opts);
    RunState st(s);

    d.on_delivery([&st, &d](baseline::ReplicaId replica, const baseline::PbftDelivery& del) {
        st.on_delivered(static_cast<int>(replica), del.request.payload, d.sim().now());
    });

    const SendFn send = [&d](int member, Bytes payload) {
        d.submit(static_cast<baseline::ReplicaId>(member), std::move(payload));
    };

    SystemHooks hooks;
    hooks.net = &d.network();
    hooks.crash = [&d, &s](int member) {
        const auto r = static_cast<baseline::ReplicaId>(member);
        for (int j = 0; j < s.group_size; ++j) {
            if (j != member) {
                d.network().block(d.node_of(r), d.node_of(static_cast<baseline::ReplicaId>(j)));
            }
        }
    };
    hooks.partition = [&d](const std::vector<std::vector<int>>& groups) {
        std::vector<std::set<NodeId>> node_groups;
        for (const auto& group : groups) {
            std::set<NodeId> nodes;
            for (const int m : group) nodes.insert(d.node_of(static_cast<baseline::ReplicaId>(m)));
            node_groups.push_back(std::move(nodes));
        }
        d.network().partition(node_groups);
    };
    hooks.fire_timeouts = [&d] { d.fire_timeouts(); };

    schedule_workload(d.sim(), st, send);
    schedule_timeline(d.sim(), st, hooks, send);
    drive(d.sim(), s, [] {});
    return finish(st, d.network(), d.sim().now());
}

}  // namespace

ScenarioReport run_scenario(const Scenario& scenario) {
    ensure(scenario.group_size >= 1, "scenario: group_size must be >= 1");
    switch (scenario.system) {
        case SystemKind::kNewTop: return run_newtop(scenario);
        case SystemKind::kFsNewTop: return run_fsnewtop(scenario);
        case SystemKind::kPbft: return run_pbft(scenario);
    }
    ensure(false, "scenario: unknown system");
    return {};
}

std::vector<ScenarioReport> run_sweep(const SweepSpec& spec) {
    const std::vector<SystemKind> systems =
        spec.systems.empty() ? std::vector<SystemKind>{spec.base.system} : spec.systems;
    const std::vector<int> group_sizes =
        spec.group_sizes.empty() ? std::vector<int>{spec.base.group_size} : spec.group_sizes;
    const std::vector<std::uint64_t> seeds =
        spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed} : spec.seeds;

    std::vector<ScenarioReport> reports;
    for (const SystemKind system : systems) {
        for (const int n : group_sizes) {
            if (system == SystemKind::kPbft && n < 4) continue;  // 3f+1 floor
            for (const std::uint64_t seed : seeds) {
                Scenario scenario = spec.base;
                scenario.system = system;
                scenario.group_size = n;
                scenario.seed = seed;
                scenario.name = spec.base.name + "/" + name_of(system) + "/n" +
                                std::to_string(n) + "/s" + std::to_string(seed);
                reports.push_back(run_scenario(scenario));
            }
        }
    }
    return reports;
}

}  // namespace failsig::scenario
