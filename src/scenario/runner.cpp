#include "scenario/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "deploy/deployment.hpp"
#include "sim/stats.hpp"

namespace failsig::scenario {

namespace {

/// Payload: 8-byte (sender, seq) tag padded to the requested size — the
/// same wire shape the paper benches use, so latency can be attributed to
/// individual multicasts at every member.
Bytes make_payload(std::uint32_t sender, std::uint32_t seq, std::size_t size) {
    ByteWriter w;
    w.u32(sender);
    w.u32(seq);
    Bytes out = w.take();
    if (out.size() < size) out.resize(size, 0x5a);
    return out;
}

/// Mutable state shared by the workload scheduler, the observer hooks and
/// the metric computation of one run.
struct RunState {
    const Scenario& s;
    /// On the sim backend every hook runs on the one driver thread and the
    /// mutex is uncontended; on the TCP backend delivery/view/fail-signal
    /// hooks fire on per-node executor threads and genuinely need it.
    std::mutex mu;
    Trace trace;
    sim::Stats latencies_ms;
    std::map<std::pair<std::uint32_t, std::uint32_t>, TimePoint> sent_at;
    TimePoint first_send{0};
    TimePoint last_delivery{0};
    std::uint64_t sent_count{0};
    std::uint64_t delivery_count{0};
    std::vector<std::uint32_t> next_seq;
    /// Observability context of this run (nullptr = off): run-level events
    /// (views, fail-signals, injected faults) are mirrored into the flight
    /// recorder so a violation dump shows them interleaved with span stamps.
    obs::Obs* obs{nullptr};

    explicit RunState(const Scenario& scenario)
        : s(scenario), next_seq(static_cast<std::size_t>(scenario.group_size), 0) {}

    void on_sent(int member, std::uint32_t seq, TimePoint now) {
        const std::lock_guard lock(mu);
        if (sent_count == 0) first_send = now;
        ++sent_count;
        sent_at[{static_cast<std::uint32_t>(member), seq}] = now;
        TraceEvent e;
        e.kind = TraceEvent::Kind::kSent;
        e.at = now;
        e.member = member;
        e.sender = static_cast<std::uint32_t>(member);
        e.seq = seq;
        trace.record(std::move(e));
    }

    void on_delivered(int member, const Bytes& payload, TimePoint now) {
        const std::lock_guard lock(mu);
        if (payload.size() < 8) return;
        ByteReader r(payload);
        const auto sender = r.u32();
        const auto seq = r.u32();
        TraceEvent e;
        e.kind = TraceEvent::Kind::kDelivered;
        e.at = now;
        e.member = member;
        e.sender = sender;
        e.seq = seq;
        trace.record(std::move(e));
        ++delivery_count;
        last_delivery = std::max(last_delivery, now);
        const auto it = sent_at.find({sender, seq});
        if (it != sent_at.end()) {
            latencies_ms.add(static_cast<double>(now - it->second) / kMillisecond);
        }
    }

    void on_view(int member, const newtop::GroupView& view, TimePoint now) {
        const std::lock_guard lock(mu);
        TraceEvent e;
        e.kind = TraceEvent::Kind::kViewInstalled;
        e.at = now;
        e.member = member;
        e.seq = view.view_id;
        e.view_members = view.members;
        e.detail = "view_id=" + std::to_string(view.view_id);
        if (obs != nullptr) obs->note(member, "view installed: " + e.detail);
        trace.record(std::move(e));
    }

    void on_fail_signal(int member, const std::string& name, const std::string& reason,
                        TimePoint now) {
        const std::lock_guard lock(mu);
        TraceEvent e;
        e.kind = TraceEvent::Kind::kFailSignal;
        e.at = now;
        e.member = member;
        e.detail = name + ": " + reason;
        if (obs != nullptr) obs->note(member, "fail-signal " + e.detail);
        trace.record(std::move(e));
    }

    void on_middleware_failure(int member, const std::string& fs_name, TimePoint now) {
        const std::lock_guard lock(mu);
        TraceEvent e;
        e.kind = TraceEvent::Kind::kMiddlewareFailure;
        e.at = now;
        e.member = member;
        e.detail = fs_name;
        if (obs != nullptr) obs->note(member, "middleware failure: " + fs_name);
        trace.record(std::move(e));
    }
};

void fire_send(RunState& st, deploy::Deployment& d, int member, std::size_t payload_size) {
    const std::uint32_t seq = st.next_seq[static_cast<std::size_t>(member)]++;
    Bytes payload = make_payload(static_cast<std::uint32_t>(member), seq,
                                 std::max<std::size_t>(payload_size, 8));
    st.on_sent(member, seq, d.now());
    d.submit(member, std::move(payload));
}

void fire_send(RunState& st, deploy::Deployment& d, int member) {
    fire_send(st, d, member, st.s.workload.payload_size);
}

/// Schedules one kLoad event's open-loop arrival process. All arrivals are
/// materialized up front from an RNG derived from (scenario seed, event
/// position) alone — deterministic, and independent of both the network's
/// random stream and the system's progress (the generator never waits for
/// deliveries; that is what "open-loop" means).
void schedule_load(deploy::Deployment& d, RunState& st, const ScenarioEvent& event,
                   std::size_t event_index) {
    const LoadSpec& spec = event.load_spec;
    ensure(spec.rate > 0.0, "scenario: load rate must be > 0");
    ensure(spec.duration > 0, "scenario: load duration must be > 0");

    std::uint64_t state = st.s.seed ^ 0x10adf00ddeadbeefULL;
    std::uint64_t h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(event_index);
    Rng rng(splitmix64(state));

    const double mean_us = 1e6 / spec.rate;
    const int n = st.s.group_size;
    const TimePoint end = event.at + spec.duration;
    TimePoint t = event.at;
    for (;;) {
        t += std::max<Duration>(
            1, static_cast<Duration>(rng.exponential(mean_us) + 0.5));
        if (t >= end) break;
        const int member = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(n)));
        d.schedule(t, [&st, &d, member, payload = spec.payload] {
            fire_send(st, d, member, payload);
        });
    }
}

/// Members are staggered across the send interval, as independent
/// applications would be (identical to the figure benches' injection).
void schedule_workload(deploy::Deployment& d, RunState& st) {
    const auto& w = st.s.workload;
    const int n = st.s.group_size;
    for (int k = 0; k < w.msgs_per_member; ++k) {
        for (int i = 0; i < n; ++i) {
            const TimePoint at = static_cast<TimePoint>(k) * w.send_interval +
                                 (static_cast<TimePoint>(i) * w.send_interval) / n;
            d.schedule(at, [&st, &d, i] { fire_send(st, d, i); });
        }
    }
}

/// Applies the declarative fault timeline through the Deployment interface.
/// Capability-gated hooks (fault plans, liveness timers) record a
/// not-applicable note instead of acting when the stack lacks the layer.
void schedule_timeline(deploy::Deployment& d, RunState& st) {
    for (std::size_t index = 0; index < st.s.timeline.size(); ++index) {
        const auto& event = st.s.timeline[index];
        // Load arrivals are pre-materialized (deterministically) rather than
        // generated inside the event callback; the callback below still
        // records the event in the trace.
        if (event.kind == ScenarioEvent::Kind::kLoad) schedule_load(d, st, event, index);
        d.schedule(event.at, [&st, &d, event] {
            TraceEvent te;
            te.kind = TraceEvent::Kind::kScenarioEvent;
            te.at = d.now();
            te.member = event.member;
            te.detail = event.describe();
            using Kind = ScenarioEvent::Kind;
            switch (event.kind) {
                case Kind::kCrashMember:
                    d.crash(event.member);
                    break;
                case Kind::kFaultPlan: {
                    deploy::FaultInjection fault;
                    fault.member = event.member;
                    fault.at_leader = event.pair_node == PairNode::kLeader;
                    fault.plan = event.fault_plan;
                    if (!d.inject_fault(fault)) {
                        te.detail += " [ignored: no fail-signal layer]";
                    }
                    break;
                }
                case Kind::kDelaySurge:
                    d.faults().delay_surge(event.surge_extra, event.surge_until);
                    break;
                case Kind::kPartition:
                    d.partition(event.groups);
                    break;
                case Kind::kHealPartition:
                    d.faults().heal_partition();
                    break;
                case Kind::kDropProbability:
                    d.faults().set_drop_probability(event.drop_probability);
                    break;
                case Kind::kBurst:
                    for (int b = 0; b < event.burst_messages; ++b) {
                        fire_send(st, d, event.member);
                    }
                    break;
                case Kind::kFireTimeouts:
                    if (!d.fire_timeouts()) {
                        te.detail += " [ignored: no liveness timers]";
                    }
                    break;
                case Kind::kLoad:
                    break;  // arrivals pre-scheduled by schedule_load
                case Kind::kRecoverMember:
                    d.recover(event.member);
                    break;
            }
            if (st.obs != nullptr) st.obs->note(event.member, "scenario event: " + te.detail);
            st.trace.record(std::move(te));
        });
    }
}

/// Runs the simulation: to quiescence when possible, otherwise to the
/// (possibly derived) deadline plus a bounded settle window — perpetual
/// event loops (suspector pings, spontaneous fail-signals) can therefore
/// never wedge a run.
void drive(deploy::Deployment& d, const Scenario& s) {
    TimePoint deadline = s.deadline;
    if (deadline == 0 && s.has_perpetual_activity()) {
        deadline = s.workload_end() + 10 * kSecond;
    }
    if (deadline == 0) {
        d.run();
        return;
    }
    d.run_until(deadline);
    d.stop_perpetual();
    d.run_until(deadline + s.settle);
}

ScenarioReport finish(RunState& st, deploy::Deployment& dep, obs::Obs* obs) {
    net::Transport& net = dep.network();
    const TimePoint now = dep.now();

    // Recovery scenarios close with one app_state record per member: the
    // replicated KV store's fold of that member's committed prefix, which the
    // rejoined-state and linearizability checkers compare. Gated on the
    // timeline so runs without recovery keep byte-identical traces.
    if (st.s.has_recovery()) {
        for (int m = 0; m < st.s.group_size; ++m) {
            const auto info = dep.app_state_of(m);
            if (!info.has_value()) continue;
            TraceEvent e;
            e.kind = TraceEvent::Kind::kAppState;
            e.at = now;
            e.member = m;
            e.seq = info->applied;
            e.detail = info->detail;
            st.trace.record(std::move(e));
        }
    }

    ScenarioReport report;
    report.scenario = st.s;
    report.trace = std::move(st.trace);
    report.recovery = dep.recovery_stats();

    auto& m = report.metrics;
    m.mean_latency_ms = st.latencies_ms.mean();
    m.p95_latency_ms = st.latencies_ms.percentile(0.95);
    const double makespan_s = static_cast<double>(st.last_delivery - st.first_send) / kSecond;
    m.throughput_msg_s =
        makespan_s > 0 ? static_cast<double>(st.sent_count) / makespan_s : 0.0;
    m.network_messages = net.messages_sent();
    m.network_bytes = net.bytes_sent();
    m.messages_sent = st.sent_count;
    m.observed_deliveries = st.delivery_count;
    m.expected_deliveries = st.sent_count * static_cast<std::uint64_t>(st.s.group_size);
    m.views_installed = report.trace.count(TraceEvent::Kind::kViewInstalled);
    m.fail_signal_events = report.trace.count(TraceEvent::Kind::kFailSignal) +
                           report.trace.count(TraceEvent::Kind::kMiddlewareFailure);
    m.fail_signals = m.fail_signal_events > 0;
    m.finished_at = now;
    const BatchStats batch = dep.batch_stats();
    m.requests_submitted = batch.requests_submitted;
    m.requests_batched = batch.requests_batched;
    m.batches_formed = batch.batches_formed;
    m.flushes_on_deadline = batch.flushes_on_deadline;
    m.payload_bytes_copied = net.payload_bytes_copied();
    m.payload_bodies_encoded = net.payload_bodies_encoded();
    m.verify_ops = dep.crypto_verify_ops();
    m.verify_cache_hits = dep.crypto_verify_cache_hits();

    report.invariants = evaluate(report.scenario, report.trace);

    if (obs != nullptr) {
        // End-of-run simulator gauges, then the deterministic exports. All
        // values are pure functions of the Scenario, so these artifacts are
        // byte-identical at any --jobs count.
        auto& registry = obs->metrics();
        registry.gauge("sim.events_fired").set(static_cast<std::int64_t>(dep.sim().events_fired()));
        registry.gauge("sim.queue_footprint")
            .set(static_cast<std::int64_t>(dep.sim().queue_footprint()));
        registry.gauge("sim.max_queue_footprint")
            .set(static_cast<std::int64_t>(dep.sim().max_queue_footprint()));
        report.metrics_json = obs->metrics_json(st.s.name);
        report.flight_dump = obs->flight().dump();
        report.obs_counters = registry.counter_snapshot();
    }
    return report;
}

deploy::DeploymentSpec spec_of(const Scenario& s) {
    deploy::DeploymentSpec spec;
    spec.group_size = s.group_size;
    spec.threads_per_node = s.threads_per_node;
    spec.seed = s.seed;
    spec.service = s.workload.service;
    spec.batch = s.batch;
    spec.start_suspectors = s.start_suspectors;
    spec.suspector = s.suspector;
    spec.placement = s.placement;
    spec.fs_config = s.fs_config;
    spec.backend = s.backend;
    spec.checkpoint_interval = s.checkpoint_interval;
    return spec;
}

/// Runs `fn(0..count-1)` on `jobs` workers (0 = hardware concurrency),
/// pulling indices from a shared counter. All cells run even if some throw;
/// the lowest-index exception is rethrown afterwards, so failure behaviour
/// does not depend on scheduling.
void parallel_for(std::size_t count, int jobs, const std::function<void(std::size_t)>& fn) {
    if (jobs <= 0) jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs < 1) jobs = 1;
    jobs = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(jobs), count));

    std::vector<std::exception_ptr> errors(count);
    if (jobs <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(jobs));
        for (int t = 0; t < jobs; ++t) {
            workers.emplace_back([&next, count, &fn, &errors] {
                for (;;) {
                    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= count) return;
                    try {
                        fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            });
        }
        for (auto& worker : workers) worker.join();
    }
    for (auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }
}

}  // namespace

ScenarioReport run_scenario(const Scenario& scenario) {
    ensure(scenario.group_size >= 1, "scenario: group_size must be >= 1");

    // The run owns its observability context: single-threaded by
    // construction (everything below executes on this run's event loop), so
    // parallel sweep workers never share one.
    std::unique_ptr<obs::Obs> obs;
    deploy::DeploymentSpec spec = spec_of(scenario);
    // Observability binds to the one deterministic clock of the sim backend;
    // the TCP backend has one event loop per node, so tracing stays off there.
    if (scenario.obs.enabled && scenario.backend == deploy::Backend::kSim) {
        obs = std::make_unique<obs::Obs>(scenario.obs);
        spec.obs = obs.get();
    }
    const auto d = deploy::make_deployment(scenario.system, spec);

    // Schedule perturbation: a non-zero tie_break_seed permutes same-time
    // events with a key that is a pure hash of (seed, event id) — the run
    // stays a pure function of the Scenario, it just explores a different
    // (equally network-legal) interleaving. Events the deployment scheduled
    // during construction keep their FIFO keys; everything the workload and
    // timeline schedule from here on is subject to the policy.
    if (scenario.tie_break_seed != 0) {
        d->sim().set_tie_break(
            [seed = scenario.tie_break_seed](sim::Simulation::EventId id, TimePoint) {
                std::uint64_t state = seed ^ (id * 0x9e3779b97f4a7c15ULL);
                return splitmix64(state);
            });
    }

    // Host-level events (crashes, partitions) need a placement that can
    // express them; reject up front instead of silently severing healthy
    // infrastructure (FS-NewTOP's collocated hosts are shared between pairs).
    const bool has_host_event = std::any_of(
        scenario.timeline.begin(), scenario.timeline.end(), [](const ScenarioEvent& e) {
            return e.kind == ScenarioEvent::Kind::kCrashMember ||
                   e.kind == ScenarioEvent::Kind::kPartition ||
                   e.kind == ScenarioEvent::Kind::kRecoverMember;
        });
    if (has_host_event && !d->supports_host_faults()) {
        throw ScenarioRejected(
            "scenario: crash/partition events need a deployment that can express host "
            "faults (FS-NewTOP requires Placement::kFull — collocated hosts are shared "
            "between pairs)");
    }

    RunState st(scenario);
    st.obs = obs.get();
    deploy::Observers observers;
    deploy::Deployment& dep = *d;
    observers.delivered = [&st, &dep](int member, const Bytes& payload) {
        st.on_delivered(member, payload, dep.now());
    };
    observers.view_installed = [&st, &dep](int member, const newtop::GroupView& view) {
        st.on_view(member, view, dep.now());
    };
    observers.fail_signal = [&st, &dep](int member, const std::string& source,
                                        const std::string& reason) {
        st.on_fail_signal(member, source, reason, dep.now());
    };
    observers.middleware_failure = [&st, &dep](int member, const std::string& source) {
        st.on_middleware_failure(member, source, dep.now());
    };
    dep.attach(std::move(observers));

    schedule_workload(dep, st);
    schedule_timeline(dep, st);
    drive(dep, scenario);
    return finish(st, dep, obs.get());
}

std::vector<ScenarioReport> run_scenarios(const std::vector<Scenario>& scenarios, int jobs) {
    std::vector<ScenarioReport> reports(scenarios.size());
    parallel_for(scenarios.size(), jobs,
                 [&](std::size_t i) { reports[i] = run_scenario(scenarios[i]); });
    return reports;
}

std::uint64_t derive_cell_seed(std::uint64_t axis_seed, SystemKind system, int group_size) {
    std::uint64_t state = axis_seed;
    std::uint64_t h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(system);
    h = splitmix64(state);
    state = h ^ static_cast<std::uint64_t>(group_size);
    return splitmix64(state);
}

std::vector<ScenarioReport> run_sweep(const SweepSpec& spec) {
    const std::vector<SystemKind> systems =
        spec.systems.empty() ? std::vector<SystemKind>{spec.base.system} : spec.systems;
    const std::vector<int> group_sizes =
        spec.group_sizes.empty() ? std::vector<int>{spec.base.group_size} : spec.group_sizes;
    const std::vector<std::uint64_t> seeds =
        spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed} : spec.seeds;
    // An explicit batch axis names its cells "/b<N>"; an empty axis keeps the
    // base config and the pre-batching cell names byte-identical.
    const bool batch_axis = !spec.batch_sizes.empty();
    const std::vector<std::size_t> batch_sizes =
        batch_axis ? spec.batch_sizes
                   : std::vector<std::size_t>{spec.base.batch.max_requests};

    // Materialize every cell in canonical order first (the report order),
    // then execute the runnable ones on the worker pool. Cells below a
    // system's group-size floor become explicit skipped rows, not holes.
    struct Cell {
        Scenario scenario;
        std::uint64_t seed_axis{0};
        std::uint64_t seed_index{0};
        const char* skip_reason{nullptr};
    };
    std::vector<Cell> cells;
    for (const SystemKind system : systems) {
        const deploy::SystemTraits traits = deploy::traits_of(system);
        for (const int n : group_sizes) {
            for (const std::size_t batch : batch_sizes) {
                for (std::size_t seed_index = 0; seed_index < seeds.size(); ++seed_index) {
                    const std::uint64_t seed = seeds[seed_index];
                    Cell cell;
                    cell.scenario = spec.base;
                    cell.scenario.system = system;
                    cell.scenario.group_size = n;
                    cell.scenario.batch.max_requests = batch;
                    // Same (seed, system, n) => same derived seed for every
                    // batch size: batch cells face identical network
                    // schedules, so the comparison isolates batching.
                    cell.scenario.seed = derive_cell_seed(seed, system, n);
                    cell.scenario.name = spec.base.name + "/" + name_of(system) + "/n" +
                                         std::to_string(n) +
                                         (batch_axis ? "/b" + std::to_string(batch) : "") +
                                         "/s" + std::to_string(seed);
                    cell.seed_axis = seed;
                    cell.seed_index = static_cast<std::uint64_t>(seed_index);
                    if (n < traits.min_group_size) cell.skip_reason = traits.min_group_reason;
                    cells.push_back(std::move(cell));
                }
            }
        }
    }

    std::vector<ScenarioReport> reports(cells.size());
    parallel_for(cells.size(), spec.jobs, [&](std::size_t i) {
        if (cells[i].skip_reason != nullptr) {
            reports[i].scenario = cells[i].scenario;
            reports[i].skipped = true;
            reports[i].skip_reason = cells[i].skip_reason;
        } else {
            try {
                reports[i] = run_scenario(cells[i].scenario);
            } catch (const ScenarioRejected& rejected) {
                // A capability gate rejected the whole cell; record it like
                // the group-size floor does instead of discarding every
                // other cell's result with a rethrow. Any other exception
                // (bad member index, protocol invariant) stays fatal.
                reports[i] = ScenarioReport{};
                reports[i].scenario = cells[i].scenario;
                reports[i].skipped = true;
                reports[i].skip_reason = rejected.what();
            }
        }
        reports[i].from_sweep = true;
        reports[i].seed_axis = cells[i].seed_axis;
        reports[i].seed_index = cells[i].seed_index;
    });
    return reports;
}

}  // namespace failsig::scenario
