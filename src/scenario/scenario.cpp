#include "scenario/scenario.hpp"

#include <algorithm>

namespace failsig::scenario {

ScenarioEvent ScenarioEvent::crash(TimePoint at, int member) {
    ScenarioEvent e;
    e.kind = Kind::kCrashMember;
    e.at = at;
    e.member = member;
    return e;
}

ScenarioEvent ScenarioEvent::recover(TimePoint at, int member) {
    ScenarioEvent e;
    e.kind = Kind::kRecoverMember;
    e.at = at;
    e.member = member;
    return e;
}

ScenarioEvent ScenarioEvent::fault(TimePoint at, int member, PairNode node,
                                   const fs::FaultPlan& plan) {
    ScenarioEvent e;
    e.kind = Kind::kFaultPlan;
    e.at = at;
    e.member = member;
    e.pair_node = node;
    e.fault_plan = plan;
    return e;
}

ScenarioEvent ScenarioEvent::delay_surge(TimePoint at, Duration extra, TimePoint until) {
    ScenarioEvent e;
    e.kind = Kind::kDelaySurge;
    e.at = at;
    e.surge_extra = extra;
    e.surge_until = until;
    return e;
}

ScenarioEvent ScenarioEvent::partition(TimePoint at, std::vector<std::vector<int>> groups) {
    ScenarioEvent e;
    e.kind = Kind::kPartition;
    e.at = at;
    e.groups = std::move(groups);
    return e;
}

ScenarioEvent ScenarioEvent::heal_partition(TimePoint at) {
    ScenarioEvent e;
    e.kind = Kind::kHealPartition;
    e.at = at;
    return e;
}

ScenarioEvent ScenarioEvent::drop(TimePoint at, double probability) {
    ScenarioEvent e;
    e.kind = Kind::kDropProbability;
    e.at = at;
    e.drop_probability = probability;
    return e;
}

ScenarioEvent ScenarioEvent::burst(TimePoint at, int member, int messages) {
    ScenarioEvent e;
    e.kind = Kind::kBurst;
    e.at = at;
    e.member = member;
    e.burst_messages = messages;
    return e;
}

ScenarioEvent ScenarioEvent::fire_timeouts(TimePoint at) {
    ScenarioEvent e;
    e.kind = Kind::kFireTimeouts;
    e.at = at;
    return e;
}

ScenarioEvent ScenarioEvent::load(TimePoint at, LoadSpec spec) {
    ScenarioEvent e;
    e.kind = Kind::kLoad;
    e.at = at;
    e.load_spec = spec;
    return e;
}

namespace {

std::string describe_fault_plan(const fs::FaultPlan& plan) {
    std::string s;
    if (plan.corrupt_outputs) s += " corrupt";
    if (plan.drop_outputs) s += " drop";
    if (plan.misorder_inputs) s += " misorder";
    if (plan.spontaneous_fail_signals) s += " spontaneous";
    if (plan.extra_processing_delay > 0) {
        s += " slow+" + std::to_string(plan.extra_processing_delay) + "us";
    }
    if (plan.probability != 1.0) s += " p=" + std::to_string(plan.probability);
    if (plan.active_from > 0) s += " from=" + std::to_string(plan.active_from);
    return s.empty() ? " benign" : s;
}

}  // namespace

std::string ScenarioEvent::describe() const {
    switch (kind) {
        case Kind::kCrashMember:
            return "crash member=" + std::to_string(member);
        case Kind::kFaultPlan:
            return "fault member=" + std::to_string(member) +
                   (pair_node == PairNode::kLeader ? " node=leader" : " node=follower") +
                   describe_fault_plan(fault_plan);
        case Kind::kDelaySurge:
            return "delay_surge extra=" + std::to_string(surge_extra) +
                   "us until=" + std::to_string(surge_until);
        case Kind::kPartition: {
            std::string s = "partition";
            for (const auto& g : groups) {
                s += " {";
                for (std::size_t i = 0; i < g.size(); ++i) {
                    if (i) s += ",";
                    s += std::to_string(g[i]);
                }
                s += "}";
            }
            return s;
        }
        case Kind::kHealPartition:
            return "heal_partition";
        case Kind::kDropProbability:
            return "drop p=" + std::to_string(drop_probability);
        case Kind::kBurst:
            return "burst member=" + std::to_string(member) +
                   " messages=" + std::to_string(burst_messages);
        case Kind::kFireTimeouts:
            return "fire_timeouts";
        case Kind::kLoad:
            return "load rate=" + std::to_string(load_spec.rate) +
                   "/s duration=" + std::to_string(load_spec.duration) +
                   "us payload=" + std::to_string(load_spec.payload);
        case Kind::kRecoverMember:
            return "recover member=" + std::to_string(member);
    }
    return "?";
}

std::set<int> Scenario::faulted_members() const {
    std::set<int> out;
    for (const auto& e : timeline) {
        if (e.is_member_fault()) out.insert(e.member);
    }
    return out;
}

bool Scenario::fault_free() const {
    if (start_suspectors) return false;  // false suspicions can split groups
    for (const auto& e : timeline) {
        switch (e.kind) {
            case ScenarioEvent::Kind::kCrashMember:
            case ScenarioEvent::Kind::kFaultPlan:
            case ScenarioEvent::Kind::kPartition:
            case ScenarioEvent::Kind::kDropProbability:
            // Spuriously fired liveness timers force a PBFT view change; the
            // baseline has no client retransmission, so requests that were
            // assigned but not yet prepared can be lost with the old
            // primary's backlog. Validity is only claimed on undisturbed
            // runs (the schedule-space explorer found this: a lone
            // fire_timeouts event under load violates validity).
            case ScenarioEvent::Kind::kFireTimeouts:
            // A rejoin always follows a disruption (and the rejoin handshake
            // itself installs views); validity is not claimed across it.
            case ScenarioEvent::Kind::kRecoverMember:
                return false;
            default:
                break;
        }
    }
    return true;
}

bool Scenario::has_perpetual_activity() const {
    if (start_suspectors) return true;
    return std::any_of(timeline.begin(), timeline.end(), [](const ScenarioEvent& e) {
        return e.kind == ScenarioEvent::Kind::kFaultPlan &&
               e.fault_plan.spontaneous_fail_signals;
    });
}

bool Scenario::has_recovery() const {
    return std::any_of(timeline.begin(), timeline.end(), [](const ScenarioEvent& e) {
        return e.kind == ScenarioEvent::Kind::kRecoverMember;
    });
}

TimePoint Scenario::workload_end() const {
    TimePoint end = static_cast<TimePoint>(workload.msgs_per_member) * workload.send_interval;
    for (const auto& e : timeline) {
        if (e.kind == ScenarioEvent::Kind::kBurst) end = std::max(end, e.at);
        if (e.kind == ScenarioEvent::Kind::kDelaySurge) end = std::max(end, e.surge_until);
        if (e.kind == ScenarioEvent::Kind::kLoad) {
            end = std::max(end, e.at + e.load_spec.duration);
        }
    }
    return end;
}

}  // namespace failsig::scenario
