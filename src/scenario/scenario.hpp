// Declarative fault-campaign scenarios.
//
// The paper's whole argument (§4) is comparative: the same workload and the
// same faults, run against crash-tolerant NewTOP, FS-NewTOP, and a
// PBFT-style baseline. A `Scenario` captures one such run as data — which
// system, how many members, what the application sends, and a timeline of
// `ScenarioEvent`s (crashes, Byzantine fault plans, delay surges,
// partitions, workload bursts) — so experiments, tests and benches all
// execute through one engine (scenario/runner.hpp) instead of hand-written
// main() loops, and their traces are judged by one set of invariant
// checkers (scenario/invariants.hpp).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "deploy/deployment.hpp"
#include "fs/fault.hpp"
#include "fs/fso.hpp"
#include "fsnewtop/deployment.hpp"
#include "newtop/suspector.hpp"
#include "newtop/types.hpp"

namespace failsig::scenario {

/// Which deployment the scenario drives (see deploy/deployment.hpp — the
/// engine is keyed on this through the deployment registry).
using deploy::SystemKind;
using deploy::name_of;

/// Which node of a fail-signal pair a fault plan targets (FS-NewTOP only).
enum class PairNode : std::uint8_t { kLeader, kFollower };

/// Open-loop load: arrivals follow a Poisson process at `rate` aggregate
/// requests/second across all members for `duration`, with each arrival
/// assigned to a uniformly random member. Arrival times and member choices
/// are drawn from an RNG derived from (scenario seed, event position), so
/// the offered load never depends on — and never perturbs — the network's
/// random stream: the generator keeps submitting on schedule no matter how
/// the system is keeping up, which is what makes the load *open-loop* and
/// throughput/latency-vs-offered-load plots meaningful.
struct LoadSpec {
    double rate{100.0};            ///< aggregate requests/second, must be > 0
    Duration duration{1 * kSecond};
    /// Payload bytes; clamped up to 8 so the (sender, seq) latency tag fits.
    std::size_t payload{8};
};

/// One timeline entry. Use the factory functions; `kind` says which fields
/// are meaningful (same style as newtop::GcMessage).
struct ScenarioEvent {
    enum class Kind : std::uint8_t {
        kCrashMember = 1,   ///< cut the member's host off the network
        kFaultPlan = 2,     ///< FS-NewTOP: inject fs::FaultPlan at one pair node
        kDelaySurge = 3,    ///< extra delay on all async traffic until `surge_until`
        kPartition = 4,     ///< split members into isolated groups
        kHealPartition = 5,
        kDropProbability = 6,  ///< random drop on async links from `at` on
        kBurst = 7,            ///< workload burst: extra messages from one member
        kFireTimeouts = 8,     ///< PBFT: fire the view-change liveness timers
        kLoad = 9,             ///< open-loop Poisson load phase (LoadSpec)
        kRecoverMember = 10,   ///< heal a crashed member's links and rejoin it
    };

    Kind kind{Kind::kCrashMember};
    TimePoint at{0};
    int member{-1};                         ///< kCrashMember / kFaultPlan / kBurst
    PairNode pair_node{PairNode::kLeader};  ///< kFaultPlan
    fs::FaultPlan fault_plan{};             ///< kFaultPlan
    Duration surge_extra{0};                ///< kDelaySurge
    TimePoint surge_until{0};               ///< kDelaySurge
    std::vector<std::vector<int>> groups;   ///< kPartition (member indices)
    double drop_probability{0.0};           ///< kDropProbability
    int burst_messages{0};                  ///< kBurst
    LoadSpec load_spec{};                   ///< kLoad

    static ScenarioEvent crash(TimePoint at, int member);
    static ScenarioEvent recover(TimePoint at, int member);
    static ScenarioEvent fault(TimePoint at, int member, PairNode node,
                               const fs::FaultPlan& plan);
    static ScenarioEvent delay_surge(TimePoint at, Duration extra, TimePoint until);
    static ScenarioEvent partition(TimePoint at, std::vector<std::vector<int>> groups);
    static ScenarioEvent heal_partition(TimePoint at);
    static ScenarioEvent drop(TimePoint at, double probability);
    static ScenarioEvent burst(TimePoint at, int member, int messages);
    static ScenarioEvent fire_timeouts(TimePoint at);
    static ScenarioEvent load(TimePoint at, LoadSpec spec);

    /// One-line human/trace description ("crash member=2", ...).
    [[nodiscard]] std::string describe() const;

    /// True when the event makes a member genuinely faulty (crash or fault
    /// plan), as opposed to degrading the environment (delay, partition).
    [[nodiscard]] bool is_member_fault() const {
        return kind == Kind::kCrashMember || kind == Kind::kFaultPlan;
    }
};

/// What the application layer sends: every member multicasts
/// `msgs_per_member` tagged payloads at `send_interval`, staggered across
/// members exactly like the paper's §4 runs (see bench/harness.hpp).
struct Workload {
    int msgs_per_member{10};
    /// Payload bytes; clamped up to 8 so the (sender, seq) latency tag fits.
    std::size_t payload_size{8};
    Duration send_interval{80 * kMillisecond};
    newtop::ServiceType service{newtop::ServiceType::kSymmetricTotalOrder};
};

/// A complete declarative experiment specification. A run is a pure
/// function of this struct: same Scenario => byte-identical trace.
struct Scenario {
    std::string name{"unnamed"};
    SystemKind system{SystemKind::kFsNewTop};
    /// Members for NewTOP/FS-NewTOP; replicas for PBFT (needs >= 4).
    int group_size{3};
    std::uint64_t seed{1};
    /// Schedule perturbation: seeds the Simulation's same-timestamp
    /// tie-break policy (see sim::Simulation::set_tie_break). 0 — the
    /// default — keeps the historical FIFO rule, byte-identical to runs
    /// before this knob existed; non-zero installs a deterministic random
    /// permutation of equal-time events, the schedule axis the explorer
    /// (src/explore) searches over. Still a pure function of the Scenario.
    std::uint64_t tie_break_seed{0};
    int threads_per_node{2};
    /// Execution backend: the deterministic simulator (default; the only
    /// backend whose reports are byte-identical) or real sockets on
    /// localhost. Deliberately excluded from the report surface — a report
    /// describes the scenario, not the machine it ran on.
    deploy::Backend backend{deploy::Backend::kSim};
    Workload workload{};
    std::vector<ScenarioEvent> timeline;

    /// Stop simulated time here (0 = run to quiescence). Mandatory in
    /// spirit for scenarios with self-rescheduling activity (suspectors,
    /// spontaneous fail-signals); the runner derives a deadline when the
    /// author forgets.
    TimePoint deadline{0};
    /// Extra simulated time after `deadline` for in-flight traffic to
    /// settle (the runner never waits for a perpetual event loop).
    Duration settle{30 * kSecond};

    /// Request batching on the submit path of whichever stack runs (see
    /// common/batch.hpp); off by default.
    BatchConfig batch{};

    /// Replicated-app checkpoint cadence (every N applied requests; 0 = off).
    /// Feeds PBFT log truncation and the rejoin state-transfer sources; the
    /// KV digest is maintained either way.
    std::uint64_t checkpoint_interval{0};

    // System-specific knobs.
    bool start_suspectors{false};                       ///< NewTOP only
    newtop::SuspectorOptions suspector{};               ///< NewTOP only
    fsnewtop::Placement placement{fsnewtop::Placement::kCollocated};  ///< FS-NewTOP
    fs::FsConfig fs_config{};                           ///< FS-NewTOP

    /// Observability (src/obs): when enabled, the run collects lifecycle
    /// spans, metrics and a per-node flight recorder. Off by default — and
    /// deliberately excluded from the JSON/CSV report surface, so enabling
    /// it never perturbs report bytes.
    obs::ObsConfig obs{};

    /// Members a timeline event makes genuinely faulty. Invariants use this
    /// as the ground truth: exclusions and fail-signals must only ever point
    /// at members in this set.
    [[nodiscard]] std::set<int> faulted_members() const;

    /// True when no event degrades delivery (crash/fault/partition/drop) and
    /// no timeout-based suspector runs — the runs on which validity (every
    /// sent message delivered everywhere) must hold.
    [[nodiscard]] bool fault_free() const;

    /// True when some timeline entry perpetually reschedules itself
    /// (suspectors, spontaneous fail-signal loops), so run-to-quiescence
    /// would never terminate.
    [[nodiscard]] bool has_perpetual_activity() const;

    /// True when the timeline rejoins a crashed member (kRecoverMember).
    /// Gates the recovery-only checkers and the end-of-run app-state trace
    /// records, so scenarios without recovery keep byte-identical reports.
    [[nodiscard]] bool has_recovery() const;

    /// Last instant at which the declared workload injects a message.
    [[nodiscard]] TimePoint workload_end() const;
};

}  // namespace failsig::scenario
