// Scenario execution engine and parameter sweeps.
//
// `run_scenario` builds the deployment a Scenario names (NewTOP, FS-NewTOP
// or the PBFT baseline), attaches the trace recorder to the deployment's
// observer hooks, schedules the workload and the fault timeline on the
// deterministic simulator, runs to quiescence (or to the deadline when the
// scenario contains perpetual activity), and returns metrics + invariant
// verdicts + the full trace. `run_sweep` crosses systems x group sizes x
// seeds over a base scenario — the shape every figure bench and regression
// gate consumes (see scenario/report.hpp for the JSON/CSV output).
#pragma once

#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace failsig::scenario {

/// Workload measurements, harness-compatible (see bench/harness.hpp):
/// latency is multicast-to-delivery over every (message, member) pair;
/// throughput is total multicasts over the first-send-to-last-delivery
/// makespan.
struct ScenarioMetrics {
    double mean_latency_ms{0};
    double p95_latency_ms{0};
    double throughput_msg_s{0};
    std::uint64_t network_messages{0};
    std::uint64_t network_bytes{0};
    std::uint64_t messages_sent{0};        ///< workload messages injected
    std::uint64_t observed_deliveries{0};  ///< (message, member) delivery pairs
    std::uint64_t expected_deliveries{0};  ///< messages_sent * group_size
    std::uint64_t views_installed{0};
    std::uint64_t fail_signal_events{0};
    bool fail_signals{false};
    TimePoint finished_at{0};  ///< simulated time when the run stopped
};

struct ScenarioReport {
    Scenario scenario;
    ScenarioMetrics metrics;
    std::vector<InvariantResult> invariants;
    Trace trace;

    [[nodiscard]] bool all_invariants_passed() const { return all_passed(invariants); }
};

/// Executes one scenario. Deterministic: same Scenario => byte-identical
/// `report.trace.canonical()`.
ScenarioReport run_scenario(const Scenario& scenario);

/// Cross product sweep over a base scenario. Empty axis = keep the base
/// value. Report names are "<base.name>/<system>/n<group>/s<seed>".
struct SweepSpec {
    Scenario base;
    std::vector<SystemKind> systems;
    std::vector<int> group_sizes;
    std::vector<std::uint64_t> seeds;
};

std::vector<ScenarioReport> run_sweep(const SweepSpec& spec);

}  // namespace failsig::scenario
