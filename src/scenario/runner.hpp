// Scenario execution engine and parameter sweeps.
//
// `run_scenario` builds the deployment a Scenario names through the
// deploy::Deployment registry, attaches the trace recorder to the
// deployment's observer hooks, schedules the workload and the fault
// timeline on the deterministic simulator, runs to quiescence (or to the
// deadline when the scenario contains perpetual activity), and returns
// metrics + invariant verdicts + the full trace. The engine is one generic
// path: everything system-specific lives behind deploy::Deployment, so a
// fourth system needs a registry entry, not engine edits. `run_sweep`
// crosses systems x group sizes x seeds over a base scenario — the shape
// every figure bench and regression gate consumes (see scenario/report.hpp
// for the JSON/CSV output) — executing independent cells on a worker pool
// (`jobs`) while keeping the report byte-identical to a serial run.
#pragma once

#include <stdexcept>
#include <utility>

#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

namespace failsig::scenario {

/// Workload measurements, harness-compatible (see bench/harness.hpp):
/// latency is multicast-to-delivery over every (message, member) pair;
/// throughput is total multicasts over the first-send-to-last-delivery
/// makespan.
struct ScenarioMetrics {
    double mean_latency_ms{0};
    double p95_latency_ms{0};
    double throughput_msg_s{0};
    std::uint64_t network_messages{0};
    std::uint64_t network_bytes{0};
    std::uint64_t messages_sent{0};        ///< workload messages injected
    std::uint64_t observed_deliveries{0};  ///< (message, member) delivery pairs
    std::uint64_t expected_deliveries{0};  ///< messages_sent * group_size
    std::uint64_t views_installed{0};
    std::uint64_t fail_signal_events{0};  ///< signalling *episodes* (not emission ticks)
    bool fail_signals{false};
    TimePoint finished_at{0};  ///< simulated time when the run stopped
    // Batching pipeline (see common/batch.hpp): requests entering the
    // submit path, requests that left inside batch frames, ordered units
    // formed, and deadline-triggered flushes. Serialized into the JSON/CSV
    // reports — sweeps plot delivered-requests-per-round against offered
    // load × batch size from these columns.
    std::uint64_t requests_submitted{0};
    std::uint64_t requests_batched{0};
    std::uint64_t batches_formed{0};
    std::uint64_t flushes_on_deadline{0};
    // Zero-copy plane accounting (see net::SimNetwork): bytes actually
    // materialized vs logical wire bytes, and distinct body encodes. These
    // feed the perf-regression bench; they are deliberately NOT serialized
    // into the JSON/CSV reports, whose byte layout is a compatibility
    // surface for diff-based regression gates.
    std::uint64_t payload_bytes_copied{0};
    std::uint64_t payload_bodies_encoded{0};
    // Authentication-layer accounting (FS-NewTOP's KeyService; zero for the
    // other stacks). Like the payload counters these feed the perf bench
    // (the amortized-signature measurement), not the report files.
    std::uint64_t verify_ops{0};
    std::uint64_t verify_cache_hits{0};
};

struct ScenarioReport {
    Scenario scenario;
    ScenarioMetrics metrics;
    std::vector<InvariantResult> invariants;
    Trace trace;
    /// Deterministic checkpoint/recovery counters (deploy::RecoveryStats):
    /// checkpoints taken, PBFT log slots truncated/retained, state transfers
    /// served, rejoins completed, flush-log evictions/gaps. All zero on runs
    /// without a checkpoint interval or recovery events. Like the zero-copy
    /// counters, deliberately NOT serialized into JSON/CSV reports — the
    /// perf-regression bench gates on them through its own tables.
    deploy::RecoveryStats recovery;
    /// Sweep cells below a system's group-size floor are recorded, not run:
    /// metrics/invariants/trace stay empty and `skip_reason` says why.
    bool skipped{false};
    std::string skip_reason;
    /// Sweep coordinates (set by run_sweep): the seeds-axis value and its
    /// index, from which `scenario.seed` was derived. For single runs they
    /// default to the scenario's own seed so report columns stay uniform.
    bool from_sweep{false};
    std::uint64_t seed_axis{0};
    std::uint64_t seed_index{0};

    // Observability artifacts, filled only when `scenario.obs.enabled`.
    // Deliberately NOT serialized by to_json/to_csv (the report byte layout
    // is a compatibility surface); callers write them to separate files
    // (--metrics-out, violation flight dumps).
    /// "failsig-metrics-v1" snapshot (see obs::MetricsRegistry::to_json).
    std::string metrics_json;
    /// Flight-recorder timeline (obs::FlightRecorder::dump()).
    std::string flight_dump;
    /// Deterministic counter snapshot, name-ascending — lets the perf bench
    /// and tests gate on counters without parsing JSON.
    std::vector<std::pair<std::string, std::uint64_t>> obs_counters;

    [[nodiscard]] bool all_invariants_passed() const { return all_passed(invariants); }
};

/// Thrown when a scenario names a fault its deployment cannot express
/// (e.g. a host-level crash on FS-NewTOP's collocated placement, where a
/// host is shared between two pairs). `run_sweep` converts exactly these
/// into skipped rows; every other error stays fatal.
class ScenarioRejected : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Executes one scenario. Deterministic: same Scenario => byte-identical
/// `report.trace.canonical()`. Throws ScenarioRejected when the deployment
/// cannot express an event in the timeline.
ScenarioReport run_scenario(const Scenario& scenario);

/// Runs every scenario on a pool of `jobs` worker threads (0 = hardware
/// concurrency). Each scenario owns an independent Simulation, so results
/// are embarrassingly parallel; they come back in input order regardless of
/// job count. The first scenario error (lowest index) is rethrown after all
/// cells finish.
std::vector<ScenarioReport> run_scenarios(const std::vector<Scenario>& scenarios,
                                          int jobs = 0);

/// Cross product sweep over a base scenario. Empty axis = keep the base
/// value. Report names are "<base.name>/<system>/n<group>/s<seed>".
struct SweepSpec {
    Scenario base;
    std::vector<SystemKind> systems;
    std::vector<int> group_sizes;
    std::vector<std::uint64_t> seeds;
    /// Batch-size axis (BatchConfig::max_requests; other batch knobs come
    /// from the base scenario). Empty = keep the base value and leave cell
    /// names unchanged; non-empty appends "/b<batch>" to each cell name.
    /// The per-cell RNG seed is deliberately NOT a function of this axis, so
    /// cells differing only in batch size face the identical network
    /// schedule — the batching comparison is apples-to-apples.
    std::vector<std::size_t> batch_sizes;
    /// Worker threads for the cell cross-product (0 = hardware concurrency).
    /// The report is byte-identical for every value.
    int jobs{0};
};

/// Deterministic per-cell RNG seed: a splitmix64 hash of (axis seed, system,
/// group size), so every sweep cell draws an independent random stream no
/// matter which worker executes it or in what order. Deliberately NOT a
/// function of the seed's position in `seeds`: a failing cell reproduces
/// exactly when the sweep is narrowed to that one seed.
std::uint64_t derive_cell_seed(std::uint64_t axis_seed, SystemKind system, int group_size);

std::vector<ScenarioReport> run_sweep(const SweepSpec& spec);

}  // namespace failsig::scenario
