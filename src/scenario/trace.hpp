// Structured event trace of one scenario run.
//
// The runner taps the deployments' observer hooks (delivery/view upcalls,
// fail-signal observers, PBFT commit upcalls) and records everything that
// happens as `TraceEvent`s in simulation order. Invariant checkers evaluate
// over this trace, and `canonical()` renders it as text whose bytes are a
// pure function of the Scenario — the determinism oracle used by
// tests/test_scenario.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace failsig::scenario {

struct TraceEvent {
    enum class Kind : std::uint8_t {
        kSent = 1,           ///< workload injected a tagged message
        kDelivered = 2,      ///< a member's application received a message
        kViewInstalled = 3,  ///< a member's application received a view
        kFailSignal = 4,     ///< an FSO started fail-signalling
        kMiddlewareFailure = 5,  ///< Invocation layer saw its own pair fail
        kScenarioEvent = 6,      ///< a timeline event was applied
        kAppState = 7,           ///< end-of-run replicated app state of one member
    };

    Kind kind{Kind::kSent};
    TimePoint at{0};
    /// Observing member (deliveries, views) or acting member (sends, faults);
    /// -1 for deployment-wide events.
    int member{-1};
    /// kSent/kDelivered: the (sender, seq) tag carried in the payload.
    std::uint32_t sender{0};
    std::uint64_t seq{0};
    /// kViewInstalled: installed membership; also used by checkers.
    std::vector<std::uint32_t> view_members;
    /// Free-form description (view id, fail-signal reason, event text).
    std::string detail;
};

const char* name_of(TraceEvent::Kind kind);

class Trace {
public:
    void record(TraceEvent event) { events_.push_back(std::move(event)); }

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t size() const { return events_.size(); }

    /// One line per event; byte-identical across identical runs.
    [[nodiscard]] std::string canonical() const;

    // --- derived views used by invariant checkers -------------------------
    /// Per-member ordered "sender:seq" delivery strings.
    [[nodiscard]] std::vector<std::vector<std::string>> deliveries_by_member(int n) const;
    /// Per-member installed views, in installation order.
    [[nodiscard]] std::vector<std::vector<std::vector<std::uint32_t>>> views_by_member(
        int n) const;
    /// Count of events of a given kind.
    [[nodiscard]] std::size_t count(TraceEvent::Kind kind) const;

private:
    std::vector<TraceEvent> events_;
};

}  // namespace failsig::scenario
