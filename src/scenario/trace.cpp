#include "scenario/trace.hpp"

#include <algorithm>

namespace failsig::scenario {

const char* name_of(TraceEvent::Kind kind) {
    switch (kind) {
        case TraceEvent::Kind::kSent: return "sent";
        case TraceEvent::Kind::kDelivered: return "delivered";
        case TraceEvent::Kind::kViewInstalled: return "view";
        case TraceEvent::Kind::kFailSignal: return "fail_signal";
        case TraceEvent::Kind::kMiddlewareFailure: return "middleware_failure";
        case TraceEvent::Kind::kScenarioEvent: return "event";
        case TraceEvent::Kind::kAppState: return "app_state";
    }
    return "?";
}

std::string Trace::canonical() const {
    std::string out;
    out.reserve(events_.size() * 48);
    for (const auto& e : events_) {
        out += "t=" + std::to_string(e.at);
        out += " m=" + std::to_string(e.member);
        out += " ";
        out += name_of(e.kind);
        if (e.kind == TraceEvent::Kind::kSent || e.kind == TraceEvent::Kind::kDelivered) {
            out += " msg=" + std::to_string(e.sender) + ":" + std::to_string(e.seq);
        }
        if (e.kind == TraceEvent::Kind::kViewInstalled) {
            out += " members={";
            for (std::size_t i = 0; i < e.view_members.size(); ++i) {
                if (i) out += ",";
                out += std::to_string(e.view_members[i]);
            }
            out += "}";
        }
        if (!e.detail.empty()) {
            out += " ";
            out += e.detail;
        }
        out += "\n";
    }
    return out;
}

std::vector<std::vector<std::string>> Trace::deliveries_by_member(int n) const {
    std::vector<std::vector<std::string>> out(static_cast<std::size_t>(n));
    for (const auto& e : events_) {
        if (e.kind != TraceEvent::Kind::kDelivered) continue;
        if (e.member < 0 || e.member >= n) continue;
        out[static_cast<std::size_t>(e.member)].push_back(std::to_string(e.sender) + ":" +
                                                          std::to_string(e.seq));
    }
    return out;
}

std::vector<std::vector<std::vector<std::uint32_t>>> Trace::views_by_member(int n) const {
    std::vector<std::vector<std::vector<std::uint32_t>>> out(static_cast<std::size_t>(n));
    for (const auto& e : events_) {
        if (e.kind != TraceEvent::Kind::kViewInstalled) continue;
        if (e.member < 0 || e.member >= n) continue;
        out[static_cast<std::size_t>(e.member)].push_back(e.view_members);
    }
    return out;
}

std::size_t Trace::count(TraceEvent::Kind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const TraceEvent& e) { return e.kind == kind; }));
}

}  // namespace failsig::scenario
