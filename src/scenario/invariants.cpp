#include "scenario/invariants.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "app/kv_store.hpp"

namespace failsig::scenario {

namespace {

std::vector<int> correct_members(const Scenario& s) {
    const auto faulted = s.faulted_members();
    std::vector<int> out;
    for (int i = 0; i < s.group_size; ++i) {
        if (!faulted.contains(i)) out.push_back(i);
    }
    return out;
}

bool totally_ordered(const Scenario& s) {
    if (s.system == SystemKind::kPbft) return true;
    return s.workload.service == newtop::ServiceType::kSymmetricTotalOrder ||
           s.workload.service == newtop::ServiceType::kAsymmetricTotalOrder;
}

std::vector<std::uint32_t> initial_view(int n) {
    std::vector<std::uint32_t> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(i);
    return v;
}

std::vector<std::uint32_t> final_view(
    const std::vector<std::vector<std::vector<std::uint32_t>>>& views, int member, int n) {
    const auto& mine = views[static_cast<std::size_t>(member)];
    return mine.empty() ? initial_view(n) : mine.back();
}

bool has_partition(const Scenario& s) {
    return std::any_of(s.timeline.begin(), s.timeline.end(), [](const ScenarioEvent& e) {
        return e.kind == ScenarioEvent::Kind::kPartition;
    });
}

std::set<int> recovered_members(const Scenario& s) {
    std::set<int> out;
    for (const auto& e : s.timeline) {
        if (e.kind == ScenarioEvent::Kind::kRecoverMember) out.insert(e.member);
    }
    return out;
}

/// Parses one "key=<decimal>" token out of a KvStore::state_string detail
/// line ("applied=N digest=HEX checkpoints=..."); digest values are hex.
bool parse_state_field(const std::string& detail, const std::string& key, int base,
                       std::uint64_t& out) {
    const auto pos = detail.find(key + "=");
    if (pos == std::string::npos) return false;
    const char* begin = detail.c_str() + pos + key.size() + 1;
    char* end = nullptr;
    out = std::strtoull(begin, &end, base);
    return end != begin;
}

std::string view_to_string(const std::vector<std::uint32_t>& v) {
    std::string s = "{";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(v[i]);
    }
    return s + "}";
}

// --- agreement -------------------------------------------------------------

class AgreementInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "agreement"; }
    [[nodiscard]] bool applicable(const Scenario&) const override { return true; }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        const auto deliveries = t.deliveries_by_member(s.group_size);
        const auto members = correct_members(s);
        if (totally_ordered(s)) {
            // Prefix agreement: any two correct members' delivery sequences
            // must agree on their common prefix (one may lag the other at
            // the instant the run was cut off).
            for (std::size_t a = 0; a < members.size(); ++a) {
                for (std::size_t b = a + 1; b < members.size(); ++b) {
                    const auto& da = deliveries[static_cast<std::size_t>(members[a])];
                    const auto& db = deliveries[static_cast<std::size_t>(members[b])];
                    const std::size_t common = std::min(da.size(), db.size());
                    for (std::size_t k = 0; k < common; ++k) {
                        if (da[k] != db[k]) {
                            return {name(), false,
                                    "members " + std::to_string(members[a]) + " and " +
                                        std::to_string(members[b]) + " disagree at position " +
                                        std::to_string(k) + " (" + da[k] + " vs " + db[k] + ")"};
                        }
                    }
                }
            }
            return {name(), true, {}};
        }
        // FIFO/causal/unreliable: per-sender sequence numbers must be
        // strictly increasing at every correct member.
        for (const int m : members) {
            std::map<std::string, std::uint64_t> last_seq;
            for (const auto& entry : deliveries[static_cast<std::size_t>(m)]) {
                const auto colon = entry.find(':');
                const std::string sender = entry.substr(0, colon);
                const std::uint64_t seq = std::stoull(entry.substr(colon + 1));
                const auto it = last_seq.find(sender);
                if (it != last_seq.end() && seq <= it->second) {
                    return {name(), false,
                            "member " + std::to_string(m) + " violated per-sender FIFO for sender " +
                                sender + " (seq " + std::to_string(seq) + " after " +
                                std::to_string(it->second) + ")"};
                }
                last_seq[sender] = seq;
            }
        }
        return {name(), true, {}};
    }
};

// --- validity ---------------------------------------------------------------

class ValidityInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "validity"; }
    [[nodiscard]] bool applicable(const Scenario& s) const override { return s.fault_free(); }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        std::set<std::string> sent;
        for (const auto& e : t.events()) {
            if (e.kind == TraceEvent::Kind::kSent) {
                sent.insert(std::to_string(e.sender) + ":" + std::to_string(e.seq));
            }
        }
        const auto deliveries = t.deliveries_by_member(s.group_size);
        for (int m = 0; m < s.group_size; ++m) {
            const auto& mine = deliveries[static_cast<std::size_t>(m)];
            const std::set<std::string> got(mine.begin(), mine.end());
            if (got.size() != mine.size()) {
                return {name(), false, "member " + std::to_string(m) + " delivered a duplicate"};
            }
            if (got != sent) {
                return {name(), false,
                        "member " + std::to_string(m) + " delivered " +
                            std::to_string(got.size()) + " of " + std::to_string(sent.size()) +
                            " sent messages"};
            }
        }
        return {name(), true, {}};
    }
};

// --- view convergence --------------------------------------------------------

class ViewConvergenceInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "view-convergence"; }
    [[nodiscard]] bool applicable(const Scenario& s) const override {
        // PBFT has no group-membership views; partitions legitimately leave
        // disjoint sub-views behind.
        return s.system != SystemKind::kPbft && !has_partition(s);
    }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        const auto views = t.views_by_member(s.group_size);
        const auto members = correct_members(s);
        if (members.empty()) return {name(), true, {}};
        const auto reference = final_view(views, members.front(), s.group_size);
        for (const int m : members) {
            const auto mine = final_view(views, m, s.group_size);
            if (mine != reference) {
                return {name(), false,
                        "member " + std::to_string(m) + " ended in view " + view_to_string(mine) +
                            " but member " + std::to_string(members.front()) + " ended in " +
                            view_to_string(reference)};
            }
        }
        return {name(), true, {}};
    }
};

// --- no delivery from excluded members ---------------------------------------

class NoDeliveryFromExcludedInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "no-delivery-from-excluded"; }
    [[nodiscard]] bool applicable(const Scenario& s) const override {
        return s.system != SystemKind::kPbft;
    }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        std::map<std::pair<std::uint32_t, std::uint64_t>, TimePoint> sent_at;
        for (const auto& e : t.events()) {
            if (e.kind == TraceEvent::Kind::kSent) sent_at[{e.sender, e.seq}] = e.at;
        }
        // Per observing member: the instant each sender was first excluded,
        // and — when the rejoin protocol re-admitted it into a later view —
        // the instant it was readmitted. Messages multicast inside the
        // [excluded, readmitted) window must never be delivered; messages
        // from a readmitted sender's fresh incarnation are legitimate again.
        std::vector<std::map<std::uint32_t, TimePoint>> excluded_at(
            static_cast<std::size_t>(s.group_size));
        std::vector<std::map<std::uint32_t, TimePoint>> readmitted_at(
            static_cast<std::size_t>(s.group_size));
        for (const auto& e : t.events()) {
            if (e.member < 0 || e.member >= s.group_size) continue;
            auto& excluded = excluded_at[static_cast<std::size_t>(e.member)];
            auto& readmitted = readmitted_at[static_cast<std::size_t>(e.member)];
            if (e.kind == TraceEvent::Kind::kViewInstalled) {
                for (int m = 0; m < s.group_size; ++m) {
                    const auto id = static_cast<std::uint32_t>(m);
                    const bool in_view = std::find(e.view_members.begin(), e.view_members.end(),
                                                   id) != e.view_members.end();
                    if (!in_view && !excluded.contains(id)) {
                        excluded[id] = e.at;
                    } else if (in_view && excluded.contains(id) && !readmitted.contains(id)) {
                        readmitted[id] = e.at;
                    }
                }
            } else if (e.kind == TraceEvent::Kind::kDelivered) {
                const auto ex = excluded.find(e.sender);
                if (ex == excluded.end()) continue;
                const auto sent = sent_at.find({e.sender, e.seq});
                if (sent == sent_at.end()) continue;
                const auto back = readmitted.find(e.sender);
                if (back != readmitted.end() && sent->second >= back->second) continue;
                if (sent->second > ex->second) {
                    return {name(), false,
                            "member " + std::to_string(e.member) + " delivered " +
                                std::to_string(e.sender) + ":" + std::to_string(e.seq) +
                                " multicast at t=" + std::to_string(sent->second) +
                                " after excluding its sender at t=" +
                                std::to_string(ex->second)};
                }
            }
        }
        return {name(), true, {}};
    }
};

// --- no false exclusion -------------------------------------------------------

class NoFalseExclusionInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "no-false-exclusion"; }
    [[nodiscard]] bool applicable(const Scenario& s) const override {
        // With a real partition, excluding unreachable (yet healthy) members
        // is correct behaviour; without one, every exclusion must point at a
        // genuinely faulted member. PBFT has no membership views.
        return s.system != SystemKind::kPbft && !has_partition(s);
    }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        const auto faulted = s.faulted_members();
        const auto views = t.views_by_member(s.group_size);
        for (const int observer : correct_members(s)) {
            for (const auto& view : views[static_cast<std::size_t>(observer)]) {
                for (int m = 0; m < s.group_size; ++m) {
                    const auto id = static_cast<std::uint32_t>(m);
                    const bool in_view =
                        std::find(view.begin(), view.end(), id) != view.end();
                    if (!in_view && !faulted.contains(m)) {
                        return {name(), false,
                                "member " + std::to_string(observer) +
                                    " excluded healthy member " + std::to_string(m) +
                                    " (view " + view_to_string(view) +
                                    "): a suspicion was false"};
                    }
                }
            }
        }
        return {name(), true, {}};
    }
};

// --- fail-signal implies actual fault ----------------------------------------

class FailSignalImpliesFaultInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "fail-signal-implies-fault"; }
    [[nodiscard]] bool applicable(const Scenario& s) const override {
        return s.system == SystemKind::kFsNewTop;
    }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        const auto faulted = s.faulted_members();
        for (const auto& e : t.events()) {
            if (e.kind != TraceEvent::Kind::kFailSignal &&
                e.kind != TraceEvent::Kind::kMiddlewareFailure) {
                continue;
            }
            if (!faulted.contains(e.member)) {
                return {name(), false,
                        "pair of healthy member " + std::to_string(e.member) +
                            " fail-signalled (" + e.detail + ")"};
            }
        }
        return {name(), true, {}};
    }
};

// --- rejoined state matches survivors ----------------------------------------

/// After a crash -> recover -> rejoin episode, the rejoined member's
/// replicated KV state (checkpoint transfer + committed suffix) must equal
/// every survivor's: same applied count, same chain digest. Evaluated over
/// the end-of-run kAppState records, which only recovery scenarios emit.
class RejoinedStateInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override {
        return "rejoined-state-matches-survivors";
    }
    [[nodiscard]] bool applicable(const Scenario& s) const override {
        return s.has_recovery() && totally_ordered(s);
    }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        std::map<int, const TraceEvent*> state_of;
        for (const auto& e : t.events()) {
            if (e.kind == TraceEvent::Kind::kAppState) state_of[e.member] = &e;
        }
        std::set<int> compare(recovered_members(s));
        for (const int m : correct_members(s)) compare.insert(m);

        const TraceEvent* reference = nullptr;
        int reference_member = -1;
        for (const int m : compare) {
            const auto it = state_of.find(m);
            if (it == state_of.end()) {
                return {name(), false,
                        "member " + std::to_string(m) + " has no app state record " +
                            "(rejoin did not complete)"};
            }
            std::uint64_t applied = 0;
            std::uint64_t digest = 0;
            if (!parse_state_field(it->second->detail, "applied", 10, applied) ||
                !parse_state_field(it->second->detail, "digest", 16, digest)) {
                return {name(), false,
                        "member " + std::to_string(m) + " app state unparsable: " +
                            it->second->detail};
            }
            if (reference == nullptr) {
                reference = it->second;
                reference_member = m;
                continue;
            }
            std::uint64_t ref_applied = 0;
            std::uint64_t ref_digest = 0;
            parse_state_field(reference->detail, "applied", 10, ref_applied);
            parse_state_field(reference->detail, "digest", 16, ref_digest);
            if (applied != ref_applied || digest != ref_digest) {
                return {name(), false,
                        "member " + std::to_string(m) + " app state (" + it->second->detail +
                            ") diverges from member " + std::to_string(reference_member) +
                            " (" + reference->detail + ")"};
            }
        }
        return {name(), true, {}};
    }
};

// --- KV linearizability against the committed prefix -------------------------

/// A correct member's KV store must be exactly the fold of its own delivered
/// prefix: replaying the member's trace deliveries through a fresh KvStore
/// must land on the recorded (applied, digest) pair. This is the read-path
/// linearizability claim — reads serve the committed prefix, nothing more,
/// nothing less. Recovered members are exempt (their state legitimately
/// contains requests delivered while they were down, via the checkpoint
/// transfer); the rejoined-state checker covers them.
class KvLinearizabilityInvariant final : public Invariant {
public:
    [[nodiscard]] std::string name() const override { return "kv-linearizability"; }
    [[nodiscard]] bool applicable(const Scenario& s) const override {
        if (!s.has_recovery() || !totally_ordered(s)) return false;
        // Replay reconstructs payload bytes from the (sender, seq) tags and
        // the declared payload size; a load phase with a different payload
        // size would make sends indistinguishable.
        return std::all_of(s.timeline.begin(), s.timeline.end(), [&](const ScenarioEvent& e) {
            return e.kind != ScenarioEvent::Kind::kLoad ||
                   e.load_spec.payload == s.workload.payload_size;
        });
    }

    [[nodiscard]] InvariantResult check(const Scenario& s, const Trace& t) const override {
        std::map<int, const TraceEvent*> state_of;
        for (const auto& e : t.events()) {
            if (e.kind == TraceEvent::Kind::kAppState) state_of[e.member] = &e;
        }
        const auto recovered = recovered_members(s);
        const std::size_t payload_size = std::max<std::size_t>(s.workload.payload_size, 8);
        for (const int m : correct_members(s)) {
            if (recovered.contains(m)) continue;
            const auto it = state_of.find(m);
            if (it == state_of.end()) continue;
            app::KvStore replay;
            for (const auto& e : t.events()) {
                if (e.kind != TraceEvent::Kind::kDelivered || e.member != m) continue;
                ByteWriter w;
                w.u32(e.sender);
                w.u32(static_cast<std::uint32_t>(e.seq));
                Bytes payload = w.take();
                if (payload.size() < payload_size) payload.resize(payload_size, 0x5a);
                replay.apply(payload);
            }
            std::uint64_t applied = 0;
            std::uint64_t digest = 0;
            if (!parse_state_field(it->second->detail, "applied", 10, applied) ||
                !parse_state_field(it->second->detail, "digest", 16, digest)) {
                return {name(), false,
                        "member " + std::to_string(m) + " app state unparsable: " +
                            it->second->detail};
            }
            if (replay.applied() != applied || replay.digest() != digest) {
                return {name(), false,
                        "member " + std::to_string(m) + " KV state (applied=" +
                            std::to_string(applied) + ") is not the fold of its delivered " +
                            "prefix (replay applied=" + std::to_string(replay.applied()) +
                            "): reads would not be linearizable"};
            }
        }
        return {name(), true, {}};
    }
};

}  // namespace

const std::vector<std::unique_ptr<Invariant>>& builtin_invariants() {
    static const auto* checkers = [] {
        auto* list = new std::vector<std::unique_ptr<Invariant>>();
        list->push_back(std::make_unique<AgreementInvariant>());
        list->push_back(std::make_unique<ValidityInvariant>());
        list->push_back(std::make_unique<ViewConvergenceInvariant>());
        list->push_back(std::make_unique<NoDeliveryFromExcludedInvariant>());
        list->push_back(std::make_unique<NoFalseExclusionInvariant>());
        list->push_back(std::make_unique<FailSignalImpliesFaultInvariant>());
        list->push_back(std::make_unique<RejoinedStateInvariant>());
        list->push_back(std::make_unique<KvLinearizabilityInvariant>());
        return list;
    }();
    return *checkers;
}

std::vector<InvariantResult> evaluate(const Scenario& scenario, const Trace& trace) {
    std::vector<const Invariant*> checkers;
    for (const auto& inv : builtin_invariants()) checkers.push_back(inv.get());
    return evaluate(scenario, trace, checkers);
}

std::vector<InvariantResult> evaluate(const Scenario& scenario, const Trace& trace,
                                      const std::vector<const Invariant*>& checkers) {
    std::vector<InvariantResult> results;
    for (const auto* checker : checkers) {
        if (checker->applicable(scenario)) results.push_back(checker->check(scenario, trace));
    }
    return results;
}

bool all_passed(const std::vector<InvariantResult>& results) {
    return std::all_of(results.begin(), results.end(),
                       [](const InvariantResult& r) { return r.passed; });
}

const InvariantResult* find_result(const std::vector<InvariantResult>& results,
                                   const std::string& name) {
    for (const auto& r : results) {
        if (r.name == name) return &r;
    }
    return nullptr;
}

}  // namespace failsig::scenario
