// Replicated application state: a deterministic KV store driven by the
// delivery upcall of every ordering stack (NewTOP, FS-NewTOP, PBFT).
//
// Until now the app layer only counted deliveries, so "the replicas agree"
// was tested one level below where it matters. This store turns every
// ordered unit into a state transition over a bounded key space and folds
// each applied request into a running chain digest: two replicas hold the
// same digest after N applies iff they applied the same requests in the
// same order. That digest is what the new scenario checkers compare
// (rejoined-state == survivor-state, KV linearizability against the
// committed prefix) and what the checkpoint/state-transfer paths ship.
//
// Determinism rules: no wall clock, no randomness, no allocation-order
// dependence. Applying is message-free — a store living beside a protocol
// stack never changes what goes on the wire, which keeps pre-existing
// sim-backend reports byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace failsig::app {

/// One periodic checkpoint: the digest chained over the first `applied`
/// requests. Replicas with the same prefix record identical pairs.
struct KvCheckpoint {
    std::uint64_t applied{0};
    std::uint64_t digest{0};

    friend bool operator==(const KvCheckpoint&, const KvCheckpoint&) = default;
};

class KvStore {
public:
    /// Keys are a hash of the request body folded into a small fixed space:
    /// sustained load keeps overwriting the same slots, so the store itself
    /// stays bounded no matter how long the run is.
    static constexpr std::uint32_t kKeySpace = 64;
    /// Snapshot wire magic ("KVAP").
    static constexpr std::uint32_t kSnapshotMagic = 0x4B564150;
    /// Checkpoints retained for the linearizability checker's prefix
    /// comparison; older ones roll off.
    static constexpr std::size_t kCheckpointHistory = 16;

    /// `checkpoint_interval` = take a checkpoint every that many applied
    /// requests; 0 disables periodic checkpoints (digest still maintained).
    explicit KvStore(std::uint64_t checkpoint_interval = 0)
        : checkpoint_interval_(checkpoint_interval) {}

    /// Applies one ordered unit. Batch frames are unbatched here so the
    /// resulting state is exactly that of the b individual requests in
    /// submission order. Returns the number of requests applied.
    std::size_t apply(std::span<const std::uint8_t> unit);

    /// Records {applied, digest} now (also called automatically on the
    /// periodic interval).
    void take_checkpoint();

    /// Read path: current value under `key` (hashed into the key space), or
    /// nullopt if never written. Reads are served from the committed prefix
    /// only — there is no speculative state to leak.
    [[nodiscard]] std::optional<std::uint64_t> read(std::uint32_t key) const;

    [[nodiscard]] std::uint64_t applied() const { return applied_; }
    [[nodiscard]] std::uint64_t digest() const { return digest_; }
    [[nodiscard]] std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
    [[nodiscard]] const std::deque<KvCheckpoint>& checkpoints() const { return checkpoints_; }
    [[nodiscard]] std::uint64_t checkpoint_interval() const { return checkpoint_interval_; }

    /// Human-readable state line for trace events:
    /// "applied=N digest=HEX checkpoints=a1:d1,a2:d2,...".
    [[nodiscard]] std::string state_string() const;

    /// Full-state codec for checkpoint transfer / rejoin grants. Counts are
    /// validated on decode (fuzz target — see tests/test_recovery.cpp).
    [[nodiscard]] Bytes snapshot() const;
    /// Replaces this store's state with the snapshot; the local
    /// checkpoint_interval is preserved. Returns an error (state untouched)
    /// on any malformed input.
    Result<bool> restore(std::span<const std::uint8_t> data);

    /// State equality (interval excluded: it is configuration, not state).
    [[nodiscard]] bool state_equals(const KvStore& other) const {
        return applied_ == other.applied_ && digest_ == other.digest_ &&
               store_ == other.store_ && checkpoints_ == other.checkpoints_;
    }

private:
    void apply_one(std::span<const std::uint8_t> request);

    std::uint64_t checkpoint_interval_{0};
    std::uint64_t applied_{0};
    /// FNV-1a offset basis; chained over every applied request.
    std::uint64_t digest_{0xcbf29ce484222325ull};
    std::map<std::uint32_t, std::uint64_t> store_;
    std::deque<KvCheckpoint> checkpoints_;
    std::uint64_t checkpoints_taken_{0};
};

}  // namespace failsig::app
