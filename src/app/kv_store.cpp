#include "app/kv_store.hpp"

#include "common/batch.hpp"

namespace failsig::app {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

std::uint64_t fnv1a(std::uint64_t seed, std::span<const std::uint8_t> data) {
    std::uint64_t h = seed;
    for (const auto b : data) {
        h ^= b;
        h *= kFnvPrime;
    }
    return h;
}

std::string hex_of(std::uint64_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
        v >>= 4;
    }
    return out;
}

}  // namespace

std::size_t KvStore::apply(std::span<const std::uint8_t> unit) {
    if (Batch::is_batch(unit)) {
        auto requests = Batch::decode(unit);
        if (requests.has_value()) {
            for (const auto& request : requests.value()) apply_one(request);
            return requests.value().size();
        }
        // A frame that looks batched but does not decode is still one
        // ordered unit all replicas saw identically: fold it whole.
    }
    apply_one(unit);
    return 1;
}

void KvStore::apply_one(std::span<const std::uint8_t> request) {
    digest_ = fnv1a(digest_, request);
    const auto key = static_cast<std::uint32_t>(fnv1a(kFnvBasis, request) % kKeySpace);
    store_[key] = digest_;
    ++applied_;
    if (checkpoint_interval_ != 0 && applied_ % checkpoint_interval_ == 0) take_checkpoint();
}

void KvStore::take_checkpoint() {
    checkpoints_.push_back(KvCheckpoint{applied_, digest_});
    while (checkpoints_.size() > kCheckpointHistory) checkpoints_.pop_front();
    ++checkpoints_taken_;
}

std::optional<std::uint64_t> KvStore::read(std::uint32_t key) const {
    const auto it = store_.find(key % kKeySpace);
    if (it == store_.end()) return std::nullopt;
    return it->second;
}

std::string KvStore::state_string() const {
    std::string out = "applied=" + std::to_string(applied_) + " digest=" + hex_of(digest_);
    out += " checkpoints=";
    bool first = true;
    for (const auto& cp : checkpoints_) {
        if (!first) out += ',';
        first = false;
        out += std::to_string(cp.applied) + ":" + hex_of(cp.digest);
    }
    return out;
}

Bytes KvStore::snapshot() const {
    ByteWriter w;
    w.reserve(4 + 8 + 8 + 8 + 4 + store_.size() * 12 + 4 + checkpoints_.size() * 16);
    w.u32(kSnapshotMagic);
    w.u64(applied_);
    w.u64(digest_);
    w.u64(checkpoints_taken_);
    w.u32(static_cast<std::uint32_t>(store_.size()));
    for (const auto& [key, value] : store_) {
        w.u32(key);
        w.u64(value);
    }
    w.u32(static_cast<std::uint32_t>(checkpoints_.size()));
    for (const auto& cp : checkpoints_) {
        w.u64(cp.applied);
        w.u64(cp.digest);
    }
    return w.take();
}

Result<bool> KvStore::restore(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        if (r.u32() != kSnapshotMagic) return Result<bool>::err("bad KV snapshot magic");
        const auto applied = r.u64();
        const auto digest = r.u64();
        const auto checkpoints_taken = r.u64();
        const auto store_count = r.u32();
        if (store_count > kKeySpace) return Result<bool>::err("implausible KV store size");
        std::map<std::uint32_t, std::uint64_t> store;
        for (std::uint32_t i = 0; i < store_count; ++i) {
            const auto key = r.u32();
            if (key >= kKeySpace) return Result<bool>::err("KV key out of key space");
            const auto value = r.u64();
            if (store.contains(key)) return Result<bool>::err("duplicate KV key");
            store.emplace(key, value);
        }
        const auto cp_count = r.u32();
        if (cp_count > kCheckpointHistory) {
            return Result<bool>::err("implausible KV checkpoint count");
        }
        std::deque<KvCheckpoint> checkpoints;
        for (std::uint32_t i = 0; i < cp_count; ++i) {
            KvCheckpoint cp;
            cp.applied = r.u64();
            cp.digest = r.u64();
            if (!checkpoints.empty() && cp.applied <= checkpoints.back().applied) {
                return Result<bool>::err("non-monotone KV checkpoint watermarks");
            }
            if (cp.applied > applied) return Result<bool>::err("KV checkpoint past applied");
            checkpoints.push_back(cp);
        }
        if (!r.done()) return Result<bool>::err("trailing bytes in KV snapshot");
        applied_ = applied;
        digest_ = digest;
        checkpoints_taken_ = checkpoints_taken;
        store_ = std::move(store);
        checkpoints_ = std::move(checkpoints);
        return true;
    } catch (const std::out_of_range&) {
        return Result<bool>::err("truncated KV snapshot");
    }
}

}  // namespace failsig::app
