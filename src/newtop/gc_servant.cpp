#include "newtop/gc_servant.hpp"

namespace failsig::newtop {

GcServant::GcServant(orb::Orb& orb, const std::string& key, std::unique_ptr<GcService> gc)
    : orb_(orb), gc_(std::move(gc)) {
    self_ref_ = orb_.activate(key, this);
}

void GcServant::dispatch(const orb::Request& request) {
    if (!request.args.is<Bytes>()) return;
    submit_local(request.operation, request.args.as<Bytes>());
}

void GcServant::submit_local(const std::string& operation, Bytes body) {
    queue_.emplace_back(operation, std::move(body));
    maybe_run();
}

void GcServant::maybe_run() {
    if (busy_ || queue_.empty()) return;
    busy_ = true;
    auto [operation, body] = std::move(queue_.front());
    queue_.pop_front();

    const Duration cost = gc_->processing_cost(operation, body);
    orb_.pool().submit(cost, [this, operation = std::move(operation), body = std::move(body)] {
        auto outputs = gc_->process(operation, body);
        for (auto& out : outputs) {
            // Plain deployment: every destination is a concrete object ref.
            // One fan-out invocation per logical output: the body is
            // marshalled once and shared across all destinations.
            std::vector<orb::ObjectRef> targets;
            targets.reserve(out.dests.size());
            for (const auto& dest : out.dests) {
                if (!dest.is_fs) targets.push_back(dest.ref);
            }
            orb_.invoke_fanout(targets, out.operation, orb::Any{std::move(out.body)});
        }
        busy_ = false;
        maybe_run();
    });
}

}  // namespace failsig::newtop
