// The crash-tolerant NewTOP failure suspector: periodically pings the other
// members' suspector modules and raises a (possibly false!) suspicion when a
// pong does not arrive within the timeout. When message delays exceed the
// timeout, connected-but-slow members get suspected — which is precisely how
// NewTOP groups split even without failures (paper §1, §3.1).
#pragma once

#include "newtop/gc_servant.hpp"
#include "sim/simulation.hpp"

namespace failsig::newtop {

struct SuspectorOptions {
    Duration ping_interval = 200 * kMillisecond;
    Duration suspect_timeout = 800 * kMillisecond;
};

class PingSuspector final : public orb::Servant {
public:
    PingSuspector(sim::Simulation& sim, orb::Orb& orb, const std::string& key, MemberId self,
                  GcServant& local_gc, SuspectorOptions options);

    /// Other members' suspector object refs, keyed by member id.
    void set_peers(std::map<MemberId, orb::ObjectRef> peers);

    /// Begins the ping loop (call after set_peers).
    void start();
    /// Stops pinging; pending timers become no-ops.
    void stop();

    /// Crash-recovery: drops the suspicion of `member` and restarts its
    /// timeout from now. The last_heard_ refresh matters — leaving the stale
    /// (or defaulted-to-zero) timestamp would re-suspect the member on the
    /// very next tick, before its first pong can arrive.
    void forgive(MemberId member) {
        suspected_.erase(member);
        last_heard_[member] = sim_.now();
    }
    /// Recovering member: forget every suspicion accumulated pre-crash.
    void forgive_all() {
        suspected_.clear();
        for (const auto& [m, ref] : peers_) last_heard_[m] = sim_.now();
    }

    void dispatch(const orb::Request& request) override;

    [[nodiscard]] std::uint64_t suspicions_raised() const { return suspicions_raised_; }
    [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }

private:
    void tick();

    sim::Simulation& sim_;
    orb::Orb& orb_;
    MemberId self_;
    GcServant& local_gc_;
    SuspectorOptions options_;
    orb::ObjectRef self_ref_;
    std::map<MemberId, orb::ObjectRef> peers_;
    std::map<MemberId, TimePoint> last_heard_;
    std::set<MemberId> suspected_;
    bool running_{false};
    std::uint64_t suspicions_raised_{0};
};

}  // namespace failsig::newtop
