#include "newtop/deployment.hpp"

namespace failsig::newtop {

NewTopDeployment::NewTopDeployment(const NewTopOptions& options)
    : own_net_(options.env.external() ? nullptr
                                      : std::make_unique<net::SimNetwork>(sim_, Rng(options.seed),
                                                                          options.net_params)),
      net_(net::transport_or(options.env, own_net_.get())),
      faults_(net::faults_or(options.env, own_net_.get())),
      domain_(net::sim_of_or(options.env, sim_), net_, options.costs,
              options.threads_per_node) {
    const int n = options.group_size;
    ensure(n >= 1, "NewTopDeployment: group_size must be >= 1");

    std::vector<MemberId> member_ids;
    for (int i = 0; i < n; ++i) member_ids.push_back(static_cast<MemberId>(i));

    // Pass 1: create ORBs and reserve object refs so GcConfigs can point at
    // peers that do not exist yet.
    std::vector<orb::Orb*> orbs;
    std::vector<orb::ObjectRef> gc_refs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        orbs.push_back(&domain_.create_orb(node_of(i)));
        gc_refs[static_cast<std::size_t>(i)] = orb::ObjectRef{orbs.back()->endpoint(), "gc"};
    }

    // Pass 2: build each NSO.
    members_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto& member = members_[static_cast<std::size_t>(i)];
        orb::Orb& orb = *orbs[static_cast<std::size_t>(i)];

        GcConfig cfg;
        cfg.self = static_cast<MemberId>(i);
        cfg.initial_members = member_ids;
        for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            cfg.peers[static_cast<MemberId>(j)] =
                fs::Destination::plain(gc_refs[static_cast<std::size_t>(j)]);
        }
        cfg.delivery = fs::Destination::plain(orb::ObjectRef{orb.endpoint(), "inv"});
        cfg.protocol_op_cost = options.costs.gc_protocol_op;
        cfg.obs = options.obs;
        cfg.obs_member = i;
        cfg.checkpoint_interval = options.checkpoint_interval;

        member.gc = std::make_unique<GcServant>(orb, "gc", std::make_unique<GcService>(cfg));
        member.invocation = std::make_unique<PlainInvocation>(orb, "inv", *member.gc);
        member.invocation->set_obs(options.obs, i);
        member.invocation->configure_batching(orb.simulation(), options.batch);
        member.suspector = std::make_unique<PingSuspector>(
            orb.simulation(), orb, "susp", static_cast<MemberId>(i), *member.gc,
            options.suspector);
    }

    // Pass 3: connect suspectors.
    for (int i = 0; i < n; ++i) {
        std::map<MemberId, orb::ObjectRef> peers;
        for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            peers[static_cast<MemberId>(j)] = orb::ObjectRef{
                orbs[static_cast<std::size_t>(j)]->endpoint(), "susp"};
        }
        members_[static_cast<std::size_t>(i)].suspector->set_peers(std::move(peers));
        if (options.start_suspectors) {
            members_[static_cast<std::size_t>(i)].suspector->start();
        }
    }
}

PlainInvocation& NewTopDeployment::invocation(int member) {
    return *members_.at(static_cast<std::size_t>(member)).invocation;
}

GcService& NewTopDeployment::gc(int member) {
    return members_.at(static_cast<std::size_t>(member)).gc->gc();
}

const GcService& NewTopDeployment::gc(int member) const {
    return members_.at(static_cast<std::size_t>(member)).gc->gc();
}

GcServant& NewTopDeployment::gc_servant(int member) {
    return *members_.at(static_cast<std::size_t>(member)).gc;
}

PingSuspector& NewTopDeployment::suspector(int member) {
    return *members_.at(static_cast<std::size_t>(member)).suspector;
}

void NewTopDeployment::stop_suspectors() {
    for (auto& m : members_) m.suspector->stop();
}

void NewTopDeployment::stop_suspector(int member) {
    members_.at(static_cast<std::size_t>(member)).suspector->stop();
}

BatchStats NewTopDeployment::batch_stats() const {
    BatchStats stats;
    for (const auto& m : members_) stats += m.invocation->batch_stats();
    return stats;
}

}  // namespace failsig::newtop
