// GcServant: hosts a GcService as a plain CORBA object (the crash-tolerant
// NewTOP deployment). Inputs are serialized — the paper's GC "is implemented
// as a single-threaded, deterministic application" — and each input's
// processing cost is charged to the node's shared thread pool before the
// state machine runs. Outputs are routed through the ORB.
#pragma once

#include <deque>

#include "newtop/gc_service.hpp"
#include "orb/orb.hpp"

namespace failsig::newtop {

class GcServant final : public orb::Servant {
public:
    GcServant(orb::Orb& orb, const std::string& key, std::unique_ptr<GcService> gc);

    void dispatch(const orb::Request& request) override;

    /// Feeds an input from a collocated module (Invocation layer, suspector)
    /// without a network round trip — they live in the same NSO.
    void submit_local(const std::string& operation, Bytes body);

    [[nodiscard]] GcService& gc() { return *gc_; }
    [[nodiscard]] const GcService& gc() const { return *gc_; }
    [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }

private:
    void maybe_run();

    orb::Orb& orb_;
    std::unique_ptr<GcService> gc_;
    orb::ObjectRef self_ref_;
    std::deque<std::pair<std::string, Bytes>> queue_;
    bool busy_{false};
};

}  // namespace failsig::newtop
