// The NewTOP Invocation service: the application-facing half of an NSO.
//
// "The former [Invocation service] allows the application to specify the
// type of NewTOP service needed and marshals a multicast message
// accordingly" (§3). On delivery it unmarshals and upcalls the application.
//
// `PlainInvocation` talks to a local crash-prone GC object (original
// NewTOP). The FS-NewTOP variant lives in fsnewtop/fs_invocation.hpp; both
// expose the same InvocationService interface, so applications are untouched
// when crash tolerance is swapped for Byzantine tolerance — the paper's
// transparency claim.
#pragma once

#include <functional>
#include <map>

#include "newtop/gc_servant.hpp"

namespace failsig::newtop {

class InvocationService {
public:
    using DeliveryHandler = std::function<void(const Delivery&)>;
    using ViewHandler = std::function<void(const GroupView&)>;
    /// Invoked when the middleware itself fails non-benignly (FS-NewTOP only:
    /// fail-signal received for the local GC pair).
    using MiddlewareFailureHandler = std::function<void(const std::string& fs_name)>;

    virtual ~InvocationService() = default;

    /// Multicasts `payload` to the group with the requested service class.
    virtual void multicast(ServiceType service, Bytes payload) = 0;

    void on_delivery(DeliveryHandler handler) { delivery_handler_ = std::move(handler); }
    void on_view(ViewHandler handler) { view_handler_ = std::move(handler); }
    void on_middleware_failure(MiddlewareFailureHandler handler) {
        failure_handler_ = std::move(handler);
    }

    [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
    [[nodiscard]] const GroupView& last_view() const { return last_view_; }

protected:
    /// Common unmarshalling/re-sequencing/upcall path used by both variants.
    void handle_delivery_bytes(const Bytes& body);
    void upcall(const Delivery& d);

    std::uint64_t next_delivery_seq_{1};
    std::map<std::uint64_t, Delivery> pending_deliveries_;
    DeliveryHandler delivery_handler_;
    ViewHandler view_handler_;
    MiddlewareFailureHandler failure_handler_;
    std::uint64_t deliveries_{0};
    GroupView last_view_;
};

/// Invocation service of the original, crash-tolerant NewTOP.
class PlainInvocation final : public InvocationService, public orb::Servant {
public:
    /// Registers under `key` on `orb`; `local_gc` is the collocated GC object.
    PlainInvocation(orb::Orb& orb, const std::string& key, GcServant& local_gc);

    void multicast(ServiceType service, Bytes payload) override;
    void dispatch(const orb::Request& request) override;

    [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }

private:
    GcServant& local_gc_;
    orb::ObjectRef self_ref_;
};

}  // namespace failsig::newtop
