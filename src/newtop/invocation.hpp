// The NewTOP Invocation service: the application-facing half of an NSO.
//
// "The former [Invocation service] allows the application to specify the
// type of NewTOP service needed and marshals a multicast message
// accordingly" (§3). On delivery it unmarshals and upcalls the application.
//
// `PlainInvocation` talks to a local crash-prone GC object (original
// NewTOP). The FS-NewTOP variant lives in fsnewtop/fs_invocation.hpp; both
// expose the same InvocationService interface, so applications are untouched
// when crash tolerance is swapped for Byzantine tolerance — the paper's
// transparency claim.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "common/batch.hpp"
#include "newtop/gc_servant.hpp"
#include "obs/obs.hpp"

namespace failsig::newtop {

class InvocationService {
public:
    using DeliveryHandler = std::function<void(const Delivery&)>;
    using ViewHandler = std::function<void(const GroupView&)>;
    /// Invoked when the middleware itself fails non-benignly (FS-NewTOP only:
    /// fail-signal received for the local GC pair).
    using MiddlewareFailureHandler = std::function<void(const std::string& fs_name)>;

    virtual ~InvocationService() = default;

    /// Multicasts `payload` to the group with the requested service class.
    /// With batching configured, the payload may be coalesced with others
    /// submitted within the flush window into ONE ordered unit (a batch
    /// frame the GC orders like any opaque payload); delivery unbatches, so
    /// the application observes b individual upcalls in submission order
    /// either way. This is where FS-NewTOP's per-round signatures get
    /// amortized: one batch = one multicast = one signed protocol round.
    void multicast(ServiceType service, Bytes payload);

    /// Enables request batching on this member's submit path. `sim` supplies
    /// the deadline timer for flush_after. Call before the first multicast.
    void configure_batching(sim::Simulation& sim, BatchConfig config);

    /// Counters of the batching pipeline ({} when batching is off).
    [[nodiscard]] BatchStats batch_stats() const {
        return batcher_ ? batcher_->stats() : BatchStats{};
    }

    /// Attaches the run's observability context (nullptr = off). `member`
    /// labels this invocation's stamps in the flight recorder.
    void set_obs(obs::Obs* obs, int member) {
        obs_ = obs;
        obs_member_ = member;
    }

    /// Crash-recovery reset: re-arms the delivery resequencer and drops the
    /// flush gate so the rejoined GC's restarted delivery stream (seq 1, 2,
    /// ...) is accepted. Call before submitting the GC's "__rejoin".
    void prepare_rejoin() {
        next_delivery_seq_ = 1;
        pending_deliveries_.clear();
        flush_gated_ = false;
        gated_units_.clear();
    }

    void on_delivery(DeliveryHandler handler) { delivery_handler_ = std::move(handler); }
    void on_view(ViewHandler handler) { view_handler_ = std::move(handler); }
    void on_middleware_failure(MiddlewareFailureHandler handler) {
        failure_handler_ = std::move(handler);
    }

    [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
    [[nodiscard]] const GroupView& last_view() const { return last_view_; }

protected:
    /// Stack-specific submit path: hands one (possibly batch-framed) ordered
    /// unit to the GC below (plain local GC / FS-wrapped GC pair).
    virtual void do_multicast(ServiceType service, Bytes payload) = 0;

    /// Gate in front of do_multicast: while a view-change flush is running
    /// (kFlushBegin seen, next kView not yet) ordered units queue here and
    /// drain into the new view on install.
    void submit_unit(ServiceType service, Bytes unit);

    /// Common unmarshalling/re-sequencing/upcall path used by both variants.
    void handle_delivery_bytes(const Bytes& body);
    void upcall(const Delivery& d);
    void upcall_single(const Delivery& d);

    std::uint64_t next_delivery_seq_{1};
    std::map<std::uint64_t, Delivery> pending_deliveries_;
    DeliveryHandler delivery_handler_;
    ViewHandler view_handler_;
    MiddlewareFailureHandler failure_handler_;
    std::uint64_t deliveries_{0};
    GroupView last_view_;
    obs::Obs* obs_{nullptr};
    int obs_member_{-1};

private:
    /// Stamps kBatched for every request a flushed unit carries and links
    /// them to the unit's span (decodes the frame only when obs is on).
    void trace_flush(const Bytes& unit);

    std::unique_ptr<Batcher> batcher_;
    /// Service class of the open batch; a submit with a different class
    /// flushes first (batches never mix ordering semantics).
    ServiceType batch_service_{ServiceType::kSymmetricTotalOrder};
    /// View-change flush gate state (see submit_unit).
    bool flush_gated_{false};
    std::vector<std::pair<ServiceType, Bytes>> gated_units_;
};

/// Invocation service of the original, crash-tolerant NewTOP.
class PlainInvocation final : public InvocationService, public orb::Servant {
public:
    /// Registers under `key` on `orb`; `local_gc` is the collocated GC object.
    PlainInvocation(orb::Orb& orb, const std::string& key, GcServant& local_gc);

    void dispatch(const orb::Request& request) override;

    [[nodiscard]] const orb::ObjectRef& ref() const { return self_ref_; }

protected:
    void do_multicast(ServiceType service, Bytes payload) override;

private:
    GcServant& local_gc_;
    orb::ObjectRef self_ref_;
};

}  // namespace failsig::newtop
