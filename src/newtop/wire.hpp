// NewTOP wire formats: GC-to-GC protocol messages, application multicast
// requests, and deliveries to the application layer.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "newtop/types.hpp"

namespace failsig::newtop {

/// GC protocol message kinds.
enum class GcKind : std::uint8_t {
    kData = 1,         ///< application payload multicast
    kAck = 2,          ///< Lamport-clock announcement (symmetric TO stability)
    kOrder = 3,        ///< sequencer order assignment (asymmetric TO)
    kViewPropose = 4,  ///< coordinator proposes a new view
    kViewAck = 5,      ///< member accepts a proposed view
    kViewInstall = 6,  ///< coordinator finalizes the view
    kFlushState = 7,   ///< survivor -> coordinator: FlushState for a proposal
    kFlushDone = 8,    ///< coordinator -> survivors: agreed cut, then install
    kJoinRequest = 9,  ///< rejoining member asks the survivors for readmission
    kJoinGrant = 10,   ///< survivor -> joiner: protocol positions + app state
};

/// One GC-to-GC protocol message. A single struct with optional fields keeps
/// the codec simple; `kind` says which fields are meaningful.
struct GcMessage {
    GcKind kind{GcKind::kData};
    MemberId sender{0};
    /// Per-sender FIFO stream position for symmetric-order traffic (DATA and
    /// ACK). The symmetric protocol's stability rule is only sound if each
    /// sender's clock announcements arrive in order; plain NewTOP gets that
    /// from TCP, but FS-wrapped GC outputs race over four redundant wire
    /// paths, so receivers re-sequence by this number (hold-back queue).
    std::uint64_t stream_seq{0};

    // kData
    ServiceType service{ServiceType::kSymmetricTotalOrder};
    std::uint64_t sender_seq{0};   ///< per-sender sequence number
    std::uint64_t lamport_ts{0};   ///< Lamport timestamp (symmetric/causal)
    Bytes payload;
    std::vector<std::uint64_t> vector_clock;  ///< causal order only

    // kAck
    // (lamport_ts carries the acker's clock)

    // kOrder
    std::uint64_t global_seq{0};
    MemberId origin{0};            ///< original sender of the ordered message

    // kViewPropose / kViewAck / kViewInstall / kFlushState / kFlushDone
    // (kFlushState and kFlushDone carry an encoded FlushState in `payload`;
    // nesting keeps every pre-flush message kind byte-identical on the wire)
    std::uint64_t view_id{0};
    std::vector<MemberId> view_members;

    /// Exact encoded size; hot encoders reserve() this up front.
    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<GcMessage> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const GcMessage&, const GcMessage&) = default;
};

/// View-synchronous flush exchange. On a view proposal every survivor sends
/// the coordinator its FlushState (kFlushState payload): its delivery
/// watermarks plus every old-view message it still buffers or recently
/// delivered, full bodies included. The coordinator merges the states into
/// one agreed cut — the same structure, entries deduplicated and pruned to
/// what some survivor still lacks — and fans it back out (kFlushDone
/// payload). Entries are whole GcMessages: symmetric kData records keyed by
/// (lamport_ts, sender) and asymmetric kOrder records keyed by global_seq.
struct FlushState {
    /// Highest symmetric (lamport_ts, sender) position delivered locally.
    std::uint64_t sym_watermark_ts{0};
    MemberId sym_watermark_sender{0};
    /// Highest asymmetric global sequence delivered locally (0 = none).
    std::uint64_t asym_delivered{0};
    /// Old-view messages available for the cut (sym kData / asym kOrder).
    std::vector<GcMessage> entries;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<FlushState> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const FlushState&, const FlushState&) = default;
};

/// Rejoin state transfer: after a join view installs, every survivor sends
/// the joiner its protocol positions plus (from the lowest-id granter) the
/// replicated app snapshot — everything the joiner needs to resume as if it
/// had delivered the whole prefix. Carried in a kJoinGrant's `payload`.
struct JoinGrant {
    /// Granter's Lamport clock (joiner adopts the max over granters).
    std::uint64_t lamport{0};
    /// Granter's outgoing per-sender stream position (joiner resumes its
    /// hold-back for this granter at +1).
    std::uint64_t sym_stream_out{0};
    /// Granter's reliable-FIFO sender sequence (joiner expects +1 next).
    std::uint64_t rel_seq{0};
    /// Causal messages the joiner should consider delivered from this
    /// granter.
    std::uint64_t causal_out{0};
    /// Granter's symmetric delivery watermark (joiner adopts the lowest-id
    /// granter's positions wholesale).
    std::uint64_t sym_watermark_ts{0};
    MemberId sym_watermark_sender{0};
    std::uint64_t asym_next_deliver{1};
    std::uint64_t asym_next_assign{1};
    /// Granter's causal vector clock, indexed like its member list.
    std::vector<std::uint64_t> vector_clock;
    /// app::KvStore snapshot (lowest-id granter's copy is restored).
    Bytes app_snapshot;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<JoinGrant> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const JoinGrant&, const JoinGrant&) = default;
};

/// What the application hands to the Invocation service.
struct MulticastRequest {
    ServiceType service{ServiceType::kSymmetricTotalOrder};
    Bytes payload;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<MulticastRequest> decode(std::span<const std::uint8_t> data);
};

/// What the GC delivers up to the application layer.
struct Delivery {
    /// kFlushBegin tells the Invocation layer a view-change flush started:
    /// it buffers new multicasts until the next kView delivery (the install)
    /// releases them. Never surfaced to the application.
    enum class Kind : std::uint8_t { kMessage = 1, kView = 2, kFlushBegin = 3 };
    Kind kind{Kind::kMessage};

    /// Position in the GC's delivery stream (1, 2, 3, ...). The Invocation
    /// layer re-sequences on this: FS-wrapped GC deliveries travel as
    /// independent signed outputs and may overtake each other on the wire.
    std::uint64_t delivery_seq{0};

    // kMessage
    MemberId sender{0};
    ServiceType service{ServiceType::kSymmetricTotalOrder};
    std::uint64_t sender_seq{0};
    Bytes payload;

    // kView
    GroupView view;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<Delivery> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const Delivery&, const Delivery&) = default;
};

}  // namespace failsig::newtop
