// NewTOP wire formats: GC-to-GC protocol messages, application multicast
// requests, and deliveries to the application layer.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "newtop/types.hpp"

namespace failsig::newtop {

/// GC protocol message kinds.
enum class GcKind : std::uint8_t {
    kData = 1,         ///< application payload multicast
    kAck = 2,          ///< Lamport-clock announcement (symmetric TO stability)
    kOrder = 3,        ///< sequencer order assignment (asymmetric TO)
    kViewPropose = 4,  ///< coordinator proposes a new view
    kViewAck = 5,      ///< member accepts a proposed view
    kViewInstall = 6,  ///< coordinator finalizes the view
};

/// One GC-to-GC protocol message. A single struct with optional fields keeps
/// the codec simple; `kind` says which fields are meaningful.
struct GcMessage {
    GcKind kind{GcKind::kData};
    MemberId sender{0};
    /// Per-sender FIFO stream position for symmetric-order traffic (DATA and
    /// ACK). The symmetric protocol's stability rule is only sound if each
    /// sender's clock announcements arrive in order; plain NewTOP gets that
    /// from TCP, but FS-wrapped GC outputs race over four redundant wire
    /// paths, so receivers re-sequence by this number (hold-back queue).
    std::uint64_t stream_seq{0};

    // kData
    ServiceType service{ServiceType::kSymmetricTotalOrder};
    std::uint64_t sender_seq{0};   ///< per-sender sequence number
    std::uint64_t lamport_ts{0};   ///< Lamport timestamp (symmetric/causal)
    Bytes payload;
    std::vector<std::uint64_t> vector_clock;  ///< causal order only

    // kAck
    // (lamport_ts carries the acker's clock)

    // kOrder
    std::uint64_t global_seq{0};
    MemberId origin{0};            ///< original sender of the ordered message

    // kViewPropose / kViewAck / kViewInstall
    std::uint64_t view_id{0};
    std::vector<MemberId> view_members;

    /// Exact encoded size; hot encoders reserve() this up front.
    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<GcMessage> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const GcMessage&, const GcMessage&) = default;
};

/// What the application hands to the Invocation service.
struct MulticastRequest {
    ServiceType service{ServiceType::kSymmetricTotalOrder};
    Bytes payload;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<MulticastRequest> decode(std::span<const std::uint8_t> data);
};

/// What the GC delivers up to the application layer.
struct Delivery {
    enum class Kind : std::uint8_t { kMessage = 1, kView = 2 };
    Kind kind{Kind::kMessage};

    /// Position in the GC's delivery stream (1, 2, 3, ...). The Invocation
    /// layer re-sequences on this: FS-wrapped GC deliveries travel as
    /// independent signed outputs and may overtake each other on the wire.
    std::uint64_t delivery_seq{0};

    // kMessage
    MemberId sender{0};
    ServiceType service{ServiceType::kSymmetricTotalOrder};
    std::uint64_t sender_seq{0};
    Bytes payload;

    // kView
    GroupView view;

    [[nodiscard]] std::size_t wire_size() const;
    [[nodiscard]] Bytes encode() const;
    static Result<Delivery> decode(std::span<const std::uint8_t> data);

    friend bool operator==(const Delivery&, const Delivery&) = default;
};

}  // namespace failsig::newtop
