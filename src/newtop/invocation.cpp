#include "newtop/invocation.hpp"

namespace failsig::newtop {

void InvocationService::multicast(ServiceType service, Bytes payload) {
    if (obs_ != nullptr) obs_->span(obs::Stage::kSubmit, payload, obs_member_);
    if (!batcher_) {  // constructed without configure_batching (direct use)
        submit_unit(service, std::move(payload));
        return;
    }
    if (batcher_->pending() > 0 && service != batch_service_) batcher_->flush_now();
    batch_service_ = service;
    batcher_->submit(std::move(payload));
}

void InvocationService::configure_batching(sim::Simulation& sim, BatchConfig config) {
    // Always routed through the Batcher: with batching off it is a counted
    // passthrough, so requests_submitted means the same thing on every stack.
    batcher_ = std::make_unique<Batcher>(
        config,
        [this](Bytes unit, std::size_t) {
            if (obs_ != nullptr) trace_flush(unit);
            submit_unit(batch_service_, std::move(unit));
        },
        [&sim](Duration delay, std::function<void()> fn) {
            sim.schedule_after(delay, std::move(fn));
        });
}

void InvocationService::trace_flush(const Bytes& unit) {
    if (Batch::is_batch(unit)) {
        if (auto requests = Batch::decode(unit); requests.has_value()) {
            for (const auto& request : requests.value()) {
                obs_->span_link(unit, request, obs_member_);
            }
            return;
        }
    }
    obs_->span_link(unit, unit, obs_member_);  // passthrough: unit == request
}

void InvocationService::handle_delivery_bytes(const Bytes& body) {
    auto delivery = Delivery::decode(body);
    if (!delivery.has_value()) return;

    // Re-sequence by the GC's delivery stream position: FS-wrapped GC
    // deliveries are independent signed messages and may overtake each other
    // on the wire, but the application must observe the GC's order.
    const std::uint64_t seq = delivery.value().delivery_seq;
    if (seq != 0) {
        if (seq < next_delivery_seq_) return;  // stale duplicate
        pending_deliveries_.emplace(seq, std::move(delivery).value());
        while (true) {
            const auto it = pending_deliveries_.find(next_delivery_seq_);
            if (it == pending_deliveries_.end()) break;
            upcall(it->second);
            pending_deliveries_.erase(it);
            ++next_delivery_seq_;
        }
    } else {
        upcall(delivery.value());  // unsequenced (legacy/test) delivery
    }
}

void InvocationService::submit_unit(ServiceType service, Bytes unit) {
    if (flush_gated_) {
        gated_units_.emplace_back(service, std::move(unit));
        return;
    }
    do_multicast(service, std::move(unit));
}

void InvocationService::upcall(const Delivery& d) {
    if (d.kind == Delivery::Kind::kFlushBegin) {
        // A view-change flush started below: the old view takes no new
        // traffic. Queue submissions until the install's kView arrives.
        // Protocol-internal — never surfaced to the application.
        flush_gated_ = true;
        return;
    }
    if (d.kind == Delivery::Kind::kView) {
        last_view_ = d.view;
        flush_gated_ = false;
        // Units queued during the flush enter the new view first, ahead of
        // anything the view handler may submit.
        auto queued = std::move(gated_units_);
        gated_units_.clear();
        for (auto& [service, unit] : queued) do_multicast(service, std::move(unit));
        if (view_handler_) view_handler_(d.view);
        return;
    }
    if (Batch::is_batch(d.payload)) {
        // One ordered unit carrying b requests: unbatch into b upcalls in
        // batch order, so the application sees exactly the b submissions.
        auto requests = Batch::decode(d.payload);
        if (requests.has_value()) {
            Delivery sub = d;
            for (auto& payload : std::move(requests).value()) {
                sub.payload = std::move(payload);
                upcall_single(sub);
            }
            return;
        }
        // Malformed frame (or an application payload colliding with the
        // magic): fall through and deliver it opaquely.
    }
    upcall_single(d);
}

void InvocationService::upcall_single(const Delivery& d) {
    ++deliveries_;
    if (obs_ != nullptr) obs_->span(obs::Stage::kDelivered, d.payload, obs_member_);
    if (delivery_handler_) delivery_handler_(d);
}

PlainInvocation::PlainInvocation(orb::Orb& orb, const std::string& key, GcServant& local_gc)
    : local_gc_(local_gc) {
    self_ref_ = orb.activate(key, this);
}

void PlainInvocation::do_multicast(ServiceType service, Bytes payload) {
    if (obs_ != nullptr) obs_->span(obs::Stage::kEncoded, payload, obs_member_);
    MulticastRequest req;
    req.service = service;
    req.payload = std::move(payload);
    local_gc_.submit_local("multicast", req.encode());
}

void PlainInvocation::dispatch(const orb::Request& request) {
    if (request.operation != "deliver" || !request.args.is<Bytes>()) return;
    handle_delivery_bytes(request.args.as<Bytes>());
}

}  // namespace failsig::newtop
