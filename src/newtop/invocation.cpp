#include "newtop/invocation.hpp"

namespace failsig::newtop {

void InvocationService::handle_delivery_bytes(const Bytes& body) {
    auto delivery = Delivery::decode(body);
    if (!delivery.has_value()) return;

    // Re-sequence by the GC's delivery stream position: FS-wrapped GC
    // deliveries are independent signed messages and may overtake each other
    // on the wire, but the application must observe the GC's order.
    const std::uint64_t seq = delivery.value().delivery_seq;
    if (seq != 0) {
        if (seq < next_delivery_seq_) return;  // stale duplicate
        pending_deliveries_.emplace(seq, std::move(delivery).value());
        while (true) {
            const auto it = pending_deliveries_.find(next_delivery_seq_);
            if (it == pending_deliveries_.end()) break;
            upcall(it->second);
            pending_deliveries_.erase(it);
            ++next_delivery_seq_;
        }
    } else {
        upcall(delivery.value());  // unsequenced (legacy/test) delivery
    }
}

void InvocationService::upcall(const Delivery& d) {
    if (d.kind == Delivery::Kind::kView) {
        last_view_ = d.view;
        if (view_handler_) view_handler_(d.view);
    } else {
        ++deliveries_;
        if (delivery_handler_) delivery_handler_(d);
    }
}

PlainInvocation::PlainInvocation(orb::Orb& orb, const std::string& key, GcServant& local_gc)
    : local_gc_(local_gc) {
    self_ref_ = orb.activate(key, this);
}

void PlainInvocation::multicast(ServiceType service, Bytes payload) {
    MulticastRequest req;
    req.service = service;
    req.payload = std::move(payload);
    local_gc_.submit_local("multicast", req.encode());
}

void PlainInvocation::dispatch(const orb::Request& request) {
    if (request.operation != "deliver" || !request.args.is<Bytes>()) return;
    handle_delivery_bytes(request.args.as<Bytes>());
}

}  // namespace failsig::newtop
