#include "newtop/wire.hpp"

namespace failsig::newtop {

std::size_t GcMessage::wire_size() const {
    return 1 + 4 + 8 + 1 + 8 + 8 + (4 + payload.size()) + 4 + 8 * vector_clock.size() + 8 +
           4 + 8 + 4 + 4 * view_members.size();
}

Bytes GcMessage::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(sender);
    w.u64(stream_seq);
    w.u8(static_cast<std::uint8_t>(service));
    w.u64(sender_seq);
    w.u64(lamport_ts);
    w.bytes(payload);
    w.u32(static_cast<std::uint32_t>(vector_clock.size()));
    for (const auto v : vector_clock) w.u64(v);
    w.u64(global_seq);
    w.u32(origin);
    w.u64(view_id);
    w.u32(static_cast<std::uint32_t>(view_members.size()));
    for (const auto m : view_members) w.u32(m);
    return w.take();
}

Result<GcMessage> GcMessage::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        GcMessage m;
        const auto kind_raw = r.u8();
        if (kind_raw < 1 || kind_raw > 10) return Result<GcMessage>::err("bad GcKind");
        m.kind = static_cast<GcKind>(kind_raw);
        m.sender = r.u32();
        m.stream_seq = r.u64();
        const auto svc_raw = r.u8();
        if (svc_raw < 1 || svc_raw > 5) return Result<GcMessage>::err("bad ServiceType");
        m.service = static_cast<ServiceType>(svc_raw);
        m.sender_seq = r.u64();
        m.lamport_ts = r.u64();
        m.payload = r.bytes();
        const auto vc_size = r.u32();
        if (vc_size > 4096) return Result<GcMessage>::err("implausible vector clock");
        m.vector_clock.reserve(vc_size);
        for (std::uint32_t i = 0; i < vc_size; ++i) m.vector_clock.push_back(r.u64());
        m.global_seq = r.u64();
        m.origin = r.u32();
        m.view_id = r.u64();
        const auto vm_size = r.u32();
        if (vm_size > 4096) return Result<GcMessage>::err("implausible view size");
        m.view_members.reserve(vm_size);
        for (std::uint32_t i = 0; i < vm_size; ++i) m.view_members.push_back(r.u32());
        if (!r.done()) return Result<GcMessage>::err("trailing bytes in GcMessage");
        return m;
    } catch (const std::out_of_range&) {
        return Result<GcMessage>::err("truncated GcMessage");
    }
}

std::size_t FlushState::wire_size() const {
    std::size_t size = 8 + 4 + 8 + 4;
    for (const auto& entry : entries) size += 4 + entry.wire_size();
    return size;
}

Bytes FlushState::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u64(sym_watermark_ts);
    w.u32(sym_watermark_sender);
    w.u64(asym_delivered);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& entry : entries) w.bytes(entry.encode());
    return w.take();
}

Result<FlushState> FlushState::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        FlushState st;
        st.sym_watermark_ts = r.u64();
        st.sym_watermark_sender = r.u32();
        st.asym_delivered = r.u64();
        const auto count = r.u32();
        // A flush cut spans one view epoch's in-flight window; anything past
        // this bound is a corrupt frame, not a bigger group.
        if (count > 65536) return Result<FlushState>::err("implausible flush entry count");
        st.entries.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            auto inner = GcMessage::decode(r.bytes());
            if (!inner.has_value()) {
                return Result<FlushState>::err("bad flush entry: " + inner.error().message);
            }
            st.entries.push_back(std::move(inner).value());
        }
        if (!r.done()) return Result<FlushState>::err("trailing bytes in FlushState");
        return st;
    } catch (const std::out_of_range&) {
        return Result<FlushState>::err("truncated FlushState");
    }
}

std::size_t JoinGrant::wire_size() const {
    return 7 * 8 + 4 + 4 + 8 * vector_clock.size() + 4 + app_snapshot.size();
}

Bytes JoinGrant::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u64(lamport);
    w.u64(sym_stream_out);
    w.u64(rel_seq);
    w.u64(causal_out);
    w.u64(sym_watermark_ts);
    w.u32(sym_watermark_sender);
    w.u64(asym_next_deliver);
    w.u64(asym_next_assign);
    w.u32(static_cast<std::uint32_t>(vector_clock.size()));
    for (const auto v : vector_clock) w.u64(v);
    w.bytes(app_snapshot);
    return w.take();
}

Result<JoinGrant> JoinGrant::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        JoinGrant g;
        g.lamport = r.u64();
        g.sym_stream_out = r.u64();
        g.rel_seq = r.u64();
        g.causal_out = r.u64();
        g.sym_watermark_ts = r.u64();
        g.sym_watermark_sender = r.u32();
        g.asym_next_deliver = r.u64();
        g.asym_next_assign = r.u64();
        if (g.asym_next_deliver == 0 || g.asym_next_assign == 0) {
            return Result<JoinGrant>::err("asym positions are 1-based");
        }
        const auto vc_size = r.u32();
        if (vc_size > 4096) return Result<JoinGrant>::err("implausible vector clock");
        g.vector_clock.reserve(vc_size);
        for (std::uint32_t i = 0; i < vc_size; ++i) g.vector_clock.push_back(r.u64());
        g.app_snapshot = r.bytes();
        if (!r.done()) return Result<JoinGrant>::err("trailing bytes in JoinGrant");
        return g;
    } catch (const std::out_of_range&) {
        return Result<JoinGrant>::err("truncated JoinGrant");
    }
}

std::size_t MulticastRequest::wire_size() const { return 1 + 4 + payload.size(); }

Bytes MulticastRequest::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(service));
    w.bytes(payload);
    return w.take();
}

Result<MulticastRequest> MulticastRequest::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        MulticastRequest m;
        const auto svc_raw = r.u8();
        if (svc_raw < 1 || svc_raw > 5) return Result<MulticastRequest>::err("bad ServiceType");
        m.service = static_cast<ServiceType>(svc_raw);
        m.payload = r.bytes();
        if (!r.done()) return Result<MulticastRequest>::err("trailing bytes");
        return m;
    } catch (const std::out_of_range&) {
        return Result<MulticastRequest>::err("truncated MulticastRequest");
    }
}

std::size_t Delivery::wire_size() const {
    return 1 + 8 + 4 + 1 + 8 + (4 + payload.size()) + 8 + 4 + 4 * view.members.size();
}

Bytes Delivery::encode() const {
    ByteWriter w;
    w.reserve(wire_size());
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(delivery_seq);
    w.u32(sender);
    w.u8(static_cast<std::uint8_t>(service));
    w.u64(sender_seq);
    w.bytes(payload);
    w.u64(view.view_id);
    w.u32(static_cast<std::uint32_t>(view.members.size()));
    for (const auto m : view.members) w.u32(m);
    return w.take();
}

Result<Delivery> Delivery::decode(std::span<const std::uint8_t> data) {
    try {
        ByteReader r(data);
        Delivery d;
        const auto kind_raw = r.u8();
        if (kind_raw < 1 || kind_raw > 3) return Result<Delivery>::err("bad Delivery kind");
        d.kind = static_cast<Kind>(kind_raw);
        d.delivery_seq = r.u64();
        d.sender = r.u32();
        const auto svc_raw = r.u8();
        if (svc_raw < 1 || svc_raw > 5) return Result<Delivery>::err("bad ServiceType");
        d.service = static_cast<ServiceType>(svc_raw);
        d.sender_seq = r.u64();
        d.payload = r.bytes();
        d.view.view_id = r.u64();
        const auto vm_size = r.u32();
        if (vm_size > 4096) return Result<Delivery>::err("implausible view size");
        for (std::uint32_t i = 0; i < vm_size; ++i) d.view.members.push_back(r.u32());
        if (!r.done()) return Result<Delivery>::err("trailing bytes");
        return d;
    } catch (const std::out_of_range&) {
        return Result<Delivery>::err("truncated Delivery");
    }
}

}  // namespace failsig::newtop
