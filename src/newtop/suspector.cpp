#include "newtop/suspector.hpp"

namespace failsig::newtop {

PingSuspector::PingSuspector(sim::Simulation& sim, orb::Orb& orb, const std::string& key,
                             MemberId self, GcServant& local_gc, SuspectorOptions options)
    : sim_(sim), orb_(orb), self_(self), local_gc_(local_gc), options_(options) {
    self_ref_ = orb_.activate(key, this);
}

void PingSuspector::set_peers(std::map<MemberId, orb::ObjectRef> peers) {
    peers_ = std::move(peers);
}

void PingSuspector::start() {
    if (running_) return;
    running_ = true;
    for (const auto& [m, ref] : peers_) last_heard_[m] = sim_.now();
    tick();
}

void PingSuspector::stop() { running_ = false; }

void PingSuspector::tick() {
    if (!running_) return;
    const GroupView& view = local_gc_.gc().view();
    for (const auto& [member, ref] : peers_) {
        if (!view.contains(member) || suspected_.contains(member)) continue;

        if (sim_.now() - last_heard_[member] > options_.suspect_timeout) {
            suspected_.insert(member);
            ++suspicions_raised_;
            ByteWriter w;
            w.u32(member);
            local_gc_.submit_local("suspect", w.take());
            continue;
        }
        ByteWriter ping;
        ping.u32(self_);
        orb_.invoke(ref, "ping", orb::Any{ping.take()});
    }
    sim_.schedule_after(options_.ping_interval, [this] { tick(); });
}

void PingSuspector::dispatch(const orb::Request& request) {
    if (!request.args.is<Bytes>()) return;
    const Bytes& body = request.args.as<Bytes>();
    if (body.size() != 4) return;
    ByteReader r(body);
    const MemberId from = r.u32();

    if (request.operation == "ping") {
        const auto it = peers_.find(from);
        if (it == peers_.end()) return;
        ByteWriter pong;
        pong.u32(self_);
        orb_.invoke(it->second, "pong", orb::Any{pong.take()});
    } else if (request.operation == "pong") {
        last_heard_[from] = sim_.now();
    }
}

}  // namespace failsig::newtop
