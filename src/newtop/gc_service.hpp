// The NewTOP Group Communication (GC) service object.
//
// Implements the protocols of paper §3: symmetric total order (a message is
// ordered only after being logically acknowledged by all members), asymmetric
// (sequencer-based) total order, causal order, reliable FIFO multicast,
// simple (unreliable) multicast, and partitionable group membership.
//
// The service is written as a *pure deterministic state machine*
// (fs::DeterministicService): inputs arrive as (operation, bytes) and outputs
// are returned as messages to peers / deliveries to the application. It reads
// no clocks and uses no randomness, so the very same class runs
//   * unwrapped, as crash-tolerant NewTOP (suspicions come from a ping-based
//     suspector and can be false -> group splitting), and
//   * wrapped in a fail-signal pair, as FS-NewTOP (suspicions come from
//     fail-signals and are never false) —
// which is exactly the paper's "small modifications" porting claim.
//
// Input operations:
//   "multicast"     body = MulticastRequest      (from the Invocation layer)
//   "gc"            body = GcMessage             (from a peer GC)
//   "suspect"       body = u32 member id         (from a suspector module)
//   "__failsignal"  body = FS process name       (FS-NewTOP: converted to a
//                                                 suspicion; never false)
//   "__rejoin"      body = empty                 (recovery driver: wipe local
//                                                 state and ask the survivors
//                                                 for readmission)
#pragma once

#include <map>
#include <set>

#include "app/kv_store.hpp"
#include "fs/service.hpp"
#include "newtop/wire.hpp"
#include "obs/obs.hpp"

namespace failsig::newtop {

struct GcConfig {
    MemberId self{0};
    std::vector<MemberId> initial_members;            ///< sorted member ids
    std::map<MemberId, fs::Destination> peers;        ///< where each member's GC lives
    fs::Destination delivery;                         ///< local application layer
    std::map<std::string, MemberId> fs_members;       ///< FS process name -> member
    /// CPU cost charged per protocol input (see sim::CostModel).
    Duration protocol_op_cost{120 * kMicrosecond};
    /// Additional per-byte handling cost for application payloads (buffer
    /// copies, Java-era marshalling inside the GC): 0.5 us/byte makes a
    /// 10 kB DATA message cost ~5 ms on top of the fixed protocol cost,
    /// which reproduces the Figure-8 throughput fall-off with message size.
    double per_byte_cost_us{0.5};
    /// Observability context (nullptr = off). In FS-NewTOP only the pair's
    /// leader replica gets a non-null pointer, so replicated execution does
    /// not double-count stamps. Metrics are write-only side channels — the
    /// state machine stays deterministic with or without them.
    obs::Obs* obs{nullptr};
    /// Member index used to label this GC's flight-recorder events.
    int obs_member{-1};
    /// Replicated KV app checkpoint cadence (0 = no periodic checkpoints).
    std::uint64_t checkpoint_interval{0};
};

class GcService final : public fs::DeterministicService {
public:
    explicit GcService(GcConfig config);

    std::vector<fs::Outbound> process(const std::string& operation, const Bytes& body) override;
    [[nodiscard]] Duration processing_cost(const std::string& operation,
                                           const Bytes& body) const override;

    // --- introspection (tests, examples, benches) -------------------------
    [[nodiscard]] const GroupView& view() const { return view_; }
    [[nodiscard]] MemberId self() const { return cfg_.self; }
    [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_count_; }
    [[nodiscard]] std::uint64_t views_installed() const { return views_installed_; }
    [[nodiscard]] const std::set<MemberId>& suspected() const { return suspected_; }
    [[nodiscard]] std::size_t symmetric_backlog() const { return sym_buffer_.size(); }
    /// True while a view-change flush round is in progress (new application
    /// traffic is held and the symmetric stream is deferred).
    [[nodiscard]] bool flushing() const { return flush_pending_ != 0; }
    /// The replicated KV application this GC drives (totally ordered
    /// deliveries only — see deliver()).
    [[nodiscard]] const app::KvStore& app() const { return app_; }
    /// True between "__rejoin" and the completed grant exchange.
    [[nodiscard]] bool joining() const { return joining_; }
    [[nodiscard]] std::uint64_t rejoins_completed() const { return rejoins_completed_; }
    /// Retained-log entries dropped by the hard caps (not watermark prunes).
    [[nodiscard]] std::uint64_t flush_log_evictions() const { return flush_log_evictions_; }
    /// Flush rounds where a cap-evicted entry was above the merged floor and
    /// no survivor could re-supply it — the agreement hole the caps risk.
    [[nodiscard]] std::uint64_t flush_eviction_gaps() const { return flush_eviction_gaps_; }

private:
    using Out = std::vector<fs::Outbound>;

    // input dispatch
    void on_multicast(const MulticastRequest& request, Out& out);
    void on_gc_message(const GcMessage& msg, Out& out);
    void on_suspect(MemberId member, Out& out);

    // symmetric total order
    void enqueue_sym_stream(const GcMessage& msg, Out& out);
    void handle_sym_data(const GcMessage& msg, Out& out);
    void handle_sym_ack(const GcMessage& msg);
    void check_sym_delivery(Out& out);

    // asymmetric total order
    void handle_asym_data(const GcMessage& msg, Out& out);
    void handle_asym_order(const GcMessage& msg, Out& out);
    void check_asym_delivery(Out& out);
    [[nodiscard]] MemberId sequencer() const { return view_.coordinator(); }

    // causal order
    void handle_causal_data(const GcMessage& msg, Out& out);
    void check_causal_delivery(Out& out);

    // reliable / unreliable multicast
    void handle_rel_data(const GcMessage& msg, Out& out);

    // membership
    void maybe_propose_view(Out& out);
    void handle_view_propose(const GcMessage& msg, Out& out);
    void handle_view_ack(const GcMessage& msg, Out& out);
    void handle_view_install(const GcMessage& msg, Out& out);
    void install_view(std::uint64_t view_id, std::vector<MemberId> members, Out& out);
    /// True iff `msg.sender` is the lowest member of `msg.view_members` that
    /// is not a pending joiner (joiners never coordinate: they have no state
    /// to merge a flush from).
    [[nodiscard]] bool plausible_coordinator(const GcMessage& msg) const;

    // rejoin (crash recovery)
    void begin_rejoin(Out& out);
    void handle_join_request(const GcMessage& msg, Out& out);
    void handle_join_grant(const GcMessage& msg, Out& out);
    void send_join_grants(Out& out);
    void maybe_complete_join(Out& out);

    // view-synchronous flush
    /// Coordinator-side accumulator for one flush round. Rounds are keyed by
    /// proposal id in flush_rounds_ so a re-propose (survivor crashed
    /// mid-flush) starts a fresh round and stale states are discarded.
    struct FlushRound {
        std::vector<MemberId> members;
        std::set<MemberId> states_received;
        std::map<std::pair<std::uint64_t, MemberId>, GcMessage> sym_entries;
        std::map<std::uint64_t, GcMessage> asym_entries;
        std::map<MemberId, std::pair<std::uint64_t, MemberId>> sym_marks;
        std::map<MemberId, std::uint64_t> asym_marks;
    };
    void enter_flush(std::uint64_t proposal_id, Out& out);
    [[nodiscard]] FlushState local_flush_state() const;
    void merge_flush_state(FlushRound& round, MemberId sender, const FlushState& state);
    void handle_flush_state(const GcMessage& msg, Out& out);
    void handle_flush_done(const GcMessage& msg, Out& out);
    void maybe_complete_flush(Out& out);
    void apply_cut(const FlushState& cut, Out& out);
    void prune_sym_retained();

    // helpers
    void send_to(MemberId member, const GcMessage& msg, Out& out);
    void broadcast(const GcMessage& msg, Out& out);  // to all view members but self
    void deliver(Delivery d, Out& out);
    void bump_clock(std::uint64_t observed_ts);
    [[nodiscard]] std::size_t member_index(MemberId m) const;

    GcConfig cfg_;
    GroupView view_;
    std::set<MemberId> suspected_;
    std::uint64_t lamport_{0};

    // symmetric TO
    std::uint64_t sym_seq_{0};
    std::map<std::pair<std::uint64_t, MemberId>, GcMessage> sym_buffer_;
    std::map<MemberId, std::uint64_t> latest_ts_;
    // per-sender FIFO re-sequencing of the sym DATA/ACK stream
    std::uint64_t sym_stream_out_{0};
    std::map<MemberId, std::uint64_t> sym_stream_next_;
    std::map<MemberId, std::map<std::uint64_t, GcMessage>> sym_holdback_;

    // asymmetric TO
    std::uint64_t asym_seq_{0};
    std::uint64_t asym_next_assign_{1};
    std::uint64_t asym_next_deliver_{1};
    std::uint64_t highest_order_seen_{0};
    std::map<std::uint64_t, GcMessage> asym_buffer_;

    // causal
    std::vector<std::uint64_t> vc_;
    std::map<MemberId, std::uint64_t> causal_delivered_;
    std::vector<GcMessage> causal_buffer_;

    // reliable FIFO
    std::uint64_t rel_seq_{0};
    std::map<MemberId, std::uint64_t> fifo_next_;
    std::map<MemberId, std::map<std::uint64_t, GcMessage>> fifo_buffer_;

    // membership protocol
    std::uint64_t last_proposed_id_{0};
    std::vector<MemberId> proposed_members_;
    std::set<MemberId> view_acks_;
    std::uint64_t highest_view_seen_{0};

    // view-synchronous flush
    /// Proposal id currently being flushed (0 = not flushing). While set, new
    /// multicasts are held in flush_held_multicasts_ and the resequenced sym
    /// DATA/ACK stream is parked in flush_deferred_ instead of mutating
    /// ordering state, so the FlushState we announced stays accurate.
    std::uint64_t flush_pending_{0};
    std::map<std::uint64_t, FlushRound> flush_rounds_;
    std::vector<GcMessage> flush_deferred_;
    std::vector<MulticastRequest> flush_held_multicasts_;
    /// Highest symmetric (lamport_ts, sender) position delivered locally.
    std::pair<std::uint64_t, MemberId> sym_watermark_{0, 0};
    /// Recently delivered messages retained for flush patch-up: a survivor
    /// may have delivered a message a correct peer never received, so flush
    /// states must be able to re-supply delivered bodies, not just buffered
    /// ones. Pruned as ACK-piggybacked peer watermarks advance (sym) or by a
    /// hard cap (both); cleared on view install — retention spans one epoch.
    std::map<std::pair<std::uint64_t, MemberId>, GcMessage> sym_retained_;
    std::map<std::uint64_t, GcMessage> asym_retained_;
    /// Peers' delivery watermarks, piggybacked on sym ACKs.
    std::map<MemberId, std::pair<std::uint64_t, MemberId>> peer_watermark_;
    static constexpr std::size_t kSymRetainedCap = 4096;
    static constexpr std::size_t kAsymRetainedCap = 1024;
    /// Keys the hard caps evicted from the retained logs this epoch. A key
    /// still here when a flush round's floor passes below it is an entry some
    /// survivor may need and nobody can re-supply: counted as a gap (and the
    /// flight recorder notes it), never silently ignored. Keys leave the set
    /// when the peer-watermark prune proves them globally delivered, and the
    /// set restarts with the retention epoch on view install.
    std::set<std::pair<std::uint64_t, MemberId>> sym_evicted_;
    std::set<std::uint64_t> asym_evicted_;

    // rejoin (crash recovery)
    /// Members whose kJoinRequest we have seen and not yet granted.
    std::set<MemberId> join_pending_;
    /// Joiner side: grants collected for the join view (keyed by granter).
    std::map<MemberId, JoinGrant> join_grants_;
    std::uint64_t join_grant_view_{0};
    /// Ordinary traffic (kData/kAck/kOrder) parked while joining; replayed
    /// through on_gc_message once the grant exchange completes.
    std::vector<GcMessage> join_deferred_;
    bool joining_{false};

    /// Replicated deterministic application driven by the delivery upcall.
    app::KvStore app_;

    std::uint64_t delivered_count_{0};
    std::uint64_t views_installed_{0};
    std::uint64_t delivery_out_seq_{0};
    std::uint64_t rejoins_completed_{0};
    std::uint64_t flush_log_evictions_{0};
    std::uint64_t flush_eviction_gaps_{0};
};

}  // namespace failsig::newtop
