// Basic NewTOP types: members, views, service classes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace failsig::newtop {

/// Index of a group member (the paper's A_i / NSO_i).
using MemberId = std::uint32_t;

/// The group-communication service classes NewTOP offers (paper §3).
enum class ServiceType : std::uint8_t {
    kSymmetricTotalOrder = 1,   ///< all-member logical acknowledgement
    kAsymmetricTotalOrder = 2,  ///< sequencer-assigned order
    kCausalOrder = 3,           ///< vector-clock causal delivery
    kReliableMulticast = 4,     ///< FIFO-reliable, no total order
    kUnreliableMulticast = 5,   ///< best effort
};

/// An installed membership view.
struct GroupView {
    std::uint64_t view_id{0};
    std::vector<MemberId> members;  // kept sorted

    [[nodiscard]] bool contains(MemberId m) const {
        return std::find(members.begin(), members.end(), m) != members.end();
    }
    /// The view coordinator (lowest-id member).
    [[nodiscard]] MemberId coordinator() const { return members.empty() ? 0 : members.front(); }

    friend bool operator==(const GroupView&, const GroupView&) = default;
};

inline std::string to_string(const GroupView& v) {
    std::string s = "view#" + std::to_string(v.view_id) + "{";
    for (std::size_t i = 0; i < v.members.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(v.members[i]);
    }
    return s + "}";
}

}  // namespace failsig::newtop
