// Builder for a complete crash-tolerant NewTOP deployment: n nodes, each
// hosting one NSO (Invocation service + GC object) and a ping suspector, all
// wired over a simulated network — the baseline system of the paper's
// evaluation (§4).
#pragma once

#include <memory>

#include "net/network.hpp"
#include "net/runtime_env.hpp"
#include "newtop/invocation.hpp"
#include "newtop/suspector.hpp"

namespace failsig::newtop {

struct NewTopOptions {
    int group_size{3};
    /// Concurrent CPU capacity per node. The paper's ORB pool has 10
    /// *threads*, but they multiplex onto Pentium III *dual-processor*
    /// nodes; since the simulator charges pure CPU time (no blocking I/O),
    /// the faithful worker count is the CPU count. This is what makes the
    /// collocated FS deployment (two wrapper objects per node, Figure 5)
    /// genuinely contend for cycles. bench_ab2 sweeps this knob.
    int threads_per_node{2};
    std::uint64_t seed{1};
    sim::CostModel costs{};
    net::AsyncLinkParams net_params{};
    SuspectorOptions suspector{};
    /// When false, no ping traffic exists (the paper's failure-free runs
    /// eliminate false suspicions; benches use this).
    bool start_suspectors{false};
    /// Request batching on every member's Invocation submit path (off by
    /// default: max_requests <= 1 keeps the wire byte-identical).
    BatchConfig batch{};
    /// Per-run observability context (nullptr = off); threaded into every
    /// member's Invocation layer and GC service.
    obs::Obs* obs{nullptr};
    /// Replicated KV app checkpoint cadence (0 = off; see app::KvStore).
    std::uint64_t checkpoint_interval{0};
    /// External runtime (the TCP backend): transport/fault plane/per-node
    /// event loops. Default (all null) = stack-owned sim world.
    net::RuntimeEnv env{};
};

class NewTopDeployment {
public:
    explicit NewTopDeployment(const NewTopOptions& options);

    NewTopDeployment(const NewTopDeployment&) = delete;
    NewTopDeployment& operator=(const NewTopDeployment&) = delete;

    [[nodiscard]] sim::Simulation& sim() { return sim_; }
    [[nodiscard]] net::Transport& network() { return net_; }
    [[nodiscard]] net::FaultInjector& faults() { return faults_; }
    [[nodiscard]] int group_size() const { return static_cast<int>(members_.size()); }

    [[nodiscard]] PlainInvocation& invocation(int member);
    [[nodiscard]] GcService& gc(int member);
    [[nodiscard]] const GcService& gc(int member) const;
    [[nodiscard]] GcServant& gc_servant(int member);
    [[nodiscard]] PingSuspector& suspector(int member);
    [[nodiscard]] NodeId node_of(int member) const { return NodeId{static_cast<std::uint32_t>(member + 1)}; }

    /// Stops all suspectors (lets Simulation::run() terminate).
    void stop_suspectors();
    /// Stops one member's suspector (the TCP backend posts this onto the
    /// member's own executor).
    void stop_suspector(int member);

    /// Aggregated batching counters over every member's Invocation layer.
    [[nodiscard]] BatchStats batch_stats() const;

private:
    struct Member {
        std::unique_ptr<GcServant> gc;
        std::unique_ptr<PlainInvocation> invocation;
        std::unique_ptr<PingSuspector> suspector;
    };

    sim::Simulation sim_;
    std::unique_ptr<net::SimNetwork> own_net_;  // null when env.transport is set
    net::Transport& net_;
    net::FaultInjector& faults_;
    orb::OrbDomain domain_;
    std::vector<Member> members_;
};

}  // namespace failsig::newtop
