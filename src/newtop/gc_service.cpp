#include "newtop/gc_service.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace failsig::newtop {

namespace {
/// Lexicographic (timestamp, member) comparison used for both symmetric-order
/// delivery position and stability checks.
bool ts_pair_greater(std::uint64_t a_ts, MemberId a_id, std::uint64_t b_ts, MemberId b_id) {
    if (a_ts != b_ts) return a_ts > b_ts;
    return a_id > b_id;
}
}  // namespace

GcService::GcService(GcConfig config)
    : cfg_(std::move(config)), app_(cfg_.checkpoint_interval) {
    view_.view_id = 1;
    view_.members = cfg_.initial_members;
    std::sort(view_.members.begin(), view_.members.end());
    highest_view_seen_ = 1;
    vc_.assign(cfg_.initial_members.size(), 0);
    for (const auto m : view_.members) {
        latest_ts_[m] = 0;
        causal_delivered_[m] = 0;
        fifo_next_[m] = 1;
        sym_stream_next_[m] = 1;
    }
}

std::size_t GcService::member_index(MemberId m) const {
    const auto it = std::find(cfg_.initial_members.begin(), cfg_.initial_members.end(), m);
    return static_cast<std::size_t>(it - cfg_.initial_members.begin());
}

Duration GcService::processing_cost(const std::string& operation, const Bytes& body) const {
    (void)operation;
    // Buffer-management cost grows with the undelivered backlog: when the
    // group runs past its ordering capacity, stability checks scan ever
    // larger buffers and the degradation compounds (this produces the
    // throughput fall-off beyond the Figure-7 peak).
    const Duration backlog_cost =
        std::min<Duration>(static_cast<Duration>(sym_buffer_.size()) * 5, 2000);
    return cfg_.protocol_op_cost + backlog_cost +
           static_cast<Duration>(cfg_.per_byte_cost_us * static_cast<double>(body.size()));
}

std::vector<fs::Outbound> GcService::process(const std::string& operation, const Bytes& body) {
    Out out;
    if (operation == "multicast") {
        auto req = MulticastRequest::decode(body);
        if (req.has_value()) on_multicast(req.value(), out);
    } else if (operation == "gc") {
        auto msg = GcMessage::decode(body);
        if (msg.has_value()) on_gc_message(msg.value(), out);
    } else if (operation == "suspect") {
        if (body.size() == 4) {
            ByteReader r(body);
            on_suspect(r.u32(), out);
        }
    } else if (operation == fs::kFailSignalOp) {
        // FS-NewTOP's suspector module: a fail-signal uniquely identifies a
        // faulty FS process, so this suspicion cannot be false (§3.1).
        const auto it = cfg_.fs_members.find(string_of(body));
        if (it != cfg_.fs_members.end()) on_suspect(it->second, out);
    } else if (operation == "__rejoin") {
        begin_rejoin(out);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Input dispatch
// ---------------------------------------------------------------------------

void GcService::on_multicast(const MulticastRequest& request, Out& out) {
    if (flush_pending_ != 0) {
        // View-synchronous gate: no new traffic enters the old view once the
        // flush has started. Held requests are replayed into the new view by
        // install_view (the Invocation layer gates too, on kFlushBegin; this
        // is the GC-side backstop for callers that bypass it).
        flush_held_multicasts_.push_back(request);
        return;
    }
    // The GC is about to hand the payload's protocol message(s) to the
    // network (broadcast or sequencer send) — the span's net-send stage.
    if (cfg_.obs != nullptr) {
        cfg_.obs->span(obs::Stage::kNetSend, request.payload, cfg_.obs_member);
    }
    switch (request.service) {
        case ServiceType::kSymmetricTotalOrder: {
            ++lamport_;
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kSymmetricTotalOrder;
            msg.sender_seq = ++sym_seq_;
            msg.stream_seq = ++sym_stream_out_;
            msg.lamport_ts = lamport_;
            msg.payload = request.payload;
            broadcast(msg, out);
            handle_sym_data(msg, out);
            break;
        }
        case ServiceType::kAsymmetricTotalOrder: {
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kAsymmetricTotalOrder;
            msg.sender_seq = ++asym_seq_;
            msg.payload = request.payload;
            if (cfg_.self == sequencer()) {
                handle_asym_data(msg, out);
            } else {
                send_to(sequencer(), msg, out);
            }
            break;
        }
        case ServiceType::kCausalOrder: {
            ++vc_[member_index(cfg_.self)];
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kCausalOrder;
            msg.vector_clock = vc_;
            msg.payload = request.payload;
            broadcast(msg, out);
            // Own messages are causally ready by construction.
            causal_delivered_[cfg_.self] = vc_[member_index(cfg_.self)];
            Delivery d;
            d.sender = cfg_.self;
            d.service = ServiceType::kCausalOrder;
            d.payload = msg.payload;
            deliver(std::move(d), out);
            break;
        }
        case ServiceType::kReliableMulticast: {
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kReliableMulticast;
            msg.sender_seq = ++rel_seq_;
            msg.payload = request.payload;
            broadcast(msg, out);
            fifo_next_[cfg_.self] = msg.sender_seq + 1;
            Delivery d;
            d.sender = cfg_.self;
            d.service = ServiceType::kReliableMulticast;
            d.sender_seq = msg.sender_seq;
            d.payload = msg.payload;
            deliver(std::move(d), out);
            break;
        }
        case ServiceType::kUnreliableMulticast: {
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kUnreliableMulticast;
            msg.payload = request.payload;
            broadcast(msg, out);
            Delivery d;
            d.sender = cfg_.self;
            d.service = ServiceType::kUnreliableMulticast;
            d.payload = msg.payload;
            deliver(std::move(d), out);
            break;
        }
    }
}

void GcService::on_gc_message(const GcMessage& msg, Out& out) {
    // View and join protocol messages are accepted from outside the current
    // view (proposed members, a rejoining member, grants that overtake the
    // install on the wire); all other traffic must come from a view member.
    const bool is_view_msg = msg.kind == GcKind::kViewPropose || msg.kind == GcKind::kViewAck ||
                             msg.kind == GcKind::kViewInstall ||
                             msg.kind == GcKind::kFlushState || msg.kind == GcKind::kFlushDone ||
                             msg.kind == GcKind::kJoinRequest || msg.kind == GcKind::kJoinGrant;
    if (joining_ && !is_view_msg) {
        // Mid-join the local protocol positions are meaningless; park the
        // ordinary traffic and replay it once the grants define where the
        // streams resume (stale entries are then dropped by the per-stream
        // duplicate checks).
        join_deferred_.push_back(msg);
        return;
    }
    if (!is_view_msg && !view_.contains(msg.sender)) return;

    // Payload-carrying peer traffic = the span's receive stage (ACKs and
    // view-protocol messages are protocol-internal, not message lifecycle).
    if (cfg_.obs != nullptr && (msg.kind == GcKind::kData || msg.kind == GcKind::kOrder)) {
        cfg_.obs->span(obs::Stage::kReceive, msg.payload, cfg_.obs_member);
    }

    switch (msg.kind) {
        case GcKind::kData:
            switch (msg.service) {
                case ServiceType::kSymmetricTotalOrder:
                    enqueue_sym_stream(msg, out);
                    break;
                case ServiceType::kAsymmetricTotalOrder: handle_asym_data(msg, out); break;
                case ServiceType::kCausalOrder: handle_causal_data(msg, out); break;
                case ServiceType::kReliableMulticast: handle_rel_data(msg, out); break;
                case ServiceType::kUnreliableMulticast: {
                    Delivery d;
                    d.sender = msg.sender;
                    d.service = ServiceType::kUnreliableMulticast;
                    d.payload = msg.payload;
                    deliver(std::move(d), out);
                    break;
                }
            }
            break;
        case GcKind::kAck: enqueue_sym_stream(msg, out); break;
        case GcKind::kOrder: handle_asym_order(msg, out); break;
        case GcKind::kViewPropose: handle_view_propose(msg, out); break;
        case GcKind::kViewAck: handle_view_ack(msg, out); break;
        case GcKind::kViewInstall: handle_view_install(msg, out); break;
        case GcKind::kFlushState: handle_flush_state(msg, out); break;
        case GcKind::kFlushDone: handle_flush_done(msg, out); break;
        case GcKind::kJoinRequest: handle_join_request(msg, out); break;
        case GcKind::kJoinGrant: handle_join_grant(msg, out); break;
    }
}

void GcService::on_suspect(MemberId member, Out& out) {
    if (member == cfg_.self || !view_.contains(member)) return;
    if (!suspected_.insert(member).second) return;
    FAILSIG_LOG(LogLevel::kDebug, GC) << "member " << cfg_.self << " suspects " << member;
    maybe_propose_view(out);
}

// ---------------------------------------------------------------------------
// Symmetric total order
// ---------------------------------------------------------------------------

void GcService::enqueue_sym_stream(const GcMessage& msg, Out& out) {
    // Re-sequence each sender's DATA/ACK stream: the stability rule below is
    // only sound when clock announcements from a sender arrive in the order
    // they were made.
    auto& next = sym_stream_next_[msg.sender];
    if (next == 0) next = 1;
    if (msg.stream_seq < next) return;  // stale duplicate
    auto& holdback = sym_holdback_[msg.sender];
    holdback[msg.stream_seq] = msg;
    if (cfg_.obs != nullptr) {
        cfg_.obs->holdback_depth(static_cast<std::int64_t>(holdback.size()));
    }
    while (true) {
        const auto it = holdback.find(next);
        if (it == holdback.end()) break;
        const GcMessage m = it->second;
        holdback.erase(it);
        ++next;
        if (flush_pending_ != 0) {
            // Mid-flush the resequencer keeps running (stream positions must
            // stay contiguous) but nothing may mutate ordering state: the
            // FlushState we announced has to stay an accurate snapshot.
            // Deferred traffic is replayed after the install, filtered
            // against the new view and the post-cut watermark.
            flush_deferred_.push_back(m);
            continue;
        }
        if (m.kind == GcKind::kAck) {
            handle_sym_ack(m);
            check_sym_delivery(out);
        } else {
            bump_clock(m.lamport_ts);
            handle_sym_data(m, out);
        }
    }
}

void GcService::handle_sym_data(const GcMessage& msg, Out& out) {
    sym_buffer_[{msg.lamport_ts, msg.sender}] = msg;
    auto& sender_ts = latest_ts_[msg.sender];
    sender_ts = std::max(sender_ts, msg.lamport_ts);

    // Logically acknowledge to every member: announce our advanced clock.
    // This is what makes the symmetric protocol "significantly message
    // intensive" (§4) — n*(n-1) ACKs circulate per multicast.
    ++lamport_;
    GcMessage ack;
    ack.kind = GcKind::kAck;
    ack.sender = cfg_.self;
    ack.stream_seq = ++sym_stream_out_;
    ack.lamport_ts = lamport_;
    // Piggyback our delivery watermark on fields every ACK already encodes
    // (global_seq/origin are dead weight for kAck): peers use it to prune
    // their flush retention log without any new message or wire-size change.
    ack.global_seq = sym_watermark_.first;
    ack.origin = sym_watermark_.second;
    broadcast(ack, out);
    latest_ts_[cfg_.self] = std::max(latest_ts_[cfg_.self], lamport_);

    check_sym_delivery(out);
}

void GcService::handle_sym_ack(const GcMessage& msg) {
    bump_clock(msg.lamport_ts);
    auto& ts = latest_ts_[msg.sender];
    ts = std::max(ts, msg.lamport_ts);
    auto& mark = peer_watermark_[msg.sender];
    if (ts_pair_greater(msg.global_seq, msg.origin, mark.first, mark.second)) {
        mark = {msg.global_seq, msg.origin};
        prune_sym_retained();
    }
}

void GcService::check_sym_delivery(Out& out) {
    while (!sym_buffer_.empty()) {
        const auto& [key, msg] = *sym_buffer_.begin();
        const auto [msg_ts, msg_sender] = key;
        // Stable iff every current member's announced clock has passed the
        // message's (ts, sender) position.
        bool stable = true;
        for (const auto m : view_.members) {
            const auto it = latest_ts_.find(m);
            const std::uint64_t seen = it == latest_ts_.end() ? 0 : it->second;
            if (!ts_pair_greater(seen, m, msg_ts, msg_sender)) {
                stable = false;
                break;
            }
        }
        if (!stable) break;

        Delivery d;
        d.sender = msg.sender;
        d.service = ServiceType::kSymmetricTotalOrder;
        d.sender_seq = msg.sender_seq;
        d.payload = msg.payload;
        // Remember what we delivered: a view-change flush may have to
        // re-supply this body to a peer that never received it.
        sym_watermark_ = key;
        sym_retained_[key] = msg;
        if (sym_retained_.size() > kSymRetainedCap) {
            // Cap eviction is not a watermark prune: nobody proved every
            // peer delivered this entry. Remember the key so a later flush
            // can tell whether the cap actually opened an agreement gap.
            sym_evicted_.insert(sym_retained_.begin()->first);
            ++flush_log_evictions_;
            sym_retained_.erase(sym_retained_.begin());
        }
        sym_buffer_.erase(sym_buffer_.begin());
        deliver(std::move(d), out);
    }
}

// ---------------------------------------------------------------------------
// Asymmetric (sequencer) total order
// ---------------------------------------------------------------------------

void GcService::handle_asym_data(const GcMessage& msg, Out& out) {
    if (cfg_.self != sequencer()) return;  // stale: we are no longer sequencer
    GcMessage order;
    order.kind = GcKind::kOrder;
    order.sender = cfg_.self;
    order.service = ServiceType::kAsymmetricTotalOrder;
    order.global_seq = asym_next_assign_++;
    order.origin = msg.sender;
    order.sender_seq = msg.sender_seq;
    order.payload = msg.payload;
    broadcast(order, out);
    handle_asym_order(order, out);
}

void GcService::handle_asym_order(const GcMessage& msg, Out& out) {
    if (msg.sender != sequencer() && msg.sender != cfg_.self) {
        // Only the current sequencer may assign order. (A freshly installed
        // view changes the sequencer; stale assignments are dropped.)
        if (!view_.contains(msg.sender)) return;
    }
    highest_order_seen_ = std::max(highest_order_seen_, msg.global_seq);
    asym_next_assign_ = std::max(asym_next_assign_, highest_order_seen_ + 1);
    asym_buffer_[msg.global_seq] = msg;
    check_asym_delivery(out);
}

void GcService::check_asym_delivery(Out& out) {
    while (true) {
        const auto it = asym_buffer_.find(asym_next_deliver_);
        if (it == asym_buffer_.end()) break;
        Delivery d;
        d.sender = it->second.origin;
        d.service = ServiceType::kAsymmetricTotalOrder;
        d.sender_seq = it->second.sender_seq;
        d.payload = it->second.payload;
        // Keep the ordered record for flush patch-up (the asym protocol has
        // no ACK to piggyback watermarks on, so retention is cap-bounded).
        asym_retained_[it->first] = it->second;
        if (asym_retained_.size() > kAsymRetainedCap) {
            asym_evicted_.insert(asym_retained_.begin()->first);
            ++flush_log_evictions_;
            asym_retained_.erase(asym_retained_.begin());
        }
        asym_buffer_.erase(it);
        ++asym_next_deliver_;
        deliver(std::move(d), out);
    }
}

// ---------------------------------------------------------------------------
// Causal order
// ---------------------------------------------------------------------------

void GcService::handle_causal_data(const GcMessage& msg, Out& out) {
    if (msg.vector_clock.size() != vc_.size()) return;  // malformed
    causal_buffer_.push_back(msg);
    check_causal_delivery(out);
}

void GcService::check_causal_delivery(Out& out) {
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto it = causal_buffer_.begin(); it != causal_buffer_.end(); ++it) {
            const GcMessage& m = *it;
            const std::size_t j = member_index(m.sender);
            bool ready = m.vector_clock[j] == causal_delivered_[m.sender] + 1;
            if (ready) {
                for (const auto k : view_.members) {
                    if (k == m.sender) continue;
                    if (m.vector_clock[member_index(k)] > causal_delivered_[k]) {
                        ready = false;
                        break;
                    }
                }
            }
            if (!ready) continue;

            causal_delivered_[m.sender] = m.vector_clock[j];
            // Merge the sender's knowledge into our clock.
            for (std::size_t i = 0; i < vc_.size(); ++i) {
                vc_[i] = std::max(vc_[i], m.vector_clock[i]);
            }
            Delivery d;
            d.sender = m.sender;
            d.service = ServiceType::kCausalOrder;
            d.payload = m.payload;
            causal_buffer_.erase(it);
            deliver(std::move(d), out);
            progressed = true;
            break;  // iterator invalidated; rescan
        }
    }
}

// ---------------------------------------------------------------------------
// Reliable FIFO multicast
// ---------------------------------------------------------------------------

void GcService::handle_rel_data(const GcMessage& msg, Out& out) {
    auto& next = fifo_next_[msg.sender];
    if (msg.sender_seq < next) return;  // duplicate
    fifo_buffer_[msg.sender][msg.sender_seq] = msg;
    auto& buf = fifo_buffer_[msg.sender];
    while (true) {
        const auto it = buf.find(next);
        if (it == buf.end()) break;
        Delivery d;
        d.sender = msg.sender;
        d.service = ServiceType::kReliableMulticast;
        d.sender_seq = it->second.sender_seq;
        d.payload = it->second.payload;
        buf.erase(it);
        ++next;
        deliver(std::move(d), out);
    }
}

// ---------------------------------------------------------------------------
// Partitionable membership
// ---------------------------------------------------------------------------

void GcService::maybe_propose_view(Out& out) {
    std::vector<MemberId> candidates;
    for (const auto m : view_.members) {
        if (!suspected_.contains(m)) candidates.push_back(m);
    }
    for (const auto j : join_pending_) {
        if (!suspected_.contains(j) && !view_.contains(j)) candidates.push_back(j);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
    if (candidates.empty()) return;
    // The coordinator is the lowest *survivor*: a pending joiner has no
    // ordering state to merge a flush from, so it never leads.
    const auto coord = std::find_if(candidates.begin(), candidates.end(),
                                    [&](MemberId m) { return view_.contains(m); });
    if (coord == candidates.end() || *coord != cfg_.self) return;  // not the coordinator

    const std::uint64_t id =
        std::max({view_.view_id, last_proposed_id_, highest_view_seen_}) + 1;
    last_proposed_id_ = id;
    proposed_members_ = candidates;
    view_acks_ = {cfg_.self};

    if (candidates.size() == 1) {
        // Sole survivor: nobody left to flush with; our own history is the
        // cut and the post-install stability re-check releases it.
        install_view(id, candidates, out);
        return;
    }
    // Open the flush round for this proposal and seed it with our own state.
    // A re-propose (survivor crashed mid-flush) lands here again with a
    // higher id: a fresh round is keyed in, and stale states are ignored.
    enter_flush(id, out);
    auto& round = flush_rounds_[id];
    round.members = candidates;
    merge_flush_state(round, cfg_.self, local_flush_state());
    round.states_received.insert(cfg_.self);
    GcMessage propose;
    propose.kind = GcKind::kViewPropose;
    propose.sender = cfg_.self;
    propose.view_id = id;
    propose.view_members = candidates;
    for (const auto m : candidates) {
        if (m != cfg_.self) send_to(m, propose, out);
    }
}

void GcService::handle_view_propose(const GcMessage& msg, Out& out) {
    highest_view_seen_ = std::max(highest_view_seen_, msg.view_id);
    if (msg.view_id <= view_.view_id) return;
    if (suspected_.contains(msg.sender)) return;  // we do not follow a suspect
    if (std::find(msg.view_members.begin(), msg.view_members.end(), cfg_.self) ==
        msg.view_members.end()) {
        return;  // we are excluded; our own partition will regroup
    }
    if (!plausible_coordinator(msg)) return;

    GcMessage ack;
    ack.kind = GcKind::kViewAck;
    ack.sender = cfg_.self;
    ack.view_id = msg.view_id;
    send_to(msg.sender, ack, out);

    // Accepting the proposal starts the flush: freeze old-view traffic and
    // hand the coordinator our watermarks plus every old-view body we can
    // still supply, so the merged cut covers what any survivor is missing.
    enter_flush(msg.view_id, out);
    GcMessage state;
    state.kind = GcKind::kFlushState;
    state.sender = cfg_.self;
    state.view_id = msg.view_id;
    state.payload = local_flush_state().encode();
    send_to(msg.sender, state, out);
    if (cfg_.obs != nullptr) cfg_.obs->flush_message();
}

void GcService::handle_view_ack(const GcMessage& msg, Out& out) {
    if (msg.view_id != last_proposed_id_) return;
    view_acks_.insert(msg.sender);
    // Installation now additionally waits for every survivor's FlushState;
    // whichever of the last ack / last state arrives second completes the
    // round (they travel as independent signed streams under FS and may
    // overtake each other).
    maybe_complete_flush(out);
}

void GcService::handle_view_install(const GcMessage& msg, Out& out) {
    highest_view_seen_ = std::max(highest_view_seen_, msg.view_id);
    if (msg.view_id <= view_.view_id) return;
    if (std::find(msg.view_members.begin(), msg.view_members.end(), cfg_.self) ==
        msg.view_members.end()) {
        return;
    }
    if (!plausible_coordinator(msg)) return;
    if (flush_pending_ >= msg.view_id) {
        // The kFlushDone for this round performs the install after the cut
        // is applied; an install overtaking it on the wire must not skip the
        // cut (that is exactly the agreement hole this protocol closes).
        return;
    }
    install_view(msg.view_id, msg.view_members, out);
}

void GcService::install_view(std::uint64_t view_id, std::vector<MemberId> members, Out& out) {
    view_.view_id = view_id;
    view_.members = std::move(members);
    highest_view_seen_ = std::max(highest_view_seen_, view_id);
    ++views_installed_;
    FAILSIG_LOG(LogLevel::kInfo, GC)
        << "member " << cfg_.self << " installs " << newtop::to_string(view_);

    // Close the flush epoch: the round (if any) is decided, retention logs
    // restart for the new view, and stale rounds can never complete.
    const bool was_flushing = flush_pending_ != 0 && flush_pending_ <= view_id;
    if (was_flushing) flush_pending_ = 0;
    std::erase_if(flush_rounds_, [&](const auto& kv) { return kv.first <= view_id; });
    sym_retained_.clear();
    asym_retained_.clear();
    sym_evicted_.clear();
    asym_evicted_.clear();
    for (auto it = peer_watermark_.begin(); it != peer_watermark_.end();) {
        it = view_.contains(it->first) ? std::next(it) : peer_watermark_.erase(it);
    }
    if (was_flushing && cfg_.obs != nullptr) cfg_.obs->flush_end(cfg_.obs_member);

    // Drop state belonging to removed members.
    for (auto it = latest_ts_.begin(); it != latest_ts_.end();) {
        it = view_.contains(it->first) ? std::next(it) : latest_ts_.erase(it);
    }
    for (auto it = sym_holdback_.begin(); it != sym_holdback_.end();) {
        it = view_.contains(it->first) ? std::next(it) : sym_holdback_.erase(it);
    }
    std::erase_if(suspected_, [&](MemberId m) { return !view_.contains(m); });

    Delivery d;
    d.kind = Delivery::Kind::kView;
    d.view = view_;
    deliver(std::move(d), out);

    // Stability and delivery conditions may be satisfiable now.
    check_sym_delivery(out);
    check_asym_delivery(out);
    check_causal_delivery(out);

    // Replay the sym stream that was deferred during the flush. Traffic from
    // removed members is dropped (everyone drops it — membership is agreed),
    // and DATA at or below the post-cut watermark was already delivered via
    // the cut. ACKs always replay: clock announcements are monotone.
    const std::vector<GcMessage> deferred = std::move(flush_deferred_);
    flush_deferred_.clear();
    for (const auto& m : deferred) {
        if (!view_.contains(m.sender)) continue;
        if (m.kind == GcKind::kAck) {
            handle_sym_ack(m);
            check_sym_delivery(out);
        } else {
            if (!ts_pair_greater(m.lamport_ts, m.sender, sym_watermark_.first,
                                 sym_watermark_.second)) {
                continue;
            }
            bump_clock(m.lamport_ts);
            handle_sym_data(m, out);
        }
    }

    // Grant any joiner admitted by this view its state transfer NOW — after
    // the cut and the deferred replay (so the snapshot covers every old-view
    // delivery) but before any new-view send below. A send before the grant
    // would carry a stream position at or below the grant's resume point and
    // the joiner would drop it as stale, losing its effect forever.
    send_join_grants(out);

    // Release application traffic held during the flush into the new view.
    const std::vector<MulticastRequest> held = std::move(flush_held_multicasts_);
    flush_held_multicasts_.clear();
    for (const auto& r : held) on_multicast(r, out);

    // If suspicions remain inside the new view (e.g. two members failed) or
    // a join request arrived too late for this round, keep reconfiguring.
    if (!suspected_.empty() || !join_pending_.empty()) maybe_propose_view(out);

    // A joiner may have collected its full grant set before the install
    // reached it (FS outputs travel as independent signed streams).
    if (joining_) maybe_complete_join(out);
}

bool GcService::plausible_coordinator(const GcMessage& msg) const {
    // The expected coordinator is the lowest listed member that is not a
    // joiner: joiners have no ordering state and never lead a flush. With no
    // join in progress this degenerates to the original front()==sender rule.
    for (const auto m : msg.view_members) {
        if (join_pending_.contains(m)) continue;
        if (joining_ && m == cfg_.self) continue;
        return m == msg.sender;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Rejoin (crash recovery)
//
// A recovered member starts from nothing: "__rejoin" wipes the service back
// to a singleton group and broadcasts kJoinRequest. Survivors fold the
// joiner into the next membership round — the ordinary view-synchronous
// flush runs with the joiner as a (state-less) participant, so the install
// point doubles as the state-transfer barrier: at install every survivor
// has delivered the full old-view prefix, and each sends the joiner a
// kJoinGrant with its protocol positions plus the replicated app snapshot.
// The joiner adopts the lowest-id granter's cut wholesale, resumes every
// per-sender stream at the granted position, and replays traffic it parked
// while joining (stale entries fall to the per-stream duplicate checks).
// ---------------------------------------------------------------------------

void GcService::begin_rejoin(Out& out) {
    // Forget everything the crash destroyed: restart as a singleton group
    // holding only our identity, then ask the survivors for readmission.
    // Cumulative counters survive — they describe the process lifetime, not
    // the group epoch.
    view_.view_id = 1;
    view_.members = {cfg_.self};
    highest_view_seen_ = 1;
    suspected_.clear();
    lamport_ = 0;
    sym_seq_ = 0;
    sym_buffer_.clear();
    latest_ts_.clear();
    latest_ts_[cfg_.self] = 0;
    sym_stream_out_ = 0;
    sym_stream_next_.clear();
    sym_stream_next_[cfg_.self] = 1;
    sym_holdback_.clear();
    asym_seq_ = 0;
    asym_next_assign_ = 1;
    asym_next_deliver_ = 1;
    highest_order_seen_ = 0;
    asym_buffer_.clear();
    vc_.assign(cfg_.initial_members.size(), 0);
    causal_delivered_.clear();
    causal_delivered_[cfg_.self] = 0;
    causal_buffer_.clear();
    rel_seq_ = 0;
    fifo_next_.clear();
    fifo_next_[cfg_.self] = 1;
    fifo_buffer_.clear();
    last_proposed_id_ = 0;
    proposed_members_.clear();
    view_acks_.clear();
    flush_pending_ = 0;
    flush_rounds_.clear();
    flush_deferred_.clear();
    flush_held_multicasts_.clear();
    sym_watermark_ = {0, 0};
    sym_retained_.clear();
    asym_retained_.clear();
    sym_evicted_.clear();
    asym_evicted_.clear();
    peer_watermark_.clear();
    join_pending_.clear();
    join_grants_.clear();
    join_grant_view_ = 0;
    join_deferred_.clear();
    delivery_out_seq_ = 0;
    app_ = app::KvStore(cfg_.checkpoint_interval);
    joining_ = true;
    FAILSIG_LOG(LogLevel::kInfo, GC) << "member " << cfg_.self << " requests rejoin";
    if (cfg_.obs != nullptr) cfg_.obs->note(cfg_.obs_member, "rejoin requested");

    GcMessage req;
    req.kind = GcKind::kJoinRequest;
    req.sender = cfg_.self;
    // Broadcast by peer directory, not by view (our view is just us).
    for (const auto& [m, dest] : cfg_.peers) {
        if (m == cfg_.self) continue;
        out.emplace_back(dest, "gc", req.encode());
    }
}

void GcService::handle_join_request(const GcMessage& msg, Out& out) {
    if (msg.sender == cfg_.self || joining_) return;
    join_pending_.insert(msg.sender);
    suspected_.erase(msg.sender);
    // The joiner restarts its outgoing streams from scratch; stale resume
    // positions from its previous incarnation would drop everything it sends
    // as duplicates. Causal state is NOT reset: the joiner adopts the group's
    // vector clock (its old slot included) from the grant, so its next causal
    // send continues the old numbering.
    sym_stream_next_[msg.sender] = 1;
    sym_holdback_.erase(msg.sender);
    fifo_next_[msg.sender] = 1;
    fifo_buffer_.erase(msg.sender);
    peer_watermark_.erase(msg.sender);
    FAILSIG_LOG(LogLevel::kInfo, GC)
        << "member " << cfg_.self << " sees join request from " << msg.sender;
    if (cfg_.obs != nullptr) cfg_.obs->note(cfg_.obs_member, "join request received");
    maybe_propose_view(out);
}

void GcService::handle_join_grant(const GcMessage& msg, Out& out) {
    if (!joining_) return;
    auto grant = JoinGrant::decode(msg.payload);
    if (!grant.has_value()) return;
    // Grants are keyed by the view that admitted us; a re-propose mid-join
    // supersedes earlier grants wholesale.
    if (msg.view_id > join_grant_view_) {
        join_grants_.clear();
        join_grant_view_ = msg.view_id;
    }
    if (msg.view_id != join_grant_view_) return;  // stale
    join_grants_[msg.sender] = std::move(grant).value();
    maybe_complete_join(out);
}

void GcService::send_join_grants(Out& out) {
    if (joining_ || join_pending_.empty()) return;
    std::vector<MemberId> grantees;
    for (const auto j : join_pending_) {
        if (view_.contains(j) && j != cfg_.self) grantees.push_back(j);
    }
    if (grantees.empty()) return;
    JoinGrant grant;
    grant.lamport = lamport_;
    grant.sym_stream_out = sym_stream_out_;
    grant.rel_seq = rel_seq_;
    const std::size_t self_idx = member_index(cfg_.self);
    grant.causal_out = self_idx < vc_.size() ? vc_[self_idx] : 0;
    grant.sym_watermark_ts = sym_watermark_.first;
    grant.sym_watermark_sender = sym_watermark_.second;
    grant.asym_next_deliver = asym_next_deliver_;
    grant.asym_next_assign = asym_next_assign_;
    grant.vector_clock = vc_;
    grant.app_snapshot = app_.snapshot();
    GcMessage msg;
    msg.kind = GcKind::kJoinGrant;
    msg.sender = cfg_.self;
    msg.view_id = view_.view_id;
    msg.payload = grant.encode();
    for (const auto j : grantees) {
        send_to(j, msg, out);
        join_pending_.erase(j);
    }
    if (cfg_.obs != nullptr) cfg_.obs->note(cfg_.obs_member, "join grant sent");
}

void GcService::maybe_complete_join(Out& out) {
    if (!joining_) return;
    // Completion needs the admitting view installed AND a grant from every
    // survivor in it (grants and the install travel as independent streams
    // under FS and may arrive in either order).
    if (view_.view_id != join_grant_view_) return;
    for (const auto m : view_.members) {
        if (m == cfg_.self) continue;
        if (!join_grants_.contains(m)) return;
    }
    if (join_grants_.empty()) return;

    // The lowest-id granter's cut is adopted wholesale: its watermark, asym
    // positions, vector clock, and app snapshot describe one consistent
    // delivered prefix. (At the install barrier every survivor has applied
    // the same flush cut, so the choice is arbitrary for the totally ordered
    // state; taking one granter's view keeps it internally consistent.)
    const auto& g0 = join_grants_.begin()->second;
    if (const auto restored = app_.restore(g0.app_snapshot); !restored.has_value()) {
        if (cfg_.obs != nullptr) {
            cfg_.obs->note(cfg_.obs_member, "join grant app snapshot rejected");
        }
    }
    sym_watermark_ = {g0.sym_watermark_ts, g0.sym_watermark_sender};
    asym_next_deliver_ = g0.asym_next_deliver;
    asym_next_assign_ = g0.asym_next_assign;
    highest_order_seen_ = asym_next_assign_ - 1;
    if (g0.vector_clock.size() == vc_.size()) vc_ = g0.vector_clock;
    for (const auto m : view_.members) {
        const std::size_t idx = member_index(m);
        if (idx < vc_.size()) causal_delivered_[m] = vc_[idx];
    }
    std::uint64_t max_lamport = 0;
    for (const auto& [g, grant] : join_grants_) {
        sym_stream_next_[g] = grant.sym_stream_out + 1;
        latest_ts_[g] = grant.lamport;
        fifo_next_[g] = grant.rel_seq + 1;
        max_lamport = std::max(max_lamport, grant.lamport);
    }
    lamport_ = max_lamport;
    latest_ts_[cfg_.self] = lamport_;

    joining_ = false;
    join_grants_.clear();
    join_grant_view_ = 0;
    ++rejoins_completed_;
    FAILSIG_LOG(LogLevel::kInfo, GC)
        << "member " << cfg_.self << " rejoin complete in view " << view_.view_id;
    if (cfg_.obs != nullptr) cfg_.obs->note(cfg_.obs_member, "rejoin complete");

    // Replay what arrived while we were joining. Per-stream duplicate checks
    // drop anything at or below the granted resume points; entries that are
    // provably pre-join (ordered below the adopted positions) are filtered
    // here so they cannot sit in the hold-back buffers forever.
    const std::vector<GcMessage> deferred = std::move(join_deferred_);
    join_deferred_.clear();
    for (const auto& m : deferred) {
        if (!view_.contains(m.sender)) continue;
        if (m.kind == GcKind::kOrder && m.global_seq < asym_next_deliver_) continue;
        if (m.kind == GcKind::kData && m.service == ServiceType::kCausalOrder) {
            const std::size_t j = member_index(m.sender);
            if (j < vc_.size() && m.vector_clock.size() == vc_.size() &&
                m.vector_clock[j] <= causal_delivered_[m.sender]) {
                continue;  // pre-join causal send, already in the adopted state
            }
        }
        on_gc_message(m, out);
    }
}

// ---------------------------------------------------------------------------
// View-synchronous flush
//
// Why: without a flush, a member excluded while its multicasts are in flight
// can leave *correct* survivors disagreeing on the delivered prefix (one
// survivor received and delivered the partial broadcast, another never saw
// it). The flush makes installation view-synchronous: survivors freeze
// old-view traffic, pool everything they can still supply, and deliver one
// deterministically merged cut before the new view takes effect.
//
// Fault tolerance: rounds are keyed by proposal id. A survivor crashing
// mid-flush triggers a re-propose with a higher id (existing suspicion
// logic); enter_flush simply tracks the highest id, stale kFlushState /
// kFlushDone messages fail the id check and are dropped, and install_view
// erases every round at or below the installed id.
// ---------------------------------------------------------------------------

void GcService::enter_flush(std::uint64_t proposal_id, Out& out) {
    if (proposal_id <= flush_pending_) return;
    const bool entering = flush_pending_ == 0;
    flush_pending_ = proposal_id;
    if (!entering) return;  // re-propose while flushing: stay gated, higher id
    FAILSIG_LOG(LogLevel::kDebug, GC)
        << "member " << cfg_.self << " enters flush for proposal " << proposal_id;
    if (cfg_.obs != nullptr) cfg_.obs->flush_begin(cfg_.obs_member);
    // Tell the Invocation layer to hold new multicasts until the next kView.
    Delivery d;
    d.kind = Delivery::Kind::kFlushBegin;
    deliver(std::move(d), out);
}

FlushState GcService::local_flush_state() const {
    FlushState st;
    st.sym_watermark_ts = sym_watermark_.first;
    st.sym_watermark_sender = sym_watermark_.second;
    st.asym_delivered = asym_next_deliver_ - 1;
    // Everything we can still supply: undelivered buffers plus the retained
    // log of recent deliveries (a peer may have missed what we delivered).
    for (const auto& [key, m] : sym_retained_) st.entries.push_back(m);
    for (const auto& [key, m] : sym_buffer_) st.entries.push_back(m);
    for (const auto& [seq, m] : asym_retained_) st.entries.push_back(m);
    for (const auto& [seq, m] : asym_buffer_) st.entries.push_back(m);
    return st;
}

void GcService::merge_flush_state(FlushRound& round, MemberId sender, const FlushState& state) {
    round.sym_marks[sender] = {state.sym_watermark_ts, state.sym_watermark_sender};
    round.asym_marks[sender] = state.asym_delivered;
    for (const auto& e : state.entries) {
        if (e.kind == GcKind::kOrder) {
            round.asym_entries.emplace(e.global_seq, e);
        } else if (e.kind == GcKind::kData && e.service == ServiceType::kSymmetricTotalOrder) {
            round.sym_entries.emplace(std::make_pair(e.lamport_ts, e.sender), e);
        }
        // Entries of any other kind are not flushable; ignore them.
    }
}

void GcService::handle_flush_state(const GcMessage& msg, Out& out) {
    if (msg.view_id != last_proposed_id_) return;  // stale round
    const auto it = flush_rounds_.find(msg.view_id);
    if (it == flush_rounds_.end()) return;
    FlushRound& round = it->second;
    if (std::find(round.members.begin(), round.members.end(), msg.sender) ==
        round.members.end()) {
        return;
    }
    if (round.states_received.contains(msg.sender)) return;  // duplicate
    auto state = FlushState::decode(msg.payload);
    if (!state.has_value()) return;
    merge_flush_state(round, msg.sender, state.value());
    round.states_received.insert(msg.sender);
    if (cfg_.obs != nullptr) cfg_.obs->flush_message();
    maybe_complete_flush(out);
}

void GcService::maybe_complete_flush(Out& out) {
    if (flush_pending_ == 0 || flush_pending_ != last_proposed_id_) return;
    const auto round_it = flush_rounds_.find(last_proposed_id_);
    if (round_it == flush_rounds_.end()) return;
    FlushRound& round = round_it->second;
    const bool acked = std::all_of(proposed_members_.begin(), proposed_members_.end(),
                                   [&](MemberId m) { return view_acks_.contains(m); });
    const bool stated =
        std::all_of(round.members.begin(), round.members.end(),
                    [&](MemberId m) { return round.states_received.contains(m); });
    if (!acked || !stated) return;

    // The agreed cut: the union of everything any survivor can supply,
    // pruned below the minimum watermark (if everyone delivered it, nobody
    // needs it re-supplied). The floors travel in the cut for reference;
    // each receiver applies entries above its *own* watermark.
    std::pair<std::uint64_t, MemberId> sym_floor{~0ULL, ~0U};
    std::uint64_t asym_floor = ~0ULL;
    for (const auto m : round.members) {
        const auto& mark = round.sym_marks[m];
        if (ts_pair_greater(sym_floor.first, sym_floor.second, mark.first, mark.second)) {
            sym_floor = mark;
        }
        asym_floor = std::min(asym_floor, round.asym_marks[m]);
    }
    // Audit the retention caps against the agreed floor: an entry we evicted
    // that sits above some survivor's watermark is needed for the cut, and if
    // no other survivor supplied it the view change loses agreement on it.
    // Recorded (counter + flight note), not fatal: the cut still ships what
    // exists, and tests assert the counter stays zero under the default caps.
    for (const auto& key : sym_evicted_) {
        if (ts_pair_greater(key.first, key.second, sym_floor.first, sym_floor.second) &&
            !round.sym_entries.contains(key)) {
            ++flush_eviction_gaps_;
            if (cfg_.obs != nullptr) {
                cfg_.obs->note(cfg_.obs_member, "flush-eviction-gap sym");
            }
        }
    }
    for (const auto seq : asym_evicted_) {
        if (seq > asym_floor && !round.asym_entries.contains(seq)) {
            ++flush_eviction_gaps_;
            if (cfg_.obs != nullptr) {
                cfg_.obs->note(cfg_.obs_member, "flush-eviction-gap asym");
            }
        }
    }

    FlushState cut;
    cut.sym_watermark_ts = sym_floor.first;
    cut.sym_watermark_sender = sym_floor.second;
    cut.asym_delivered = asym_floor;
    for (const auto& [key, m] : round.sym_entries) {
        if (ts_pair_greater(key.first, key.second, sym_floor.first, sym_floor.second)) {
            cut.entries.push_back(m);
        }
    }
    for (const auto& [seq, m] : round.asym_entries) {
        if (seq > asym_floor) cut.entries.push_back(m);
    }

    GcMessage done;
    done.kind = GcKind::kFlushDone;
    done.sender = cfg_.self;
    done.view_id = last_proposed_id_;
    // kFlushDone carries the membership and performs the install at the
    // receiver: under FS the GC's outputs travel as independent signed
    // streams, so a separate kViewInstall could overtake the cut.
    done.view_members = round.members;
    done.payload = cut.encode();
    for (const auto m : round.members) {
        if (m == cfg_.self) continue;
        send_to(m, done, out);
        if (cfg_.obs != nullptr) cfg_.obs->flush_message();
    }
    apply_cut(cut, out);
    install_view(done.view_id, done.view_members, out);
}

void GcService::handle_flush_done(const GcMessage& msg, Out& out) {
    highest_view_seen_ = std::max(highest_view_seen_, msg.view_id);
    if (msg.view_id <= view_.view_id) return;
    if (msg.view_id != flush_pending_) return;  // superseded by a re-propose
    if (std::find(msg.view_members.begin(), msg.view_members.end(), cfg_.self) ==
        msg.view_members.end()) {
        return;
    }
    if (!plausible_coordinator(msg)) return;
    auto cut = FlushState::decode(msg.payload);
    if (!cut.has_value()) return;
    if (cfg_.obs != nullptr) cfg_.obs->flush_message();
    if (joining_) {
        // A joiner has no old-view prefix to reconcile: the JoinGrant's app
        // snapshot and stream positions supersede every cut delivery, so
        // re-delivering them here would only duplicate the history upstream.
        install_view(msg.view_id, msg.view_members, out);
        return;
    }
    apply_cut(cut.value(), out);
    install_view(msg.view_id, msg.view_members, out);
}

void GcService::apply_cut(const FlushState& cut, Out& out) {
    // Re-key the cut deterministically; entry order inside the frame is not
    // trusted (the coordinator sorts, a corrupt frame might not).
    std::map<std::pair<std::uint64_t, MemberId>, GcMessage> sym;
    std::map<std::uint64_t, GcMessage> asym;
    for (const auto& e : cut.entries) {
        if (e.kind == GcKind::kOrder) {
            asym.emplace(e.global_seq, e);
        } else if (e.kind == GcKind::kData && e.service == ServiceType::kSymmetricTotalOrder) {
            sym.emplace(std::make_pair(e.lamport_ts, e.sender), e);
        }
    }
    std::uint64_t flushed = 0;
    for (const auto& [key, m] : sym) {
        if (!ts_pair_greater(key.first, key.second, sym_watermark_.first,
                             sym_watermark_.second)) {
            continue;  // already delivered locally, pre-flush
        }
        Delivery d;
        d.sender = m.sender;
        d.service = ServiceType::kSymmetricTotalOrder;
        d.sender_seq = m.sender_seq;
        d.payload = m.payload;
        sym_watermark_ = key;
        bump_clock(m.lamport_ts);
        deliver(std::move(d), out);
        ++flushed;
    }
    for (const auto& [seq, m] : asym) {
        highest_order_seen_ = std::max(highest_order_seen_, seq);
        asym_next_assign_ = std::max(asym_next_assign_, highest_order_seen_ + 1);
        if (seq < asym_next_deliver_) continue;  // already delivered locally
        Delivery d;
        d.sender = m.origin;
        d.service = ServiceType::kAsymmetricTotalOrder;
        d.sender_seq = m.sender_seq;
        d.payload = m.payload;
        asym_next_deliver_ = seq + 1;
        deliver(std::move(d), out);
        ++flushed;
    }
    // Anything we still buffered was in our own FlushState, hence in the
    // cut: the loops above either delivered it or skipped it as already
    // delivered. Clear, so no pre-cut entry resurfaces in the new view.
    sym_buffer_.clear();
    asym_buffer_.clear();
    if (cfg_.obs != nullptr && flushed != 0) cfg_.obs->flushed_deliveries(flushed);
}

void GcService::prune_sym_retained() {
    if (sym_retained_.empty()) return;
    // Drop retained deliveries once every current member's piggybacked
    // watermark has passed them: nobody can need them re-supplied.
    std::pair<std::uint64_t, MemberId> floor = sym_watermark_;
    for (const auto m : view_.members) {
        if (m == cfg_.self) continue;
        const auto it = peer_watermark_.find(m);
        const std::pair<std::uint64_t, MemberId> mark =
            it == peer_watermark_.end() ? std::pair<std::uint64_t, MemberId>{0, 0}
                                        : it->second;
        if (ts_pair_greater(floor.first, floor.second, mark.first, mark.second)) floor = mark;
    }
    while (!sym_retained_.empty()) {
        const auto& key = sym_retained_.begin()->first;
        if (ts_pair_greater(key.first, key.second, floor.first, floor.second)) break;
        sym_retained_.erase(sym_retained_.begin());
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void GcService::bump_clock(std::uint64_t observed_ts) {
    lamport_ = std::max(lamport_, observed_ts) + 1;
}

void GcService::send_to(MemberId member, const GcMessage& msg, Out& out) {
    const auto it = cfg_.peers.find(member);
    if (it == cfg_.peers.end()) return;
    out.emplace_back(it->second, "gc", msg.encode());
}

void GcService::broadcast(const GcMessage& msg, Out& out) {
    // One logical output with all destinations: the FS wrapper signs a
    // multicast once, not once per receiver.
    fs::Outbound o;
    o.operation = "gc";
    o.body = msg.encode();
    for (const auto m : view_.members) {
        if (m == cfg_.self) continue;
        const auto it = cfg_.peers.find(m);
        if (it != cfg_.peers.end()) o.dests.push_back(it->second);
    }
    if (!o.dests.empty()) out.push_back(std::move(o));
}

void GcService::deliver(Delivery d, Out& out) {
    if (d.kind == Delivery::Kind::kMessage) {
        ++delivered_count_;
        // The replicated KV app consumes the totally ordered services only:
        // causal/FIFO/unreliable deliveries interleave differently at every
        // member, so folding them in would diverge the digests even on
        // fault-free runs.
        if (d.service == ServiceType::kSymmetricTotalOrder ||
            d.service == ServiceType::kAsymmetricTotalOrder) {
            app_.apply(d.payload);
        }
        if (cfg_.obs != nullptr) {
            cfg_.obs->span(obs::Stage::kOrdered, d.payload, cfg_.obs_member);
        }
    }
    d.delivery_seq = ++delivery_out_seq_;
    out.emplace_back(cfg_.delivery, "deliver", d.encode());
}

}  // namespace failsig::newtop
