#include "newtop/gc_service.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace failsig::newtop {

namespace {
/// Lexicographic (timestamp, member) comparison used for both symmetric-order
/// delivery position and stability checks.
bool ts_pair_greater(std::uint64_t a_ts, MemberId a_id, std::uint64_t b_ts, MemberId b_id) {
    if (a_ts != b_ts) return a_ts > b_ts;
    return a_id > b_id;
}
}  // namespace

GcService::GcService(GcConfig config) : cfg_(std::move(config)) {
    view_.view_id = 1;
    view_.members = cfg_.initial_members;
    std::sort(view_.members.begin(), view_.members.end());
    highest_view_seen_ = 1;
    vc_.assign(cfg_.initial_members.size(), 0);
    for (const auto m : view_.members) {
        latest_ts_[m] = 0;
        causal_delivered_[m] = 0;
        fifo_next_[m] = 1;
        sym_stream_next_[m] = 1;
    }
}

std::size_t GcService::member_index(MemberId m) const {
    const auto it = std::find(cfg_.initial_members.begin(), cfg_.initial_members.end(), m);
    return static_cast<std::size_t>(it - cfg_.initial_members.begin());
}

Duration GcService::processing_cost(const std::string& operation, const Bytes& body) const {
    (void)operation;
    // Buffer-management cost grows with the undelivered backlog: when the
    // group runs past its ordering capacity, stability checks scan ever
    // larger buffers and the degradation compounds (this produces the
    // throughput fall-off beyond the Figure-7 peak).
    const Duration backlog_cost =
        std::min<Duration>(static_cast<Duration>(sym_buffer_.size()) * 5, 2000);
    return cfg_.protocol_op_cost + backlog_cost +
           static_cast<Duration>(cfg_.per_byte_cost_us * static_cast<double>(body.size()));
}

std::vector<fs::Outbound> GcService::process(const std::string& operation, const Bytes& body) {
    Out out;
    if (operation == "multicast") {
        auto req = MulticastRequest::decode(body);
        if (req.has_value()) on_multicast(req.value(), out);
    } else if (operation == "gc") {
        auto msg = GcMessage::decode(body);
        if (msg.has_value()) on_gc_message(msg.value(), out);
    } else if (operation == "suspect") {
        if (body.size() == 4) {
            ByteReader r(body);
            on_suspect(r.u32(), out);
        }
    } else if (operation == fs::kFailSignalOp) {
        // FS-NewTOP's suspector module: a fail-signal uniquely identifies a
        // faulty FS process, so this suspicion cannot be false (§3.1).
        const auto it = cfg_.fs_members.find(string_of(body));
        if (it != cfg_.fs_members.end()) on_suspect(it->second, out);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Input dispatch
// ---------------------------------------------------------------------------

void GcService::on_multicast(const MulticastRequest& request, Out& out) {
    // The GC is about to hand the payload's protocol message(s) to the
    // network (broadcast or sequencer send) — the span's net-send stage.
    if (cfg_.obs != nullptr) {
        cfg_.obs->span(obs::Stage::kNetSend, request.payload, cfg_.obs_member);
    }
    switch (request.service) {
        case ServiceType::kSymmetricTotalOrder: {
            ++lamport_;
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kSymmetricTotalOrder;
            msg.sender_seq = ++sym_seq_;
            msg.stream_seq = ++sym_stream_out_;
            msg.lamport_ts = lamport_;
            msg.payload = request.payload;
            broadcast(msg, out);
            handle_sym_data(msg, out);
            break;
        }
        case ServiceType::kAsymmetricTotalOrder: {
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kAsymmetricTotalOrder;
            msg.sender_seq = ++asym_seq_;
            msg.payload = request.payload;
            if (cfg_.self == sequencer()) {
                handle_asym_data(msg, out);
            } else {
                send_to(sequencer(), msg, out);
            }
            break;
        }
        case ServiceType::kCausalOrder: {
            ++vc_[member_index(cfg_.self)];
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kCausalOrder;
            msg.vector_clock = vc_;
            msg.payload = request.payload;
            broadcast(msg, out);
            // Own messages are causally ready by construction.
            causal_delivered_[cfg_.self] = vc_[member_index(cfg_.self)];
            Delivery d;
            d.sender = cfg_.self;
            d.service = ServiceType::kCausalOrder;
            d.payload = msg.payload;
            deliver(std::move(d), out);
            break;
        }
        case ServiceType::kReliableMulticast: {
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kReliableMulticast;
            msg.sender_seq = ++rel_seq_;
            msg.payload = request.payload;
            broadcast(msg, out);
            fifo_next_[cfg_.self] = msg.sender_seq + 1;
            Delivery d;
            d.sender = cfg_.self;
            d.service = ServiceType::kReliableMulticast;
            d.sender_seq = msg.sender_seq;
            d.payload = msg.payload;
            deliver(std::move(d), out);
            break;
        }
        case ServiceType::kUnreliableMulticast: {
            GcMessage msg;
            msg.kind = GcKind::kData;
            msg.sender = cfg_.self;
            msg.service = ServiceType::kUnreliableMulticast;
            msg.payload = request.payload;
            broadcast(msg, out);
            Delivery d;
            d.sender = cfg_.self;
            d.service = ServiceType::kUnreliableMulticast;
            d.payload = msg.payload;
            deliver(std::move(d), out);
            break;
        }
    }
}

void GcService::on_gc_message(const GcMessage& msg, Out& out) {
    // View protocol messages are accepted from proposed members too; all
    // other traffic must come from a current view member.
    const bool is_view_msg = msg.kind == GcKind::kViewPropose || msg.kind == GcKind::kViewAck ||
                             msg.kind == GcKind::kViewInstall;
    if (!is_view_msg && !view_.contains(msg.sender)) return;

    // Payload-carrying peer traffic = the span's receive stage (ACKs and
    // view-protocol messages are protocol-internal, not message lifecycle).
    if (cfg_.obs != nullptr && (msg.kind == GcKind::kData || msg.kind == GcKind::kOrder)) {
        cfg_.obs->span(obs::Stage::kReceive, msg.payload, cfg_.obs_member);
    }

    switch (msg.kind) {
        case GcKind::kData:
            switch (msg.service) {
                case ServiceType::kSymmetricTotalOrder:
                    enqueue_sym_stream(msg, out);
                    break;
                case ServiceType::kAsymmetricTotalOrder: handle_asym_data(msg, out); break;
                case ServiceType::kCausalOrder: handle_causal_data(msg, out); break;
                case ServiceType::kReliableMulticast: handle_rel_data(msg, out); break;
                case ServiceType::kUnreliableMulticast: {
                    Delivery d;
                    d.sender = msg.sender;
                    d.service = ServiceType::kUnreliableMulticast;
                    d.payload = msg.payload;
                    deliver(std::move(d), out);
                    break;
                }
            }
            break;
        case GcKind::kAck: enqueue_sym_stream(msg, out); break;
        case GcKind::kOrder: handle_asym_order(msg, out); break;
        case GcKind::kViewPropose: handle_view_propose(msg, out); break;
        case GcKind::kViewAck: handle_view_ack(msg, out); break;
        case GcKind::kViewInstall: handle_view_install(msg, out); break;
    }
}

void GcService::on_suspect(MemberId member, Out& out) {
    if (member == cfg_.self || !view_.contains(member)) return;
    if (!suspected_.insert(member).second) return;
    FAILSIG_LOG(LogLevel::kDebug, GC) << "member " << cfg_.self << " suspects " << member;
    maybe_propose_view(out);
}

// ---------------------------------------------------------------------------
// Symmetric total order
// ---------------------------------------------------------------------------

void GcService::enqueue_sym_stream(const GcMessage& msg, Out& out) {
    // Re-sequence each sender's DATA/ACK stream: the stability rule below is
    // only sound when clock announcements from a sender arrive in the order
    // they were made.
    auto& next = sym_stream_next_[msg.sender];
    if (next == 0) next = 1;
    if (msg.stream_seq < next) return;  // stale duplicate
    auto& holdback = sym_holdback_[msg.sender];
    holdback[msg.stream_seq] = msg;
    if (cfg_.obs != nullptr) {
        cfg_.obs->holdback_depth(static_cast<std::int64_t>(holdback.size()));
    }
    while (true) {
        const auto it = holdback.find(next);
        if (it == holdback.end()) break;
        const GcMessage m = it->second;
        holdback.erase(it);
        ++next;
        if (m.kind == GcKind::kAck) {
            handle_sym_ack(m);
            check_sym_delivery(out);
        } else {
            bump_clock(m.lamport_ts);
            handle_sym_data(m, out);
        }
    }
}

void GcService::handle_sym_data(const GcMessage& msg, Out& out) {
    sym_buffer_[{msg.lamport_ts, msg.sender}] = msg;
    auto& sender_ts = latest_ts_[msg.sender];
    sender_ts = std::max(sender_ts, msg.lamport_ts);

    // Logically acknowledge to every member: announce our advanced clock.
    // This is what makes the symmetric protocol "significantly message
    // intensive" (§4) — n*(n-1) ACKs circulate per multicast.
    ++lamport_;
    GcMessage ack;
    ack.kind = GcKind::kAck;
    ack.sender = cfg_.self;
    ack.stream_seq = ++sym_stream_out_;
    ack.lamport_ts = lamport_;
    broadcast(ack, out);
    latest_ts_[cfg_.self] = std::max(latest_ts_[cfg_.self], lamport_);

    check_sym_delivery(out);
}

void GcService::handle_sym_ack(const GcMessage& msg) {
    bump_clock(msg.lamport_ts);
    auto& ts = latest_ts_[msg.sender];
    ts = std::max(ts, msg.lamport_ts);
}

void GcService::check_sym_delivery(Out& out) {
    while (!sym_buffer_.empty()) {
        const auto& [key, msg] = *sym_buffer_.begin();
        const auto [msg_ts, msg_sender] = key;
        // Stable iff every current member's announced clock has passed the
        // message's (ts, sender) position.
        bool stable = true;
        for (const auto m : view_.members) {
            const auto it = latest_ts_.find(m);
            const std::uint64_t seen = it == latest_ts_.end() ? 0 : it->second;
            if (!ts_pair_greater(seen, m, msg_ts, msg_sender)) {
                stable = false;
                break;
            }
        }
        if (!stable) break;

        Delivery d;
        d.sender = msg.sender;
        d.service = ServiceType::kSymmetricTotalOrder;
        d.sender_seq = msg.sender_seq;
        d.payload = msg.payload;
        sym_buffer_.erase(sym_buffer_.begin());
        deliver(std::move(d), out);
    }
}

// ---------------------------------------------------------------------------
// Asymmetric (sequencer) total order
// ---------------------------------------------------------------------------

void GcService::handle_asym_data(const GcMessage& msg, Out& out) {
    if (cfg_.self != sequencer()) return;  // stale: we are no longer sequencer
    GcMessage order;
    order.kind = GcKind::kOrder;
    order.sender = cfg_.self;
    order.service = ServiceType::kAsymmetricTotalOrder;
    order.global_seq = asym_next_assign_++;
    order.origin = msg.sender;
    order.sender_seq = msg.sender_seq;
    order.payload = msg.payload;
    broadcast(order, out);
    handle_asym_order(order, out);
}

void GcService::handle_asym_order(const GcMessage& msg, Out& out) {
    if (msg.sender != sequencer() && msg.sender != cfg_.self) {
        // Only the current sequencer may assign order. (A freshly installed
        // view changes the sequencer; stale assignments are dropped.)
        if (!view_.contains(msg.sender)) return;
    }
    highest_order_seen_ = std::max(highest_order_seen_, msg.global_seq);
    asym_next_assign_ = std::max(asym_next_assign_, highest_order_seen_ + 1);
    asym_buffer_[msg.global_seq] = msg;
    check_asym_delivery(out);
}

void GcService::check_asym_delivery(Out& out) {
    while (true) {
        const auto it = asym_buffer_.find(asym_next_deliver_);
        if (it == asym_buffer_.end()) break;
        Delivery d;
        d.sender = it->second.origin;
        d.service = ServiceType::kAsymmetricTotalOrder;
        d.sender_seq = it->second.sender_seq;
        d.payload = it->second.payload;
        asym_buffer_.erase(it);
        ++asym_next_deliver_;
        deliver(std::move(d), out);
    }
}

// ---------------------------------------------------------------------------
// Causal order
// ---------------------------------------------------------------------------

void GcService::handle_causal_data(const GcMessage& msg, Out& out) {
    if (msg.vector_clock.size() != vc_.size()) return;  // malformed
    causal_buffer_.push_back(msg);
    check_causal_delivery(out);
}

void GcService::check_causal_delivery(Out& out) {
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto it = causal_buffer_.begin(); it != causal_buffer_.end(); ++it) {
            const GcMessage& m = *it;
            const std::size_t j = member_index(m.sender);
            bool ready = m.vector_clock[j] == causal_delivered_[m.sender] + 1;
            if (ready) {
                for (const auto k : view_.members) {
                    if (k == m.sender) continue;
                    if (m.vector_clock[member_index(k)] > causal_delivered_[k]) {
                        ready = false;
                        break;
                    }
                }
            }
            if (!ready) continue;

            causal_delivered_[m.sender] = m.vector_clock[j];
            // Merge the sender's knowledge into our clock.
            for (std::size_t i = 0; i < vc_.size(); ++i) {
                vc_[i] = std::max(vc_[i], m.vector_clock[i]);
            }
            Delivery d;
            d.sender = m.sender;
            d.service = ServiceType::kCausalOrder;
            d.payload = m.payload;
            causal_buffer_.erase(it);
            deliver(std::move(d), out);
            progressed = true;
            break;  // iterator invalidated; rescan
        }
    }
}

// ---------------------------------------------------------------------------
// Reliable FIFO multicast
// ---------------------------------------------------------------------------

void GcService::handle_rel_data(const GcMessage& msg, Out& out) {
    auto& next = fifo_next_[msg.sender];
    if (msg.sender_seq < next) return;  // duplicate
    fifo_buffer_[msg.sender][msg.sender_seq] = msg;
    auto& buf = fifo_buffer_[msg.sender];
    while (true) {
        const auto it = buf.find(next);
        if (it == buf.end()) break;
        Delivery d;
        d.sender = msg.sender;
        d.service = ServiceType::kReliableMulticast;
        d.sender_seq = it->second.sender_seq;
        d.payload = it->second.payload;
        buf.erase(it);
        ++next;
        deliver(std::move(d), out);
    }
}

// ---------------------------------------------------------------------------
// Partitionable membership
// ---------------------------------------------------------------------------

void GcService::maybe_propose_view(Out& out) {
    std::vector<MemberId> candidates;
    for (const auto m : view_.members) {
        if (!suspected_.contains(m)) candidates.push_back(m);
    }
    if (candidates.empty()) return;
    if (candidates.front() != cfg_.self) return;  // not the coordinator

    const std::uint64_t id =
        std::max({view_.view_id, last_proposed_id_, highest_view_seen_}) + 1;
    last_proposed_id_ = id;
    proposed_members_ = candidates;
    view_acks_ = {cfg_.self};

    if (candidates.size() == 1) {
        install_view(id, candidates, out);
        return;
    }
    GcMessage propose;
    propose.kind = GcKind::kViewPropose;
    propose.sender = cfg_.self;
    propose.view_id = id;
    propose.view_members = candidates;
    for (const auto m : candidates) {
        if (m != cfg_.self) send_to(m, propose, out);
    }
}

void GcService::handle_view_propose(const GcMessage& msg, Out& out) {
    highest_view_seen_ = std::max(highest_view_seen_, msg.view_id);
    if (msg.view_id <= view_.view_id) return;
    if (suspected_.contains(msg.sender)) return;  // we do not follow a suspect
    if (std::find(msg.view_members.begin(), msg.view_members.end(), cfg_.self) ==
        msg.view_members.end()) {
        return;  // we are excluded; our own partition will regroup
    }
    if (msg.view_members.empty() || msg.view_members.front() != msg.sender) return;

    GcMessage ack;
    ack.kind = GcKind::kViewAck;
    ack.sender = cfg_.self;
    ack.view_id = msg.view_id;
    send_to(msg.sender, ack, out);
}

void GcService::handle_view_ack(const GcMessage& msg, Out& out) {
    if (msg.view_id != last_proposed_id_) return;
    view_acks_.insert(msg.sender);
    const bool complete = std::all_of(proposed_members_.begin(), proposed_members_.end(),
                                      [&](MemberId m) { return view_acks_.contains(m); });
    if (!complete) return;

    GcMessage install;
    install.kind = GcKind::kViewInstall;
    install.sender = cfg_.self;
    install.view_id = last_proposed_id_;
    install.view_members = proposed_members_;
    for (const auto m : proposed_members_) {
        if (m != cfg_.self) send_to(m, install, out);
    }
    install_view(last_proposed_id_, proposed_members_, out);
}

void GcService::handle_view_install(const GcMessage& msg, Out& out) {
    highest_view_seen_ = std::max(highest_view_seen_, msg.view_id);
    if (msg.view_id <= view_.view_id) return;
    if (std::find(msg.view_members.begin(), msg.view_members.end(), cfg_.self) ==
        msg.view_members.end()) {
        return;
    }
    if (msg.view_members.empty() || msg.view_members.front() != msg.sender) return;
    install_view(msg.view_id, msg.view_members, out);
}

void GcService::install_view(std::uint64_t view_id, std::vector<MemberId> members, Out& out) {
    view_.view_id = view_id;
    view_.members = std::move(members);
    highest_view_seen_ = std::max(highest_view_seen_, view_id);
    ++views_installed_;
    FAILSIG_LOG(LogLevel::kInfo, GC)
        << "member " << cfg_.self << " installs " << newtop::to_string(view_);

    // Drop state belonging to removed members.
    for (auto it = latest_ts_.begin(); it != latest_ts_.end();) {
        it = view_.contains(it->first) ? std::next(it) : latest_ts_.erase(it);
    }
    for (auto it = sym_holdback_.begin(); it != sym_holdback_.end();) {
        it = view_.contains(it->first) ? std::next(it) : sym_holdback_.erase(it);
    }
    std::erase_if(suspected_, [&](MemberId m) { return !view_.contains(m); });

    Delivery d;
    d.kind = Delivery::Kind::kView;
    d.view = view_;
    deliver(std::move(d), out);

    // Stability and delivery conditions may be satisfiable now.
    check_sym_delivery(out);
    check_asym_delivery(out);
    check_causal_delivery(out);

    // If suspicions remain inside the new view (e.g. two members failed),
    // keep shrinking.
    if (!suspected_.empty()) maybe_propose_view(out);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void GcService::bump_clock(std::uint64_t observed_ts) {
    lamport_ = std::max(lamport_, observed_ts) + 1;
}

void GcService::send_to(MemberId member, const GcMessage& msg, Out& out) {
    const auto it = cfg_.peers.find(member);
    if (it == cfg_.peers.end()) return;
    out.emplace_back(it->second, "gc", msg.encode());
}

void GcService::broadcast(const GcMessage& msg, Out& out) {
    // One logical output with all destinations: the FS wrapper signs a
    // multicast once, not once per receiver.
    fs::Outbound o;
    o.operation = "gc";
    o.body = msg.encode();
    for (const auto m : view_.members) {
        if (m == cfg_.self) continue;
        const auto it = cfg_.peers.find(m);
        if (it != cfg_.peers.end()) o.dests.push_back(it->second);
    }
    if (!o.dests.empty()) out.push_back(std::move(o));
}

void GcService::deliver(Delivery d, Out& out) {
    if (d.kind == Delivery::Kind::kMessage) {
        ++delivered_count_;
        if (cfg_.obs != nullptr) {
            cfg_.obs->span(obs::Stage::kOrdered, d.payload, cfg_.obs_member);
        }
    }
    d.delivery_seq = ++delivery_out_seq_;
    out.emplace_back(cfg_.delivery, "deliver", d.encode());
}

}  // namespace failsig::newtop
