// The FS-NewTOP Invocation service (paper §3.1).
//
// Same application-facing interface as newtop::PlainInvocation, but the GC
// below it is a fail-signal *pair*. The interceptor duties of the paper —
// submit each call to both GC and GC', verify and strip double signatures on
// responses, suppress duplicates — are delegated to an fs::FsClient. From
// the application's point of view nothing changed; that transparency is the
// point of the structured approach.
#pragma once

#include "fs/client.hpp"
#include "newtop/invocation.hpp"

namespace failsig::fsnewtop {

class FsInvocation final : public newtop::InvocationService {
public:
    /// `gc_fs_name` is the logical name of this member's FS-wrapped GC
    /// (e.g. "GC:2"). The FsClient registers under `key` on `orb`.
    FsInvocation(fs::FsRuntime& rt, orb::Orb& orb, const std::string& key,
                 std::string gc_fs_name);

    /// The object reference GC deliveries must be addressed to (used when
    /// building the pair's GcConfig).
    [[nodiscard]] const orb::ObjectRef& delivery_ref() const { return client_.ref(); }

    [[nodiscard]] const fs::FsClient& client() const { return client_; }

    /// Sends a raw control operation (e.g. "__rejoin") to the GC pair,
    /// outside the multicast marshalling path.
    void send_control(const std::string& operation, Bytes body) {
        client_.send(gc_fs_name_, operation, std::move(body));
    }

protected:
    /// One FsClient::send per ordered unit — with batching on, ONE signed
    /// envelope (and one FS protocol round: order record, compare match,
    /// countersigned outputs) carries b application requests, which is the
    /// amortized-signature measurement of the paper's cost trade-off.
    void do_multicast(newtop::ServiceType service, Bytes payload) override;

private:
    std::string gc_fs_name_;
    fs::FsClient client_;
};

}  // namespace failsig::fsnewtop
