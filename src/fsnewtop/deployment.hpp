// Builder for a complete FS-NewTOP deployment (paper §3.1, Figures 4 & 5).
//
// Each member's GC service is replicated as a fail-signal pair {FSO_i,
// FSO'_i} whose two wrapper objects live on distinct nodes joined by a
// synchronous link. Two placements are supported:
//   * kFull (Figure 4): 2n nodes — each pair gets its own two nodes; the
//     application and Invocation layer live on the leader's node. Masking f
//     Byzantine faults at the application level then needs 4f+2 nodes.
//   * kCollocated (Figure 5): n nodes — node i hosts A_i, FSO_i and the
//     follower FSO'_{i-1} of the previous member, halving the node count.
//     This is the paper's experimental set-up (it loads every node with two
//     wrapper objects, deliberately favouring plain NewTOP in comparisons).
#pragma once

#include <memory>

#include "fs/process.hpp"
#include "fsnewtop/fs_invocation.hpp"
#include "net/network.hpp"
#include "net/runtime_env.hpp"
#include "newtop/gc_service.hpp"

namespace failsig::fsnewtop {

enum class Placement { kCollocated, kFull };

struct FsNewTopOptions {
    int group_size{3};
    /// CPU capacity per node (see newtop::NewTopOptions::threads_per_node —
    /// dual-processor nodes).
    int threads_per_node{2};
    std::uint64_t seed{1};
    sim::CostModel costs{};
    net::AsyncLinkParams net_params{};
    fs::FsConfig fs_config{};
    Placement placement{Placement::kCollocated};
    crypto::KeyService::Backend crypto_backend{crypto::KeyService::Backend::kHmac};
    /// Request batching on every member's Invocation submit path: one signed
    /// envelope (and one FS protocol round) per batch instead of per request.
    BatchConfig batch{};
    /// Per-run observability context (nullptr = off). Threaded into the
    /// Invocation layers, the wrapper objects' crypto attribution, and the
    /// pair's LEADER GC replica only (replicated execution must not
    /// double-count lifecycle stamps).
    obs::Obs* obs{nullptr};
    /// External runtime (the TCP backend): transport/fault plane/per-node
    /// event loops. Default (all null) = stack-owned sim world.
    net::RuntimeEnv env{};
    /// Replicated KV app checkpoint cadence (0 = off; see app::KvStore).
    std::uint64_t checkpoint_interval{0};
};

class FsNewTopDeployment {
public:
    explicit FsNewTopDeployment(const FsNewTopOptions& options);

    FsNewTopDeployment(const FsNewTopDeployment&) = delete;
    FsNewTopDeployment& operator=(const FsNewTopDeployment&) = delete;

    [[nodiscard]] sim::Simulation& sim() { return sim_; }
    [[nodiscard]] net::Transport& network() { return net_; }
    [[nodiscard]] net::FaultInjector& faults() { return faults_; }
    [[nodiscard]] crypto::KeyService& keys() { return keys_; }
    [[nodiscard]] const crypto::KeyService& keys() const { return keys_; }
    [[nodiscard]] int group_size() const { return static_cast<int>(members_.size()); }

    [[nodiscard]] FsInvocation& invocation(int member);
    /// The two wrapper objects of member i's GC pair (for fault injection
    /// and inspection).
    [[nodiscard]] fs::Fso& leader_fso(int member);
    [[nodiscard]] fs::Fso& follower_fso(int member);
    /// The GC state machine replicas inside the pair.
    [[nodiscard]] newtop::GcService& gc_leader(int member);
    [[nodiscard]] const newtop::GcService& gc_leader(int member) const;
    [[nodiscard]] newtop::GcService& gc_follower(int member);

    [[nodiscard]] static std::string gc_name(int member) {
        return "GC:" + std::to_string(member);
    }

    /// Aggregated batching counters over every member's Invocation layer.
    [[nodiscard]] BatchStats batch_stats() const;

    // Physical layout (scenario fault injection needs real node ids: crashes
    // and partitions operate on hosts, not on protocol-level members).
    [[nodiscard]] NodeId app_node_of(int member) const;
    [[nodiscard]] NodeId leader_node_of(int member) const;
    [[nodiscard]] NodeId follower_node_of(int member) const;
    [[nodiscard]] Placement placement() const { return placement_; }

private:
    struct Member {
        std::unique_ptr<FsInvocation> invocation;
        fs::FsProcessHandles handles;
        NodeId app_node;
        NodeId leader_node;
        NodeId follower_node;
    };

    sim::Simulation sim_;
    std::unique_ptr<net::SimNetwork> own_net_;  // null when env.transport is set
    net::Transport& net_;
    net::FaultInjector& faults_;
    orb::OrbDomain domain_;
    crypto::KeyService keys_;
    fs::FsDirectory directory_;
    fs::FsHost host_;
    Placement placement_{Placement::kCollocated};
    std::vector<Member> members_;
};

}  // namespace failsig::fsnewtop
