#include "fsnewtop/fs_invocation.hpp"

namespace failsig::fsnewtop {

FsInvocation::FsInvocation(fs::FsRuntime& rt, orb::Orb& orb, const std::string& key,
                           std::string gc_fs_name)
    : gc_fs_name_(std::move(gc_fs_name)), client_(rt, orb, key) {
    client_.on_response(
        [this](const std::string& source, const std::string& operation, const Bytes& body) {
            if (source == gc_fs_name_ && operation == "deliver") {
                handle_delivery_bytes(body);
            }
        });
    client_.on_fail_signal([this](const std::string& source) {
        if (failure_handler_) failure_handler_(source);
    });
}

void FsInvocation::do_multicast(newtop::ServiceType service, Bytes payload) {
    if (obs_ != nullptr) obs_->span(obs::Stage::kEncoded, payload, obs_member_);
    newtop::MulticastRequest req;
    req.service = service;
    req.payload = std::move(payload);
    client_.send(gc_fs_name_, "multicast", req.encode());
}

}  // namespace failsig::fsnewtop
