#include "fsnewtop/deployment.hpp"

namespace failsig::fsnewtop {

FsNewTopDeployment::FsNewTopDeployment(const FsNewTopOptions& options)
    : own_net_(options.env.external() ? nullptr
                                      : std::make_unique<net::SimNetwork>(sim_, Rng(options.seed),
                                                                          options.net_params)),
      net_(net::transport_or(options.env, own_net_.get())),
      faults_(net::faults_or(options.env, own_net_.get())),
      domain_(net::sim_of_or(options.env, sim_), net_, options.costs, options.threads_per_node),
      keys_(options.crypto_backend, 512, options.seed ^ 0x6b657973u),
      host_(fs::FsRuntime{net_, domain_, keys_, directory_, options.obs}),
      placement_(options.placement) {
    const int n = options.group_size;
    ensure(n >= 1, "FsNewTopDeployment: group_size must be >= 1");

    std::vector<newtop::MemberId> member_ids;
    for (int i = 0; i < n; ++i) member_ids.push_back(static_cast<newtop::MemberId>(i));

    // Node layout.
    const auto app_node = [&](int i) { return NodeId{static_cast<std::uint32_t>(i + 1)}; };
    const auto leader_node = [&](int i) {
        return options.placement == Placement::kCollocated
                   ? app_node(i)
                   : NodeId{static_cast<std::uint32_t>(2 * i + 1)};
    };
    const auto follower_node = [&](int i) {
        if (options.placement == Placement::kCollocated) {
            // Figure 5: FSO'_i lives on the next member's node (wrap-around);
            // with n == 1 there is no second node, so borrow node n+1.
            return n > 1 ? app_node((i + 1) % n) : NodeId{static_cast<std::uint32_t>(n + 1)};
        }
        return NodeId{static_cast<std::uint32_t>(2 * i + 2)};
    };

    // Pass 1: each member's Invocation layer (an FsClient) on its app node.
    members_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto& member = members_[static_cast<std::size_t>(i)];
        member.app_node = app_node(i);
        member.leader_node = leader_node(i);
        member.follower_node = follower_node(i);
        orb::Orb& app_orb = domain_.create_orb(app_node(i));
        member.invocation = std::make_unique<FsInvocation>(
            host_.runtime(), app_orb, "inv:" + std::to_string(i), gc_name(i));
        member.invocation->set_obs(options.obs, i);
        member.invocation->configure_batching(app_orb.simulation(), options.batch);
    }

    // Pass 2: the FS-wrapped GC pairs.
    for (int i = 0; i < n; ++i) {
        newtop::GcConfig cfg;
        cfg.self = static_cast<newtop::MemberId>(i);
        cfg.initial_members = member_ids;
        for (int j = 0; j < n; ++j) {
            if (j == i) continue;
            cfg.peers[static_cast<newtop::MemberId>(j)] = fs::Destination::fs(gc_name(j));
            cfg.fs_members[gc_name(j)] = static_cast<newtop::MemberId>(j);
        }
        cfg.delivery = fs::Destination::plain(
            members_[static_cast<std::size_t>(i)].invocation->delivery_ref());
        cfg.protocol_op_cost = options.costs.gc_protocol_op;
        cfg.obs = options.obs;
        cfg.obs_member = i;
        cfg.checkpoint_interval = options.checkpoint_interval;

        // The factory runs twice — leader replica first, then the follower
        // (fs/process.cpp construction order). Only the leader gets the obs
        // tap: both replicas execute the same inputs, and stamping both
        // would double-count every lifecycle stage.
        auto replica_calls = std::make_shared<int>(0);
        members_[static_cast<std::size_t>(i)].handles = host_.create_process(
            gc_name(i), leader_node(i), follower_node(i),
            [cfg, replica_calls] {
                newtop::GcConfig replica_cfg = cfg;
                if ((*replica_calls)++ != 0) replica_cfg.obs = nullptr;
                return std::make_unique<newtop::GcService>(replica_cfg);
            },
            options.fs_config);
    }
}

FsInvocation& FsNewTopDeployment::invocation(int member) {
    return *members_.at(static_cast<std::size_t>(member)).invocation;
}

fs::Fso& FsNewTopDeployment::leader_fso(int member) {
    return *members_.at(static_cast<std::size_t>(member)).handles.leader;
}

fs::Fso& FsNewTopDeployment::follower_fso(int member) {
    return *members_.at(static_cast<std::size_t>(member)).handles.follower;
}

newtop::GcService& FsNewTopDeployment::gc_leader(int member) {
    return dynamic_cast<newtop::GcService&>(leader_fso(member).service());
}

const newtop::GcService& FsNewTopDeployment::gc_leader(int member) const {
    return const_cast<FsNewTopDeployment*>(this)->gc_leader(member);
}

newtop::GcService& FsNewTopDeployment::gc_follower(int member) {
    return dynamic_cast<newtop::GcService&>(follower_fso(member).service());
}

BatchStats FsNewTopDeployment::batch_stats() const {
    BatchStats stats;
    for (const auto& m : members_) stats += m.invocation->batch_stats();
    return stats;
}

NodeId FsNewTopDeployment::app_node_of(int member) const {
    return members_.at(static_cast<std::size_t>(member)).app_node;
}

NodeId FsNewTopDeployment::leader_node_of(int member) const {
    return members_.at(static_cast<std::size_t>(member)).leader_node;
}

NodeId FsNewTopDeployment::follower_node_of(int member) const {
    return members_.at(static_cast<std::size_t>(member)).follower_node;
}

}  // namespace failsig::fsnewtop
