// Message-lifecycle spans: one multicast, seven stamps.
//
// Every application multicast — on any of the three stacks — passes through
// the same conceptual pipeline:
//
//   submit -> batched -> encoded -> net-send -> receive -> ordered -> delivered
//
// submit is the application handing the payload to the Invocation layer (or
// the PBFT deployment's submit path); batched is the batcher flushing it
// into an ordered unit; encoded is the unit being wrapped in the stack's
// protocol request; net-send is the first protocol broadcast carrying it
// (GC DATA / PBFT pre-prepare); receive is that broadcast arriving at a
// peer; ordered is the protocol placing it in the total order; delivered is
// the application upcall. The tracker attributes per-stage latency
// (batch wait, send latency, ordering latency, end-to-end) into the metrics
// registry's histograms, which is what finally lets the figure benches say
// *where* a stack pays its cost, not just how much.
//
// Spans are keyed by an FNV-1a hash of the payload bytes — workload
// payloads carry a unique (sender, seq) tag, and batch frames embed the
// request payloads — so no protocol wire format changes and no stack grows
// a tracing header. When the batcher coalesces b requests into one unit,
// link() records the unit under the earliest member request's submit time;
// with batching off the unit bytes ARE the request bytes and the keys
// coincide naturally.
//
// Stamps are recording-only. The protocol state machines stay pure: a tap
// never feeds anything back, so a run with spans enabled is byte-identical
// (trace and report) to one without.
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace failsig::obs {

enum class Stage : std::uint8_t {
    kSubmit = 0,
    kBatched = 1,
    kEncoded = 2,
    kNetSend = 3,
    kReceive = 4,
    kOrdered = 5,
    kDelivered = 6,
};

inline constexpr int kStageCount = 7;

/// Stable lowercase stage name ("submit", "net_send", ...): metric-name
/// component and flight-recorder label.
const char* stage_name(Stage stage);

/// FNV-1a 64-bit over raw bytes — the span key function.
std::uint64_t span_key(std::span<const std::uint8_t> bytes);

class SpanTracker {
public:
    explicit SpanTracker(MetricsRegistry& metrics);

    /// Records one lifecycle stamp for the span keyed `key`, observed at
    /// member `member`, at sim tick `now`. Increments the stage counter and
    /// feeds the stage's latency histogram (measured from the span's submit
    /// stamp; a stamp whose submit was never seen — protocol-internal
    /// traffic — still counts but adds no latency sample).
    void stamp(Stage stage, std::uint64_t key, int member, TimePoint now);

    /// Declares that ordered unit `unit_key` carries request `request_key`
    /// (batcher flush). Stamps kBatched for the request and records the
    /// unit's reference time as the earliest linked submit, so later stages
    /// measured on the unit attribute latency to the requests inside it.
    void link(std::uint64_t unit_key, std::uint64_t request_key, int member, TimePoint now);

    /// Stage-stamp count observed so far (reads the underlying counter).
    [[nodiscard]] std::uint64_t stamps(Stage stage) const;

private:
    MetricsRegistry& metrics_;
    Counter* stage_counts_[kStageCount];
    Histogram& batch_wait_us_;
    Histogram& send_latency_us_;
    Histogram& order_latency_us_;
    Histogram& e2e_latency_us_;
    /// Span key -> submit tick. std::map keeps memory proportional to live
    /// spans; entries are dropped once every member delivered would need a
    /// member count the tracker does not know, so they live for the run —
    /// runs are bounded and keys are 16 bytes.
    std::map<std::uint64_t, TimePoint> submit_at_;
};

}  // namespace failsig::obs
