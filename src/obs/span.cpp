#include "obs/span.hpp"

namespace failsig::obs {

const char* stage_name(Stage stage) {
    switch (stage) {
        case Stage::kSubmit: return "submit";
        case Stage::kBatched: return "batched";
        case Stage::kEncoded: return "encoded";
        case Stage::kNetSend: return "net_send";
        case Stage::kReceive: return "receive";
        case Stage::kOrdered: return "ordered";
        case Stage::kDelivered: return "delivered";
    }
    return "?";
}

std::uint64_t span_key(std::span<const std::uint8_t> bytes) {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

SpanTracker::SpanTracker(MetricsRegistry& metrics)
    : metrics_(metrics),
      batch_wait_us_(metrics.histogram("span.batch_wait_us")),
      send_latency_us_(metrics.histogram("span.send_latency_us")),
      order_latency_us_(metrics.histogram("span.order_latency_us")),
      e2e_latency_us_(metrics.histogram("span.e2e_latency_us")) {
    for (int s = 0; s < kStageCount; ++s) {
        stage_counts_[s] = &metrics.counter(std::string("span.stage.") +
                                            stage_name(static_cast<Stage>(s)));
    }
}

void SpanTracker::stamp(Stage stage, std::uint64_t key, int member, TimePoint now) {
    (void)member;  // per-member attribution lives in the flight recorder
    stage_counts_[static_cast<int>(stage)]->inc();
    if (stage == Stage::kSubmit) {
        // First submit wins: a duplicate payload (identical bytes resent)
        // keeps the earliest reference point.
        submit_at_.emplace(key, now);
        return;
    }
    const auto it = submit_at_.find(key);
    if (it == submit_at_.end()) return;  // protocol-internal or untracked
    const auto elapsed = static_cast<std::int64_t>(now - it->second);
    switch (stage) {
        case Stage::kBatched: batch_wait_us_.add(elapsed); break;
        case Stage::kNetSend: send_latency_us_.add(elapsed); break;
        case Stage::kOrdered: order_latency_us_.add(elapsed); break;
        case Stage::kDelivered: e2e_latency_us_.add(elapsed); break;
        default: break;  // encoded / receive: counted, no latency histogram
    }
}

void SpanTracker::link(std::uint64_t unit_key, std::uint64_t request_key, int member,
                       TimePoint now) {
    stamp(Stage::kBatched, request_key, member, now);
    const auto req = submit_at_.find(request_key);
    if (req == submit_at_.end()) return;
    const auto [it, inserted] = submit_at_.emplace(unit_key, req->second);
    if (!inserted && req->second < it->second) it->second = req->second;
}

std::uint64_t SpanTracker::stamps(Stage stage) const {
    return stage_counts_[static_cast<int>(stage)]->value();
}

}  // namespace failsig::obs
