#include "obs/recorder.hpp"

namespace failsig::obs {

void FlightRecorder::record(int member, TimePoint at, std::string what) {
    Ring& ring = rings_[member];
    if (ring.slots.size() < capacity_) {
        ring.slots.push_back(FlightEvent{at, std::move(what)});
    } else {
        ring.slots[ring.next] = FlightEvent{at, std::move(what)};
        ring.next = (ring.next + 1) % capacity_;
    }
    ++ring.seen;
    ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::events(int member) const {
    const auto it = rings_.find(member);
    if (it == rings_.end()) return {};
    const Ring& ring = it->second;
    std::vector<FlightEvent> out;
    out.reserve(ring.slots.size());
    // Oldest first: once wrapped, the slot at `next` is the oldest survivor.
    for (std::size_t i = 0; i < ring.slots.size(); ++i) {
        out.push_back(ring.slots[(ring.next + i) % ring.slots.size()]);
    }
    return out;
}

std::string FlightRecorder::dump() const {
    std::string out = "flight-recorder dump (capacity " + std::to_string(capacity_) +
                      " events/node, " + std::to_string(recorded_) + " recorded)\n";
    for (const auto& [member, ring] : rings_) {
        out += member < 0 ? "node * (run-global)" : "node " + std::to_string(member);
        out += " — " + std::to_string(ring.slots.size()) + " retained of " +
               std::to_string(ring.seen) + " seen\n";
        for (const auto& e : events(member)) {
            out += "  t=" + std::to_string(e.at) + "us  " + e.what + "\n";
        }
    }
    return out;
}

}  // namespace failsig::obs
