// Per-run observability context: metrics registry + span tracker + flight
// recorder behind one nullable pointer.
//
// A scenario opts in (Scenario::obs.enabled); run_scenario then builds one
// Obs, binds it to the deployment's Simulation, and threads the pointer
// down through DeploymentSpec into the stacks. Every hot-path hook is
//
//     if (obs_ != nullptr) obs_->span(...);
//
// so a run without observability pays one predictable not-taken branch per
// potential stamp — cheap enough that the instrumentation stays compiled
// in (the perf bench's obs section holds this to ~zero drift).
//
// The context is single-threaded by construction: it belongs to one run,
// and everything inside a run executes on that run's deterministic event
// loop. Sweep workers each own their run's context, so parallel sweeps
// need no locks and exports stay byte-identical across --jobs values.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "time/clock.hpp"

namespace failsig::obs {

/// The scenario-level knob (lives on scenario::Scenario as `obs`).
struct ObsConfig {
    bool enabled{false};
    /// Flight-recorder ring size per node.
    std::size_t flight_capacity{256};

    friend bool operator==(const ObsConfig&, const ObsConfig&) = default;
};

class Obs {
public:
    explicit Obs(const ObsConfig& config = {});

    /// Binds the time source. Deployments own their clock, so the deploy
    /// adapters bind during construction — stamps only read now() at event
    /// time, never before. The clock must outlive this context.
    void bind(const time::Clock* clock) {
        owned_sim_clock_.reset();
        clock_ = clock;
    }
    /// Convenience overload for the sim backends: wraps the Simulation in an
    /// owned SimClock.
    void bind(const sim::Simulation* sim) {
        if (sim == nullptr) {
            bind(static_cast<const time::Clock*>(nullptr));
            return;
        }
        owned_sim_clock_.emplace(*sim);
        clock_ = &*owned_sim_clock_;
    }
    [[nodiscard]] TimePoint now() const;

    [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
    [[nodiscard]] SpanTracker& spans() { return spans_; }
    [[nodiscard]] FlightRecorder& flight() { return flight_; }

    /// One lifecycle stamp: hashes `payload`, stamps the span tracker and
    /// appends a flight-recorder entry at member's ring.
    void span(Stage stage, std::span<const std::uint8_t> payload, int member);

    /// Batcher flush: ordered unit `unit` carries request `request`.
    void span_link(std::span<const std::uint8_t> unit,
                   std::span<const std::uint8_t> request, int member);

    /// Non-span flight-recorder event (views, fail-signals, injected
    /// faults); member -1 = run-global.
    void note(int member, std::string what);

    /// Simulated crypto time attribution (FS-NewTOP's wrapper pools).
    void crypto_sign(Duration simulated_cost);
    void crypto_verify(Duration simulated_cost);

    /// Queue-depth sample from the GC's symmetric holdback buffers.
    void holdback_depth(std::int64_t depth);

    /// View-change flush round lifecycle for `member`'s GC: begin on entering
    /// the flushing state, end on installing the view. The elapsed sim time
    /// lands in the view.flush_duration_us histogram; state/done traffic and
    /// cut deliveries count into view.flush_messages / view.flushed_deliveries.
    /// Flush instruments register lazily on first use so runs that never
    /// change views (every fault-free campaign) export unchanged snapshots.
    void flush_begin(int member);
    void flush_end(int member);
    void flush_message();
    void flushed_deliveries(std::uint64_t n);

    /// The exported snapshot ("failsig-metrics-v1"); sim-tick stamped.
    [[nodiscard]] std::string metrics_json(const std::string& scenario) const;

private:
    const time::Clock* clock_{nullptr};
    std::optional<time::SimClock> owned_sim_clock_;
    MetricsRegistry metrics_;
    SpanTracker spans_;
    FlightRecorder flight_;
    Histogram& sign_us_;
    Histogram& verify_us_;
    Histogram& holdback_depth_hist_;
    // Lazily bound flush instruments (see flush_begin).
    Histogram* flush_duration_us_{nullptr};
    Counter* flush_messages_{nullptr};
    Counter* flushed_deliveries_{nullptr};
    std::map<int, TimePoint> flush_started_;
};

}  // namespace failsig::obs
