#include "obs/obs.hpp"

#include "sim/simulation.hpp"

namespace failsig::obs {

Obs::Obs(const ObsConfig& config)
    : spans_(metrics_),
      flight_(config.flight_capacity),
      sign_us_(metrics_.histogram("crypto.sign_us")),
      verify_us_(metrics_.histogram("crypto.verify_us")),
      holdback_depth_hist_(metrics_.histogram("gc.holdback_depth")) {}

TimePoint Obs::now() const { return clock_ != nullptr ? clock_->now() : 0; }

void Obs::span(Stage stage, std::span<const std::uint8_t> payload, int member) {
    const TimePoint at = now();
    const std::uint64_t key = span_key(payload);
    spans_.stamp(stage, key, member, at);
    flight_.record(member, at,
                   std::string(stage_name(stage)) + " span=" + std::to_string(key));
}

void Obs::span_link(std::span<const std::uint8_t> unit,
                    std::span<const std::uint8_t> request, int member) {
    const TimePoint at = now();
    const std::uint64_t unit_key = span_key(unit);
    const std::uint64_t request_key = span_key(request);
    spans_.link(unit_key, request_key, member, at);
    if (unit_key != request_key) {  // passthrough links would spam the ring
        flight_.record(member, at,
                       "batched span=" + std::to_string(request_key) +
                           " into unit=" + std::to_string(unit_key));
    } else {
        flight_.record(member, at, "batched span=" + std::to_string(request_key));
    }
}

void Obs::note(int member, std::string what) {
    flight_.record(member, now(), std::move(what));
}

void Obs::crypto_sign(Duration simulated_cost) {
    sign_us_.add(static_cast<std::int64_t>(simulated_cost));
}

void Obs::crypto_verify(Duration simulated_cost) {
    verify_us_.add(static_cast<std::int64_t>(simulated_cost));
}

void Obs::holdback_depth(std::int64_t depth) { holdback_depth_hist_.add(depth); }

void Obs::flush_begin(int member) {
    flush_started_[member] = now();
    flight_.record(member, now(), "view flush begin");
}

void Obs::flush_end(int member) {
    const auto it = flush_started_.find(member);
    if (it == flush_started_.end()) return;  // install without a flush round
    if (flush_duration_us_ == nullptr) {
        flush_duration_us_ = &metrics_.histogram("view.flush_duration_us");
    }
    const TimePoint started = it->second;
    flush_started_.erase(it);
    flush_duration_us_->add(static_cast<std::int64_t>(now() - started));
    flight_.record(member, now(), "view flush end");
}

void Obs::flush_message() {
    if (flush_messages_ == nullptr) {
        flush_messages_ = &metrics_.counter("view.flush_messages");
    }
    flush_messages_->inc();
}

void Obs::flushed_deliveries(std::uint64_t n) {
    if (flushed_deliveries_ == nullptr) {
        flushed_deliveries_ = &metrics_.counter("view.flushed_deliveries");
    }
    flushed_deliveries_->inc(n);
}

std::string Obs::metrics_json(const std::string& scenario) const {
    return metrics_.to_json(scenario, now());
}

}  // namespace failsig::obs
