// Metrics registry: named counters, gauges and log-linear histograms.
//
// The paper's argument is a *cost* comparison, and until now the repro could
// only total costs at the end of a run. This registry is the accumulation
// layer underneath the message-lifecycle spans (obs/span.hpp): hot-path
// increments are a single add through a cached pointer, and the snapshot is
// ordered by name, so the exported JSON / Prometheus text is a pure function
// of the run — byte-identical across sweep worker counts. Timestamps are
// sim ticks, never wall clock, for the same reason.
//
// Instruments are registered on first use and owned by the registry;
// returned references stay valid for the registry's lifetime (storage is a
// std::map, which never invalidates element addresses), so hot paths look
// up once and increment through the reference.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace failsig::obs {

class Counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    [[nodiscard]] std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_{0};
};

class Gauge {
public:
    void set(std::int64_t v) { value_ = v; }
    [[nodiscard]] std::int64_t value() const { return value_; }

private:
    std::int64_t value_{0};
};

/// Log-linear histogram over non-negative integer samples (microseconds,
/// queue depths). Layout (HdrHistogram-style, 4 sub-buckets per octave):
///   * one dedicated zero bucket (samples <= 0),
///   * indices 1..3 hold the exact values 1..3,
///   * from 4 on, each octave [2^k, 2^(k+1)) splits into 4 linear
///     sub-buckets — bucket index (k-2)*4 + (v >> (k-2)) — so relative
///     resolution stays ~25% at every magnitude,
///   * samples at or beyond 2^kMaxOctave land in one overflow bucket.
/// add() is branch + shift + increment: cheap enough to leave compiled in.
class Histogram {
public:
    static constexpr int kSubBuckets = 4;
    /// Samples >= 2^40 (~13 simulated days in us) overflow.
    static constexpr int kMaxOctave = 40;
    static constexpr std::size_t kBucketCount =
        static_cast<std::size_t>((kMaxOctave - 2) * kSubBuckets + kSubBuckets);

    void add(std::int64_t sample);

    /// Bucket index a positive sample lands in (exposed for the boundary
    /// tests; add() uses it internally).
    [[nodiscard]] static std::size_t index_of(std::uint64_t sample);
    /// Inclusive lower bound of bucket `index` (index >= 1).
    [[nodiscard]] static std::uint64_t lower_bound_of(std::size_t index);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] std::int64_t sum() const { return sum_; }
    [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
    [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }
    [[nodiscard]] std::uint64_t zero_count() const { return zero_; }
    [[nodiscard]] std::uint64_t overflow_count() const { return overflow_; }
    /// (inclusive lower bound, count) for every non-empty log-linear bucket,
    /// ascending — the sparse rendering both exports use.
    [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets() const;

private:
    std::uint64_t count_{0};
    std::int64_t sum_{0};
    std::int64_t min_{0};
    std::int64_t max_{0};
    std::uint64_t zero_{0};
    std::uint64_t overflow_{0};
    std::vector<std::uint64_t> bucket_counts_;  ///< lazily sized to kBucketCount
};

/// Name-keyed instrument store. Names are dotted lowercase paths
/// ("span.stage.submit", "crypto.sign_us"); the unit is a suffix by
/// convention. Lookup is a map walk — hot paths call once and keep the
/// reference.
class MetricsRegistry {
public:
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name) { return histograms_[name]; }

    /// Every counter as (name, value), name-ascending. The conformance
    /// tests and the perf bench consume this directly.
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() const;

    /// "failsig-metrics-v1" JSON object. `scenario` labels the run;
    /// `finished_at` is the sim tick the snapshot was taken at. Instruments
    /// are emitted name-ascending: same run => same bytes.
    [[nodiscard]] std::string to_json(const std::string& scenario,
                                      TimePoint finished_at) const;

    /// Prometheus-style text exposition (counter/gauge/histogram with
    /// cumulative le-labelled buckets). Same ordering guarantee as to_json.
    [[nodiscard]] std::string to_prometheus() const;

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

}  // namespace failsig::obs
