// Flight recorder: the last N things each node saw, for when a run ends in
// an invariant violation.
//
// The explorer can already shrink a violation to a minimal scenario, but a
// scenario says what was *injected*, not what the protocols were *doing*
// when agreement broke. The recorder keeps a bounded ring of recent events
// per node — span stamps, views, fail-signals, injected scenario events —
// and dump() renders them as a chronological per-node timeline. The
// scenario runner and explore_cli write that dump next to the reproducer,
// which is exactly the causal context the open view-change flush gap
// investigation has been missing.
//
// Rings are bounded (default 256 events/node), so recording during a long
// run costs O(1) memory per node and an append is a vector store — cheap
// enough to leave on whenever obs is enabled.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace failsig::obs {

struct FlightEvent {
    TimePoint at{0};
    std::string what;
};

class FlightRecorder {
public:
    explicit FlightRecorder(std::size_t capacity_per_node = 256)
        : capacity_(capacity_per_node == 0 ? 1 : capacity_per_node) {}

    /// Appends an event to `member`'s ring (member -1 = run-global events:
    /// injected scenario faults, run lifecycle). Overwrites the oldest
    /// entry once the ring is full.
    void record(int member, TimePoint at, std::string what);

    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    /// Events currently retained for `member`, oldest first.
    [[nodiscard]] std::vector<FlightEvent> events(int member) const;
    /// Total events ever recorded (including overwritten ones).
    [[nodiscard]] std::uint64_t recorded() const { return recorded_; }

    /// Human-readable dump: one section per node (global section first),
    /// events oldest-to-newest with sim-tick timestamps. Deterministic for
    /// a deterministic run.
    [[nodiscard]] std::string dump() const;

private:
    struct Ring {
        std::vector<FlightEvent> slots;
        std::size_t next{0};   ///< index the next event overwrites
        std::uint64_t seen{0}; ///< total events pushed at this ring
    };

    std::size_t capacity_;
    std::map<int, Ring> rings_;
    std::uint64_t recorded_{0};
};

}  // namespace failsig::obs
