#include "obs/metrics.hpp"

#include <bit>

namespace failsig::obs {

std::size_t Histogram::index_of(std::uint64_t sample) {
    // sample >= 1. Values 1..3 map to indices 1..3; from 4 on, octave
    // k = floor(log2 v) contributes 4 sub-buckets at (k-2)*4 + (v >> (k-2)).
    if (sample < 4) return static_cast<std::size_t>(sample);
    const int octave = 63 - std::countl_zero(sample);
    return static_cast<std::size_t>(octave - 2) * kSubBuckets +
           static_cast<std::size_t>(sample >> (octave - 2));
}

std::uint64_t Histogram::lower_bound_of(std::size_t index) {
    if (index < 4) return index;
    const std::size_t group = index / kSubBuckets - 1;
    const std::size_t sub = index % kSubBuckets;
    return static_cast<std::uint64_t>(4 + sub) << group;
}

void Histogram::add(std::int64_t sample) {
    ++count_;
    sum_ += sample;
    if (count_ == 1) {
        min_ = max_ = sample;
    } else {
        if (sample < min_) min_ = sample;
        if (sample > max_) max_ = sample;
    }
    if (sample <= 0) {
        ++zero_;
        return;
    }
    const auto v = static_cast<std::uint64_t>(sample);
    if (v >= (1ull << kMaxOctave)) {
        ++overflow_;
        return;
    }
    if (bucket_counts_.empty()) bucket_counts_.assign(kBucketCount, 0);
    ++bucket_counts_[index_of(v)];
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::buckets() const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < bucket_counts_.size(); ++i) {
        if (bucket_counts_[i] != 0) out.emplace_back(lower_bound_of(i), bucket_counts_[i]);
    }
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counter_snapshot() const {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
    return out;
}

namespace {

/// Metric names are dotted ASCII identifiers, but escape defensively so a
/// stray quote can never produce invalid JSON.
void append_json_string(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u00";
            constexpr char hex[] = "0123456789abcdef";
            out += hex[(c >> 4) & 0xF];
            out += hex[c & 0xF];
        } else {
            out += c;
        }
    }
    out += '"';
}

}  // namespace

std::string MetricsRegistry::to_json(const std::string& scenario,
                                     TimePoint finished_at) const {
    std::string out = "{\"format\":\"failsig-metrics-v1\",\"scenario\":";
    append_json_string(out, scenario);
    out += ",\"finished_at_us\":" + std::to_string(finished_at);

    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, name);
        out += ':' + std::to_string(c.value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, name);
        out += ':' + std::to_string(g.value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, name);
        out += ":{\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + std::to_string(h.sum()) +
               ",\"min\":" + std::to_string(h.min()) +
               ",\"max\":" + std::to_string(h.max()) +
               ",\"zero\":" + std::to_string(h.zero_count()) +
               ",\"overflow\":" + std::to_string(h.overflow_count()) + ",\"buckets\":[";
        bool first_bucket = true;
        for (const auto& [lower, count] : h.buckets()) {
            if (!first_bucket) out += ',';
            first_bucket = false;
            out += '[' + std::to_string(lower) + ',' + std::to_string(count) + ']';
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

std::string MetricsRegistry::to_prometheus() const {
    // Prometheus metric names take [a-zA-Z0-9_:]; dots become underscores.
    const auto prom_name = [](const std::string& name) {
        std::string out = name;
        for (char& c : out) {
            if (c == '.' || c == '-') c = '_';
        }
        return out;
    };

    std::string out;
    for (const auto& [name, c] : counters_) {
        const std::string p = prom_name(name);
        out += "# TYPE " + p + " counter\n";
        out += p + " " + std::to_string(c.value()) + "\n";
    }
    for (const auto& [name, g] : gauges_) {
        const std::string p = prom_name(name);
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + std::to_string(g.value()) + "\n";
    }
    for (const auto& [name, h] : histograms_) {
        const std::string p = prom_name(name);
        out += "# TYPE " + p + " histogram\n";
        // Cumulative le buckets over the sparse rendering: each non-empty
        // log-linear bucket [lower, next) contributes its exclusive upper
        // bound as the le threshold.
        std::uint64_t cumulative = h.zero_count();
        out += p + "_bucket{le=\"0\"} " + std::to_string(cumulative) + "\n";
        for (const auto& [lower, count] : h.buckets()) {
            cumulative += count;
            // The bucket starting at `lower` ends where the next one starts.
            const std::uint64_t upper =
                Histogram::lower_bound_of(Histogram::index_of(lower) + 1) - 1;
            out += p + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count()) + "\n";
        out += p + "_sum " + std::to_string(h.sum()) + "\n";
        out += p + "_count " + std::to_string(h.count()) + "\n";
    }
    return out;
}

}  // namespace failsig::obs
