#include "deploy/tcp.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <set>
#include <utility>

#include "common/result.hpp"

namespace failsig::deploy {

TcpDeployment::TcpDeployment(SystemKind system, const DeploymentSpec& spec) {
    net::TcpTransport::Hooks hooks;
    hooks.post = [this](NodeId node, std::function<void()> task) {
        post(node, std::move(task));
    };
    hooks.post_at = [this](NodeId node, TimePoint at, std::function<void()> task) {
        post_at(node, at, std::move(task));
    };
    hooks.on_wire = [this] {
        const std::lock_guard lock(mu_);
        ++inflight_;
    };
    hooks.on_settled = [this] {
        {
            const std::lock_guard lock(mu_);
            ensure(inflight_ > 0, "deploy: tcp settled more frames than were wired");
            --inflight_;
        }
        board_cv_.notify_all();
    };
    hooks.now = [this] { return vclock_.now(); };
    transport_ = std::make_unique<net::TcpTransport>(std::move(hooks),
                                                     Rng(spec.seed ^ 0x7c9d2f1eULL));

    // The wrapped deployment is the one the registry would build for the sim
    // backend, mounted on this transport and on per-node event loops. Its
    // topology building (bind per endpoint, one Simulation per node via
    // sim_of) runs single-threaded, right here.
    DeploymentSpec inner_spec = spec;
    inner_spec.backend = Backend::kSim;
    // Obs binds to one Simulation clock; with one loop per node there is no
    // single deterministic clock to bind, so tracing is sim-backend-only.
    inner_spec.obs = nullptr;
    inner_spec.env.transport = transport_.get();
    inner_spec.env.faults = transport_.get();
    inner_spec.env.sim_of = [this](NodeId node) -> sim::Simulation& {
        return executor_for(node).sim;
    };
    inner_ = make_deployment(system, inner_spec);

    // All listeners exist now; open the reactor. Executor threads stay parked
    // until the first run — construction stays cheap and single-threaded.
    transport_->start();
}

TcpDeployment::~TcpDeployment() {
    {
        const std::lock_guard lock(mu_);
        shutdown_ = true;
        for (auto& [id, ex] : execs_) {
            ex->stopped = true;
            ex->cv.notify_all();
        }
    }
    board_cv_.notify_all();
    for (auto& [id, ex] : execs_) {
        if (ex->thread.joinable()) ex->thread.join();
    }
    // Stop the reactor before the stacks unbind (members destruct after this
    // body, in reverse declaration order: inner_ first, transport_ last).
    transport_->close();
}

// --- executors --------------------------------------------------------------

TcpDeployment::NodeExecutor& TcpDeployment::executor_for(NodeId node) {
    const std::lock_guard lock(mu_);
    auto it = execs_.find(node.value);
    if (it == execs_.end()) {
        ensure(!threads_started_,
               "deploy: tcp executor requested for unknown node after start");
        it = execs_.emplace(node.value, std::make_unique<NodeExecutor>(node)).first;
    }
    return *it->second;
}

TcpDeployment::NodeExecutor* TcpDeployment::find_executor(NodeId node) {
    const auto it = execs_.find(node.value);
    return it == execs_.end() ? nullptr : it->second.get();
}

void TcpDeployment::post(NodeId node, std::function<void()> task) {
    {
        const std::lock_guard lock(mu_);
        NodeExecutor* ex = find_executor(node);
        if (ex == nullptr || ex->stopped || shutdown_) return;  // crashed: drop
        ex->inbox.push_back(std::move(task));
        ex->cv.notify_all();
    }
    board_cv_.notify_all();
}

void TcpDeployment::post_at(NodeId node, TimePoint at, std::function<void()> task) {
    // The target loop is owned by its executor thread; hop there first, then
    // schedule. The executor republishes next_due after the slice, so the
    // coordinator learns about the new deadline before it can fast-forward
    // past it.
    post(node, [this, node, at, task = std::move(task)]() mutable {
        NodeExecutor* ex = nullptr;
        {
            const std::lock_guard lock(mu_);
            ex = find_executor(node);
        }
        if (ex != nullptr) ex->sim.schedule_at(at, std::move(task));
    });
}

void TcpDeployment::executor_loop(NodeExecutor& ex) {
    std::unique_lock lock(mu_);
    while (!ex.stopped && !shutdown_) {
        const TimePoint vnow = vclock_.now();
        if (!ex.inbox.empty() || ex.next_due <= vnow) {
            ex.idle = false;
            std::function<void()> task;
            if (!ex.inbox.empty()) {
                task = std::move(ex.inbox.front());
                ex.inbox.pop_front();
            }
            lock.unlock();
            // Due timers fire before external input, and handlers observe
            // sim.now() == virtual now — same intra-node order as the sim
            // backend's shared loop.
            ex.sim.run_until(vnow);
            if (task) task();
            const TimePoint next = ex.sim.next_due();
            lock.lock();
            ex.next_due = next;
            continue;
        }
        ex.idle = true;
        board_cv_.notify_all();
        ex.cv.wait(lock);
    }
    ex.idle = true;
    ex.inbox.clear();
    board_cv_.notify_all();
}

void TcpDeployment::start_threads() {
    const std::lock_guard lock(mu_);
    if (threads_started_) return;
    threads_started_ = true;
    for (auto& [id, ex] : execs_) {
        ex->next_due = ex->sim.next_due();  // thread not running yet: safe
        NodeExecutor* ptr = ex.get();
        ex->thread = std::thread([this, ptr] { executor_loop(*ptr); });
    }
}

// --- coordinator ------------------------------------------------------------

bool TcpDeployment::quiescent_locked() const {
    if (inflight_ != 0) return false;
    const TimePoint vnow = vclock_.now();
    for (const auto& [id, ex] : execs_) {
        if (ex->stopped) continue;
        // An executor with a timer due at (or before) virtual now counts as
        // busy even while parked: right after an advance_to the coordinator
        // must fall into the condvar wait — releasing the hub mutex so the
        // notified executor can actually run — rather than keep spinning on
        // a not-yet-republished next_due.
        if (!ex->idle || !ex->inbox.empty() || ex->next_due <= vnow) return false;
    }
    return true;
}

TimePoint TcpDeployment::earliest_due_locked() {
    TimePoint next = driver_.next_due();
    for (const auto& [id, ex] : execs_) {
        if (!ex->stopped) next = std::min(next, ex->next_due);
    }
    return next;
}

void TcpDeployment::run_core(bool bounded, TimePoint deadline) {
    start_threads();
    std::unique_lock lock(mu_);
    while (!shutdown_) {
        const TimePoint vnow = vclock_.now();
        // Driver timeline events due now run on this thread, unlocked (they
        // call submit/crash/... which take the hub mutex themselves).
        if (driver_.next_due() <= vnow) {
            lock.unlock();
            driver_.run_until(vnow);
            lock.lock();
            continue;
        }
        // Advance virtual time only at full quiescence: every executor
        // parked over an empty inbox, no frame between a sender's socket and
        // its destination inbox. The timed wait is lost-wakeup insurance
        // only; the normal path is a board_cv_ notify.
        if (!quiescent_locked()) {
            board_cv_.wait_for(lock, std::chrono::milliseconds(50));
            continue;
        }
        const TimePoint next = earliest_due_locked();
        if (next == sim::Simulation::kNoEvent) break;
        if (bounded && next > deadline) break;
        vclock_.advance_to(next);
        for (auto& [id, ex] : execs_) {
            if (!ex->stopped) ex->cv.notify_all();
        }
    }
    lock.unlock();
    if (bounded && vclock_.now() < deadline) vclock_.advance_to(deadline);
    if (bounded) driver_.run_until(deadline);  // clamp the driver clock too
}

void TcpDeployment::run() { run_core(false, 0); }

void TcpDeployment::run_until(TimePoint deadline) { run_core(true, deadline); }

// --- workload & faults ------------------------------------------------------

void TcpDeployment::submit(int member, Bytes payload) {
    const std::vector<NodeId> nodes = inner_->nodes_of(member);
    ensure(!nodes.empty(), "deploy: tcp submit target has no nodes");
    // nodes_of lists the member's application host first; submission mutates
    // that node's state, so it runs on that node's executor.
    post(nodes.front(), [this, member, payload = std::move(payload)]() mutable {
        inner_->submit(member, std::move(payload));
    });
}

void TcpDeployment::crash(int member) {
    // Members with dedicated hosts get the real thing: executor teardown plus
    // frame-dropping at the transport. Members sharing hosts with healthy
    // members (FS-NewTOP, where app hosts double as pair hosts) keep their
    // stack's own crash semantics — tearing a shared host down would take
    // healthy members with it.
    const std::vector<NodeId> mine = inner_->nodes_of(member);
    std::set<std::uint32_t> others;
    for (int other = 0; other < inner_->group_size(); ++other) {
        if (other == member) continue;
        for (const NodeId node : inner_->nodes_of(other)) others.insert(node.value);
    }
    const bool exclusive = std::none_of(mine.begin(), mine.end(), [&](NodeId node) {
        return others.contains(node.value);
    });
    if (!exclusive) {
        inner_->crash(member);
        return;
    }
    for (const NodeId node : mine) transport_->isolate(node);
    {
        const std::lock_guard lock(mu_);
        for (const NodeId node : mine) {
            NodeExecutor* ex = find_executor(node);
            if (ex == nullptr) continue;
            ex->stopped = true;
            ex->inbox.clear();
            ex->cv.notify_all();  // thread exits its loop and parks for join
        }
    }
    board_cv_.notify_all();
}

void TcpDeployment::recover(int member) {
    // Mirror of crash(): members with dedicated hosts get their frames
    // re-admitted and their executor threads respawned; shared-host members
    // (FS-NewTOP) delegate link healing to the wrapped stack.
    const std::vector<NodeId> mine = inner_->nodes_of(member);
    std::set<std::uint32_t> others;
    for (int other = 0; other < inner_->group_size(); ++other) {
        if (other == member) continue;
        for (const NodeId node : inner_->nodes_of(other)) others.insert(node.value);
    }
    const bool exclusive = std::none_of(mine.begin(), mine.end(), [&](NodeId node) {
        return others.contains(node.value);
    });
    if (exclusive) {
        for (const NodeId node : mine) transport_->restore(node);
        // The crashed executors' threads have exited their loops; join them
        // outside the hub mutex, then reset and respawn.
        std::vector<std::thread> dead;
        {
            const std::lock_guard lock(mu_);
            for (const NodeId node : mine) {
                NodeExecutor* ex = find_executor(node);
                if (ex == nullptr || !ex->stopped) continue;
                if (ex->thread.joinable()) dead.push_back(std::move(ex->thread));
            }
        }
        for (auto& t : dead) t.join();
        {
            const std::lock_guard lock(mu_);
            for (const NodeId node : mine) {
                NodeExecutor* ex = find_executor(node);
                if (ex == nullptr || !ex->stopped) continue;
                ex->stopped = false;
                ex->idle = true;
                ex->inbox.clear();
                ex->next_due = ex->sim.next_due();
                if (threads_started_) {
                    NodeExecutor* ptr = ex;
                    ex->thread = std::thread([this, ptr] { executor_loop(*ptr); });
                }
            }
        }
        board_cv_.notify_all();
    }
    inner_->recover_links(member);
    // The rejoin sequence is node-affine and ordered: run each step on its
    // owning node's executor and wait before the next (replica resets must
    // land before the join request goes out).
    for (auto& step : inner_->recover_steps(member)) {
        run_on_node(step.node, std::move(step.fn));
    }
}

bool TcpDeployment::run_on_node(NodeId node, std::function<void()> fn) {
    {
        const std::lock_guard lock(mu_);
        if (!threads_started_) {
            // Single-threaded still: the executor's loop is not running, so
            // inline execution is the same serialization.
            if (fn) fn();
            return true;
        }
        NodeExecutor* ex = find_executor(node);
        if (ex == nullptr || ex->stopped || shutdown_) return false;
    }
    std::promise<void> done;
    auto finished = done.get_future();
    post(node, [fn = std::move(fn), &done] {
        if (fn) fn();
        done.set_value();
    });
    finished.wait();
    return true;
}

std::optional<AppStateInfo> TcpDeployment::app_state_of(int member) {
    const std::vector<NodeId> nodes = inner_->nodes_of(member);
    if (nodes.empty()) return std::nullopt;
    std::optional<AppStateInfo> info;
    if (!run_on_node(nodes.front(), [this, member, &info] {
            info = inner_->app_state_of(member);
        })) {
        return std::nullopt;  // member is down
    }
    return info;
}

bool TcpDeployment::inject_fault(const FaultInjection& fault) {
    const std::optional<NodeId> home = inner_->fault_home(fault);
    if (!home) return inner_->inject_fault(fault);
    // The plan mutates Fso state owned by that node's loop; apply it there.
    post(*home, [this, fault] { inner_->inject_fault(fault); });
    return true;
}

bool TcpDeployment::fire_timeouts() {
    if (!inner_->has_liveness_timeouts()) return false;
    for (int member = 0; member < inner_->group_size(); ++member) {
        const std::vector<NodeId> nodes = inner_->nodes_of(member);
        if (nodes.empty()) continue;
        // Crashed members' executors drop the post: dead replicas do not
        // fire view changes.
        post(nodes.front(), [this, member] { inner_->fire_timeouts_member(member); });
    }
    return true;
}

void TcpDeployment::stop_perpetual() {
    for (int member = 0; member < inner_->group_size(); ++member) {
        const std::vector<NodeId> nodes = inner_->nodes_of(member);
        if (nodes.empty()) continue;
        post(nodes.front(), [this, member] { inner_->stop_perpetual_member(member); });
    }
}

}  // namespace failsig::deploy
