#include "deploy/fsnewtop.hpp"

namespace failsig::deploy {

fsnewtop::FsNewTopOptions FsNewTopDeployment::make_options(const DeploymentSpec& spec) {
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = spec.group_size;
    opts.threads_per_node = spec.threads_per_node;
    opts.seed = spec.seed;
    opts.placement = spec.placement;
    opts.fs_config = spec.fs_config;
    opts.batch = spec.batch;
    opts.obs = spec.obs;
    opts.env = spec.env;
    opts.checkpoint_interval = spec.checkpoint_interval;
    return opts;
}

FsNewTopDeployment::FsNewTopDeployment(const DeploymentSpec& spec)
    : inner_(make_options(spec)), service_(spec.service) {
    if (spec.obs != nullptr) spec.obs->bind(&inner_.sim());
}

std::vector<NodeId> FsNewTopDeployment::nodes_of(int member) const {
    if (inner_.placement() == fsnewtop::Placement::kFull) {
        return {inner_.app_node_of(member), inner_.leader_node_of(member),
                inner_.follower_node_of(member)};
    }
    return {inner_.app_node_of(member)};
}

void FsNewTopDeployment::attach(Observers observers) {
    observers_ = std::move(observers);
    for (int i = 0; i < inner_.group_size(); ++i) {
        if (observers_.delivered) {
            inner_.invocation(i).on_delivery([this, i](const newtop::Delivery& d) {
                observers_.delivered(i, d.payload);
            });
        }
        if (observers_.view_installed) {
            inner_.invocation(i).on_view([this, i](const newtop::GroupView& v) {
                observers_.view_installed(i, v);
            });
        }
        if (observers_.middleware_failure) {
            inner_.invocation(i).on_middleware_failure([this, i](const std::string& fs_name) {
                observers_.middleware_failure(i, fs_name);
            });
        }
        if (observers_.fail_signal) {
            const auto observer = [this, i](const std::string& name, const std::string& reason) {
                observers_.fail_signal(i, name, reason);
            };
            inner_.leader_fso(i).set_fail_signal_observer(observer);
            inner_.follower_fso(i).set_fail_signal_observer(observer);
        }
    }
}

void FsNewTopDeployment::submit(int member, Bytes payload) {
    inner_.invocation(member).multicast(service_, std::move(payload));
}

void FsNewTopDeployment::crash(int member) {
    inner_.faults().block(inner_.leader_node_of(member), inner_.follower_node_of(member));
}

void FsNewTopDeployment::recover_links(int member) {
    inner_.faults().unblock(inner_.leader_node_of(member), inner_.follower_node_of(member));
}

std::vector<RecoveryStep> FsNewTopDeployment::recover_steps(int member) {
    // Severing the pair link desynchronizes the wrapper objects: the leader
    // keeps ordering/executing while the follower starves, so their order
    // sequences diverge and both latch fail-signalling. Recovery re-bases
    // BOTH wrapper objects at the max of their order positions (so the first
    // post-recovery input gets the same sequence at both, and previously
    // transmitted (seq, out_index) output ids are never reused — receiver
    // dedup stays sound), then wipes the replicated GC through the ordinary
    // deterministic input path: "__rejoin" executes identically in both
    // replicas, so their outputs match and the pair self-check resumes.
    auto base = std::make_shared<std::uint64_t>(1);
    std::vector<RecoveryStep> steps;
    steps.push_back({inner_.leader_node_of(member), [this, member, base] {
                         *base = std::max(*base, inner_.leader_fso(member).next_seq());
                     }});
    steps.push_back({inner_.follower_node_of(member), [this, member, base] {
                         *base = std::max(*base, inner_.follower_fso(member).next_seq());
                     }});
    steps.push_back({inner_.leader_node_of(member), [this, member, base] {
                         inner_.leader_fso(member).reset_for_recovery(*base);
                     }});
    steps.push_back({inner_.follower_node_of(member), [this, member, base] {
                         inner_.follower_fso(member).reset_for_recovery(*base);
                     }});
    steps.push_back({inner_.app_node_of(member), [this, member] {
                         inner_.invocation(member).prepare_rejoin();
                         inner_.invocation(member).send_control("__rejoin", Bytes{});
                     }});
    return steps;
}

std::optional<AppStateInfo> FsNewTopDeployment::app_state_of(int member) {
    // The pair's replicas hold identical app state by construction; read the
    // leader's copy.
    const auto& app = inner_.gc_leader(member).app();
    return AppStateInfo{app.applied(), app.digest(), app.state_string()};
}

RecoveryStats FsNewTopDeployment::recovery_stats() const {
    RecoveryStats stats;
    for (int i = 0; i < inner_.group_size(); ++i) {
        const auto& gc = inner_.gc_leader(i);
        stats.checkpoints_taken += gc.app().checkpoints_taken();
        stats.rejoins_completed += gc.rejoins_completed();
        stats.flush_log_evictions += gc.flush_log_evictions();
        stats.flush_eviction_gaps += gc.flush_eviction_gaps();
    }
    return stats;
}

bool FsNewTopDeployment::inject_fault(const FaultInjection& fault) {
    fs::Fso& target = fault.at_leader ? inner_.leader_fso(fault.member)
                                      : inner_.follower_fso(fault.member);
    target.set_fault_plan(fault.plan);
    return true;
}

}  // namespace failsig::deploy
