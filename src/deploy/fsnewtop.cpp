#include "deploy/fsnewtop.hpp"

namespace failsig::deploy {

fsnewtop::FsNewTopOptions FsNewTopDeployment::make_options(const DeploymentSpec& spec) {
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = spec.group_size;
    opts.threads_per_node = spec.threads_per_node;
    opts.seed = spec.seed;
    opts.placement = spec.placement;
    opts.fs_config = spec.fs_config;
    opts.batch = spec.batch;
    opts.obs = spec.obs;
    opts.env = spec.env;
    return opts;
}

FsNewTopDeployment::FsNewTopDeployment(const DeploymentSpec& spec)
    : inner_(make_options(spec)), service_(spec.service) {
    if (spec.obs != nullptr) spec.obs->bind(&inner_.sim());
}

std::vector<NodeId> FsNewTopDeployment::nodes_of(int member) const {
    if (inner_.placement() == fsnewtop::Placement::kFull) {
        return {inner_.app_node_of(member), inner_.leader_node_of(member),
                inner_.follower_node_of(member)};
    }
    return {inner_.app_node_of(member)};
}

void FsNewTopDeployment::attach(Observers observers) {
    observers_ = std::move(observers);
    for (int i = 0; i < inner_.group_size(); ++i) {
        if (observers_.delivered) {
            inner_.invocation(i).on_delivery([this, i](const newtop::Delivery& d) {
                observers_.delivered(i, d.payload);
            });
        }
        if (observers_.view_installed) {
            inner_.invocation(i).on_view([this, i](const newtop::GroupView& v) {
                observers_.view_installed(i, v);
            });
        }
        if (observers_.middleware_failure) {
            inner_.invocation(i).on_middleware_failure([this, i](const std::string& fs_name) {
                observers_.middleware_failure(i, fs_name);
            });
        }
        if (observers_.fail_signal) {
            const auto observer = [this, i](const std::string& name, const std::string& reason) {
                observers_.fail_signal(i, name, reason);
            };
            inner_.leader_fso(i).set_fail_signal_observer(observer);
            inner_.follower_fso(i).set_fail_signal_observer(observer);
        }
    }
}

void FsNewTopDeployment::submit(int member, Bytes payload) {
    inner_.invocation(member).multicast(service_, std::move(payload));
}

void FsNewTopDeployment::crash(int member) {
    inner_.faults().block(inner_.leader_node_of(member), inner_.follower_node_of(member));
}

bool FsNewTopDeployment::inject_fault(const FaultInjection& fault) {
    fs::Fso& target = fault.at_leader ? inner_.leader_fso(fault.member)
                                      : inner_.follower_fso(fault.member);
    target.set_fault_plan(fault.plan);
    return true;
}

}  // namespace failsig::deploy
