// Real-socket execution of any registered deployment.
//
// TcpDeployment wraps the deployment the registry would build for the sim
// backend, but mounts it on a TcpTransport and gives every physical node
// its own *executor*: a thread owning a private discrete-event Simulation
// (the node's timers and pools) plus an inbox of delivery tasks posted by
// the transport's reactor. The wrapped stack does not change at all — it
// schedules on "its" Simulation exactly as before; only the mapping from
// node to event loop changed (net::RuntimeEnv::sim_of).
//
// Time is virtual but shared: a VirtualClock all threads read. The
// coordinator (the thread calling run()/run_until()) advances it only when
// the whole system is quiescent — every executor idle with an empty inbox,
// no frame between a sender's socket write and its destination inbox
// (inflight accounting via transport hooks), and no driver event due — and
// then jumps straight to the earliest pending event anywhere. An 8-second
// fault timeline thus replays in however long the sockets actually take,
// while every timeout still fires at its scripted virtual instant.
//
// Crash semantics are real here: when a member's nodes are exclusively its
// own (NewTOP, PBFT), crash() tears the executor threads down and the
// transport drops the member's frames at send and at the reactor. Stacks
// whose members share hosts (FS-NewTOP) keep their own crash semantics —
// the pair-link sever — delegated to the wrapped deployment.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "deploy/deployment.hpp"
#include "net/tcp_transport.hpp"
#include "time/clock.hpp"

namespace failsig::deploy {

class TcpDeployment final : public Deployment {
public:
    TcpDeployment(SystemKind system, const DeploymentSpec& spec);
    ~TcpDeployment() override;

    TcpDeployment(const TcpDeployment&) = delete;
    TcpDeployment& operator=(const TcpDeployment&) = delete;

    // --- accessors --------------------------------------------------------
    /// The driver timeline loop (scheduled scenario events live here). The
    /// per-node loops are internal to the executors.
    [[nodiscard]] sim::Simulation& sim() override { return driver_; }
    [[nodiscard]] net::Transport& network() override { return *transport_; }
    [[nodiscard]] net::FaultInjector& faults() override { return *transport_; }
    [[nodiscard]] int group_size() const override { return inner_->group_size(); }
    [[nodiscard]] std::vector<NodeId> nodes_of(int member) const override {
        return inner_->nodes_of(member);
    }

    // --- time & execution -------------------------------------------------
    [[nodiscard]] const time::Clock& clock() override { return vclock_; }
    [[nodiscard]] TimePoint now() override { return vclock_.now(); }
    void schedule(TimePoint at, std::function<void()> fn) override {
        driver_.schedule_at(at, std::move(fn));
    }
    void run() override;
    void run_until(TimePoint deadline) override;

    // --- workload ---------------------------------------------------------
    void attach(Observers observers) override { inner_->attach(std::move(observers)); }
    void submit(int member, Bytes payload) override;

    // --- fault hooks ------------------------------------------------------
    void crash(int member) override;
    void recover(int member) override;
    bool inject_fault(const FaultInjection& fault) override;
    [[nodiscard]] bool has_liveness_timeouts() const override {
        return inner_->has_liveness_timeouts();
    }
    bool fire_timeouts() override;
    void stop_perpetual() override;
    [[nodiscard]] bool supports_host_faults() const override {
        return inner_->supports_host_faults();
    }

    // --- recovery ---------------------------------------------------------
    /// Reads are posted onto the member's executor (quiescence-safe); a
    /// still-crashed member reports nullopt.
    [[nodiscard]] std::optional<AppStateInfo> app_state_of(int member) override;
    [[nodiscard]] RecoveryStats recovery_stats() const override {
        return inner_->recovery_stats();
    }

    // --- deterministic counters ------------------------------------------
    [[nodiscard]] BatchStats batch_stats() const override { return inner_->batch_stats(); }
    [[nodiscard]] std::uint64_t crypto_verify_ops() const override {
        return inner_->crypto_verify_ops();
    }
    [[nodiscard]] std::uint64_t crypto_verify_cache_hits() const override {
        return inner_->crypto_verify_cache_hits();
    }

    /// The transport's node directory (tests assert the published ports).
    [[nodiscard]] const net::EndpointMap& endpoints() const { return transport_->endpoints(); }

private:
    struct NodeExecutor {
        explicit NodeExecutor(NodeId node) : id(node) {}
        NodeId id;
        /// The node's private event loop: its thread only, once started.
        sim::Simulation sim;
        // Remaining fields are guarded by the hub mutex mu_.
        std::deque<std::function<void()>> inbox;
        std::condition_variable cv;
        /// Earliest live event on `sim`, republished after every slice.
        TimePoint next_due{sim::Simulation::kNoEvent};
        bool idle{true};
        bool stopped{false};
        std::thread thread;
    };

    [[nodiscard]] NodeExecutor& executor_for(NodeId node);
    [[nodiscard]] NodeExecutor* find_executor(NodeId node);
    void post(NodeId node, std::function<void()> task);
    void post_at(NodeId node, TimePoint at, std::function<void()> task);
    void executor_loop(NodeExecutor& ex);
    void start_threads();
    /// Runs `fn` on the node's executor and waits for it (inline before the
    /// threads exist). Returns false if the node's executor is stopped.
    bool run_on_node(NodeId node, std::function<void()> fn);
    /// All executors parked with empty inboxes and no frame in flight.
    [[nodiscard]] bool quiescent_locked() const;
    /// Earliest pending virtual-time event across executors + driver.
    [[nodiscard]] TimePoint earliest_due_locked();
    void run_core(bool bounded, TimePoint deadline);

    time::VirtualClock vclock_;
    sim::Simulation driver_;  // coordinator thread only

    std::mutex mu_;  // the one hub mutex: inboxes, idle/stop flags, inflight
    std::condition_variable board_cv_;
    std::uint64_t inflight_{0};
    bool shutdown_{false};
    bool threads_started_{false};

    /// Frozen after construction (executors are created while the wrapped
    /// stack builds its topology, single-threaded).
    std::map<std::uint32_t, std::unique_ptr<NodeExecutor>> execs_;

    std::unique_ptr<net::TcpTransport> transport_;
    std::unique_ptr<Deployment> inner_;
};

}  // namespace failsig::deploy
