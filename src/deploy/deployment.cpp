#include "deploy/deployment.hpp"

#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <utility>

#include "common/result.hpp"
#include "deploy/fsnewtop.hpp"
#include "deploy/newtop.hpp"
#include "deploy/pbft.hpp"
#include "deploy/tcp.hpp"

namespace failsig::deploy {

const char* name_of(SystemKind system) {
    switch (system) {
        case SystemKind::kNewTop: return "NewTOP";
        case SystemKind::kFsNewTop: return "FS-NewTOP";
        case SystemKind::kPbft: return "PBFT";
    }
    return "?";
}

const char* name_of(Backend backend) {
    switch (backend) {
        case Backend::kSim: return "sim";
        case Backend::kTcp: return "tcp";
    }
    return "?";
}

const time::Clock& Deployment::clock() {
    if (!default_clock_) default_clock_.emplace(sim());
    return *default_clock_;
}

void Deployment::crash(int member) {
    // A crashed host stops talking to everyone; peers see silence and react
    // through whatever detection their stack has (suspectors, quorums).
    const std::vector<NodeId> mine = nodes_of(member);
    for (int other = 0; other < group_size(); ++other) {
        if (other == member) continue;
        for (const NodeId theirs : nodes_of(other)) {
            for (const NodeId node : mine) faults().block(node, theirs);
        }
    }
}

void Deployment::recover(int member) {
    // Sim backends share one event loop, so the rejoin sequence can run
    // inline: heal the links first, then the stack's node-affine steps in
    // order (state resets before the join request).
    recover_links(member);
    for (auto& step : recover_steps(member)) {
        if (step.fn) step.fn();
    }
}

void Deployment::recover_links(int member) {
    // Exact inverse of the default crash(): unblock both directions of every
    // pair the crash blocked.
    const std::vector<NodeId> mine = nodes_of(member);
    for (int other = 0; other < group_size(); ++other) {
        if (other == member) continue;
        for (const NodeId theirs : nodes_of(other)) {
            for (const NodeId node : mine) faults().unblock(node, theirs);
        }
    }
}

bool Deployment::inject_fault(const FaultInjection&) { return false; }

std::optional<NodeId> Deployment::fault_home(const FaultInjection&) const {
    return std::nullopt;
}

void Deployment::partition(const std::vector<std::vector<int>>& member_groups) {
    std::vector<std::set<NodeId>> node_groups;
    for (const auto& group : member_groups) {
        std::set<NodeId> nodes;
        for (const int member : group) {
            for (const NodeId node : nodes_of(member)) nodes.insert(node);
        }
        node_groups.push_back(std::move(nodes));
    }
    faults().partition(node_groups);
}

bool Deployment::fire_timeouts() {
    if (!has_liveness_timeouts()) return false;
    for (int member = 0; member < group_size(); ++member) fire_timeouts_member(member);
    return true;
}

void Deployment::fire_timeouts_member(int) {}

void Deployment::stop_perpetual() {
    for (int member = 0; member < group_size(); ++member) stop_perpetual_member(member);
}

void Deployment::stop_perpetual_member(int) {}

bool Deployment::supports_host_faults() const { return true; }

namespace {

struct Registration {
    DeploymentFactory factory;
    SystemTraits traits;
};

/// The three built-in stacks are installed in the registry's own (thread-
/// safe, once-only) initializer — not via per-TU static initializers a
/// static-library link could drop, and before any external
/// register_deployment call can complete, so replacements always win.
std::map<SystemKind, Registration> make_builtin_registrations() {
    std::map<SystemKind, Registration> builtins;
    builtins[SystemKind::kNewTop] = Registration{
        [](const DeploymentSpec& spec) -> std::unique_ptr<Deployment> {
            return std::make_unique<NewTopDeployment>(spec);
        },
        SystemTraits{}};
    builtins[SystemKind::kFsNewTop] = Registration{
        [](const DeploymentSpec& spec) -> std::unique_ptr<Deployment> {
            return std::make_unique<FsNewTopDeployment>(spec);
        },
        SystemTraits{}};
    builtins[SystemKind::kPbft] = Registration{
        [](const DeploymentSpec& spec) -> std::unique_ptr<Deployment> {
            return std::make_unique<PbftDeployment>(spec);
        },
        SystemTraits{4, "PBFT needs group_size >= 4 (3f+1 with f >= 1)"}};
    return builtins;
}

std::map<SystemKind, Registration>& registry() {
    static std::map<SystemKind, Registration> instance = make_builtin_registrations();
    return instance;
}

// Sweep workers read the registry concurrently; a late register_deployment
// (fourth-system plugin) must not race them.
std::shared_mutex& registry_mutex() {
    static std::shared_mutex instance;
    return instance;
}

/// Copies the registration out under the lock: references into the map must
/// not escape while writers may rehash it.
Registration find(SystemKind system) {
    const std::shared_lock lock(registry_mutex());
    const auto it = registry().find(system);
    ensure(it != registry().end(), "deploy: no deployment registered for this system");
    return it->second;
}

}  // namespace

void register_deployment(SystemKind system, DeploymentFactory factory, SystemTraits traits) {
    const std::unique_lock lock(registry_mutex());
    registry()[system] = Registration{std::move(factory), traits};
}

SystemTraits traits_of(SystemKind system) { return find(system).traits; }

std::unique_ptr<Deployment> make_deployment(SystemKind system, const DeploymentSpec& spec) {
    const Registration reg = find(system);
    ensure(spec.group_size >= 1, "deploy: group_size must be >= 1");
    if (spec.group_size < reg.traits.min_group_size) {
        throw std::logic_error(std::string("deploy: group_size below the system's floor: ") +
                               reg.traits.min_group_reason);
    }
    // The TCP backend wraps whatever the registered factory builds: the
    // wrapper re-enters make_deployment with backend == kSim and an env
    // pointing at its transport and per-node loops.
    if (spec.backend == Backend::kTcp) return std::make_unique<TcpDeployment>(system, spec);
    return reg.factory(spec);
}

}  // namespace failsig::deploy
