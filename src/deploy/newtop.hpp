// Deployment adapter for crash-tolerant NewTOP (the paper's baseline group
// communication stack): n hosts, one NSO each, optional ping suspectors.
#pragma once

#include "deploy/deployment.hpp"
#include "newtop/deployment.hpp"

namespace failsig::deploy {

class NewTopDeployment final : public Deployment {
public:
    explicit NewTopDeployment(const DeploymentSpec& spec);

    [[nodiscard]] sim::Simulation& sim() override { return inner_.sim(); }
    [[nodiscard]] net::Transport& network() override { return inner_.network(); }
    [[nodiscard]] net::FaultInjector& faults() override { return inner_.faults(); }
    [[nodiscard]] int group_size() const override { return inner_.group_size(); }
    [[nodiscard]] std::vector<NodeId> nodes_of(int member) const override {
        return {inner_.node_of(member)};
    }

    void attach(Observers observers) override;
    void submit(int member, Bytes payload) override;
    void stop_perpetual_member(int member) override { inner_.stop_suspector(member); }
    [[nodiscard]] BatchStats batch_stats() const override { return inner_.batch_stats(); }

    std::vector<RecoveryStep> recover_steps(int member) override;
    [[nodiscard]] std::optional<AppStateInfo> app_state_of(int member) override;
    [[nodiscard]] RecoveryStats recovery_stats() const override;

private:
    static newtop::NewTopOptions make_options(const DeploymentSpec& spec);

    newtop::NewTopDeployment inner_;
    newtop::ServiceType service_;
    Observers observers_;
};

}  // namespace failsig::deploy
