#include "deploy/newtop.hpp"

namespace failsig::deploy {

newtop::NewTopOptions NewTopDeployment::make_options(const DeploymentSpec& spec) {
    newtop::NewTopOptions opts;
    opts.group_size = spec.group_size;
    opts.threads_per_node = spec.threads_per_node;
    opts.seed = spec.seed;
    opts.start_suspectors = spec.start_suspectors;
    opts.suspector = spec.suspector;
    opts.batch = spec.batch;
    opts.obs = spec.obs;
    opts.env = spec.env;
    return opts;
}

NewTopDeployment::NewTopDeployment(const DeploymentSpec& spec)
    : inner_(make_options(spec)), service_(spec.service) {
    // Stamps read now() lazily, so binding after inner construction is safe.
    if (spec.obs != nullptr) spec.obs->bind(&inner_.sim());
}

void NewTopDeployment::attach(Observers observers) {
    observers_ = std::move(observers);
    for (int i = 0; i < inner_.group_size(); ++i) {
        if (observers_.delivered) {
            inner_.invocation(i).on_delivery([this, i](const newtop::Delivery& d) {
                observers_.delivered(i, d.payload);
            });
        }
        if (observers_.view_installed) {
            inner_.invocation(i).on_view([this, i](const newtop::GroupView& v) {
                observers_.view_installed(i, v);
            });
        }
    }
}

void NewTopDeployment::submit(int member, Bytes payload) {
    inner_.invocation(member).multicast(service_, std::move(payload));
}

}  // namespace failsig::deploy
