#include "deploy/newtop.hpp"

namespace failsig::deploy {

newtop::NewTopOptions NewTopDeployment::make_options(const DeploymentSpec& spec) {
    newtop::NewTopOptions opts;
    opts.group_size = spec.group_size;
    opts.threads_per_node = spec.threads_per_node;
    opts.seed = spec.seed;
    opts.start_suspectors = spec.start_suspectors;
    opts.suspector = spec.suspector;
    opts.batch = spec.batch;
    opts.obs = spec.obs;
    opts.env = spec.env;
    opts.checkpoint_interval = spec.checkpoint_interval;
    return opts;
}

NewTopDeployment::NewTopDeployment(const DeploymentSpec& spec)
    : inner_(make_options(spec)), service_(spec.service) {
    // Stamps read now() lazily, so binding after inner construction is safe.
    if (spec.obs != nullptr) spec.obs->bind(&inner_.sim());
}

void NewTopDeployment::attach(Observers observers) {
    observers_ = std::move(observers);
    for (int i = 0; i < inner_.group_size(); ++i) {
        if (observers_.delivered) {
            inner_.invocation(i).on_delivery([this, i](const newtop::Delivery& d) {
                observers_.delivered(i, d.payload);
            });
        }
        if (observers_.view_installed) {
            inner_.invocation(i).on_view([this, i](const newtop::GroupView& v) {
                observers_.view_installed(i, v);
            });
        }
    }
}

void NewTopDeployment::submit(int member, Bytes payload) {
    inner_.invocation(member).multicast(service_, std::move(payload));
}

std::vector<RecoveryStep> NewTopDeployment::recover_steps(int member) {
    std::vector<RecoveryStep> steps;
    // Survivors first: forgive the rejoiner in their ping suspectors, so the
    // join request is not raced by a fresh (false) suspicion of a member
    // whose last_heard_ timestamp predates its crash.
    for (int s = 0; s < inner_.group_size(); ++s) {
        if (s == member) continue;
        steps.push_back({inner_.node_of(s), [this, s, member] {
                             inner_.suspector(s).forgive(
                                 static_cast<newtop::MemberId>(member));
                         }});
    }
    // Then the rejoiner: clean suspector slate, re-armed delivery
    // resequencer, and the GC-level "__rejoin" that wipes state and asks the
    // survivors for readmission.
    steps.push_back({inner_.node_of(member), [this, member] {
                         inner_.suspector(member).forgive_all();
                         inner_.invocation(member).prepare_rejoin();
                         inner_.gc_servant(member).submit_local("__rejoin", Bytes{});
                     }});
    return steps;
}

std::optional<AppStateInfo> NewTopDeployment::app_state_of(int member) {
    const auto& app = inner_.gc(member).app();
    return AppStateInfo{app.applied(), app.digest(), app.state_string()};
}

RecoveryStats NewTopDeployment::recovery_stats() const {
    RecoveryStats stats;
    for (int i = 0; i < inner_.group_size(); ++i) {
        const auto& gc = inner_.gc(i);
        stats.checkpoints_taken += gc.app().checkpoints_taken();
        stats.rejoins_completed += gc.rejoins_completed();
        stats.flush_log_evictions += gc.flush_log_evictions();
        stats.flush_eviction_gaps += gc.flush_eviction_gaps();
    }
    return stats;
}

}  // namespace failsig::deploy
