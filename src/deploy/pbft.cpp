#include "deploy/pbft.hpp"

namespace failsig::deploy {

baseline::PbftOptions PbftDeployment::make_options(const DeploymentSpec& spec) {
    baseline::PbftOptions opts;
    opts.replicas = static_cast<std::uint32_t>(spec.group_size);
    opts.threads_per_node = spec.threads_per_node;
    opts.seed = spec.seed;
    opts.batch = spec.batch;
    opts.obs = spec.obs;
    opts.env = spec.env;
    return opts;
}

PbftDeployment::PbftDeployment(const DeploymentSpec& spec) : inner_(make_options(spec)) {
    if (spec.obs != nullptr) spec.obs->bind(&inner_.sim());
}

void PbftDeployment::attach(Observers observers) {
    observers_ = std::move(observers);
    if (observers_.delivered) {
        inner_.on_delivery(
            [this](baseline::ReplicaId replica, const baseline::PbftDelivery& d) {
                observers_.delivered(static_cast<int>(replica), d.request.payload);
            });
    }
}

void PbftDeployment::submit(int member, Bytes payload) {
    inner_.submit(static_cast<baseline::ReplicaId>(member), std::move(payload));
}

void PbftDeployment::fire_timeouts_member(int member) {
    inner_.fire_timeouts(static_cast<baseline::ReplicaId>(member));
}

}  // namespace failsig::deploy
