#include "deploy/pbft.hpp"

namespace failsig::deploy {

baseline::PbftOptions PbftDeployment::make_options(const DeploymentSpec& spec) {
    baseline::PbftOptions opts;
    opts.replicas = static_cast<std::uint32_t>(spec.group_size);
    opts.threads_per_node = spec.threads_per_node;
    opts.seed = spec.seed;
    opts.batch = spec.batch;
    opts.obs = spec.obs;
    opts.env = spec.env;
    opts.checkpoint_interval = spec.checkpoint_interval;
    return opts;
}

PbftDeployment::PbftDeployment(const DeploymentSpec& spec) : inner_(make_options(spec)) {
    if (spec.obs != nullptr) spec.obs->bind(&inner_.sim());
}

void PbftDeployment::attach(Observers observers) {
    observers_ = std::move(observers);
    if (observers_.delivered) {
        inner_.on_delivery(
            [this](baseline::ReplicaId replica, const baseline::PbftDelivery& d) {
                observers_.delivered(static_cast<int>(replica), d.request.payload);
            });
    }
}

void PbftDeployment::submit(int member, Bytes payload) {
    inner_.submit(static_cast<baseline::ReplicaId>(member), std::move(payload));
}

void PbftDeployment::fire_timeouts_member(int member) {
    inner_.fire_timeouts(static_cast<baseline::ReplicaId>(member));
}

std::vector<RecoveryStep> PbftDeployment::recover_steps(int member) {
    // The replica restarts with an empty log and pulls a stable checkpoint
    // plus the committed suffix from its peers; everything runs through the
    // servant's ordinary input path, so no link surgery is needed beyond the
    // default unblock.
    return {{inner_.node_of(static_cast<baseline::ReplicaId>(member)), [this, member] {
                 inner_.begin_recovery(static_cast<baseline::ReplicaId>(member));
             }}};
}

std::optional<AppStateInfo> PbftDeployment::app_state_of(int member) {
    const auto& app = inner_.replica(static_cast<baseline::ReplicaId>(member)).app();
    return AppStateInfo{app.applied(), app.digest(), app.state_string()};
}

RecoveryStats PbftDeployment::recovery_stats() const {
    RecoveryStats stats;
    for (baseline::ReplicaId r = 0; r < inner_.replica_count(); ++r) {
        const auto& rep = inner_.replica(r);
        stats.checkpoints_taken += rep.checkpoints_taken();
        stats.log_slots_truncated += rep.log_slots_truncated();
        stats.log_slots_retained = std::max(stats.log_slots_retained, rep.log_slots_retained());
        stats.state_transfers_served += rep.state_transfers_served();
        stats.rejoins_completed += rep.recoveries_completed();
    }
    return stats;
}

}  // namespace failsig::deploy
