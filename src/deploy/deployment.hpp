// First-class deployment seam over the three protocol stacks.
//
// The paper's argument is comparative: identical workloads and fault
// campaigns run against crash-tolerant NewTOP, FS-NewTOP, and a PBFT-style
// baseline. `Deployment` is the one interface all three implement — create
// the members, submit workload messages, inject faults (crash / partition /
// Byzantine fault plans / liveness timeouts), observe deliveries, views and
// fail-signals, and reach the owning Simulation/SimNetwork — so the scenario
// engine (src/scenario/runner.cpp) contains exactly one execution path and a
// fourth system plugs in by implementing this interface and registering a
// factory; no engine edits.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/batch.hpp"
#include "fs/fault.hpp"
#include "fs/fso.hpp"
#include "fsnewtop/deployment.hpp"
#include "net/network.hpp"
#include "net/runtime_env.hpp"
#include "newtop/suspector.hpp"
#include "newtop/types.hpp"
#include "obs/obs.hpp"
#include "sim/simulation.hpp"
#include "time/clock.hpp"

namespace failsig::deploy {

/// Which deployment a scenario drives. Extending the comparison means adding
/// a value here and registering a factory (see `register_deployment`).
enum class SystemKind : std::uint8_t { kNewTop = 0, kFsNewTop = 1, kPbft = 2 };

const char* name_of(SystemKind system);

/// How the deployment executes: the deterministic discrete-event simulator
/// (the default, byte-identical across runs) or real sockets on localhost
/// (wall-clock, one executor thread per node behind a TcpTransport).
enum class Backend : std::uint8_t { kSim = 0, kTcp = 1 };

const char* name_of(Backend backend);

/// System-agnostic construction knobs: the projection of a
/// scenario::Scenario a deployment needs to build itself. Stack-specific
/// fields are ignored by the stacks they don't concern.
struct DeploymentSpec {
    int group_size{3};
    int threads_per_node{2};
    std::uint64_t seed{1};
    newtop::ServiceType service{newtop::ServiceType::kSymmetricTotalOrder};
    /// Request batching on the submit path (all three stacks honour it; off
    /// by default — max_requests <= 1 keeps the wire byte-identical).
    BatchConfig batch{};

    // NewTOP only.
    bool start_suspectors{false};
    newtop::SuspectorOptions suspector{};

    // FS-NewTOP only.
    fsnewtop::Placement placement{fsnewtop::Placement::kCollocated};
    fs::FsConfig fs_config{};

    /// Per-run observability context (metrics + spans + flight recorder);
    /// nullptr = tracing off. Owned by the caller (run_scenario); the
    /// deployment binds it to its Simulation and threads the pointer into
    /// the stacks' lifecycle hooks.
    obs::Obs* obs{nullptr};

    /// Execution backend. kSim is the deterministic default; kTcp runs the
    /// same stack over real sockets (deploy::TcpDeployment wraps the
    /// registered factory's deployment). Not serialized into reports.
    Backend backend{Backend::kSim};
    /// External runtime environment forwarded into the stack (the TCP
    /// wrapper fills this; external callers leave it default).
    net::RuntimeEnv env{};
    /// Application checkpoint cadence (delivered requests between
    /// checkpoints). Enables PBFT log truncation and gives rejoin grants a
    /// checkpoint history to ship; 0 = off (pre-existing behavior,
    /// byte-identical wire).
    std::uint64_t checkpoint_interval{0};
};

/// Application-level observers a caller attaches before the run. Deployments
/// invoke only the callbacks their stack can produce (PBFT has no views or
/// fail-signals); unset callbacks are skipped.
struct Observers {
    /// A member's application received an ordered payload.
    std::function<void(int member, const Bytes& payload)> delivered;
    /// A member's application installed a membership view.
    std::function<void(int member, const newtop::GroupView& view)> view_installed;
    /// A fail-signal process started signalling (FS-NewTOP).
    std::function<void(int member, const std::string& source, const std::string& reason)>
        fail_signal;
    /// A member's Invocation layer saw its own middleware fail (FS-NewTOP).
    std::function<void(int member, const std::string& source)> middleware_failure;
};

/// A Byzantine fault plan aimed at one member's infrastructure. Only stacks
/// with a fail-signal layer can express it (see Deployment::inject_fault).
struct FaultInjection {
    int member{-1};
    /// Target the pair's leader wrapper object (else the follower).
    bool at_leader{true};
    fs::FaultPlan plan{};
};

/// One node-affine action of a member's rejoin sequence. The sim backend
/// runs the steps inline (one event loop); the TCP backend posts each onto
/// its node's executor and waits, preserving the sequence across threads.
struct RecoveryStep {
    NodeId node{0};
    std::function<void()> fn;
};

/// Deterministic recovery counters aggregated over the whole deployment
/// (bench-gated; never wall-clock).
struct RecoveryStats {
    std::uint64_t checkpoints_taken{0};
    std::uint64_t log_slots_truncated{0};
    /// High-water mark of PBFT's ordered-log occupancy (0 for other stacks).
    std::uint64_t log_slots_retained{0};
    std::uint64_t state_transfers_served{0};
    std::uint64_t rejoins_completed{0};
    /// NewTOP retained-log cap evictions (flush patch-up source).
    std::uint64_t flush_log_evictions{0};
    /// Flush merges that needed an entry the cap had evicted (soundness
    /// violation witness; expected 0).
    std::uint64_t flush_eviction_gaps{0};

    RecoveryStats& operator+=(const RecoveryStats& other) {
        checkpoints_taken += other.checkpoints_taken;
        log_slots_truncated += other.log_slots_truncated;
        log_slots_retained = std::max(log_slots_retained, other.log_slots_retained);
        state_transfers_served += other.state_transfers_served;
        rejoins_completed += other.rejoins_completed;
        flush_log_evictions += other.flush_log_evictions;
        flush_eviction_gaps += other.flush_eviction_gaps;
        return *this;
    }
};

/// Snapshot of one member's replicated application state, read at
/// quiescence (the scenario checkers compare these across members).
struct AppStateInfo {
    std::uint64_t applied{0};
    std::uint64_t digest{0};
    /// KvStore::state_string() — "applied=N digest=HEX checkpoints=...".
    std::string detail;
};

class Deployment {
public:
    virtual ~Deployment() = default;

    // --- accessors --------------------------------------------------------
    /// Driver event loop: the shared Simulation on the sim backends, the
    /// coordinator's timeline loop on the TCP backend. Drive the run through
    /// now()/schedule()/run()/run_until() below instead of reaching in —
    /// they are backend-agnostic.
    [[nodiscard]] virtual sim::Simulation& sim() = 0;
    /// Message plane (stats, lifecycle). Fault hooks live on faults().
    [[nodiscard]] virtual net::Transport& network() = 0;
    /// Fault-injection plane (block/partition/delay/drop/corrupt).
    [[nodiscard]] virtual net::FaultInjector& faults() = 0;
    [[nodiscard]] virtual int group_size() const = 0;
    /// Physical nodes that embody `member` (its host plus any dedicated pair
    /// nodes). Host-level faults (crash, partition) operate on these.
    [[nodiscard]] virtual std::vector<NodeId> nodes_of(int member) const = 0;

    // --- time & execution -------------------------------------------------
    /// The deployment's clock; safe to read from any upcall context. Base:
    /// a SimClock over sim(). The TCP backend mounts its VirtualClock.
    [[nodiscard]] virtual const time::Clock& clock();
    [[nodiscard]] virtual TimePoint now() { return sim().now(); }
    /// Schedules a driver-side action (workload submission, fault event) at
    /// virtual time `at`. Driver thread only; call before or between runs.
    virtual void schedule(TimePoint at, std::function<void()> fn) {
        sim().schedule_at(at, std::move(fn));
    }
    /// Runs until nothing is left to do anywhere in the deployment.
    virtual void run() { sim().run(); }
    /// Runs until virtual time `deadline`; now() == deadline afterwards.
    virtual void run_until(TimePoint deadline) { sim().run_until(deadline); }

    // --- workload ---------------------------------------------------------
    /// Attaches observers. On the TCP backend callbacks fire on executor
    /// threads (one per node); callers needing aggregation must lock.
    virtual void attach(Observers observers) = 0;
    /// Submits one application payload at `member` (multicast / request).
    virtual void submit(int member, Bytes payload) = 0;

    // --- fault hooks ------------------------------------------------------
    /// Crashes the member's host. Default: isolate every node of `member`
    /// from every node of every other member (fail-silent host).
    virtual void crash(int member);
    /// Injects a Byzantine fault plan; returns false when the stack has no
    /// fail-signal layer to aim it at (callers note it instead of acting).
    virtual bool inject_fault(const FaultInjection& fault);
    /// Node whose event loop owns the state `inject_fault(fault)` mutates
    /// (nullopt = no fail-signal layer). The TCP backend posts the
    /// injection onto that node's executor.
    [[nodiscard]] virtual std::optional<NodeId> fault_home(const FaultInjection& fault) const;
    /// Splits the members into isolated groups; traffic across groups drops
    /// until faults().heal_partition(). Default: partition the union of
    /// each group's `nodes_of`.
    virtual void partition(const std::vector<std::vector<int>>& member_groups);
    /// Whether the stack has liveness timers fire_timeouts() can fire.
    [[nodiscard]] virtual bool has_liveness_timeouts() const { return false; }
    /// Fires liveness timers (PBFT view change); returns false when the
    /// stack has none. Default: one fire_timeouts_member per member.
    virtual bool fire_timeouts();
    /// Fires one member's liveness timers (the TCP backend posts this onto
    /// the member's own executor).
    virtual void fire_timeouts_member(int member);
    /// Stops self-rescheduling activity (suspector ping loops) so the
    /// simulation can settle. Default: one stop_perpetual_member per member.
    virtual void stop_perpetual();
    /// Per-member half of stop_perpetual (TCP executor affinity). Default:
    /// nothing to stop.
    virtual void stop_perpetual_member(int member);
    /// Whether host-level faults (crash/partition) are expressible. False
    /// for FS-NewTOP's collocated placement, where a host is shared between
    /// two pairs and a host fault would sever healthy pairs.
    [[nodiscard]] virtual bool supports_host_faults() const;

    // --- recovery ---------------------------------------------------------
    /// Brings a crashed/excluded member back: heal its links (the inverse of
    /// the default crash()) and run the stack's rejoin steps. Default:
    /// recover_links() then each recover_steps() entry inline (single event
    /// loop). The TCP backend overrides this to revive the member's executor
    /// and post each step onto its owning node.
    virtual void recover(int member);
    /// Undoes the link isolation the default crash() applied. Stacks whose
    /// crash() is not link-based (FS pair-link severing) override this.
    virtual void recover_links(int member);
    /// The stack's node-affine rejoin sequence for `member` (state resets,
    /// suspector forgiveness, the join request). Empty = stack has no rejoin
    /// path; recover() then only heals links.
    [[nodiscard]] virtual std::vector<RecoveryStep> recover_steps(int member) {
        (void)member;
        return {};
    }
    /// Member's replicated app state at quiescence (nullopt = stack carries
    /// no app layer, or the member is still down).
    [[nodiscard]] virtual std::optional<AppStateInfo> app_state_of(int member) {
        (void)member;
        return std::nullopt;
    }
    /// Aggregated checkpoint/recovery counters.
    [[nodiscard]] virtual RecoveryStats recovery_stats() const { return {}; }

    // --- deterministic counters ------------------------------------------
    /// Aggregated batching-pipeline counters (zero when batching is off or
    /// the stack ignores DeploymentSpec::batch).
    [[nodiscard]] virtual BatchStats batch_stats() const { return {}; }
    /// Signature verifications actually performed / answered from the verify
    /// memo. Zero for stacks without an authentication layer (NewTOP, the
    /// unauthenticated PBFT baseline); FS-NewTOP reports its KeyService.
    [[nodiscard]] virtual std::uint64_t crypto_verify_ops() const { return 0; }
    [[nodiscard]] virtual std::uint64_t crypto_verify_cache_hits() const { return 0; }

private:
    /// Lazily built default clock (a SimClock over sim()).
    std::optional<time::SimClock> default_clock_;
};

/// Static facts the engine needs before (or instead of) construction.
struct SystemTraits {
    int min_group_size{1};
    /// Human-readable reason used when a sweep cell is skipped.
    const char* min_group_reason{""};
};

using DeploymentFactory = std::function<std::unique_ptr<Deployment>(const DeploymentSpec&)>;

/// Registers (or replaces) the factory for a system. The three built-in
/// stacks self-register; a fourth system calls this once at startup.
void register_deployment(SystemKind system, DeploymentFactory factory,
                         SystemTraits traits = {});

[[nodiscard]] SystemTraits traits_of(SystemKind system);

/// Builds the deployment for `system`. Throws std::logic_error for unknown
/// systems or group sizes below the system's floor.
std::unique_ptr<Deployment> make_deployment(SystemKind system, const DeploymentSpec& spec);

}  // namespace failsig::deploy
