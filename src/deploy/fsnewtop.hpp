// Deployment adapter for FS-NewTOP (paper §3.1): every member's GC service
// is a fail-signal pair; Byzantine fault plans and pair-link crashes are
// expressible, and the stack announces its own failures instead of being
// timed out.
#pragma once

#include "deploy/deployment.hpp"
#include "fsnewtop/deployment.hpp"

namespace failsig::deploy {

class FsNewTopDeployment final : public Deployment {
public:
    explicit FsNewTopDeployment(const DeploymentSpec& spec);

    [[nodiscard]] sim::Simulation& sim() override { return inner_.sim(); }
    [[nodiscard]] net::Transport& network() override { return inner_.network(); }
    [[nodiscard]] net::FaultInjector& faults() override { return inner_.faults(); }
    [[nodiscard]] int group_size() const override { return inner_.group_size(); }
    [[nodiscard]] std::vector<NodeId> nodes_of(int member) const override;

    void attach(Observers observers) override;
    void submit(int member, Bytes payload) override;

    /// The FS-level crash: sever the pair's synchronous link, so the pair
    /// can no longer self-check and announces its own failure — no timeout
    /// guessing at the other members.
    void crash(int member) override;
    /// Inverse of crash(): restore the pair link (the wrapper-object reset
    /// and the GC-level rejoin ride in recover_steps()).
    void recover_links(int member) override;
    std::vector<RecoveryStep> recover_steps(int member) override;
    [[nodiscard]] std::optional<AppStateInfo> app_state_of(int member) override;
    [[nodiscard]] RecoveryStats recovery_stats() const override;
    bool inject_fault(const FaultInjection& fault) override;
    [[nodiscard]] std::optional<NodeId> fault_home(const FaultInjection& fault) const override {
        return fault.at_leader ? inner_.leader_node_of(fault.member)
                               : inner_.follower_node_of(fault.member);
    }
    /// Host faults act on whole hosts; under the collocated placement every
    /// host is shared between two pairs (member i's leader and member i-1's
    /// follower), so only the dedicated-node placement can express them.
    [[nodiscard]] bool supports_host_faults() const override {
        return inner_.placement() == fsnewtop::Placement::kFull;
    }
    [[nodiscard]] BatchStats batch_stats() const override { return inner_.batch_stats(); }
    [[nodiscard]] std::uint64_t crypto_verify_ops() const override {
        return inner_.keys().verify_ops();
    }
    [[nodiscard]] std::uint64_t crypto_verify_cache_hits() const override {
        return inner_.keys().verify_cache_hits();
    }

private:
    static fsnewtop::FsNewTopOptions make_options(const DeploymentSpec& spec);

    fsnewtop::FsNewTopDeployment inner_;
    newtop::ServiceType service_;
    Observers observers_;
};

}  // namespace failsig::deploy
