// Deployment adapter for the PBFT-style baseline: n = 3f+1 replicas, one
// per node; submissions are client requests at a replica, deliveries are
// commit upcalls, and liveness needs timeout-fired view changes — the
// speculative dependence FS-NewTOP removes.
#pragma once

#include "baseline/deployment.hpp"
#include "deploy/deployment.hpp"

namespace failsig::deploy {

class PbftDeployment final : public Deployment {
public:
    explicit PbftDeployment(const DeploymentSpec& spec);

    [[nodiscard]] sim::Simulation& sim() override { return inner_.sim(); }
    [[nodiscard]] net::Transport& network() override { return inner_.network(); }
    [[nodiscard]] net::FaultInjector& faults() override { return inner_.faults(); }
    [[nodiscard]] int group_size() const override {
        return static_cast<int>(inner_.replica_count());
    }
    [[nodiscard]] std::vector<NodeId> nodes_of(int member) const override {
        return {inner_.node_of(static_cast<baseline::ReplicaId>(member))};
    }

    void attach(Observers observers) override;
    void submit(int member, Bytes payload) override;
    [[nodiscard]] bool has_liveness_timeouts() const override { return true; }
    void fire_timeouts_member(int member) override;
    [[nodiscard]] BatchStats batch_stats() const override { return inner_.batch_stats(); }

    std::vector<RecoveryStep> recover_steps(int member) override;
    [[nodiscard]] std::optional<AppStateInfo> app_state_of(int member) override;
    [[nodiscard]] RecoveryStats recovery_stats() const override;

private:
    static baseline::PbftOptions make_options(const DeploymentSpec& spec);

    baseline::PbftDeployment inner_;
    Observers observers_;
};

}  // namespace failsig::deploy
