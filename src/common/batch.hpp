// Request batching: the ordering pipeline's cost amortizer.
//
// Every protocol stack in this repo pays a per-round cost to order one
// application request: NewTOP runs a DATA/ACK exchange per multicast,
// FS-NewTOP additionally signs every protocol output inside the pair, and
// the PBFT baseline spends a three-phase exchange per pre-prepare. The
// `Batcher` coalesces requests submitted within a window into ONE ordered
// unit per round — a `Batch` frame the stack orders like any opaque payload
// — so k signatures / one protocol round are amortized over b requests
// (sharpening the paper's MAC-vs-signature cost argument under load).
// Receivers unbatch on delivery, so observer and invariant semantics are
// exactly those of b individual submissions in submission order.
//
// The accumulator is size- AND deadline-bounded: a batch flushes when it
// reaches `max_requests` entries or `max_bytes` payload bytes, and a lone
// request never waits longer than `flush_after` (armed when the first
// request opens a batch). Deadlines are scheduled through a caller-supplied
// hook, keeping this layer free of any simulator dependency.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace failsig {

/// Batching knobs, configurable per deployment (deploy::DeploymentSpec) and
/// per scenario. `max_requests <= 1` disables batching entirely: requests
/// pass through unframed and the wire format is byte-identical to a build
/// without this layer.
struct BatchConfig {
    /// Requests per ordered unit; <= 1 = batching off (passthrough).
    std::size_t max_requests{1};
    /// Flush early when accumulated payload bytes reach this.
    std::size_t max_bytes{64 * 1024};
    /// Upper bound on how long a request may wait for companions.
    Duration flush_after{2 * kMillisecond};

    [[nodiscard]] bool enabled() const { return max_requests > 1; }

    friend bool operator==(const BatchConfig&, const BatchConfig&) = default;
};

/// Deterministic counters proving the pipeline amortizes (the perf bench
/// and CI gate diff these, never wall-clock).
struct BatchStats {
    /// Requests entering the batcher (batched or passthrough).
    std::uint64_t requests_submitted{0};
    /// Requests that left inside a batch frame. With batching enabled this
    /// equals requests_submitted once all batches flushed.
    std::uint64_t requests_batched{0};
    /// Batch frames formed (ordered units put on the wire).
    std::uint64_t batches_formed{0};
    /// Flushes triggered by max_requests/max_bytes.
    std::uint64_t flushes_on_size{0};
    /// Flushes triggered by the flush_after deadline.
    std::uint64_t flushes_on_deadline{0};

    BatchStats& operator+=(const BatchStats& other);
};

/// Wire codec for a batch frame. A frame is distinguished from an opaque
/// application payload by a magic prefix; payloads in this repo are small
/// structured tags, so the collision risk is documented, not defended (a
/// production system would carry an explicit flag in the enclosing
/// protocol message instead).
class Batch {
public:
    static constexpr std::uint32_t kMagic = 0xFB47C4ED;

    /// True when `payload` starts with the batch magic.
    [[nodiscard]] static bool is_batch(std::span<const std::uint8_t> payload);

    /// Frames `requests` (in order) into one payload.
    [[nodiscard]] static Bytes encode(const std::vector<Bytes>& requests);

    /// Splits a frame back into the original requests, in order.
    static Result<std::vector<Bytes>> decode(std::span<const std::uint8_t> payload);
};

/// The accumulator: owns the pending window, flush triggers and counters.
/// Single-threaded by design — every user lives on a deterministic
/// simulation event loop (Invocation layers, PBFT deployment submit path).
class Batcher {
public:
    /// Receives each flushed unit: a batch frame (enabled) or the original
    /// payload unchanged (passthrough), plus the request count inside.
    using FlushFn = std::function<void(Bytes unit, std::size_t request_count)>;
    /// Schedules `fn` to run after `delay` (deployments pass the owning
    /// sim::Simulation's schedule_after).
    using Scheduler = std::function<void(Duration delay, std::function<void()> fn)>;

    Batcher(BatchConfig config, FlushFn flush, Scheduler scheduler);

    /// Submits one request; may flush synchronously (size bound reached) or
    /// arm the deadline timer (first request of a fresh batch).
    void submit(Bytes payload);

    /// Flushes any pending window immediately (counted as a size flush).
    void flush_now();

    [[nodiscard]] const BatchConfig& config() const { return cfg_; }
    [[nodiscard]] const BatchStats& stats() const { return stats_; }
    [[nodiscard]] std::size_t pending() const { return pending_.size(); }

private:
    void flush(bool on_deadline);

    BatchConfig cfg_;
    FlushFn flush_fn_;
    Scheduler scheduler_;
    std::vector<Bytes> pending_;
    std::size_t pending_bytes_{0};
    /// Invalidates in-flight deadline timers: a timer only flushes when the
    /// batch it was armed for is still the open one.
    std::uint64_t generation_{0};
    BatchStats stats_;
};

}  // namespace failsig
