#include "common/batch.hpp"

#include <utility>

namespace failsig {

BatchStats& BatchStats::operator+=(const BatchStats& other) {
    requests_submitted += other.requests_submitted;
    requests_batched += other.requests_batched;
    batches_formed += other.batches_formed;
    flushes_on_size += other.flushes_on_size;
    flushes_on_deadline += other.flushes_on_deadline;
    return *this;
}

bool Batch::is_batch(std::span<const std::uint8_t> payload) {
    if (payload.size() < sizeof(std::uint32_t)) return false;
    std::uint32_t magic = 0;
    for (std::size_t i = 0; i < sizeof magic; ++i) {
        magic |= static_cast<std::uint32_t>(payload[i]) << (8 * i);
    }
    return magic == kMagic;
}

Bytes Batch::encode(const std::vector<Bytes>& requests) {
    std::size_t total = 2 * sizeof(std::uint32_t);
    for (const auto& r : requests) total += sizeof(std::uint32_t) + r.size();
    ByteWriter w;
    w.reserve(total);
    w.u32(kMagic);
    w.u32(static_cast<std::uint32_t>(requests.size()));
    for (const auto& r : requests) w.bytes(r);
    return w.take();
}

Result<std::vector<Bytes>> Batch::decode(std::span<const std::uint8_t> payload) {
    try {
        ByteReader r(payload);
        if (r.u32() != kMagic) return Result<std::vector<Bytes>>::err("batch: bad magic");
        const std::uint32_t count = r.u32();
        // Every request costs at least its 4-byte length prefix: reject an
        // absurd count from the wire BEFORE it sizes an allocation (the
        // fuzz corpus found reserve() being driven to gigabytes by a
        // 12-byte frame claiming 2^32-1 entries).
        if (static_cast<std::size_t>(count) * sizeof(std::uint32_t) > r.remaining()) {
            return Result<std::vector<Bytes>>::err("batch: count exceeds frame");
        }
        std::vector<Bytes> requests;
        requests.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) requests.push_back(r.bytes());
        if (!r.done()) return Result<std::vector<Bytes>>::err("batch: trailing bytes");
        return requests;
    } catch (const std::out_of_range&) {
        return Result<std::vector<Bytes>>::err("batch: truncated frame");
    }
}

Batcher::Batcher(BatchConfig config, FlushFn flush, Scheduler scheduler)
    : cfg_(config), flush_fn_(std::move(flush)), scheduler_(std::move(scheduler)) {
    ensure(static_cast<bool>(flush_fn_), "Batcher: flush fn required");
    ensure(!cfg_.enabled() || static_cast<bool>(scheduler_),
           "Batcher: enabled batching needs a deadline scheduler");
}

void Batcher::submit(Bytes payload) {
    ++stats_.requests_submitted;
    if (!cfg_.enabled()) {
        flush_fn_(std::move(payload), 1);
        return;
    }
    pending_bytes_ += payload.size();
    pending_.push_back(std::move(payload));
    if (pending_.size() == 1) {
        // First request of a fresh batch: bound its wait. The generation
        // check makes the timer a no-op when the batch it was armed for has
        // already flushed on size.
        scheduler_(cfg_.flush_after, [this, armed_for = generation_] {
            if (armed_for == generation_ && !pending_.empty()) flush(/*on_deadline=*/true);
        });
    }
    if (pending_.size() >= cfg_.max_requests || pending_bytes_ >= cfg_.max_bytes) {
        flush(/*on_deadline=*/false);
    }
}

void Batcher::flush_now() {
    if (!pending_.empty()) flush(/*on_deadline=*/false);
}

void Batcher::flush(bool on_deadline) {
    ++generation_;
    ++stats_.batches_formed;
    stats_.requests_batched += pending_.size();
    if (on_deadline) {
        ++stats_.flushes_on_deadline;
    } else {
        ++stats_.flushes_on_size;
    }
    Bytes frame = Batch::encode(pending_);
    const std::size_t count = pending_.size();
    pending_.clear();
    pending_bytes_ = 0;
    flush_fn_(std::move(frame), count);
}

}  // namespace failsig
