// Ref-counted immutable message payload: the zero-copy currency of the
// message plane.
//
// A Payload is a view over a shared, immutable byte buffer, optionally led
// by a small owned *prefix* (a per-target header). A multicast encodes its
// body once; every copy of the Payload — the n in-flight messages of a
// fan-out, the scheduler lambda, the delivery handler — shares that one
// buffer and only the few header bytes differ per target. This is what
// turns the O(n) per-receiver re-marshal of the old plane into O(1)
// encodes per logical message (see net::SimNetwork's copy counters).
//
// Every body buffer carries a process-unique sequence number, so the copy
// counters can tell "same buffer, shared" from "freshly encoded" without
// relying on pointer identity (which the allocator recycles).
//
// Mutation is copy-on-write: `mutable_bytes()` flattens prefix + body into
// a private buffer, so fault injectors (net::Corruptor) can still flip bits
// without perturbing the other receivers' shared copy.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

#include "common/bytes.hpp"

namespace failsig {

class Payload {
public:
    Payload() = default;
    /// Wraps `data` as a single shared segment (implicit so existing
    /// Bytes-valued send() call sites keep working).
    Payload(Bytes data)  // NOLINT(google-explicit-constructor)
        : body_(data.empty() ? nullptr : std::make_shared<Body>(std::move(data))) {}

    /// A per-target header in front of a shared body: the header bytes are
    /// owned (tiny, per-target), the body stays shared with every sibling.
    /// A body that already carries a prefix is flattened first, so layered
    /// headers concatenate instead of silently dropping the inner one.
    static Payload prefixed(Bytes header, Payload body) {
        Payload p = std::move(body);
        if (p.has_prefix()) p = Payload{p.to_bytes()};
        p.prefix_ = std::move(header);
        return p;
    }

    [[nodiscard]] std::size_t size() const {
        return prefix_.size() + (body_ ? body_->data.size() : 0);
    }
    [[nodiscard]] bool empty() const { return size() == 0; }

    [[nodiscard]] bool has_prefix() const { return !prefix_.empty(); }
    [[nodiscard]] std::span<const std::uint8_t> prefix() const { return prefix_; }
    [[nodiscard]] std::span<const std::uint8_t> body() const {
        return body_ ? std::span<const std::uint8_t>(body_->data)
                     : std::span<const std::uint8_t>{};
    }

    /// Whole-payload view; only valid when there is no prefix segment
    /// (decoders that need the full wire image use span() or to_bytes()).
    [[nodiscard]] std::span<const std::uint8_t> span() const {
        if (has_prefix()) {
            throw std::logic_error("Payload::span: prefixed payload is not contiguous");
        }
        return body();
    }
    /// Implicit view for span-taking decoders (SignedEnvelope::decode &c).
    operator std::span<const std::uint8_t>() const {  // NOLINT(google-explicit-constructor)
        return span();
    }

    [[nodiscard]] std::uint8_t operator[](std::size_t i) const {
        return i < prefix_.size() ? prefix_[i] : body_->data[i - prefix_.size()];
    }

    /// Materializes prefix + body into one owned buffer (a real copy).
    [[nodiscard]] Bytes to_bytes() const {
        Bytes out;
        out.reserve(size());
        out.insert(out.end(), prefix_.begin(), prefix_.end());
        if (body_) out.insert(out.end(), body_->data.begin(), body_->data.end());
        return out;
    }

    /// Copy-on-write escape hatch for fault injection: detaches this Payload
    /// from its shared buffer (flattening any prefix) and returns a mutable
    /// reference private to this instance.
    [[nodiscard]] Bytes& mutable_bytes() {
        if (has_prefix() || !body_ || body_.use_count() > 1) {
            body_ = std::make_shared<Body>(to_bytes());
            prefix_.clear();
        }
        return body_->data;
    }

    /// Identity of the shared body buffer (pointer; null when empty).
    [[nodiscard]] const void* body_id() const { return body_.get(); }
    /// Process-unique id of the body buffer (0 when empty) — each encoded
    /// buffer gets a fresh one, so the copy counters never mistake an
    /// allocator-recycled address for a shared buffer.
    [[nodiscard]] std::uint64_t body_seq() const { return body_ ? body_->seq : 0; }
    /// How many Payloads share the body buffer (1 when sole owner, 0 empty).
    [[nodiscard]] long body_use_count() const { return body_ ? body_.use_count() : 0; }

    friend bool operator==(const Payload& a, const Payload& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i] != b[i]) return false;
        }
        return true;
    }

private:
    struct Body {
        explicit Body(Bytes d) : data(std::move(d)), seq(next_seq()) {}
        Bytes data;
        std::uint64_t seq;
    };

    static std::uint64_t next_seq() {
        static std::atomic<std::uint64_t> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    Bytes prefix_;
    std::shared_ptr<Body> body_;
};

}  // namespace failsig
