#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace failsig {

namespace {
// Atomic: scenario sweeps run cells on worker threads, and every cell may
// consult the threshold concurrently.
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const char* component, const std::string& message) {
    // One insertion per record: concurrent sweep workers must not interleave
    // fragments of each other's lines.
    std::string line;
    line.reserve(message.size() + 32);
    line += "[";
    line += level_name(level);
    line += "] ";
    line += component;
    line += ": ";
    line += message;
    line += "\n";
    std::cerr << line;
}

}  // namespace failsig
