// Minimal expected-style result type (std::expected is C++23; we target C++20).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace failsig {

/// Error payload carried by Result.
struct Error {
    std::string message;
};

/// Either a value or an Error. Used at API boundaries where failure is an
/// expected outcome (signature rejection, malformed wire data) rather than a
/// programming bug.
template <typename T>
class Result {
public:
    Result(T value) : v_(std::move(value)) {}                 // NOLINT(google-explicit-constructor)
    Result(Error error) : v_(std::move(error)) {}             // NOLINT(google-explicit-constructor)

    static Result ok(T value) { return Result(std::move(value)); }
    static Result err(std::string message) { return Result(Error{std::move(message)}); }

    [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return has_value(); }

    [[nodiscard]] const T& value() const& {
        if (!has_value()) throw std::runtime_error("Result::value on error: " + error().message);
        return std::get<T>(v_);
    }
    [[nodiscard]] T&& value() && {
        if (!has_value()) throw std::runtime_error("Result::value on error: " + error().message);
        return std::get<T>(std::move(v_));
    }
    [[nodiscard]] const Error& error() const {
        return std::get<Error>(v_);
    }

private:
    std::variant<T, Error> v_;
};

/// Throws std::logic_error when `condition` is false. Used for internal
/// invariants (never for validating untrusted wire input).
inline void ensure(bool condition, const char* message) {
    if (!condition) throw std::logic_error(message);
}

}  // namespace failsig
