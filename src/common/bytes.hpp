// Byte-buffer utilities: the wire currency of the whole system.
//
// All protocol messages, signatures and marshalled values are ultimately
// `Bytes`. A small `ByteWriter`/`ByteReader` pair provides bounds-checked
// little-endian primitive encoding used by the CDR-style marshaller and by
// every protocol codec.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace failsig {

using Bytes = std::vector<std::uint8_t>;

/// Renders `data` as lowercase hex.
std::string to_hex(std::span<const std::uint8_t> data);

/// Parses lowercase/uppercase hex; throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Converts a string to bytes (no terminator).
Bytes bytes_of(std::string_view s);

/// Converts bytes to a std::string (may contain NULs).
std::string string_of(std::span<const std::uint8_t> data);

/// Constant-time equality: avoids leaking match length via timing.
bool constant_time_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// Appends little-endian encoded primitives to a byte buffer.
class ByteWriter {
public:
    ByteWriter() = default;
    explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

    /// Preallocates for `n` total bytes — hot encoders pair this with a
    /// wire_size() estimate so a message marshals with one allocation.
    void reserve(std::size_t n) { buf_.reserve(n); }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { put_le(v); }
    void u32(std::uint32_t v) { put_le(v); }
    void u64(std::uint64_t v) { put_le(v); }
    void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        put_le(bits);
    }

    /// Length-prefixed (u32) raw bytes.
    void bytes(std::span<const std::uint8_t> data) {
        u32(static_cast<std::uint32_t>(data.size()));
        raw(data);
    }

    /// Length-prefixed (u32) string.
    void str(std::string_view s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /// Raw bytes, no length prefix.
    void raw(std::span<const std::uint8_t> data) {
        buf_.insert(buf_.end(), data.begin(), data.end());
    }

    [[nodiscard]] const Bytes& view() const { return buf_; }
    [[nodiscard]] Bytes take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    template <typename T>
    void put_le(T v) {
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    Bytes buf_;
};

/// Bounds-checked reader over a byte buffer; throws std::out_of_range on
/// truncated input so malformed wire data can never read past the end.
class ByteReader {
public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8() { return take(1)[0]; }
    std::uint16_t u16() { return get_le<std::uint16_t>(); }
    std::uint32_t u32() { return get_le<std::uint32_t>(); }
    std::uint64_t u64() { return get_le<std::uint64_t>(); }
    std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
    double f64() {
        const std::uint64_t bits = get_le<std::uint64_t>();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    Bytes bytes() {
        const auto n = u32();
        const auto part = take(n);
        return Bytes(part.begin(), part.end());
    }

    /// Zero-copy variant of bytes(): a view into the underlying buffer for
    /// callers that do not need ownership. Valid only while the buffer the
    /// reader was constructed over stays alive.
    std::span<const std::uint8_t> bytes_view() {
        const auto n = u32();
        return take(n);
    }

    std::string str() {
        const auto n = u32();
        const auto part = take(n);
        return std::string(part.begin(), part.end());
    }

    /// Remaining unread bytes.
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] bool done() const { return remaining() == 0; }

    /// Reads the rest of the buffer.
    Bytes rest() {
        const auto part = take(remaining());
        return Bytes(part.begin(), part.end());
    }

private:
    std::span<const std::uint8_t> take(std::size_t n) {
        if (pos_ + n > data_.size()) {
            throw std::out_of_range("ByteReader: truncated input");
        }
        auto part = data_.subspan(pos_, n);
        pos_ += n;
        return part;
    }

    template <typename T>
    T get_le() {
        auto part = take(sizeof(T));
        T v = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            v |= static_cast<T>(static_cast<T>(part[i]) << (8 * i));
        }
        return v;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_{0};
};

}  // namespace failsig
