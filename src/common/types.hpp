// Fundamental identifier and time types shared by every failsig module.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace failsig {

/// Identifies a physical node (host) in a deployment.
struct NodeId {
    std::uint32_t value{0};

    friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// Identifies a communication endpoint (port) within a node.
struct PortId {
    std::uint32_t value{0};

    friend auto operator<=>(const PortId&, const PortId&) = default;
};

/// A (node, port) pair — the address of a message handler.
struct Endpoint {
    NodeId node;
    PortId port;

    friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

/// Simulated time, in microseconds since simulation start.
using TimePoint = std::int64_t;

/// Simulated duration, in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * kMillisecond;

inline std::string to_string(NodeId id) { return "n" + std::to_string(id.value); }
inline std::string to_string(PortId id) { return "p" + std::to_string(id.value); }
inline std::string to_string(Endpoint e) {
    return to_string(e.node) + ":" + to_string(e.port);
}

}  // namespace failsig

template <>
struct std::hash<failsig::NodeId> {
    std::size_t operator()(const failsig::NodeId& id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};

template <>
struct std::hash<failsig::Endpoint> {
    std::size_t operator()(const failsig::Endpoint& e) const noexcept {
        return (static_cast<std::size_t>(e.node.value) << 32) ^ e.port.value;
    }
};
