// Tiny leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the protocols are doing.
//
// Call sites go through FAILSIG_LOG(level, COMPONENT): the macro folds a
// per-component compile-time floor and performs ONE branch-predicted check
// of the global threshold before any stream machinery exists — with logging
// off (the default, and the hot-path common case) a log statement costs a
// single relaxed atomic load and a not-taken branch. Only when the check
// passes is a LogStream constructed (ostringstream and all); the component
// travels as a const char* literal, never copied, and the enabled decision
// is made once per statement, not re-read per insertion.
//
//     FAILSIG_LOG(failsig::LogLevel::kDebug, GC) << "suspecting " << m;
//
// Components are registered below (FAILSIG_LOG_COMP_* name string +
// FAILSIG_LOG_MIN_* compile-time floor). Raising a floor at build time
// (-DFAILSIG_LOG_MIN_GC=failsig::LogLevel::kWarn) dead-codes every
// statement below it for that component.
#pragma once

#include <sstream>
#include <string>

#if defined(__GNUC__) || defined(__clang__)
#define FAILSIG_LIKELY(x) __builtin_expect(!!(x), 1)
#define FAILSIG_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define FAILSIG_LIKELY(x) (x)
#define FAILSIG_UNLIKELY(x) (x)
#endif

namespace failsig {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr unconditionally; callers gate first.
void log_line(LogLevel level, const char* component, const std::string& message);

/// The runtime half of the FAILSIG_LOG gate: true when `level` clears the
/// global threshold. Logging is off by default, so the branch is annotated
/// unlikely-taken.
inline bool log_enabled(LogLevel level) {
    return FAILSIG_UNLIKELY(level >= log_level());
}

/// Stream-style sink; construct only after the gate passed (FAILSIG_LOG
/// does). Holds the component as a borrowed literal and flushes one line
/// at destruction.
class LogStream {
public:
    LogStream(LogLevel level, const char* component)
        : level_(level), component_(component) {}
    ~LogStream() { log_line(level_, component_, ss_.str()); }

    template <typename T>
    LogStream& operator<<(const T& v) {
        ss_ << v;
        return *this;
    }

private:
    LogLevel level_;
    const char* component_;
    std::ostringstream ss_;
};

/// glog-style void-swallower: gives the enabled branch of FAILSIG_LOG's
/// conditional the same (void) type as the disabled branch, keeping the
/// macro a single expression that is safe under a dangling else.
struct LogVoidify {
    void operator&(LogStream&) {}
};

}  // namespace failsig

// --- component registry -----------------------------------------------------
// Name string + compile-time minimum level per component. Floors default to
// kTrace (everything eligible; the runtime threshold decides); override on
// the compiler command line to dead-code a component's chatter.
#define FAILSIG_LOG_COMP_ORB "orb"
#define FAILSIG_LOG_COMP_GC "gc"
#define FAILSIG_LOG_COMP_FSO "fso"
#define FAILSIG_LOG_COMP_NET "net"

#ifndef FAILSIG_LOG_MIN_ORB
#define FAILSIG_LOG_MIN_ORB failsig::LogLevel::kTrace
#endif
#ifndef FAILSIG_LOG_MIN_GC
#define FAILSIG_LOG_MIN_GC failsig::LogLevel::kTrace
#endif
#ifndef FAILSIG_LOG_MIN_FSO
#define FAILSIG_LOG_MIN_FSO failsig::LogLevel::kTrace
#endif
#ifndef FAILSIG_LOG_MIN_NET
#define FAILSIG_LOG_MIN_NET failsig::LogLevel::kTrace
#endif

/// One log statement. The component-floor comparison is between constants
/// and folds at compile time; past it, the global threshold is checked
/// exactly once before any stream object exists.
#define FAILSIG_LOG(level, comp)                                        \
    !((level) >= FAILSIG_LOG_MIN_##comp && failsig::log_enabled(level)) \
        ? (void)0                                                       \
        : failsig::LogVoidify() &                                       \
              failsig::LogStream((level), FAILSIG_LOG_COMP_##comp)
