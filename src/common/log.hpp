// Tiny leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate what the protocols are doing.
#pragma once

#include <sstream>
#include <string>

namespace failsig {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& component, const std::string& message);

/// Stream-style helper: LogStream(LogLevel::kInfo, "fso")() << "hello";
class LogStream {
public:
    LogStream(LogLevel level, std::string component)
        : level_(level), component_(std::move(component)) {}
    ~LogStream();

    template <typename T>
    LogStream& operator<<(const T& v) {
        if (level_ >= log_level()) ss_ << v;
        return *this;
    }

private:
    LogLevel level_;
    std::string component_;
    std::ostringstream ss_;
};

}  // namespace failsig
