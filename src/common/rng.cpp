#include "common/rng.hpp"

#include <cmath>

namespace failsig {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
    double u = uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

bool Rng::chance(double probability) { return uniform01() < probability; }

Rng Rng::split() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace failsig
