// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (network jitter, fault timing,
// workload arrival) draws from an explicitly seeded `Rng` so that every
// experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace failsig {

/// Advances `state` and returns the next splitmix64 output. Doubles as the
/// mixing finalizer for deriving independent seeds from coordinates (Rng
/// seeding and the sweep's per-cell seed derivation share it).
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Small, fast, and good enough for simulation;
/// NOT for cryptographic use (crypto keygen uses it only in tests/benches
/// where reproducibility is the point).
class Rng {
public:
    explicit Rng(std::uint64_t seed);

    /// Uniform 64-bit value.
    std::uint64_t next();

    /// Uniform in [0, bound). bound must be > 0.
    std::uint64_t uniform(std::uint64_t bound);

    /// Uniform in [lo, hi] inclusive.
    std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

    /// Uniform real in [0, 1).
    double uniform01();

    /// Exponentially distributed value with the given mean.
    double exponential(double mean);

    /// Bernoulli trial.
    bool chance(double probability);

    /// Derives an independent stream (for per-node generators).
    Rng split();

private:
    std::uint64_t s_[4];
};

}  // namespace failsig
