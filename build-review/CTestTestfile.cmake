# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build-review/test_common")
set_tests_properties(test_common PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_crypto "/root/repo/build-review/test_crypto")
set_tests_properties(test_crypto PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build-review/test_sim")
set_tests_properties(test_sim PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build-review/test_net")
set_tests_properties(test_net PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_orb "/root/repo/build-review/test_orb")
set_tests_properties(test_orb PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_fs "/root/repo/build-review/test_fs")
set_tests_properties(test_fs PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_newtop "/root/repo/build-review/test_newtop")
set_tests_properties(test_newtop PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_fsnewtop "/root/repo/build-review/test_fsnewtop")
set_tests_properties(test_fsnewtop PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_baseline "/root/repo/build-review/test_baseline")
set_tests_properties(test_baseline PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_deployment_conformance "/root/repo/build-review/test_deployment_conformance")
set_tests_properties(test_deployment_conformance PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_scenario "/root/repo/build-review/test_scenario")
set_tests_properties(test_scenario PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_fault_injection "/root/repo/build-review/test_fault_injection")
set_tests_properties(test_fault_injection PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build-review/test_integration")
set_tests_properties(test_integration PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;83;add_test;/root/repo/CMakeLists.txt;0;")
