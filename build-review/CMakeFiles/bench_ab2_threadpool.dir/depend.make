# Empty dependencies file for bench_ab2_threadpool.
# This may be replaced when dependencies are built.
