file(REMOVE_RECURSE
  "CMakeFiles/bench_ab2_threadpool.dir/bench/bench_ab2_threadpool.cpp.o"
  "CMakeFiles/bench_ab2_threadpool.dir/bench/bench_ab2_threadpool.cpp.o.d"
  "bench_ab2_threadpool"
  "bench_ab2_threadpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab2_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
