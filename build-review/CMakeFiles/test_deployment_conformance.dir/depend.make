# Empty dependencies file for test_deployment_conformance.
# This may be replaced when dependencies are built.
