file(REMOVE_RECURSE
  "CMakeFiles/test_deployment_conformance.dir/tests/test_deployment_conformance.cpp.o"
  "CMakeFiles/test_deployment_conformance.dir/tests/test_deployment_conformance.cpp.o.d"
  "test_deployment_conformance"
  "test_deployment_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deployment_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
