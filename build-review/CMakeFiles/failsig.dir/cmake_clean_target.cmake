file(REMOVE_RECURSE
  "libfailsig.a"
)
