
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/deployment.cpp" "CMakeFiles/failsig.dir/src/baseline/deployment.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/baseline/deployment.cpp.o.d"
  "/root/repo/src/baseline/pbft.cpp" "CMakeFiles/failsig.dir/src/baseline/pbft.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/baseline/pbft.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "CMakeFiles/failsig.dir/src/common/bytes.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/common/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/failsig.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/failsig.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/crypto/biguint.cpp" "CMakeFiles/failsig.dir/src/crypto/biguint.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/biguint.cpp.o.d"
  "/root/repo/src/crypto/envelope.cpp" "CMakeFiles/failsig.dir/src/crypto/envelope.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/envelope.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/failsig.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "CMakeFiles/failsig.dir/src/crypto/keys.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/keys.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "CMakeFiles/failsig.dir/src/crypto/md5.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/md5.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "CMakeFiles/failsig.dir/src/crypto/rsa.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/failsig.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/deploy/deployment.cpp" "CMakeFiles/failsig.dir/src/deploy/deployment.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/deploy/deployment.cpp.o.d"
  "/root/repo/src/deploy/fsnewtop.cpp" "CMakeFiles/failsig.dir/src/deploy/fsnewtop.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/deploy/fsnewtop.cpp.o.d"
  "/root/repo/src/deploy/newtop.cpp" "CMakeFiles/failsig.dir/src/deploy/newtop.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/deploy/newtop.cpp.o.d"
  "/root/repo/src/deploy/pbft.cpp" "CMakeFiles/failsig.dir/src/deploy/pbft.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/deploy/pbft.cpp.o.d"
  "/root/repo/src/fs/client.cpp" "CMakeFiles/failsig.dir/src/fs/client.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/fs/client.cpp.o.d"
  "/root/repo/src/fs/fso.cpp" "CMakeFiles/failsig.dir/src/fs/fso.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/fs/fso.cpp.o.d"
  "/root/repo/src/fs/process.cpp" "CMakeFiles/failsig.dir/src/fs/process.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/fs/process.cpp.o.d"
  "/root/repo/src/fs/wire.cpp" "CMakeFiles/failsig.dir/src/fs/wire.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/fs/wire.cpp.o.d"
  "/root/repo/src/fsnewtop/deployment.cpp" "CMakeFiles/failsig.dir/src/fsnewtop/deployment.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/fsnewtop/deployment.cpp.o.d"
  "/root/repo/src/fsnewtop/fs_invocation.cpp" "CMakeFiles/failsig.dir/src/fsnewtop/fs_invocation.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/fsnewtop/fs_invocation.cpp.o.d"
  "/root/repo/src/net/network.cpp" "CMakeFiles/failsig.dir/src/net/network.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/net/network.cpp.o.d"
  "/root/repo/src/newtop/deployment.cpp" "CMakeFiles/failsig.dir/src/newtop/deployment.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/newtop/deployment.cpp.o.d"
  "/root/repo/src/newtop/gc_servant.cpp" "CMakeFiles/failsig.dir/src/newtop/gc_servant.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/newtop/gc_servant.cpp.o.d"
  "/root/repo/src/newtop/gc_service.cpp" "CMakeFiles/failsig.dir/src/newtop/gc_service.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/newtop/gc_service.cpp.o.d"
  "/root/repo/src/newtop/invocation.cpp" "CMakeFiles/failsig.dir/src/newtop/invocation.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/newtop/invocation.cpp.o.d"
  "/root/repo/src/newtop/suspector.cpp" "CMakeFiles/failsig.dir/src/newtop/suspector.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/newtop/suspector.cpp.o.d"
  "/root/repo/src/newtop/wire.cpp" "CMakeFiles/failsig.dir/src/newtop/wire.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/newtop/wire.cpp.o.d"
  "/root/repo/src/orb/any.cpp" "CMakeFiles/failsig.dir/src/orb/any.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/orb/any.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "CMakeFiles/failsig.dir/src/orb/orb.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/orb/orb.cpp.o.d"
  "/root/repo/src/orb/request.cpp" "CMakeFiles/failsig.dir/src/orb/request.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/orb/request.cpp.o.d"
  "/root/repo/src/scenario/cli.cpp" "CMakeFiles/failsig.dir/src/scenario/cli.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/scenario/cli.cpp.o.d"
  "/root/repo/src/scenario/invariants.cpp" "CMakeFiles/failsig.dir/src/scenario/invariants.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/scenario/invariants.cpp.o.d"
  "/root/repo/src/scenario/report.cpp" "CMakeFiles/failsig.dir/src/scenario/report.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/scenario/report.cpp.o.d"
  "/root/repo/src/scenario/runner.cpp" "CMakeFiles/failsig.dir/src/scenario/runner.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/scenario/runner.cpp.o.d"
  "/root/repo/src/scenario/scenario.cpp" "CMakeFiles/failsig.dir/src/scenario/scenario.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/scenario/scenario.cpp.o.d"
  "/root/repo/src/scenario/trace.cpp" "CMakeFiles/failsig.dir/src/scenario/trace.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/scenario/trace.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "CMakeFiles/failsig.dir/src/sim/simulation.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/thread_pool.cpp" "CMakeFiles/failsig.dir/src/sim/thread_pool.cpp.o" "gcc" "CMakeFiles/failsig.dir/src/sim/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
