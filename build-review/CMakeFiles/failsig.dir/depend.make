# Empty dependencies file for failsig.
# This may be replaced when dependencies are built.
