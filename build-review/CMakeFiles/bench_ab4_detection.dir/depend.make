# Empty dependencies file for bench_ab4_detection.
# This may be replaced when dependencies are built.
