file(REMOVE_RECURSE
  "CMakeFiles/bench_ab4_detection.dir/bench/bench_ab4_detection.cpp.o"
  "CMakeFiles/bench_ab4_detection.dir/bench/bench_ab4_detection.cpp.o.d"
  "bench_ab4_detection"
  "bench_ab4_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab4_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
