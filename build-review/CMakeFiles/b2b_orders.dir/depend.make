# Empty dependencies file for b2b_orders.
# This may be replaced when dependencies are built.
