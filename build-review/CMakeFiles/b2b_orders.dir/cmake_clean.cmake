file(REMOVE_RECURSE
  "CMakeFiles/b2b_orders.dir/examples/b2b_orders.cpp.o"
  "CMakeFiles/b2b_orders.dir/examples/b2b_orders.cpp.o.d"
  "b2b_orders"
  "b2b_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
