file(REMOVE_RECURSE
  "CMakeFiles/test_fs.dir/tests/test_fs.cpp.o"
  "CMakeFiles/test_fs.dir/tests/test_fs.cpp.o.d"
  "test_fs"
  "test_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
