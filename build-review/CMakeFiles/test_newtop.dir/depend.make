# Empty dependencies file for test_newtop.
# This may be replaced when dependencies are built.
