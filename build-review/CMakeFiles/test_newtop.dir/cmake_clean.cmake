file(REMOVE_RECURSE
  "CMakeFiles/test_newtop.dir/tests/test_newtop.cpp.o"
  "CMakeFiles/test_newtop.dir/tests/test_newtop.cpp.o.d"
  "test_newtop"
  "test_newtop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_newtop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
