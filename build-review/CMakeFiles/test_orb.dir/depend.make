# Empty dependencies file for test_orb.
# This may be replaced when dependencies are built.
