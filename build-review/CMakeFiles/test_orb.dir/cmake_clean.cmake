file(REMOVE_RECURSE
  "CMakeFiles/test_orb.dir/tests/test_orb.cpp.o"
  "CMakeFiles/test_orb.dir/tests/test_orb.cpp.o.d"
  "test_orb"
  "test_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
