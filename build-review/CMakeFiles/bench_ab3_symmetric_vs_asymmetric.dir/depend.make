# Empty dependencies file for bench_ab3_symmetric_vs_asymmetric.
# This may be replaced when dependencies are built.
