file(REMOVE_RECURSE
  "CMakeFiles/bench_ab3_symmetric_vs_asymmetric.dir/bench/bench_ab3_symmetric_vs_asymmetric.cpp.o"
  "CMakeFiles/bench_ab3_symmetric_vs_asymmetric.dir/bench/bench_ab3_symmetric_vs_asymmetric.cpp.o.d"
  "bench_ab3_symmetric_vs_asymmetric"
  "bench_ab3_symmetric_vs_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab3_symmetric_vs_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
