# Empty dependencies file for replicated_auction.
# This may be replaced when dependencies are built.
