file(REMOVE_RECURSE
  "CMakeFiles/replicated_auction.dir/examples/replicated_auction.cpp.o"
  "CMakeFiles/replicated_auction.dir/examples/replicated_auction.cpp.o.d"
  "replicated_auction"
  "replicated_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
