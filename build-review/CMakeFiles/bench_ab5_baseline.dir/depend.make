# Empty dependencies file for bench_ab5_baseline.
# This may be replaced when dependencies are built.
