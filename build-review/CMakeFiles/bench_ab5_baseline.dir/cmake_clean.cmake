file(REMOVE_RECURSE
  "CMakeFiles/bench_ab5_baseline.dir/bench/bench_ab5_baseline.cpp.o"
  "CMakeFiles/bench_ab5_baseline.dir/bench/bench_ab5_baseline.cpp.o.d"
  "bench_ab5_baseline"
  "bench_ab5_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab5_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
