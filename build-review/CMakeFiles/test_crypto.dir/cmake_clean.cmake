file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/tests/test_crypto.cpp.o"
  "CMakeFiles/test_crypto.dir/tests/test_crypto.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
