# Empty dependencies file for bench_fig8_msgsize.
# This may be replaced when dependencies are built.
