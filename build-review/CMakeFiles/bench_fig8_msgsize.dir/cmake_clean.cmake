file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_msgsize.dir/bench/bench_fig8_msgsize.cpp.o"
  "CMakeFiles/bench_fig8_msgsize.dir/bench/bench_fig8_msgsize.cpp.o.d"
  "bench_fig8_msgsize"
  "bench_fig8_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
