file(REMOVE_RECURSE
  "CMakeFiles/test_fsnewtop.dir/tests/test_fsnewtop.cpp.o"
  "CMakeFiles/test_fsnewtop.dir/tests/test_fsnewtop.cpp.o.d"
  "test_fsnewtop"
  "test_fsnewtop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsnewtop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
