# Empty dependencies file for test_fsnewtop.
# This may be replaced when dependencies are built.
