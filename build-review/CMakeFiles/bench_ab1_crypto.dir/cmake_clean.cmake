file(REMOVE_RECURSE
  "CMakeFiles/bench_ab1_crypto.dir/bench/bench_ab1_crypto.cpp.o"
  "CMakeFiles/bench_ab1_crypto.dir/bench/bench_ab1_crypto.cpp.o.d"
  "bench_ab1_crypto"
  "bench_ab1_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ab1_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
