# Empty dependencies file for bench_ab1_crypto.
# This may be replaced when dependencies are built.
