// Scenario runner: the paper's comparative argument as declarative data.
//
// Eleven fault campaigns across the three stacks (crash-tolerant NewTOP,
// FS-NewTOP, PBFT baseline) — fault-free baselines, crashes, Byzantine
// corruption, the delay surge that splits plain NewTOP but leaves
// FS-NewTOP untouched, and open-loop Poisson load through the batched
// ordering pipeline. Each Scenario below is pure data; the engine
// (src/scenario/runner.hpp) builds the deployment, injects the faults,
// records the trace, and judges it against the built-in invariant checkers.
// The run writes one JSON report consumable by CI gates and notebooks.
//
// Run: ./scenario_runner [--seed N] [--out report.json]
#include <cstdio>

#include "scenario/cli.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"

using namespace failsig;
using scenario::Scenario;
using scenario::ScenarioEvent;
using scenario::SystemKind;

namespace {

struct Entry {
    Scenario scenario;
    /// Whether every applicable invariant is expected to hold. The NewTOP
    /// delay-surge campaign is *expected* to fail no-false-exclusion —
    /// that false suspicion is the pathology motivating the paper.
    bool expect_all_pass{true};
};

std::vector<Entry> build_campaigns(std::uint64_t seed) {
    std::vector<Entry> entries;

    // --- crash-tolerant NewTOP ---------------------------------------------
    {
        Scenario s;
        s.name = "newtop/fault-free";
        s.system = SystemKind::kNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 12;
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "newtop/crash";
        s.system = SystemKind::kNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 8;
        s.start_suspectors = true;
        s.suspector.ping_interval = 50 * kMillisecond;
        s.suspector.suspect_timeout = 300 * kMillisecond;
        s.timeline.push_back(ScenarioEvent::crash(400 * kMillisecond, 2));
        s.deadline = 8 * kSecond;
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "newtop/delay-surge";
        s.system = SystemKind::kNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 8;
        s.start_suspectors = true;
        s.suspector.ping_interval = 50 * kMillisecond;
        s.suspector.suspect_timeout = 200 * kMillisecond;
        // 1 s of extra delay, no process fails — yet the group will split.
        s.timeline.push_back(
            ScenarioEvent::delay_surge(500 * kMillisecond, 1 * kSecond, 3 * kSecond));
        s.deadline = 8 * kSecond;
        entries.push_back({s, false});  // expected: no-false-exclusion trips
    }

    // --- FS-NewTOP ----------------------------------------------------------
    {
        Scenario s;
        s.name = "fsnewtop/fault-free";
        s.system = SystemKind::kFsNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 12;
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "fsnewtop/byzantine-corrupt";
        s.system = SystemKind::kFsNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 8;
        fs::FaultPlan corrupt;
        corrupt.corrupt_outputs = true;
        s.timeline.push_back(ScenarioEvent::fault(200 * kMillisecond, 2,
                                                  scenario::PairNode::kFollower, corrupt));
        s.deadline = 60 * kSecond;
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "fsnewtop/delay-surge";
        s.system = SystemKind::kFsNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 8;
        // The exact surge that splits plain NewTOP: harmless here, because
        // fail-signal suspicions cannot be false (§3.1).
        s.timeline.push_back(
            ScenarioEvent::delay_surge(500 * kMillisecond, 1 * kSecond, 3 * kSecond));
        entries.push_back({s, true});
    }

    // --- batched ordering pipeline under open-loop load ---------------------
    {
        // 200 req/s of Poisson arrivals coalesced into batches of up to 8:
        // one signed FS protocol round orders many requests, and every
        // invariant (agreement, validity, ...) must hold exactly as if the
        // requests had been submitted one by one.
        Scenario s;
        s.name = "fsnewtop/batched-load";
        s.system = SystemKind::kFsNewTop;
        s.group_size = 3;
        s.seed = seed;
        s.workload.msgs_per_member = 0;  // all traffic from the load phase
        s.batch.max_requests = 8;
        s.batch.flush_after = 5 * kMillisecond;
        scenario::LoadSpec load;
        load.rate = 200.0;
        load.duration = 400 * kMillisecond;
        load.payload = 16;
        s.timeline.push_back(ScenarioEvent::load(0, load));
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "newtop/batched-load-crash";
        s.system = SystemKind::kNewTop;
        s.group_size = 4;
        s.seed = seed;
        s.workload.msgs_per_member = 0;
        s.batch.max_requests = 8;
        s.batch.flush_after = 5 * kMillisecond;
        scenario::LoadSpec load;
        load.rate = 200.0;
        load.duration = 400 * kMillisecond;
        load.payload = 16;
        s.timeline.push_back(ScenarioEvent::load(0, load));
        s.timeline.push_back(ScenarioEvent::crash(200 * kMillisecond, 3));
        entries.push_back({s, true});
    }

    // --- PBFT baseline -------------------------------------------------------
    {
        Scenario s;
        s.name = "pbft/fault-free";
        s.system = SystemKind::kPbft;
        s.group_size = 4;
        s.seed = seed;
        s.workload.msgs_per_member = 12;
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "pbft/backup-crash";
        s.system = SystemKind::kPbft;
        s.group_size = 4;
        s.seed = seed;
        s.workload.msgs_per_member = 8;
        s.timeline.push_back(ScenarioEvent::crash(300 * kMillisecond, 3));
        entries.push_back({s, true});
    }
    {
        Scenario s;
        s.name = "pbft/primary-crash";
        s.system = SystemKind::kPbft;
        s.group_size = 4;
        s.seed = seed;
        s.workload.msgs_per_member = 6;
        s.timeline.push_back(ScenarioEvent::crash(250 * kMillisecond, 0));
        // PBFT's liveness escape hatch: progress needs the timeout-triggered
        // view change — the speculative dependence FS-NewTOP removes.
        s.timeline.push_back(ScenarioEvent::fire_timeouts(2 * kSecond));
        entries.push_back({s, true});
    }

    return entries;
}

}  // namespace

int main(int argc, char** argv) {
    const auto cli = scenario::parse_cli(
        argc, argv, "  (--groups/--messages/--payload are fixed per campaign here)\n");
    if (cli.help) return 0;
    if (cli.error) return 1;
    const std::uint64_t seed = cli.seed_set ? cli.seed : 7;

    auto campaigns = build_campaigns(seed);
    // --only narrows the campaign list (CI runs just the load campaigns on
    // TCP); --backend tcp reruns the surviving campaigns on real sockets.
    if (!cli.only.empty()) {
        std::erase_if(campaigns, [&](const Entry& e) {
            return e.scenario.name.find(cli.only) == std::string::npos;
        });
        if (campaigns.empty()) {
            std::fprintf(stderr, "no campaign name contains '%s'\n", cli.only.c_str());
            return 1;
        }
    }
    if (cli.backend == "tcp") {
        for (auto& entry : campaigns) {
            entry.scenario.backend = deploy::Backend::kTcp;
        }
    }
    std::printf("failsig scenario runner — %zu campaigns, seed %llu%s\n\n", campaigns.size(),
                static_cast<unsigned long long>(seed),
                cli.backend == "tcp" ? ", backend tcp" : "");

    // --metrics-out turns observability on for every campaign. The report
    // bytes are unaffected (obs artifacts live outside to_json/to_csv).
    const bool obs_enabled = !cli.metrics_out_path.empty();
    if (obs_enabled) {
        for (auto& entry : campaigns) entry.scenario.obs.enabled = true;
    }

    // Campaigns own independent simulations, so they run on a worker pool
    // (--jobs, default hardware concurrency); reports keep campaign order.
    std::vector<scenario::Scenario> scenarios;
    for (const auto& entry : campaigns) scenarios.push_back(entry.scenario);
    const auto reports = scenario::run_scenarios(scenarios, cli.jobs);

    int mismatches = 0;
    for (std::size_t i = 0; i < campaigns.size(); ++i) {
        const auto& entry = campaigns[i];
        const auto& report = reports[i];
        const bool passed = report.all_invariants_passed();
        if (passed != entry.expect_all_pass) {
            ++mismatches;
            std::printf("UNEXPECTED OUTCOME for %s:\n", entry.scenario.name.c_str());
            for (const auto& inv : report.invariants) {
                if (!inv.passed) {
                    std::printf("  FAIL %s: %s\n", inv.name.c_str(), inv.detail.c_str());
                }
            }
            // Forensics for the unexpected outcome: deterministically re-run
            // that one campaign with the flight recorder on and dump each
            // node's recent timeline next to the report. Expected failures
            // (newtop/delay-surge) are documentation, not incidents — they
            // get no dump, so CI artifacts stay quiet on green runs.
            Scenario forensic = entry.scenario;
            forensic.obs.enabled = true;
            const auto rerun = scenario::run_scenario(forensic);
            std::string dump_path = entry.scenario.name + ".flight";
            for (auto& c : dump_path) {
                if (c == '/') c = '_';
            }
            if (scenario::write_file(dump_path, rerun.flight_dump)) {
                std::printf("  flight-recorder dump written to %s\n", dump_path.c_str());
            }
        }
    }

    scenario::print_table(reports);
    std::printf(
        "\nReading: newtop/delay-surge is SUPPOSED to fail no-false-exclusion — a\n"
        "timeout suspector mistakes delay for death and splits a healthy group;\n"
        "fsnewtop/delay-surge survives the identical surge with every invariant\n"
        "intact, because fail-signal suspicions cannot be false.\n");

    const std::string out = cli.out_path.empty() ? "scenario_report.json" : cli.out_path;
    if (!scenario::write_file(out, scenario::to_json(reports))) return 1;
    std::printf("\nreport written to %s\n", out.c_str());

    if (obs_enabled) {
        if (!scenario::write_file(cli.metrics_out_path, scenario::metrics_document(reports))) {
            return 1;
        }
        std::printf("metrics written to %s\n", cli.metrics_out_path.c_str());
    }

    if (mismatches > 0) {
        std::printf("%d campaign(s) deviated from their expected invariant outcome\n",
                    mismatches);
        return 1;
    }
    return 0;
}
