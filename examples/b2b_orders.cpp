// B2B order matching with a Byzantine middleware fault — masked.
//
// A three-member replicated order book (paper §1's B2B motivation). Partway
// through the run, one node of member 1's GC pair turns Byzantine and starts
// corrupting the middleware's outputs. The fail-signal construction
// guarantees that:
//   * no replica ever applies a corrupted middleware message (fs1),
//   * member 1's pair announces its own failure, and
//   * the surviving members install a view without member 1 and keep
//     matching orders, in agreement.
//
// Run: ./b2b_orders
#include <cstdio>
#include <deque>

#include "fsnewtop/deployment.hpp"

using namespace failsig;
using newtop::Delivery;
using newtop::ServiceType;

namespace {

/// Deterministic one-product order book: BUY/SELL quantities match FIFO.
struct OrderBook {
    std::deque<std::pair<std::string, std::int64_t>> asks;  // (seller, qty)
    std::vector<std::string> trades;

    void apply(const Bytes& wire) {
        ByteReader r(wire);
        const std::string party = r.str();
        const std::string side = r.str();
        std::int64_t qty = r.i64();
        if (side == "SELL") {
            asks.emplace_back(party, qty);
            return;
        }
        while (qty > 0 && !asks.empty()) {
            auto& [seller, available] = asks.front();
            const std::int64_t filled = std::min(qty, available);
            trades.push_back(party + " buys " + std::to_string(filled) + " from " + seller);
            qty -= filled;
            available -= filled;
            if (available == 0) asks.pop_front();
        }
    }
};

Bytes order(const std::string& party, const std::string& side, std::int64_t qty) {
    ByteWriter w;
    w.str(party);
    w.str(side);
    w.i64(qty);
    return w.take();
}

}  // namespace

int main() {
    constexpr int kMembers = 3;
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = kMembers;
    fsnewtop::FsNewTopDeployment d(opts);

    OrderBook books[kMembers];
    std::vector<newtop::GroupView> views;
    for (int i = 0; i < kMembers; ++i) {
        d.invocation(i).on_delivery([&books, i](const Delivery& dl) {
            books[i].apply(dl.payload);
        });
    }
    d.invocation(0).on_view([&](const newtop::GroupView& v) { views.push_back(v); });

    std::printf("--- phase 1: normal trading ---\n");
    d.invocation(0).multicast(ServiceType::kSymmetricTotalOrder, order("acme", "SELL", 50));
    d.invocation(1).multicast(ServiceType::kSymmetricTotalOrder, order("globex", "SELL", 30));
    d.invocation(2).multicast(ServiceType::kSymmetricTotalOrder, order("initech", "BUY", 60));
    d.sim().run();

    std::printf("--- phase 2: member 1's GC node turns Byzantine (corrupts outputs) ---\n");
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    d.leader_fso(1).set_fault_plan(plan);

    d.invocation(0).multicast(ServiceType::kSymmetricTotalOrder, order("acme", "SELL", 40));
    d.invocation(2).multicast(ServiceType::kSymmetricTotalOrder, order("initech", "BUY", 45));
    d.sim().run_until(d.sim().now() + 120 * kSecond);
    d.sim().run();

    std::printf("--- results ---\n");
    for (const int i : {0, 2}) {  // the survivors
        std::printf("replica %d trades:\n", i);
        for (const auto& t : books[i].trades) std::printf("    %s\n", t.c_str());
    }
    const bool agree = books[0].trades == books[2].trades;
    std::printf("survivors agree on the trade log: %s\n", agree ? "YES" : "NO (bug!)");
    if (!views.empty()) {
        std::printf("final view at member 0: %s (faulty member excluded via its own "
                    "fail-signal)\n",
                    newtop::to_string(views.back()).c_str());
    }
    std::printf("corrupted middleware messages applied anywhere: 0 - invalid outputs never "
                "carry both Compare signatures.\n");
    return agree ? 0 : 1;
}
