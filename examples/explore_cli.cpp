// explore_cli — drive the schedule-space explorer from the command line.
//
// Two modes:
//   * exploration (default): run N seeded episodes per (system, n, batch)
//     cell, judge every trace with the invariant checkers, shrink any
//     violation to a minimal reproducer, and exit non-zero if anything was
//     found — the shape the CI explore-smoke job gates on.
//   * replay (--replay FILE): re-run an emitted reproducer spec and check
//     it against its recorded expectation (reproduces the violation → exit
//     0; a spec with no recorded expectation passes iff all invariants
//     hold).
//
// Budget presets:
//   --budget smoke    small PR-gate budget (seconds; zero violations
//                     expected — any finding fails the build)
//   --budget nightly  wider sweep for scheduled runs (more cells, more
//                     episodes, deeper fault scripts)
//
// Everything is deterministic: same flags → byte-identical report at any
// --jobs value.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "explore/explore.hpp"
#include "explore/repro.hpp"
#include "explore/shrink.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"

using namespace failsig;

namespace {

void usage(const char* prog) {
    std::printf(
        "usage: %s [options]\n"
        "  --budget smoke|nightly   preset episode/grammar budget (default smoke);\n"
        "                           applied before all other flags, so explicit\n"
        "                           flags always override the preset\n"
        "  --episodes N             episodes per (system,n,batch) cell\n"
        "  --max-faults N           fault-script events per episode (0..N)\n"
        "  --horizon-ms N           fault script time horizon\n"
        "  --systems a,b,c          newtop,fsnewtop,pbft (default all)\n"
        "  --groups a,b,c           group sizes (default 3,4)\n"
        "  --batch a,b,c            batch sizes (default 1)\n"
        "  --seed N                 master seed (default 1)\n"
        "  --jobs N                 worker threads (default hardware)\n"
        "  --out PATH               write the JSON report\n"
        "  --repro-dir DIR          write minimal reproducer .scenario files\n"
        "                           (plus .trace evidence and .flight\n"
        "                           flight-recorder dumps)\n"
        "  --progress N             heartbeat on stderr every N episodes\n"
        "                           (episodes done, episodes/sec, violations);\n"
        "                           the report stays byte-identical\n"
        "  --no-shrink              report violations without minimizing\n"
        "  --churn                  add crash->recover->rejoin arcs to the\n"
        "                           grammar (periodic checkpoints on; NewTOP\n"
        "                           cells need --unsound-suspectors to draw it)\n"
        "  --unsound-suspectors     add NewTOP timeout suspectors to the grammar\n"
        "                           (explores the paper's known false-suspicion\n"
        "                           pathology; violations are then EXPECTED)\n"
        "  --exclusive-overlap      quarantine member faults away from dense\n"
        "                           traffic (loads/bursts) again, as the default\n"
        "                           grammar did before the view-synchronous\n"
        "                           flush; overlap is on by default now\n"
        "  --replay FILE            re-run a reproducer spec and verify it\n"
        "  --trace                  with --replay: dump the canonical trace\n",
        prog);
}

bool parse_u64_arg(const char* text, std::uint64_t& out) {
    // Digits only — same strictness as scenario::parse_cli: no sign, no
    // whitespace, no trailing garbage.
    if (*text == '\0') return false;
    for (const char* c = text; *c != '\0'; ++c) {
        if (*c < '0' || *c > '9') return false;
    }
    char* end = nullptr;
    errno = 0;
    out = std::strtoull(text, &end, 10);
    return errno == 0 && end != nullptr && *end == '\0';
}

/// Parses a bounded positive int ("--episodes 4294967296 must not wrap to
/// a silently-green zero-episode run").
bool parse_count_arg(const char* text, int max, int& out) {
    std::uint64_t u64 = 0;
    if (!parse_u64_arg(text, u64) || u64 == 0 || u64 > static_cast<std::uint64_t>(max)) {
        return false;
    }
    out = static_cast<int>(u64);
    return true;
}

bool split_list(const std::string& text, std::vector<std::string>& out) {
    std::string item;
    for (const char c : text + ",") {
        if (c == ',') {
            if (item.empty()) return false;
            out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    return !out.empty();
}

int replay(const std::string& path, bool dump_trace) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "explore: cannot read %s\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = explore::parse_spec(buffer.str());
    if (!parsed) {
        std::fprintf(stderr, "explore: %s: %s\n", path.c_str(),
                     parsed.error().message.c_str());
        return 1;
    }
    const auto& spec = parsed.value();
    std::printf("replaying %s (%s, n=%d, seed=%llu, tie_break_seed=%llu)\n",
                spec.scenario.name.c_str(), scenario::name_of(spec.scenario.system),
                spec.scenario.group_size,
                static_cast<unsigned long long>(spec.scenario.seed),
                static_cast<unsigned long long>(spec.scenario.tie_break_seed));

    std::string trace;
    const auto results = explore::run_and_evaluate(spec.scenario, {}, &trace);
    if (dump_trace) std::fputs(trace.c_str(), stdout);
    for (const auto& inv : results) {
        std::printf("  %-28s %s%s%s\n", inv.name.c_str(), inv.passed ? "pass" : "FAIL",
                    inv.detail.empty() ? "" : ": ", inv.detail.c_str());
    }

    if (!spec.expect_violation.empty()) {
        const auto* verdict = scenario::find_result(results, spec.expect_violation);
        const bool reproduced = verdict != nullptr && !verdict->passed;
        std::printf("expected violation '%s': %s\n", spec.expect_violation.c_str(),
                    reproduced ? "REPRODUCED" : "did NOT reproduce");
        return reproduced ? 0 : 1;
    }
    const bool all_pass = scenario::all_passed(results);
    std::printf("no recorded expectation: %s\n",
                all_pass ? "all invariants hold" : "invariant violations above");
    return all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    explore::ExploreConfig config;
    // Smoke preset: a PR-sized budget — all three systems, one group size
    // each that every system can run, a handful of episodes.
    config.group_sizes = {4};
    config.episodes_per_cell = 6;
    config.workload.msgs_per_member = 6;
    std::string out_path;
    std::string repro_dir;
    std::string replay_path;
    bool dump_trace = false;
    int progress_every = 0;

    // Presets apply FIRST, regardless of where --budget sits on the command
    // line, so `--episodes 200 --budget nightly` means "nightly, but 200
    // episodes" rather than silently discarding the explicit flag.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--budget") != 0) continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "explore: --budget needs a value\n");
            return 1;
        }
        const std::string preset = argv[i + 1];
        if (preset == "smoke") {
            config.group_sizes = {4};
            config.batch_sizes = {1};
            config.episodes_per_cell = 6;
            config.grammar.max_fault_events = 3;
        } else if (preset == "nightly") {
            config.group_sizes = {3, 4, 6};
            config.batch_sizes = {1, 8};
            config.episodes_per_cell = 40;
            config.grammar.max_fault_events = 5;
        } else {
            std::fprintf(stderr, "explore: unknown budget '%s'\n", preset.c_str());
            return 1;
        }
    }

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "explore: %s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        std::uint64_t u64 = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--budget") {
            value();  // validated and applied in the preset pass above
        } else if (arg == "--episodes") {
            if (!parse_count_arg(value(), 1000000, config.episodes_per_cell)) {
                std::fprintf(stderr, "explore: bad --episodes (want 1..1000000)\n");
                return 1;
            }
        } else if (arg == "--max-faults") {
            if (!parse_u64_arg(value(), u64) || u64 > 64) {
                std::fprintf(stderr, "explore: bad --max-faults (want 0..64)\n");
                return 1;
            }
            config.grammar.max_fault_events = static_cast<int>(u64);
        } else if (arg == "--horizon-ms") {
            if (!parse_u64_arg(value(), u64) || u64 == 0 || u64 > 3600000) {
                std::fprintf(stderr, "explore: bad --horizon-ms (want 1..3600000)\n");
                return 1;
            }
            config.grammar.horizon = static_cast<TimePoint>(u64) * kMillisecond;
        } else if (arg == "--systems") {
            std::vector<std::string> names;
            if (!split_list(value(), names)) {
                std::fprintf(stderr, "explore: bad --systems\n");
                return 1;
            }
            config.systems.clear();
            for (const auto& name : names) {
                if (name == "newtop") config.systems.push_back(explore::SystemKind::kNewTop);
                else if (name == "fsnewtop")
                    config.systems.push_back(explore::SystemKind::kFsNewTop);
                else if (name == "pbft") config.systems.push_back(explore::SystemKind::kPbft);
                else {
                    std::fprintf(stderr, "explore: unknown system '%s'\n", name.c_str());
                    return 1;
                }
            }
        } else if (arg == "--groups") {
            std::vector<std::string> items;
            if (!split_list(value(), items)) {
                std::fprintf(stderr, "explore: bad --groups\n");
                return 1;
            }
            config.group_sizes.clear();
            for (const auto& item : items) {
                if (!parse_u64_arg(item.c_str(), u64) || u64 == 0 || u64 > 64) {
                    std::fprintf(stderr, "explore: bad group size '%s'\n", item.c_str());
                    return 1;
                }
                config.group_sizes.push_back(static_cast<int>(u64));
            }
        } else if (arg == "--batch") {
            std::vector<std::string> items;
            if (!split_list(value(), items)) {
                std::fprintf(stderr, "explore: bad --batch\n");
                return 1;
            }
            config.batch_sizes.clear();
            for (const auto& item : items) {
                if (!parse_u64_arg(item.c_str(), u64) || u64 == 0 || u64 > 65536) {
                    std::fprintf(stderr, "explore: bad batch size '%s'\n", item.c_str());
                    return 1;
                }
                config.batch_sizes.push_back(static_cast<std::size_t>(u64));
            }
        } else if (arg == "--seed") {
            if (!parse_u64_arg(value(), u64)) {
                std::fprintf(stderr, "explore: bad --seed\n");
                return 1;
            }
            config.seed = u64;
        } else if (arg == "--jobs") {
            if (!parse_count_arg(value(), 4096, config.jobs)) {
                std::fprintf(stderr, "explore: bad --jobs (want 1..4096)\n");
                return 1;
            }
        } else if (arg == "--out") {
            out_path = value();
        } else if (arg == "--repro-dir") {
            repro_dir = value();
        } else if (arg == "--progress") {
            if (!parse_count_arg(value(), 1000000, progress_every)) {
                std::fprintf(stderr, "explore: bad --progress (want 1..1000000)\n");
                return 1;
            }
        } else if (arg == "--no-shrink") {
            config.shrink = false;
        } else if (arg == "--churn") {
            config.grammar.churn = true;
        } else if (arg == "--unsound-suspectors") {
            config.grammar.newtop_suspectors = true;
        } else if (arg == "--exclusive-overlap") {
            config.grammar.exclusive_traffic_and_member_faults = true;
        } else if (arg == "--replay") {
            replay_path = value();
        } else if (arg == "--trace") {
            dump_trace = true;
        } else {
            std::fprintf(stderr, "explore: unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    if (!replay_path.empty()) return replay(replay_path, dump_trace);

    std::size_t cells = 0;
    for (const auto system : config.systems) {
        for (const int n : config.group_sizes) {
            if (n >= deploy::traits_of(system).min_group_size) {
                cells += config.batch_sizes.size();
            }
        }
    }
    std::printf("failsig schedule-space explorer — %zu cells x %d episodes, seed %llu\n",
                cells, config.episodes_per_cell,
                static_cast<unsigned long long>(config.seed));

    if (progress_every > 0) {
        // Heartbeat on stderr (stdout stays machine-parseable): episodes
        // done, wall-clock rate, violations so far. Long nightly budgets
        // are otherwise silent for minutes at a time.
        const auto started = std::chrono::steady_clock::now();
        config.progress_every = progress_every;
        config.progress = [started](std::size_t done, std::size_t total,
                                    std::size_t violated) {
            const double secs =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                    .count();
            const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
            std::fprintf(stderr, "explore: %zu/%zu episodes, %.1f episodes/s, %zu violation(s)\n",
                         done, total, rate, violated);
        };
    }

    const auto report = explore::explore(config);

    std::size_t violated = 0;
    for (const auto& e : report.episodes) {
        if (e.violated) ++violated;
    }
    std::printf("%zu episodes run, %zu violated an invariant\n", report.episodes.size(),
                violated);
    for (const auto& v : report.violations) {
        std::printf("\nVIOLATION %s — invariant '%s' (%d events shrunk to %d, %d oracle runs)\n",
                    report.episodes[v.episode].scenario.name.c_str(), v.invariant.c_str(),
                    v.original_events, v.minimal_events, v.oracle_runs);
        std::fputs(v.spec.c_str(), stdout);
        if (!repro_dir.empty()) {
            std::string file = report.episodes[v.episode].scenario.name + ".scenario";
            for (char& c : file) {
                if (c == '/') c = '_';
            }
            const std::string path = repro_dir + "/" + file;
            if (scenario::write_file(path, v.spec)) {
                std::printf("reproducer written to %s\n", path.c_str());
            }
            // The evidence next to the claim: the canonical trace of the
            // minimal run, for diffing against a replay, and the flight
            // recorder's per-node timeline at the moment of violation.
            if (!v.minimal_trace.empty()) {
                scenario::write_file(path + ".trace", v.minimal_trace);
            }
            if (!v.flight_dump.empty()) {
                scenario::write_file(path + ".flight", v.flight_dump);
            }
        }
    }

    if (!out_path.empty() && !scenario::write_file(out_path, report.to_json())) return 1;

    if (!report.clean()) {
        std::printf("\n%zu violation(s) found — see reproducers above\n",
                    report.violations.size());
        return 1;
    }
    std::printf("no invariant violations in the explored schedule space\n");
    return 0;
}
