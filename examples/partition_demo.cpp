// Group splitting: crash-tolerant NewTOP vs FS-NewTOP under identical delay
// surges.
//
// The paper's core motivation (§1): timeout-based failure suspectors can be
// wrong, and wrong suspicions split connected, operational processes into
// sub-groups. Fail-signal suspicions cannot be wrong, so FS-NewTOP keeps one
// view through the same network weather. This demo runs both systems through
// an identical 1-second delay surge (no process fails!) and prints the
// resulting views.
//
// Run: ./partition_demo
#include <cstdio>

#include "fsnewtop/deployment.hpp"
#include "newtop/deployment.hpp"

using namespace failsig;

int main() {
    constexpr int kMembers = 3;
    constexpr Duration kSurge = 1 * kSecond;

    std::printf("--- crash-tolerant NewTOP (ping suspector, 200 ms timeout) ---\n");
    {
        newtop::NewTopOptions opts;
        opts.group_size = kMembers;
        opts.start_suspectors = true;
        opts.suspector.ping_interval = 50 * kMillisecond;
        opts.suspector.suspect_timeout = 200 * kMillisecond;
        newtop::NewTopDeployment d(opts);

        d.sim().run_until(500 * kMillisecond);
        std::printf("before surge: view at member 0 = %s\n",
                    newtop::to_string(d.gc(0).view()).c_str());

        d.faults().delay_surge(kSurge, d.sim().now() + 2 * kSecond);
        d.sim().run_until(d.sim().now() + 8 * kSecond);
        d.stop_suspectors();
        d.sim().run();

        for (int i = 0; i < kMembers; ++i) {
            std::printf("after surge:  view at member %d = %s\n", i,
                        newtop::to_string(d.gc(i).view()).c_str());
        }
        std::printf("no process failed, yet the group split: the suspector mistook delay for "
                    "death.\n\n");
    }

    std::printf("--- FS-NewTOP (fail-signal suspector; suspicions cannot be false) ---\n");
    {
        fsnewtop::FsNewTopOptions opts;
        opts.group_size = kMembers;
        fsnewtop::FsNewTopDeployment d(opts);

        d.invocation(0).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("before"));
        d.sim().run();
        std::printf("before surge: view at member 0 = %s\n",
                    newtop::to_string(d.gc_leader(0).view()).c_str());

        d.faults().delay_surge(kSurge, d.sim().now() + 2 * kSecond);
        d.invocation(1).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("during"));
        d.sim().run_until(d.sim().now() + 8 * kSecond);
        d.sim().run();

        for (int i = 0; i < kMembers; ++i) {
            std::printf("after surge:  view at member %d = %s%s\n", i,
                        newtop::to_string(d.gc_leader(i).view()).c_str(),
                        d.leader_fso(i).signalling() ? "  [fail-signalling?!]" : "");
        }
        std::printf("same surge, same group — one view. The FLP-dodging move: failures are\n"
                    "announced (fail-signals), never guessed (timeouts), so slow != dead.\n");
    }
    return 0;
}
