// Quickstart: turn ANY deterministic service into a fail-signal process.
//
// This is the paper's §2 construction in ~100 lines of application code:
//  1. implement fs::DeterministicService (here: a tiny replicated counter),
//  2. ask FsHost to pair it across two nodes with a synchronous link,
//  3. talk to it through an FsClient — and watch what the environment sees
//     when one of the two nodes turns Byzantine: never a wrong answer, only
//     the process's unique, double-signed fail-signal.
//
// Run: ./quickstart
#include <cstdio>

#include "fs/client.hpp"
#include "net/network.hpp"
#include "fs/process.hpp"

using namespace failsig;

namespace {

/// A deterministic counter: "add <v>" returns the running total to the
/// client reference packed into the request body.
class CounterService final : public fs::DeterministicService {
public:
    std::vector<fs::Outbound> process(const std::string& operation, const Bytes& body) override {
        if (operation != "add") return {};
        ByteReader r(body);
        const orb::ObjectRef reply_to = fs::decode_object_ref(r);
        total_ += r.i64();

        ByteWriter reply;
        reply.i64(total_);
        return {fs::Outbound(fs::Destination::plain(reply_to), "total", reply.take())};
    }

private:
    std::int64_t total_{0};
};

Bytes add_request(const orb::ObjectRef& reply_to, std::int64_t value) {
    ByteWriter w;
    fs::encode_object_ref(w, reply_to);
    w.i64(value);
    return w.take();
}

}  // namespace

int main() {
    // --- infrastructure: simulator, network, ORB domain, keys ------------
    sim::Simulation sim;
    net::SimNetwork net(sim, Rng(2026));
    orb::OrbDomain domain(sim, net, sim::CostModel{});
    crypto::KeyService keys(crypto::KeyService::Backend::kHmac);
    fs::FsDirectory directory;
    fs::FsHost host(fs::FsRuntime{net, domain, keys, directory});

    // --- 1+2: create the FS process "counter" on nodes 1 and 2 -----------
    auto counter = host.create_process("counter", NodeId{1}, NodeId{2},
                                       [] { return std::make_unique<CounterService>(); });

    // --- 3: a client on node 3 --------------------------------------------
    orb::Orb& client_orb = domain.create_orb(NodeId{3});
    fs::FsClient client(host.runtime(), client_orb, "cli");
    client.on_response([&](const std::string& src, const std::string& op, const Bytes& body) {
        ByteReader r(body);
        std::printf("[%8lld us] %s -> %s = %lld\n", static_cast<long long>(sim.now()),
                    src.c_str(), op.c_str(), static_cast<long long>(r.i64()));
    });
    client.on_fail_signal([&](const std::string& src) {
        std::printf("[%8lld us] !! FAIL-SIGNAL from '%s' — the process announced its own "
                    "failure; no timeout guessing was involved\n",
                    static_cast<long long>(sim.now()), src.c_str());
    });

    std::printf("--- phase 1: both nodes healthy ---\n");
    for (std::int64_t v = 1; v <= 3; ++v) {
        client.send("counter", "add", add_request(client.ref(), v));
    }
    sim.run();

    std::printf("--- phase 2: node 2 turns Byzantine (corrupts outputs) ---\n");
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    counter.follower->set_fault_plan(plan);

    for (std::int64_t v = 10; v <= 30; v += 10) {
        client.send("counter", "add", add_request(client.ref(), v));
    }
    sim.run_until(sim.now() + 30 * kSecond);

    std::printf("--- summary ---\n");
    std::printf("valid responses accepted: %llu (all arithmetically correct)\n",
                static_cast<unsigned long long>(client.responses_received()));
    std::printf("duplicate copies suppressed: %llu (each output arrives from both Compares)\n",
                static_cast<unsigned long long>(client.duplicates_suppressed()));
    std::printf("corrupted results accepted: 0 — by construction (fs1)\n");
    return 0;
}
