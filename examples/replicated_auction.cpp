// Replicated e-auction over FS-NewTOP total order.
//
// The paper's §1 motivates the middleware with "Internet-based dependable
// applications (e.g., e-auctions, B2B applications)". This example runs an
// auction service replicated across all group members: every bid is
// multicast with the symmetric total-order service, so all replicas process
// bids in the same order and agree on the winner — even though the
// middleware underneath is Byzantine-fault-prone (each GC is a fail-signal
// pair).
//
// Run: ./replicated_auction
#include <cstdio>
#include <map>

#include "fsnewtop/deployment.hpp"

using namespace failsig;
using newtop::Delivery;
using newtop::ServiceType;

namespace {

/// Deterministic auction state machine applied identically at every member.
struct AuctionState {
    std::string leader_bidder = "(none)";
    std::int64_t highest_bid = 0;
    int bids_processed = 0;

    void apply(const Bytes& bid_wire) {
        ByteReader r(bid_wire);
        const std::string bidder = r.str();
        const std::int64_t amount = r.i64();
        ++bids_processed;
        // Ties resolve to the earlier bid in the total order — which is the
        // same bid at every replica, because the order is the same.
        if (amount > highest_bid) {
            highest_bid = amount;
            leader_bidder = bidder;
        }
    }
};

Bytes bid(const std::string& bidder, std::int64_t amount) {
    ByteWriter w;
    w.str(bidder);
    w.i64(amount);
    return w.take();
}

}  // namespace

int main() {
    constexpr int kMembers = 3;
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = kMembers;
    fsnewtop::FsNewTopDeployment d(opts);

    AuctionState replicas[kMembers];
    for (int i = 0; i < kMembers; ++i) {
        d.invocation(i).on_delivery([&replicas, i](const Delivery& dl) {
            replicas[i].apply(dl.payload);
        });
    }

    // Bidders race from different members; amounts deliberately interleave.
    struct Submission {
        int member;
        const char* bidder;
        std::int64_t amount;
    };
    const Submission submissions[] = {
        {0, "alice", 100}, {1, "bob", 120},  {2, "carol", 110}, {0, "alice", 130},
        {2, "carol", 130} /* tie with alice's 130 */, {1, "bob", 125},
    };
    for (const auto& s : submissions) {
        d.invocation(s.member).multicast(ServiceType::kSymmetricTotalOrder,
                                         bid(s.bidder, s.amount));
    }
    d.sim().run();

    std::printf("auction closed after %d bids\n", replicas[0].bids_processed);
    for (int i = 0; i < kMembers; ++i) {
        std::printf("  replica %d: winner=%s at %lld (processed %d bids)\n", i,
                    replicas[i].leader_bidder.c_str(),
                    static_cast<long long>(replicas[i].highest_bid),
                    replicas[i].bids_processed);
    }

    const bool agree = replicas[0].leader_bidder == replicas[1].leader_bidder &&
                       replicas[1].leader_bidder == replicas[2].leader_bidder &&
                       replicas[0].highest_bid == replicas[2].highest_bid;
    std::printf("replicas agree on the winner: %s\n", agree ? "YES" : "NO (bug!)");
    std::printf("note: the 130/130 tie resolves identically everywhere because every replica\n"
                "sees the bids in the same total order - the property FS-NewTOP guarantees\n"
                "without any liveness assumption on the asynchronous network.\n");
    return agree ? 0 : 1;
}
