#!/usr/bin/env python3
"""Gate the perf-regression bench on its deterministic counters.

Usage: compare_bench.py CURRENT.json BASELINE.json

Diffs a failsig-bench-v1 report produced by `bench_perf_regression` against a
checked-in baseline and exits non-zero on any counter regression:

* Counters (integers, booleans, strings — payload copies, body encodes,
  verify ops / cache hits, network message/byte totals, batching counters,
  invariant verdicts) must match the baseline EXACTLY. They are pure
  functions of (mode, seed) on the deterministic simulator, so any change is
  a real behaviour change: either a regression, or an intended improvement
  that must be accompanied by a refreshed baseline in the same PR
  (regenerate with `bench_perf_regression --smoke --out <baseline>`).
* Simulated-time floats (mean_latency_ms, throughput_msg_s, ratios, ...)
  must match within a tiny relative tolerance — they derive from the same
  deterministic counters.
* Wall-clock / host-speed fields (wall_ms, *_ops_s, envelope_verify_cold_ms)
  are machine-dependent and only REPORTED, never gated.
* The batching section's amortization ratios are additionally held to the
  acceptance floors: verify_ops_ratio_b1_over_b8 >= 4 and
  delivered_per_round_ratio_b8_over_b1 >= 2.

Stdlib only; runs anywhere Python 3.8+ exists.
"""

import json
import sys

# Machine-dependent fields: informational, never gated.
TIMING_KEYS = {
    "wall_ms",
    "rsa_sign_ops_s",
    "rsa_verify_ops_s",
    "link_mac_tag_ops_s",
    "link_mac_verify_ops_s",
    "envelope_verify_cold_ms",
    "envelope_verify_memo_ops_s",
    "envelope_chain12_sign_ops_s",
    # The obs section's disabled/enabled wall-clock pair: what tracing costs
    # on a real machine is informational; the gated obs facts are the
    # trace-identical bool and the span-stage counters.
    "wall_ms_obs_off",
    "wall_ms_obs_on",
    # The tcp_wallclock section's real-socket numbers: throughput and latency
    # on localhost TCP depend on the machine and the thread interleaving.
    # The gated facts in that section are the offered/delivered counts.
    "wall_throughput_msg_s",
    "wall_ms_per_delivery",
}

# Floors the batching section must clear regardless of the baseline (the
# PR-4 acceptance criteria; see ISSUE/EXPERIMENTS.md).
THRESHOLDS = {
    ("batching", "verify_ops_ratio_b1_over_b8"): 4.0,
    ("batching", "delivered_per_round_ratio_b8_over_b1"): 2.0,
}

FLOAT_REL_TOL = 1e-6


def fmt_path(path):
    return "/".join(str(p) for p in path) or "<root>"


def refresh_command(baseline, baseline_path):
    # Full mode is the bench's no-flag default; only smoke has a flag.
    mode_flag = "--smoke " if baseline.get("mode", "smoke") == "smoke" else ""
    return (f"bench_perf_regression {mode_flag}--seed {baseline.get('seed', 42)} "
            f"--out {baseline_path}")


class Comparison:
    def __init__(self):
        self.failures = []
        self.notes = []

    def fail(self, path, message):
        self.failures.append(f"{fmt_path(path)}: {message}")

    def note(self, path, message):
        self.notes.append(f"{fmt_path(path)}: {message}")

    def compare(self, path, current, baseline):
        if isinstance(baseline, dict):
            if not isinstance(current, dict):
                self.fail(path, f"expected object, got {type(current).__name__}")
                return
            for key, base_value in baseline.items():
                if key not in current:
                    self.fail(path + [key], "counter missing from current report")
                    continue
                self.compare(path + [key], current[key], base_value)
            for key in current.keys() - baseline.keys():
                self.note(path + [key], "new field (not in baseline; not gated)")
        elif isinstance(baseline, list):
            if not isinstance(current, list):
                self.fail(path, f"expected array, got {type(current).__name__}")
                return
            self.compare_lists(path, current, baseline)
        else:
            self.compare_leaf(path, current, baseline)

    def compare_lists(self, path, current, baseline):
        # Arrays of named objects (sweep cells, batching cells) are matched
        # by name so reordering or appending cells never misreports drift in
        # unrelated cells; anything else is matched by index.
        by_name = all(isinstance(x, dict) and "name" in x for x in baseline)
        if by_name:
            current_by_name = {
                x["name"]: x for x in current if isinstance(x, dict) and "name" in x
            }
            for cell in baseline:
                name = cell["name"]
                if name not in current_by_name:
                    self.fail(path + [name], "cell missing from current report")
                    continue
                self.compare(path + [name], current_by_name[name], cell)
            for name in current_by_name.keys() - {c["name"] for c in baseline}:
                self.note(path + [name], "new cell (not in baseline; not gated)")
            return
        if len(current) != len(baseline):
            self.fail(path, f"array length {len(current)} != baseline {len(baseline)}")
            return
        for i, (cur, base) in enumerate(zip(current, baseline)):
            self.compare(path + [i], cur, base)

    def compare_leaf(self, path, current, baseline):
        key = str(path[-1]) if path else ""
        if key in TIMING_KEYS:
            if (
                isinstance(baseline, (int, float))
                and isinstance(current, (int, float))
                and baseline
            ):
                drift = (current - baseline) / baseline * 100.0
                self.note(path, f"timing {current:g} vs baseline {baseline:g} "
                                f"({drift:+.1f}%, informational)")
            return
        # bool is an int subtype in Python: check it first.
        if isinstance(baseline, bool) or isinstance(current, bool):
            if current is not baseline:
                self.fail(path, f"{current} != baseline {baseline}")
        elif isinstance(baseline, float) or isinstance(current, float):
            denom = max(abs(baseline), abs(current), 1e-12)
            if abs(current - baseline) / denom > FLOAT_REL_TOL:
                self.fail(path, f"{current!r} != baseline {baseline!r} "
                                f"(beyond {FLOAT_REL_TOL} relative)")
        elif current != baseline:
            self.fail(path, f"{current!r} != baseline {baseline!r}")


def check_thresholds(comparison, current):
    for (section, field), floor in THRESHOLDS.items():
        value = current.get(section, {}).get(field)
        if value is None:
            comparison.fail([section, field], "threshold field missing")
        elif not value >= floor:
            comparison.fail([section, field], f"{value:g} below acceptance floor {floor:g}")
        else:
            comparison.note([section, field], f"{value:g} >= floor {floor:g}")


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path, baseline_path = argv[1], argv[2]
    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    comparison = Comparison()
    for doc, which in ((current, current_path), (baseline, baseline_path)):
        if doc.get("format") != "failsig-bench-v1":
            print(f"error: {which} is not a failsig-bench-v1 report", file=sys.stderr)
            return 2
    for key in ("mode", "seed"):
        if current.get(key) != baseline.get(key):
            print(
                f"error: {key} mismatch (current {current.get(key)!r} vs baseline "
                f"{baseline.get(key)!r}); regenerate the baseline with the same flags:\n"
                f"  {refresh_command(baseline, baseline_path)}",
                file=sys.stderr,
            )
            return 2

    # "pr" is the provenance label of the run that produced each file; it is
    # expected to differ between a PR's run and an older baseline.
    baseline_gated = {k: v for k, v in baseline.items() if k != "pr"}
    comparison.compare([], {k: v for k, v in current.items() if k != "pr"}, baseline_gated)
    check_thresholds(comparison, current)

    for note in comparison.notes:
        print(f"note: {note}")
    if comparison.failures:
        print(f"\nFAIL: {len(comparison.failures)} counter regression(s) vs {baseline_path}:")
        for failure in comparison.failures:
            print(f"  {failure}")
        print(
            "\nIf this change is intended, refresh the baseline in the same PR:\n"
            f"  {refresh_command(baseline, baseline_path)}"
        )
        return 1
    print(f"OK: all gated counters match {baseline_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
