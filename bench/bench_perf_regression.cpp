// Perf-regression harness: the recorded performance trajectory of this repo.
//
// Runs (a) crypto microbenches — RSA sign/verify, HMAC tags, the pairwise
// link-MAC session authenticator, and SignedEnvelope build/verify with the
// incremental signed-region builder and the KeyService verify memo —
// (b) a zero-copy message-plane microbench plus pinned sweep cells over all
// three protocol stacks, reporting real wall-clock per cell next to the
// SimNetwork copy counters (bytes actually materialized vs logical wire
// bytes; body encodes per multicast), and (c) the batching pipeline's
// amortization measurement: the pinned FS-NewTOP n=4 cell run unbatched vs
// BatchConfig{max_requests=8}, with the signature-verify and
// delivered-requests-per-round ratios in the JSON — plus (d) the real-socket
// section: the open-loop load generator pointed at the TCP backend, giving
// wall-clock localhost throughput/latency for all three stacks.
//
// Output is BENCH_<PR>.json in the failsig-bench-v1 schema (documented in
// EXPERIMENTS.md). Every later PR appends its own BENCH_*.json next to this
// baseline so regressions are visible as a file diff in review. CI runs
// `--smoke` on every push and gates the deterministic counters against the
// checked-in smoke baseline with bench/compare_bench.py; timing fields stay
// informational — absolute numbers are machine-dependent, the counters are
// not.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/envelope.hpp"
#include "crypto/keys.hpp"
#include "deploy/deployment.hpp"
#include "net/network.hpp"
#include "orb/orb.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace failsig;

double now_ms() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double, std::milli>(clock::now().time_since_epoch()).count();
}

/// Runs `fn` `iters` times and returns (total_ms, ops_per_sec).
template <typename Fn>
std::pair<double, double> timed(int iters, Fn&& fn) {
    const double start = now_ms();
    for (int i = 0; i < iters; ++i) fn();
    const double total = now_ms() - start;
    return {total, total > 0 ? iters / (total / 1000.0) : 0.0};
}

// ---------------------------------------------------------------------------
// Crypto microbenches
// ---------------------------------------------------------------------------

void bench_crypto(scenario::JsonWriter& w, bool smoke, std::uint64_t seed) {
    const int sign_iters = smoke ? 20 : 200;
    const int verify_iters = smoke ? 50 : 500;
    const int mac_iters = smoke ? 2000 : 20000;

    crypto::KeyService keys(crypto::KeyService::Backend::kRsa, 512, seed);
    keys.register_principal("A");
    keys.register_principal("B");
    keys.register_link("A", "B");

    const Bytes msg = bytes_of("perf-regression crypto probe payload (64ish bytes) ........");
    const Bytes sig = keys.signer("A").sign(msg);

    const auto [sign_ms, sign_ops] = timed(sign_iters, [&] { (void)keys.signer("A").sign(msg); });
    const auto [verify_ms, verify_ops_s] =
        timed(verify_iters, [&] { (void)keys.verifier("A").verify(msg, sig); });

    const std::string link = crypto::KeyService::link_principal("A", "B");
    const Bytes mac = keys.signer(link).sign(msg);
    const auto [mac_ms, mac_ops] = timed(mac_iters, [&] { (void)keys.signer(link).sign(msg); });
    const auto [macv_ms, macv_ops] =
        timed(mac_iters, [&] { (void)keys.verifier(link).verify(msg, mac); });

    // Double-signed envelope: build once, then verify cold (fresh service,
    // real RSA per signature) vs through the memo (every later hop).
    crypto::SignedEnvelope env{msg};
    env.add_signature(keys.signer("A"));
    env.add_signature(keys.signer("B"));
    const int env_iters = smoke ? 50 : 500;
    crypto::KeyService cold(crypto::KeyService::Backend::kRsa, 512, seed);
    cold.register_principal("A");
    cold.register_principal("B");
    // Same seed => same keys for A/B in registration order, so the chain
    // verifies under `cold` too.
    const double cold_start = now_ms();
    const bool cold_ok = env.verify_chain(cold);
    const double cold_ms = now_ms() - cold_start;
    const auto [memo_ms, memo_ops] = timed(env_iters, [&] { (void)env.verify_chain(cold); });

    // Long chains exercise the incremental signed-region builder (the old
    // per-call serializer made this O(k²) in re-serialized bytes).
    const int chain_len = 12;
    crypto::KeyService hmac_keys(crypto::KeyService::Backend::kHmac, 512, seed);
    for (int i = 0; i < chain_len; ++i) hmac_keys.register_principal("P" + std::to_string(i));
    const int chain_iters = smoke ? 200 : 2000;
    const auto [chain_ms, chain_ops] = timed(chain_iters, [&] {
        crypto::SignedEnvelope chain{msg};
        for (int i = 0; i < chain_len; ++i) {
            chain.add_signature(hmac_keys.signer("P" + std::to_string(i)));
        }
    });

    w.key("crypto");
    w.begin_object();
    w.field("rsa_bits", 512);
    w.field("rsa_sign_ops_s", sign_ops);
    w.field("rsa_verify_ops_s", verify_ops_s);
    w.field("link_mac_tag_ops_s", mac_ops);
    w.field("link_mac_verify_ops_s", macv_ops);
    w.field("envelope_verify_cold_ms", cold_ms);
    w.field("envelope_verify_cold_ok", cold_ok);
    w.field("envelope_verify_memo_ops_s", memo_ops);
    w.field("envelope_chain12_sign_ops_s", chain_ops);
    w.field("keyservice_verify_ops", cold.verify_ops());
    w.field("keyservice_verify_cache_hits", cold.verify_cache_hits());
    w.end_object();
    std::printf("crypto: rsa sign %.0f/s verify %.0f/s | link-MAC tag %.0f/s | "
                "envelope memo-verify %.0f/s (real verifies: %llu, memo hits: %llu)\n",
                sign_ops, verify_ops_s, mac_ops, memo_ops,
                static_cast<unsigned long long>(cold.verify_ops()),
                static_cast<unsigned long long>(cold.verify_cache_hits()));
    (void)sign_ms;
    (void)verify_ms;
    (void)mac_ms;
    (void)macv_ms;
    (void)memo_ms;
    (void)chain_ms;
}

// ---------------------------------------------------------------------------
// Zero-copy message-plane microbench
// ---------------------------------------------------------------------------

class CountingServant final : public orb::Servant {
public:
    void dispatch(const orb::Request&) override { ++count_; }
    [[nodiscard]] std::uint64_t count() const { return count_; }

private:
    std::uint64_t count_{0};
};

void bench_message_plane(scenario::JsonWriter& w, bool smoke, std::uint64_t seed) {
    const int receivers = smoke ? 8 : 16;
    const int messages = smoke ? 200 : 2000;
    const std::size_t payload_size = 1024;

    sim::Simulation sim;
    net::SimNetwork net(sim, Rng(seed));
    orb::OrbDomain domain(sim, net, sim::CostModel{});

    orb::Orb& sender = domain.create_orb(NodeId{0});
    std::vector<CountingServant> servants(static_cast<std::size_t>(receivers));
    std::vector<orb::ObjectRef> targets;
    for (int i = 0; i < receivers; ++i) {
        orb::Orb& receiver = domain.create_orb(NodeId{static_cast<std::uint32_t>(i + 1)});
        targets.push_back(
            receiver.activate("sink", &servants[static_cast<std::size_t>(i)]));
    }

    const double start = now_ms();
    for (int m = 0; m < messages; ++m) {
        sender.invoke_fanout(targets, "bench", orb::Any{Bytes(payload_size, 0x42)});
    }
    sim.run();
    const double wall = now_ms() - start;

    std::uint64_t dispatched = 0;
    for (const auto& s : servants) dispatched += s.count();

    const double copied_per_delivered =
        net.messages_delivered() > 0
            ? static_cast<double>(net.payload_bytes_copied()) /
                  static_cast<double>(net.messages_delivered())
            : 0.0;
    const double bodies_per_multicast =
        messages > 0 ? static_cast<double>(net.payload_bodies_encoded()) / messages : 0.0;

    w.key("message_plane");
    w.begin_object();
    w.field("fanout_receivers", receivers);
    w.field("messages", messages);
    w.field("payload_size", static_cast<std::uint64_t>(payload_size));
    w.field("deliveries", dispatched);
    w.field("logical_bytes_sent", net.bytes_sent());
    w.field("payload_bytes_copied", net.payload_bytes_copied());
    w.field("payload_bodies_encoded", net.payload_bodies_encoded());
    w.field("bodies_per_multicast", bodies_per_multicast);
    w.field("copied_bytes_per_delivered_msg", copied_per_delivered);
    w.field("wall_ms", wall);
    w.end_object();
    std::printf("message plane: %d msgs x %d receivers | %.2f body encodes/multicast | "
                "%.0f copied bytes/delivered (logical %.0f) | %.0f ms\n",
                messages, receivers, bodies_per_multicast, copied_per_delivered,
                static_cast<double>(net.bytes_sent()) /
                    static_cast<double>(net.messages_delivered()),
                wall);
}

// ---------------------------------------------------------------------------
// Pinned sweep cells
// ---------------------------------------------------------------------------

void bench_sweep_cells(scenario::JsonWriter& w, bool smoke, std::uint64_t seed) {
    scenario::Scenario base;
    base.name = "perf";
    base.seed = seed;
    base.workload.msgs_per_member = smoke ? 10 : 30;
    base.workload.payload_size = 64;

    const std::vector<scenario::SystemKind> systems = {scenario::SystemKind::kNewTop,
                                                       scenario::SystemKind::kFsNewTop,
                                                       scenario::SystemKind::kPbft};
    const std::vector<int> sizes = smoke ? std::vector<int>{3, 4} : std::vector<int>{3, 4, 6};

    w.begin_array("sweep_cells");
    for (const auto system : systems) {
        for (const int n : sizes) {
            scenario::Scenario cell = base;
            cell.system = system;
            cell.group_size = n;
            cell.seed = scenario::derive_cell_seed(seed, system, n);
            cell.name = "perf/" + std::string(scenario::name_of(system)) + "/n" +
                        std::to_string(n);

            w.begin_object();
            w.field("name", cell.name);
            w.field("system", scenario::name_of(system));
            w.field("group_size", n);
            const auto traits = deploy::traits_of(system);
            if (n < traits.min_group_size) {
                w.field("status", "skipped");
                w.end_object();
                continue;
            }
            const double start = now_ms();
            const auto report = scenario::run_scenario(cell);
            const double wall = now_ms() - start;
            const auto& m = report.metrics;
            const double copied_per_delivered =
                m.network_messages > 0
                    ? static_cast<double>(m.payload_bytes_copied) /
                          static_cast<double>(m.network_messages)
                    : 0.0;
            w.field("status", "ok");
            w.field("throughput_msg_s", m.throughput_msg_s);
            w.field("mean_latency_ms", m.mean_latency_ms);
            w.field("observed_deliveries", m.observed_deliveries);
            w.field("expected_deliveries", m.expected_deliveries);
            w.field("network_messages", m.network_messages);
            w.field("network_bytes", m.network_bytes);
            w.field("payload_bytes_copied", m.payload_bytes_copied);
            w.field("payload_bodies_encoded", m.payload_bodies_encoded);
            w.field("copied_bytes_per_network_msg", copied_per_delivered);
            w.field("all_invariants_passed", report.all_invariants_passed());
            w.field("wall_ms", wall);
            w.end_object();
            std::printf("cell %-22s %5.1f msg/s | copied/msg %7.1f (wire %7.1f) | %.0f ms\n",
                        cell.name.c_str(), m.throughput_msg_s, copied_per_delivered,
                        m.network_messages > 0
                            ? static_cast<double>(m.network_bytes) /
                                  static_cast<double>(m.network_messages)
                            : 0.0,
                        wall);
        }
    }
    w.end_array();
}

// ---------------------------------------------------------------------------
// Batching pipeline: the amortization measurement
// ---------------------------------------------------------------------------

void bench_batching(scenario::JsonWriter& w, bool smoke, std::uint64_t seed) {
    // Pinned cell: FS-NewTOP at n=4 under a dense workload (1 ms between a
    // member's submissions), run with batching off and with batches of up to
    // 8. Both runs share one derived seed, so they face the identical
    // network schedule and the comparison isolates the pipeline.
    scenario::Scenario base;
    base.name = "batch";
    base.system = scenario::SystemKind::kFsNewTop;
    base.group_size = 4;
    base.seed = scenario::derive_cell_seed(seed, scenario::SystemKind::kFsNewTop, 4);
    base.workload.msgs_per_member = smoke ? 16 : 32;
    base.workload.payload_size = 64;
    base.workload.send_interval = 1 * kMillisecond;
    base.batch.max_bytes = 1 << 20;
    base.batch.flush_after = 20 * kMillisecond;

    w.key("batching");
    w.begin_object();
    w.field("system", "FS-NewTOP");
    w.field("group_size", 4);
    w.field("msgs_per_member", base.workload.msgs_per_member);
    w.field("send_interval_us", static_cast<std::int64_t>(base.workload.send_interval));

    const std::size_t batch_sizes[2] = {1, 8};
    std::uint64_t verify_ops[2] = {0, 0};
    double delivered_per_round[2] = {0, 0};
    w.begin_array("cells");
    for (int i = 0; i < 2; ++i) {
        scenario::Scenario cell = base;
        cell.batch.max_requests = batch_sizes[i];
        cell.name = "batch/FS-NewTOP/n4/b" + std::to_string(batch_sizes[i]);

        const double start = now_ms();
        const auto report = scenario::run_scenario(cell);
        const double wall = now_ms() - start;
        const auto& m = report.metrics;
        // An "ordered unit" is what one protocol round orders: a batch frame
        // when batching is on, a bare request when it is off.
        const std::uint64_t ordered_units =
            m.batches_formed > 0 ? m.batches_formed : m.messages_sent;
        verify_ops[i] = m.verify_ops;
        delivered_per_round[i] =
            ordered_units > 0
                ? static_cast<double>(m.observed_deliveries) /
                      static_cast<double>(ordered_units)
                : 0.0;

        w.begin_object();
        w.field("name", cell.name);
        w.field("batch_max_requests", static_cast<std::uint64_t>(batch_sizes[i]));
        w.field("status", "ok");
        w.field("verify_ops", m.verify_ops);
        w.field("verify_cache_hits", m.verify_cache_hits);
        w.field("requests_submitted", m.requests_submitted);
        w.field("requests_batched", m.requests_batched);
        w.field("batches_formed", m.batches_formed);
        w.field("flushes_on_deadline", m.flushes_on_deadline);
        w.field("ordered_units", ordered_units);
        w.field("observed_deliveries", m.observed_deliveries);
        w.field("expected_deliveries", m.expected_deliveries);
        w.field("network_messages", m.network_messages);
        w.field("network_bytes", m.network_bytes);
        w.field("delivered_requests_per_round", delivered_per_round[i]);
        w.field("mean_latency_ms", m.mean_latency_ms);
        w.field("throughput_msg_s", m.throughput_msg_s);
        w.field("all_invariants_passed", report.all_invariants_passed());
        w.field("wall_ms", wall);
        w.end_object();
        std::printf("batch b=%zu: verify_ops %llu | %.1f delivered req/round | "
                    "%llu rounds for %llu reqs | %.0f ms\n",
                    batch_sizes[i], static_cast<unsigned long long>(m.verify_ops),
                    delivered_per_round[i], static_cast<unsigned long long>(ordered_units),
                    static_cast<unsigned long long>(m.messages_sent), wall);
    }
    w.end_array();

    // The acceptance ratios (compare_bench.py gates on these): batching 8
    // requests per round must cut signature verifies >= 4x and raise
    // delivered-requests-per-round >= 2x.
    const double verify_ratio =
        verify_ops[1] > 0
            ? static_cast<double>(verify_ops[0]) / static_cast<double>(verify_ops[1])
            : 0.0;
    const double round_ratio =
        delivered_per_round[0] > 0 ? delivered_per_round[1] / delivered_per_round[0] : 0.0;
    w.field("verify_ops_ratio_b1_over_b8", verify_ratio);
    w.field("delivered_per_round_ratio_b8_over_b1", round_ratio);
    w.end_object();
    std::printf("batching: verify amortization %.2fx, delivered/round %.2fx\n", verify_ratio,
                round_ratio);
}

// ---------------------------------------------------------------------------
// Checkpoint/recovery counters: the crash -> recover -> rejoin arc
// ---------------------------------------------------------------------------

void bench_recovery(scenario::JsonWriter& w, bool smoke, std::uint64_t seed) {
    // One pinned churn cell per stack on the deterministic simulator: two
    // settled workload rounds, a crash, a burst the victim misses, the
    // rejoin, and post-rejoin traffic. Every emitted field is a pure
    // function of the seed, so compare_bench.py gates them exactly:
    // checkpoints taken, PBFT log slots truncated and the log's high-water
    // mark (the boundedness witness), state transfers served, rejoins
    // completed, and the flush-eviction gap count (soundness witness,
    // must stay 0).
    const std::vector<scenario::SystemKind> systems = {scenario::SystemKind::kNewTop,
                                                       scenario::SystemKind::kFsNewTop,
                                                       scenario::SystemKind::kPbft};
    w.begin_array("recovery");
    for (const auto system : systems) {
        const int n = system == scenario::SystemKind::kPbft ? 4 : 3;
        scenario::Scenario cell;
        cell.system = system;
        cell.group_size = n;
        cell.seed = scenario::derive_cell_seed(seed, system, n);
        cell.name = "recovery/" + std::string(scenario::name_of(system)) + "/n" +
                    std::to_string(n);
        cell.checkpoint_interval = 3;
        cell.workload.msgs_per_member = smoke ? 4 : 8;
        const int victim = n - 1;
        cell.timeline.push_back(scenario::ScenarioEvent::crash(600 * kMillisecond, victim));
        cell.timeline.push_back(scenario::ScenarioEvent::burst(1500 * kMillisecond, 0, 3));
        cell.timeline.push_back(scenario::ScenarioEvent::recover(4 * kSecond, victim));
        cell.timeline.push_back(scenario::ScenarioEvent::burst(8 * kSecond, 0, 2));
        cell.deadline = 11 * kSecond;
        if (system == scenario::SystemKind::kNewTop) {
            cell.start_suspectors = true;
            cell.suspector.ping_interval = 50 * kMillisecond;
            cell.suspector.suspect_timeout = 300 * kMillisecond;
        }
        if (system == scenario::SystemKind::kFsNewTop) {
            cell.placement = fsnewtop::Placement::kFull;
        }

        const double start = now_ms();
        const auto report = scenario::run_scenario(cell);
        const double wall = now_ms() - start;
        const auto& r = report.recovery;
        w.begin_object();
        w.field("name", cell.name);
        w.field("system", scenario::name_of(system));
        w.field("group_size", n);
        w.field("checkpoints_taken", r.checkpoints_taken);
        w.field("log_slots_truncated", r.log_slots_truncated);
        w.field("log_slots_retained", r.log_slots_retained);
        w.field("state_transfers_served", r.state_transfers_served);
        w.field("rejoins_completed", r.rejoins_completed);
        w.field("flush_log_evictions", r.flush_log_evictions);
        w.field("flush_eviction_gaps", r.flush_eviction_gaps);
        w.field("all_invariants_passed", report.all_invariants_passed());
        w.field("wall_ms", wall);
        w.end_object();
        std::printf("recovery %-22s %llu checkpoints | %llu slots truncated "
                    "(high-water %llu) | %llu rejoins | invariants %s | %.0f ms\n",
                    cell.name.c_str(), static_cast<unsigned long long>(r.checkpoints_taken),
                    static_cast<unsigned long long>(r.log_slots_truncated),
                    static_cast<unsigned long long>(r.log_slots_retained),
                    static_cast<unsigned long long>(r.rejoins_completed),
                    report.all_invariants_passed() ? "ok" : "FAIL", wall);
    }
    w.end_array();
}

// ---------------------------------------------------------------------------
// Real-socket wall clock: the three stacks on localhost TCP
// ---------------------------------------------------------------------------

void bench_tcp_wallclock(scenario::JsonWriter& w, bool smoke, std::uint64_t seed) {
    // The PR-4 open-loop load generator pointed at the TCP backend: same
    // Scenario, same Poisson arrivals, real sockets on localhost. Offered
    // load and delivery counts stay pure functions of the seed (fault-free
    // runs deliver everything), so they are honest facts; everything derived
    // from *when* frames landed is machine- and interleaving-dependent and
    // is reported through the informational wall-clock fields only. This is
    // deliberately not a gated section — it is the repo's first real-time
    // throughput/latency look at NewTOP vs FS-NewTOP vs PBFT.
    const std::vector<scenario::SystemKind> systems = {scenario::SystemKind::kNewTop,
                                                       scenario::SystemKind::kFsNewTop,
                                                       scenario::SystemKind::kPbft};
    w.begin_array("tcp_wallclock");
    for (const auto system : systems) {
        const int n = 4;  // one size valid for all three stacks (PBFT needs >= 4)
        scenario::Scenario cell;
        cell.system = system;
        cell.group_size = n;
        cell.backend = deploy::Backend::kTcp;
        cell.seed = scenario::derive_cell_seed(seed, system, n);
        cell.name = "tcp/" + std::string(scenario::name_of(system)) + "/n" +
                    std::to_string(n);
        cell.workload.msgs_per_member = 0;  // all input comes from the load phase
        scenario::LoadSpec load;
        load.rate = smoke ? 200.0 : 500.0;
        load.duration = smoke ? 250 * kMillisecond : 2 * kSecond;
        cell.timeline.push_back(
            scenario::ScenarioEvent::load(10 * kMillisecond, load));

        w.begin_object();
        w.field("name", cell.name);
        w.field("system", scenario::name_of(system));
        w.field("group_size", n);
        w.field("backend", "tcp");
        const double start = now_ms();
        const auto report = scenario::run_scenario(cell);
        const double wall = now_ms() - start;
        const auto& m = report.metrics;
        const double wall_tput =
            wall > 0 ? static_cast<double>(m.observed_deliveries) / (wall / 1000.0) : 0.0;
        const double ms_per_delivery =
            m.observed_deliveries > 0 ? wall / static_cast<double>(m.observed_deliveries)
                                      : 0.0;
        w.field("status", "ok");
        w.field("requests_offered", m.messages_sent);
        w.field("observed_deliveries", m.observed_deliveries);
        w.field("expected_deliveries", m.expected_deliveries);
        w.field("all_invariants_passed", report.all_invariants_passed());
        w.field("wall_ms", wall);
        w.field("wall_throughput_msg_s", wall_tput);
        w.field("wall_ms_per_delivery", ms_per_delivery);
        w.end_object();
        std::printf("tcp  %-22s %6.0f deliveries/s wall | %.3f ms/delivery | "
                    "%llu/%llu delivered | %.0f ms\n",
                    cell.name.c_str(), wall_tput, ms_per_delivery,
                    static_cast<unsigned long long>(m.observed_deliveries),
                    static_cast<unsigned long long>(m.expected_deliveries), wall);
    }
    w.end_array();
}

// ---------------------------------------------------------------------------
// Observability: disabled-instrumentation overhead and span-stage counters
// ---------------------------------------------------------------------------

void bench_obs(scenario::JsonWriter& w, bool smoke, std::uint64_t seed,
               const std::string& metrics_out) {
    // Pinned cell: FS-NewTOP at n=4 — the stack that exercises every span
    // stage plus the crypto and holdback instruments. The gated facts are
    // counters: the canonical trace must be byte-identical with obs on and
    // off (stamps are recording-only), and the span-stage counts are pure
    // functions of the cell. The wall-clock pair (obs off vs on) stays
    // informational, but it is what "disabled tracing costs ~one branch"
    // looks like on a real machine.
    scenario::Scenario cell;
    cell.name = "obs/FS-NewTOP/n4";
    cell.system = scenario::SystemKind::kFsNewTop;
    cell.group_size = 4;
    cell.seed = scenario::derive_cell_seed(seed, scenario::SystemKind::kFsNewTop, 4);
    cell.workload.msgs_per_member = smoke ? 10 : 30;
    cell.workload.payload_size = 64;

    const double off_start = now_ms();
    const auto off = scenario::run_scenario(cell);
    const double off_ms = now_ms() - off_start;

    scenario::Scenario traced = cell;
    traced.obs.enabled = true;
    const double on_start = now_ms();
    const auto on = scenario::run_scenario(traced);
    const double on_ms = now_ms() - on_start;

    const bool trace_identical = off.trace.canonical() == on.trace.canonical();

    w.key("obs");
    w.begin_object();
    w.field("cell", cell.name);
    w.field("trace_identical_with_obs", trace_identical);
    w.field("all_invariants_passed", on.all_invariants_passed());
    w.key("span_stage_counters");
    w.begin_object();
    for (const auto& [name, value] : on.obs_counters) {
        if (name.rfind("span.stage.", 0) == 0) w.field(name, value);
    }
    w.end_object();
    w.field("wall_ms_obs_off", off_ms);
    w.field("wall_ms_obs_on", on_ms);
    w.end_object();
    std::printf("obs: trace identical with tracing %s | obs-off %.0f ms, obs-on %.0f ms\n",
                trace_identical ? "yes" : "NO (REGRESSION)", off_ms, on_ms);

    if (!metrics_out.empty()) {
        if (scenario::write_file(metrics_out, on.metrics_json + "\n")) {
            std::printf("obs: metrics snapshot written to %s\n", metrics_out.c_str());
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::uint64_t seed = 42;
    std::string out_path = "BENCH_PR4.json";
    std::string metrics_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (arg == "--help") {
            std::printf("usage: bench_perf_regression [--smoke] [--seed N] [--out PATH]\n"
                        "       [--metrics-out PATH]  write the obs cell's\n"
                        "       failsig-metrics-v1 snapshot to PATH\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return 1;
        }
    }

    std::printf("perf-regression bench (%s mode), seed %llu\n", smoke ? "smoke" : "full",
                static_cast<unsigned long long>(seed));

    scenario::JsonWriter w;
    w.begin_object();
    w.field("format", "failsig-bench-v1");
    w.field("pr", "PR4");
    w.field("mode", smoke ? "smoke" : "full");
    w.field("seed", seed);
    bench_crypto(w, smoke, seed);
    bench_message_plane(w, smoke, seed);
    bench_sweep_cells(w, smoke, seed);
    bench_tcp_wallclock(w, smoke, seed);
    bench_batching(w, smoke, seed);
    bench_recovery(w, smoke, seed);
    bench_obs(w, smoke, seed, metrics_out);
    w.end_object();

    if (!scenario::write_file(out_path, w.take() + "\n")) return 1;
    std::printf("bench report written to %s\n", out_path.c_str());
    return 0;
}
