// FIG8 — reproduces paper Figure 8: throughput vs message size for a fixed
// 10-member group.
//
// Expected shape (paper §4): both systems' throughput decreases with
// increasing message size; FS-NewTOP's throughput deficit is roughly
// constant in absolute terms (~30 msg/s in the paper) across sizes.
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace failsig;
    using namespace failsig::bench;

    const auto cli = scenario::parse_cli(
        argc, argv, "  (--groups selects the fixed group size; --payload is ignored:\n"
                    "   this bench sweeps message size itself)\n");
    if (cli.help) return 0;
    if (cli.error) return 1;
    const int group = cli.group_sizes.empty() ? 10 : cli.group_sizes.front();

    print_header("FIG8: throughput vs message size (10 members)",
                 "both fall with size; FS absolute gap roughly constant across sizes");

    std::vector<ExperimentConfig> configs;
    for (int kb = 0; kb <= 10; ++kb) {
        ExperimentConfig cfg;
        cfg.group_size = group;
        cfg.msgs_per_member = cli.msgs_per_member > 0 ? cli.msgs_per_member : 30;
        if (cli.seed_set) cfg.seed = cli.seed;
        // Run at saturation so throughput measures capacity (as the paper's
        // fixed-group, size-swept runs do), not the injection rate.
        cfg.send_interval = 40 * kMillisecond;
        cfg.payload_size = static_cast<std::size_t>(kb) * 1024;
        if (cfg.payload_size < 8) cfg.payload_size = 8;  // room for the latency tag
        cfg.system = System::kNewTop;
        configs.push_back(cfg);
        cfg.system = System::kFsNewTop;
        configs.push_back(cfg);
    }
    const auto reports = run_experiment_reports(configs, cli.jobs);

    std::printf("%-10s %-18s %-18s %-14s\n", "size", "NewTOP(msg/s)", "FS-NewTOP(msg/s)",
                "gap(msg/s)");
    for (int kb = 0; kb <= 10; ++kb) {
        const auto newtop = to_result(reports[static_cast<std::size_t>(2 * kb)]);
        const auto fsnewtop = to_result(reports[static_cast<std::size_t>(2 * kb + 1)]);

        std::printf("%2dk        %-18.1f %-18.1f %-14.1f%s\n", kb, newtop.throughput_msg_s,
                    fsnewtop.throughput_msg_s,
                    newtop.throughput_msg_s - fsnewtop.throughput_msg_s,
                    fsnewtop.fail_signals ? "  [UNEXPECTED FAIL-SIGNALS]" : "");
    }
    return maybe_write_report(cli, reports) ? 0 : 1;
}
