// FIG7 — reproduces paper Figure 7: symmetric-total-order throughput vs
// group size (3-byte messages, thread pool of 10).
//
// Expected shape (paper §4): both systems' throughput RISES from n=2,
// peaks around the thread-pool-scale group size, and drops for groups
// larger than ~10; FS-NewTOP's overhead is 20-30% for small groups, rising
// to ~100% for groups with more than 10 members.
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace failsig;
    using namespace failsig::bench;

    const auto cli = scenario::parse_cli(argc, argv);
    if (cli.help) return 0;
    if (cli.error) return 1;
    std::vector<int> groups = cli.group_sizes;
    if (groups.empty()) {
        for (int n = 2; n <= 15; ++n) groups.push_back(n);
    }

    // --batch a,b,c crosses in the ordering pipeline's batch sizes (1 =
    // off, the paper's shape); each batch value gets its own table block.
    std::vector<std::size_t> batches = cli.batch_sizes;
    if (batches.empty()) batches.push_back(1);

    print_header("FIG7: throughput vs group size (3-byte messages)",
                 "both rise from n=2, peak near 10, drop beyond; FS overhead 20-30% small n, "
                 "~100% for n>10");

    std::vector<ExperimentConfig> configs;
    for (const std::size_t b : batches) {
        for (const int n : groups) {
            ExperimentConfig cfg;
            cfg.group_size = n;
            cfg.msgs_per_member = cli.msgs_per_member > 0 ? cli.msgs_per_member : 40;
            cfg.payload_size = cli.payload_size > 0 ? cli.payload_size : 3;
            if (cli.seed_set) cfg.seed = cli.seed;
            cfg.batch.max_requests = b;
            cfg.system = System::kNewTop;
            configs.push_back(cfg);
            cfg.system = System::kFsNewTop;
            configs.push_back(cfg);
        }
    }
    const auto reports = run_experiment_reports(configs, cli.jobs);

    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        if (batches.size() > 1) {
            std::printf("--- batch max_requests = %zu %s\n", batches[bi],
                        batches[bi] <= 1 ? "(batching off)" : "");
        }
        std::printf("%-8s %-18s %-18s %-12s\n", "members", "NewTOP(msg/s)",
                    "FS-NewTOP(msg/s)", "overhead");
        for (std::size_t g = 0; g < groups.size(); ++g) {
            const int n = groups[g];
            const std::size_t row = 2 * (bi * groups.size() + g);
            const auto newtop = to_result(reports[row]);
            const auto fsnewtop = to_result(reports[row + 1]);

            const double overhead =
                fsnewtop.throughput_msg_s > 0
                    ? 100.0 * (newtop.throughput_msg_s - fsnewtop.throughput_msg_s) /
                          fsnewtop.throughput_msg_s
                    : 0.0;
            std::printf("%-8d %-18.1f %-18.1f %6.0f%%%s\n", n, newtop.throughput_msg_s,
                        fsnewtop.throughput_msg_s, overhead,
                        fsnewtop.fail_signals ? "  [UNEXPECTED FAIL-SIGNALS]" : "");
        }
    }
    return maybe_write_report(cli, reports) ? 0 : 1;
}
