// FIG7 — reproduces paper Figure 7: symmetric-total-order throughput vs
// group size (3-byte messages, thread pool of 10).
//
// Expected shape (paper §4): both systems' throughput RISES from n=2,
// peaks around the thread-pool-scale group size, and drops for groups
// larger than ~10; FS-NewTOP's overhead is 20-30% for small groups, rising
// to ~100% for groups with more than 10 members.
#include "harness.hpp"

int main() {
    using namespace failsig;
    using namespace failsig::bench;

    print_header("FIG7: throughput vs group size (3-byte messages)",
                 "both rise from n=2, peak near 10, drop beyond; FS overhead 20-30% small n, "
                 "~100% for n>10");

    std::printf("%-8s %-18s %-18s %-12s\n", "members", "NewTOP(msg/s)", "FS-NewTOP(msg/s)",
                "overhead");
    for (int n = 2; n <= 15; ++n) {
        ExperimentConfig cfg;
        cfg.group_size = n;
        cfg.msgs_per_member = 40;
        cfg.payload_size = 3;

        cfg.system = System::kNewTop;
        const auto newtop = run_experiment(cfg);
        cfg.system = System::kFsNewTop;
        const auto fsnewtop = run_experiment(cfg);

        const double overhead =
            fsnewtop.throughput_msg_s > 0
                ? 100.0 * (newtop.throughput_msg_s - fsnewtop.throughput_msg_s) /
                      fsnewtop.throughput_msg_s
                : 0.0;
        std::printf("%-8d %-18.1f %-18.1f %6.0f%%%s\n", n, newtop.throughput_msg_s,
                    fsnewtop.throughput_msg_s, overhead,
                    fsnewtop.fail_signals ? "  [UNEXPECTED FAIL-SIGNALS]" : "");
    }
    return 0;
}
