// AB4 — failure-detection ablation.
//
// Two contrasts the paper argues qualitatively, measured here:
//  (a) FS-NewTOP detection: time from fault injection at one pair node until
//      the surviving members install the view excluding the faulty member,
//      as a function of the pair-link bound δ and the compare slack. No
//      timeout guessing against the asynchronous network is involved.
//  (b) NewTOP (crash-tolerant) detection: time until the survivors' view
//      excludes a crashed member, as a function of the ping suspector's
//      timeout — plus the false-suspicion rate the same timeout produces
//      under a delay surge with NO failure (the cost of guessing).
#include "fsnewtop/deployment.hpp"
#include "newtop/deployment.hpp"
#include "scenario/cli.hpp"
#include "scenario/report.hpp"

#include <cstdio>

using namespace failsig;

namespace {

/// (a) FS-NewTOP: inject output corruption at member 2's follower node at
/// t=inject; return time until members 0 and 1 both install {0,1}.
Duration fs_detection_time(Duration delta, Duration slack, std::uint64_t seed) {
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = 3;
    opts.seed = seed;
    opts.fs_config.delta = delta;
    opts.fs_config.compare_slack = slack;
    fsnewtop::FsNewTopDeployment d(opts);

    // Warm up with traffic, then turn node faulty.
    for (int i = 0; i < 3; ++i) {
        d.invocation(i).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("warm"));
    }
    d.sim().run();

    const TimePoint inject = d.sim().now();
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    d.follower_fso(2).set_fault_plan(plan);
    d.invocation(0).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("trigger"));

    TimePoint detected = -1;
    while (d.sim().now() < inject + 120 * kSecond) {
        if (!d.sim().step()) break;
        if (d.gc_leader(0).view().members == std::vector<newtop::MemberId>{0, 1} &&
            d.gc_leader(1).view().members == std::vector<newtop::MemberId>{0, 1}) {
            detected = d.sim().now();
            break;
        }
    }
    return detected < 0 ? -1 : detected - inject;
}

/// (b) NewTOP: crash member 2 at t=crash; return detection time, or measure
/// false suspicions under a delay surge when nothing crashed.
Duration newtop_detection_time(Duration suspect_timeout, std::uint64_t seed) {
    newtop::NewTopOptions opts;
    opts.group_size = 3;
    opts.seed = seed;
    opts.start_suspectors = true;
    opts.suspector.ping_interval = 50 * kMillisecond;
    opts.suspector.suspect_timeout = suspect_timeout;
    newtop::NewTopDeployment d(opts);

    d.sim().run_until(300 * kMillisecond);
    const TimePoint crash = d.sim().now();
    d.faults().block(d.node_of(2), d.node_of(0));
    d.faults().block(d.node_of(2), d.node_of(1));

    TimePoint detected = -1;
    while (d.sim().now() < crash + 60 * kSecond) {
        d.sim().run_until(d.sim().now() + 10 * kMillisecond);
        if (d.gc(0).view().members == std::vector<newtop::MemberId>{0, 1} &&
            d.gc(1).view().members == std::vector<newtop::MemberId>{0, 1}) {
            detected = d.sim().now();
            break;
        }
    }
    d.stop_suspectors();
    return detected < 0 ? -1 : detected - crash;
}

bool newtop_splits_under_surge(Duration suspect_timeout, Duration surge, std::uint64_t seed) {
    newtop::NewTopOptions opts;
    opts.group_size = 3;
    opts.seed = seed;
    opts.start_suspectors = true;
    opts.suspector.ping_interval = 50 * kMillisecond;
    opts.suspector.suspect_timeout = suspect_timeout;
    newtop::NewTopDeployment d(opts);

    d.sim().run_until(300 * kMillisecond);
    d.faults().delay_surge(surge, d.sim().now() + 3 * kSecond);
    d.sim().run_until(d.sim().now() + 8 * kSecond);
    d.stop_suspectors();
    d.sim().run();
    return d.gc(0).view().members.size() < 3 || d.gc(1).view().members.size() < 3 ||
           d.gc(2).view().members.size() < 3;
}

}  // namespace

int main(int argc, char** argv) {
    const auto cli = scenario::parse_cli(
        argc, argv,
        "  (--groups/--messages/--payload/--jobs are not used by this bench:\n"
        "   its measurement loops step one simulation at a time)\n");
    if (cli.help) return 0;
    if (cli.error) return 1;
    const std::uint64_t seed = cli.seed_set ? cli.seed : 1;

    std::printf("================================================================\n");
    std::printf("AB4: failure detection — fail-signals vs timeout suspicion\n");
    std::printf("================================================================\n");

    scenario::JsonWriter json;
    json.begin_object();
    json.field("format", "failsig-ab4-detection-v1");
    json.field("seed", seed);

    std::printf("\n(a) FS-NewTOP: Byzantine fault -> survivors' view excludes the pair\n");
    std::printf("%-12s %-14s %-16s\n", "delta", "slack(ms)", "detect(ms)");
    json.begin_array("fs_detection");
    for (const Duration delta : {200 * kMicrosecond, 500 * kMicrosecond, 2 * kMillisecond}) {
        for (const Duration slack : {20 * kMillisecond, 50 * kMillisecond, 100 * kMillisecond}) {
            const Duration t = fs_detection_time(delta, slack, seed);
            std::printf("%-12lld %-14lld %-16.1f\n", static_cast<long long>(delta),
                        static_cast<long long>(slack / kMillisecond),
                        static_cast<double>(t) / kMillisecond);
            json.begin_object();
            json.field("delta_us", static_cast<std::int64_t>(delta));
            json.field("slack_ms", static_cast<std::int64_t>(slack / kMillisecond));
            json.field("detect_ms", static_cast<double>(t) / kMillisecond);
            json.end_object();
        }
    }
    json.end_array();

    std::printf("\n(b) NewTOP ping suspector: crash detection vs timeout choice\n");
    std::printf("%-16s %-16s %-30s\n", "timeout(ms)", "detect(ms)", "splits w/ 1s surge, no crash?");
    json.begin_array("newtop_detection");
    for (const Duration timeout :
         {200 * kMillisecond, 400 * kMillisecond, 800 * kMillisecond, 1600 * kMillisecond}) {
        const Duration t = newtop_detection_time(timeout, seed);
        const bool split = newtop_splits_under_surge(timeout, 1 * kSecond, seed);
        std::printf("%-16lld %-16.1f %s\n", static_cast<long long>(timeout / kMillisecond),
                    static_cast<double>(t) / kMillisecond, split ? "YES (false suspicion)" : "no");
        json.begin_object();
        json.field("timeout_ms", static_cast<std::int64_t>(timeout / kMillisecond));
        json.field("detect_ms", static_cast<double>(t) / kMillisecond);
        json.field("splits_under_surge", split);
        json.end_object();
    }
    json.end_array();
    json.end_object();

    std::printf("\nReading: the crash-tolerant suspector trades detection speed against\n"
                "false suspicions (short timeouts split the group under delay surges);\n"
                "fail-signal detection has no such dial — suspicions are never false.\n");
    if (!cli.out_path.empty()) {
        if (!scenario::write_file(cli.out_path, json.take() + "\n")) return 1;
        std::printf("report written to %s\n", cli.out_path.c_str());
    }
    return 0;
}
