// AB2 — worker-pool / CPU-capacity ablation.
//
// The paper attributes the Figure 7 throughput shape to the ORB's
// configurable request-handling pool (default 10 threads, multiplexed onto
// dual-processor nodes). In the simulator the pool size is the node's
// concurrent CPU capacity; this bench sweeps it to expose its effect on the
// crash-tolerant system's throughput (deployments default to 2 = the
// testbed's dual CPUs).
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace failsig;
    using namespace failsig::bench;

    const auto cli = scenario::parse_cli(argc, argv);
    if (cli.help) return 0;
    if (cli.error) return 1;
    const std::vector<int> groups =
        cli.group_sizes.empty() ? std::vector<int>{2, 6, 10, 14} : cli.group_sizes;

    print_header("AB2: NewTOP throughput vs ORB thread-pool size",
                 "small pools serialize dispatch and depress throughput; beyond ~10 threads "
                 "returns diminish because the single-threaded GC becomes the bottleneck");

    const std::vector<int> pools = {1, 2, 4, 10, 20};
    std::vector<ExperimentConfig> configs;
    for (const int n : groups) {
        for (const int p : pools) {
            ExperimentConfig cfg;
            cfg.group_size = n;
            cfg.msgs_per_member = cli.msgs_per_member > 0 ? cli.msgs_per_member : 30;
            if (cli.payload_size > 0) cfg.payload_size = cli.payload_size;
            if (cli.seed_set) cfg.seed = cli.seed;
            cfg.thread_pool = p;
            cfg.system = System::kNewTop;
            configs.push_back(cfg);
        }
    }
    const auto reports = run_experiment_reports(configs, cli.jobs);

    std::printf("%-8s", "members");
    for (const int p : pools) std::printf(" pool=%-10d", p);
    std::printf("\n");
    for (std::size_t g = 0; g < groups.size(); ++g) {
        std::printf("%-8d", groups[g]);
        for (std::size_t p = 0; p < pools.size(); ++p) {
            const auto r = to_result(reports[g * pools.size() + p]);
            std::printf(" %-15.1f", r.throughput_msg_s);
        }
        std::printf("\n");
    }
    return maybe_write_report(cli, reports) ? 0 : 1;
}
