// AB2 — worker-pool / CPU-capacity ablation.
//
// The paper attributes the Figure 7 throughput shape to the ORB's
// configurable request-handling pool (default 10 threads, multiplexed onto
// dual-processor nodes). In the simulator the pool size is the node's
// concurrent CPU capacity; this bench sweeps it to expose its effect on the
// crash-tolerant system's throughput (deployments default to 2 = the
// testbed's dual CPUs).
#include "harness.hpp"

int main() {
    using namespace failsig;
    using namespace failsig::bench;

    print_header("AB2: NewTOP throughput vs ORB thread-pool size",
                 "small pools serialize dispatch and depress throughput; beyond ~10 threads "
                 "returns diminish because the single-threaded GC becomes the bottleneck");

    const int pools[] = {1, 2, 4, 10, 20};
    std::printf("%-8s", "members");
    for (const int p : pools) std::printf(" pool=%-10d", p);
    std::printf("\n");

    for (const int n : {2, 6, 10, 14}) {
        std::printf("%-8d", n);
        for (const int p : pools) {
            ExperimentConfig cfg;
            cfg.group_size = n;
            cfg.msgs_per_member = 30;
            cfg.thread_pool = p;
            cfg.system = System::kNewTop;
            const auto r = run_experiment(cfg);
            std::printf(" %-15.1f", r.throughput_msg_s);
        }
        std::printf("\n");
    }
    return 0;
}
