// AB5 — FS-NewTOP vs a from-scratch authenticated-Byzantine baseline.
//
// The paper's §1 comparison: traditional Byzantine total-order protocols
// ([CL99]-style) need 3f+1 replicas and at least one extra communication
// round, and rely on protocol-specific liveness conditions (timeouts) for
// termination. The FS approach needs 4f+2 nodes (2f+1 FS middleware
// processes) but terminates deterministically. This bench reports, per
// masked-fault budget f:
//   * node counts for both approaches,
//   * ordering latency and network messages per request, and
//   * the liveness contrast — what each system does when a key component is
//     silent (PBFT: stalls until a timeout-triggered view change; FS: the
//     pair announces its own failure, no guessing).
#include <cstdio>

#include "baseline/deployment.hpp"
#include "harness.hpp"
#include "sim/stats.hpp"

using namespace failsig;

namespace {

struct BaselineResult {
    double latency_ms;
    double msgs_per_request;
};

BaselineResult run_pbft(std::uint32_t replicas, int requests, std::uint64_t seed) {
    baseline::PbftOptions opts;
    opts.replicas = replicas;
    opts.seed = seed;
    baseline::PbftDeployment d(opts);

    // Warm-up request, then measure a batch.
    d.submit(0, bytes_of("warm"));
    d.sim().run();
    d.network().reset_stats();

    sim::Stats latency;
    for (int i = 0; i < requests; ++i) {
        const TimePoint start = d.sim().now();
        d.submit(static_cast<baseline::ReplicaId>(
                     static_cast<std::uint32_t>(i) % replicas),
                 bytes_of("req"));
        d.sim().run();
        latency.add(static_cast<double>(d.sim().now() - start) / kMillisecond);
    }
    return {latency.mean(),
            static_cast<double>(d.network().messages_sent()) / requests};
}

BaselineResult run_fsnewtop(int group, int requests, std::uint64_t seed) {
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = group;
    opts.seed = seed;
    fsnewtop::FsNewTopDeployment d(opts);

    d.invocation(0).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("warm"));
    d.sim().run();
    d.network().reset_stats();

    sim::Stats latency;
    for (int i = 0; i < requests; ++i) {
        const TimePoint start = d.sim().now();
        d.invocation(i % group).multicast(newtop::ServiceType::kSymmetricTotalOrder,
                                          bytes_of("req"));
        d.sim().run();
        latency.add(static_cast<double>(d.sim().now() - start) / kMillisecond);
    }
    return {latency.mean(),
            static_cast<double>(d.network().messages_sent()) / requests};
}

}  // namespace

int main(int argc, char** argv) {
    const auto cli = scenario::parse_cli(
        argc, argv,
        "  (--messages sets requests per configuration; --groups/--payload/--jobs\n"
        "   unused: per-request latency is measured by stepping one simulation)\n");
    if (cli.help) return 0;
    if (cli.error) return 1;
    const int requests = cli.msgs_per_member > 0 ? cli.msgs_per_member : 20;
    const std::uint64_t seed = cli.seed_set ? cli.seed : 1;

    std::printf("================================================================\n");
    std::printf("AB5: FS-NewTOP (4f+2 nodes) vs PBFT-style baseline (3f+1 nodes)\n");
    std::printf("================================================================\n");
    std::printf("%-4s %-22s %-22s %-14s %-14s %-12s %-12s\n", "f", "PBFT(n, nodes)",
                "FS-NT(group, nodes)", "PBFT lat(ms)", "FS lat(ms)", "PBFT msgs", "FS msgs");

    scenario::JsonWriter json;
    json.begin_object();
    json.field("format", "failsig-ab5-baseline-v1");
    json.field("seed", seed);
    json.field("requests", requests);
    json.begin_array("rows");
    for (const std::uint32_t f : {1u, 2u, 3u}) {
        const std::uint32_t pbft_n = 3 * f + 1;
        const int fs_group = static_cast<int>(2 * f + 1);
        const int fs_nodes = 4 * static_cast<int>(f) + 2;

        const auto pbft = run_pbft(pbft_n, requests, seed);
        const auto fsnt = run_fsnewtop(fs_group, requests, seed);

        std::printf("%-4u n=%-2u nodes=%-12u g=%-2d nodes=%-12d %-14.1f %-14.1f %-12.1f %-12.1f\n",
                    f, pbft_n, pbft_n, fs_group, fs_nodes, pbft.latency_ms, fsnt.latency_ms,
                    pbft.msgs_per_request, fsnt.msgs_per_request);
        json.begin_object();
        json.field("f", static_cast<std::uint64_t>(f));
        json.field("pbft_replicas", static_cast<std::uint64_t>(pbft_n));
        json.field("fs_group", fs_group);
        json.field("fs_nodes", fs_nodes);
        json.field("pbft_latency_ms", pbft.latency_ms);
        json.field("fs_latency_ms", fsnt.latency_ms);
        json.field("pbft_msgs_per_request", pbft.msgs_per_request);
        json.field("fs_msgs_per_request", fsnt.msgs_per_request);
        json.end_object();
    }
    json.end_array();
    json.end_object();

    // Liveness contrast.
    std::printf("\nLiveness when a key component goes silent:\n");
    {
        baseline::PbftOptions opts;
        opts.replicas = 4;
        opts.seed = seed;
        baseline::PbftDeployment d(opts);
        for (baseline::ReplicaId r = 1; r < 4; ++r) {
            d.faults().block(d.node_of(0), d.node_of(r));  // primary silent
        }
        d.submit(1, bytes_of("stuck"));
        d.sim().run();
        const bool stalled = d.delivered(1).empty();
        d.fire_timeouts();
        d.sim().run();
        std::printf("  PBFT: primary silent -> %s; after timeout view-change -> delivered=%zu "
                    "(progress REQUIRES a timeout)\n",
                    stalled ? "stalled (nothing delivered)" : "progressed?!",
                    d.delivered(1).size());
    }
    {
        fsnewtop::FsNewTopOptions opts;
        opts.group_size = 3;
        opts.seed = seed;
        opts.placement = fsnewtop::Placement::kFull;
        fsnewtop::FsNewTopDeployment d(opts);
        d.invocation(0).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("warm"));
        d.sim().run();
        d.faults().block(NodeId{3}, NodeId{4});  // member 1's pair link dies
        d.invocation(0).multicast(newtop::ServiceType::kSymmetricTotalOrder, bytes_of("go"));
        d.sim().run_until(d.sim().now() + 120 * kSecond);
        const bool excluded =
            d.gc_leader(0).view().members == std::vector<newtop::MemberId>{0, 2};
        std::printf("  FS-NewTOP: pair broken -> fail-signal announced, survivors' view %s "
                    "(no asynchronous-network timeout involved)\n",
                    excluded ? "excludes the failed member" : "UNEXPECTED");
    }
    if (!cli.out_path.empty()) {
        if (!scenario::write_file(cli.out_path, json.take() + "\n")) return 1;
        std::printf("report written to %s\n", cli.out_path.c_str());
    }
    return 0;
}
