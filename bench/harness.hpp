// Shared experiment harness for the figure/ablation benches.
//
// Reproduces the paper's §4 methodology: every member multicasts M messages
// at a fixed interval (identical for NewTOP and FS-NewTOP); we record
//   * ordering latency  — multicast() call to delivery, averaged over every
//     (message, member) pair, and
//   * throughput        — total multicasts ordered divided by the makespan
//     (first send to last delivery), i.e. "time needed to order M messages
//     sent by each A_i".
// Absolute values are simulator-calibrated, not testbed-measured; the shapes
// are the reproduction target (see EXPERIMENTS.md).
//
// The measurement loop itself lives in the scenario engine
// (src/scenario/runner.hpp): an ExperimentConfig is just a fault-free
// Scenario, so benches, tests and declarative fault campaigns all run
// through one code path. `run_experiment_report` exposes the full
// ScenarioReport (invariant verdicts included) for benches that write JSON
// reports via --out.
#pragma once

#include <cstdio>

#include "scenario/cli.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"

namespace failsig::bench {

enum class System { kNewTop, kFsNewTop };

inline const char* name_of(System s) { return s == System::kNewTop ? "NewTOP" : "FS-NewTOP"; }

struct ExperimentConfig {
    System system{System::kNewTop};
    int group_size{3};
    int msgs_per_member{50};
    std::size_t payload_size{3};  // paper: 3-byte messages
    Duration send_interval{80 * kMillisecond};
    int thread_pool{2};
    std::uint64_t seed{42};
    newtop::ServiceType service{newtop::ServiceType::kSymmetricTotalOrder};
    /// Request batching on the submit path (see common/batch.hpp); off by
    /// default so the paper-shape figures stay unbatched.
    BatchConfig batch{};
};

struct ExperimentResult {
    double mean_latency_ms{0};
    double p95_latency_ms{0};
    double throughput_msg_s{0};
    std::uint64_t network_messages{0};
    std::uint64_t network_bytes{0};
    bool fail_signals{false};
    std::uint64_t expected_deliveries{0};
    std::uint64_t observed_deliveries{0};
};

/// The declarative form of a §4 measurement run.
inline scenario::Scenario make_scenario(const ExperimentConfig& cfg) {
    scenario::Scenario s;
    s.name = std::string(name_of(cfg.system)) + "/n" + std::to_string(cfg.group_size);
    s.system = cfg.system == System::kNewTop ? scenario::SystemKind::kNewTop
                                             : scenario::SystemKind::kFsNewTop;
    s.group_size = cfg.group_size;
    s.seed = cfg.seed;
    s.threads_per_node = cfg.thread_pool;
    s.workload.msgs_per_member = cfg.msgs_per_member;
    s.workload.payload_size = cfg.payload_size;
    s.workload.send_interval = cfg.send_interval;
    s.workload.service = cfg.service;
    s.batch = cfg.batch;
    if (cfg.batch.enabled()) {
        s.name += "/b" + std::to_string(cfg.batch.max_requests);
    }
    return s;
}

inline ExperimentResult to_result(const scenario::ScenarioReport& report) {
    const auto& m = report.metrics;
    ExperimentResult out;
    out.mean_latency_ms = m.mean_latency_ms;
    out.p95_latency_ms = m.p95_latency_ms;
    out.throughput_msg_s = m.throughput_msg_s;
    out.network_messages = m.network_messages;
    out.network_bytes = m.network_bytes;
    out.fail_signals = m.fail_signals;
    out.expected_deliveries = m.expected_deliveries;
    out.observed_deliveries = m.observed_deliveries;
    return out;
}

inline scenario::ScenarioReport run_experiment_report(const ExperimentConfig& cfg) {
    return scenario::run_scenario(make_scenario(cfg));
}

inline ExperimentResult run_experiment(const ExperimentConfig& cfg) {
    return to_result(run_experiment_report(cfg));
}

/// Runs every configuration on `jobs` worker threads (0 = hardware
/// concurrency). Each config owns an independent Simulation, so results are
/// embarrassingly parallel and come back in input order regardless of job
/// count — the figure benches sweep group sizes through this.
inline std::vector<scenario::ScenarioReport> run_experiment_reports(
    const std::vector<ExperimentConfig>& configs, int jobs = 0) {
    std::vector<scenario::Scenario> scenarios;
    scenarios.reserve(configs.size());
    for (const auto& cfg : configs) scenarios.push_back(make_scenario(cfg));
    return scenario::run_scenarios(scenarios, jobs);
}

/// Prints the standard header used by the figure benches.
inline void print_header(const char* title, const char* expectation) {
    std::printf("================================================================\n");
    std::printf("%s\n", title);
    std::printf("Paper-expected shape: %s\n", expectation);
    std::printf("================================================================\n");
}

/// Writes accumulated scenario reports when --out was given; returns true
/// on success (or when no path was requested).
inline bool maybe_write_report(const scenario::CliOptions& cli,
                               const std::vector<scenario::ScenarioReport>& reports) {
    if (cli.out_path.empty()) return true;
    const bool ok = scenario::write_file(cli.out_path, scenario::to_json(reports));
    if (ok) std::printf("report written to %s\n", cli.out_path.c_str());
    return ok;
}

}  // namespace failsig::bench
