// Shared experiment harness for the figure/ablation benches.
//
// Reproduces the paper's §4 methodology: every member multicasts M messages
// at a fixed interval (identical for NewTOP and FS-NewTOP); we record
//   * ordering latency  — multicast() call to delivery, averaged over every
//     (message, member) pair, and
//   * throughput        — total multicasts ordered divided by the makespan
//     (first send to last delivery), i.e. "time needed to order M messages
//     sent by each A_i".
// Absolute values are simulator-calibrated, not testbed-measured; the shapes
// are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <map>

#include "fsnewtop/deployment.hpp"
#include "newtop/deployment.hpp"
#include "sim/stats.hpp"

namespace failsig::bench {

enum class System { kNewTop, kFsNewTop };

inline const char* name_of(System s) { return s == System::kNewTop ? "NewTOP" : "FS-NewTOP"; }

struct ExperimentConfig {
    System system{System::kNewTop};
    int group_size{3};
    int msgs_per_member{50};
    std::size_t payload_size{3};  // paper: 3-byte messages
    Duration send_interval{80 * kMillisecond};
    int thread_pool{2};
    std::uint64_t seed{42};
    newtop::ServiceType service{newtop::ServiceType::kSymmetricTotalOrder};
};

struct ExperimentResult {
    double mean_latency_ms{0};
    double p95_latency_ms{0};
    double throughput_msg_s{0};
    std::uint64_t network_messages{0};
    std::uint64_t network_bytes{0};
    bool fail_signals{false};
    std::uint64_t expected_deliveries{0};
    std::uint64_t observed_deliveries{0};
};

namespace detail {

/// Payload: 8-byte (sender,seq) tag padded to the requested size.
inline Bytes make_payload(std::uint32_t sender, std::uint32_t seq, std::size_t size) {
    ByteWriter w;
    w.u32(sender);
    w.u32(seq);
    Bytes out = w.take();
    if (out.size() < size) out.resize(size, 0x5a);
    return out;
}

struct LatencyTracker {
    std::map<std::pair<std::uint32_t, std::uint32_t>, TimePoint> sent_at;
    sim::Stats latencies_ms;
    TimePoint first_send{0};
    TimePoint last_delivery{0};
    std::uint64_t deliveries{0};

    void on_sent(std::uint32_t sender, std::uint32_t seq, TimePoint now) {
        if (sent_at.empty()) first_send = now;
        sent_at[{sender, seq}] = now;
    }
    void on_delivered(const Bytes& payload, TimePoint now) {
        if (payload.size() < 8) return;
        ByteReader r(payload);
        const auto sender = r.u32();
        const auto seq = r.u32();
        const auto it = sent_at.find({sender, seq});
        if (it == sent_at.end()) return;
        latencies_ms.add(static_cast<double>(now - it->second) / kMillisecond);
        last_delivery = std::max(last_delivery, now);
        ++deliveries;
    }
};

template <typename Deployment, typename GetInvocation>
ExperimentResult drive(Deployment& d, sim::Simulation& sim, net::SimNetwork& net,
                       const ExperimentConfig& cfg, GetInvocation get_invocation) {
    const int n = cfg.group_size;
    LatencyTracker tracker;

    for (int i = 0; i < n; ++i) {
        get_invocation(i).on_delivery([&tracker, &sim](const newtop::Delivery& dl) {
            tracker.on_delivered(dl.payload, sim.now());
        });
    }

    net.reset_stats();
    for (int k = 0; k < cfg.msgs_per_member; ++k) {
        for (int i = 0; i < n; ++i) {
            // Members are staggered across the interval, as independent
            // applications would be (synchronized bursts are unrealistic and
            // only measure queue spikes).
            const TimePoint at = static_cast<TimePoint>(k) * cfg.send_interval +
                                 (static_cast<TimePoint>(i) * cfg.send_interval) / n;
            sim.schedule_at(at, [&, i, k] {
                const auto payload =
                    make_payload(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(k),
                                 cfg.payload_size);
                tracker.on_sent(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(k),
                                sim.now());
                get_invocation(i).multicast(cfg.service, payload);
            });
        }
    }
    sim.run();

    ExperimentResult result;
    result.mean_latency_ms = tracker.latencies_ms.mean();
    result.p95_latency_ms = tracker.latencies_ms.percentile(0.95);
    const double makespan_s =
        static_cast<double>(tracker.last_delivery - tracker.first_send) / kSecond;
    const double total_msgs = static_cast<double>(n) * cfg.msgs_per_member;
    result.throughput_msg_s = makespan_s > 0 ? total_msgs / makespan_s : 0;
    result.network_messages = net.messages_sent();
    result.network_bytes = net.bytes_sent();
    result.expected_deliveries = static_cast<std::uint64_t>(total_msgs) * static_cast<std::uint64_t>(n);
    result.observed_deliveries = tracker.deliveries;
    return result;
}

}  // namespace detail

inline ExperimentResult run_experiment(const ExperimentConfig& cfg) {
    if (cfg.system == System::kNewTop) {
        newtop::NewTopOptions opts;
        opts.group_size = cfg.group_size;
        opts.threads_per_node = cfg.thread_pool;
        opts.seed = cfg.seed;
        newtop::NewTopDeployment d(opts);
        return detail::drive(d, d.sim(), d.network(), cfg,
                             [&d](int i) -> newtop::InvocationService& { return d.invocation(i); });
    }
    fsnewtop::FsNewTopOptions opts;
    opts.group_size = cfg.group_size;
    opts.threads_per_node = cfg.thread_pool;
    opts.seed = cfg.seed;
    fsnewtop::FsNewTopDeployment d(opts);
    auto result = detail::drive(
        d, d.sim(), d.network(), cfg,
        [&d](int i) -> newtop::InvocationService& { return d.invocation(i); });
    for (int i = 0; i < cfg.group_size; ++i) {
        if (d.leader_fso(i).signalling() || d.follower_fso(i).signalling()) {
            result.fail_signals = true;
        }
    }
    return result;
}

/// Prints the standard header used by the figure benches.
inline void print_header(const char* title, const char* expectation) {
    std::printf("================================================================\n");
    std::printf("%s\n", title);
    std::printf("Paper-expected shape: %s\n", expectation);
    std::printf("================================================================\n");
}

}  // namespace failsig::bench
