// AB1 — crypto cost ablation (real CPU time via google-benchmark).
//
// The paper attributes FS-NewTOP's latency overhead to three sources, two of
// which are cryptographic: authenticating input messages and signing output
// messages (MD5 with RSA). This bench measures this library's own
// implementations; the results calibrate sim::CostModel's rsa_sign /
// rsa_verify / hash_per_byte constants used by the figure benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/biguint.hpp"
#include "crypto/hmac.hpp"
#include "crypto/keys.hpp"
#include "crypto/md5.hpp"
#include "crypto/rsa.hpp"
#include "crypto/sha256.hpp"

namespace {

using namespace failsig;
using namespace failsig::crypto;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    Bytes out(n);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
    return out;
}

void BM_Md5(benchmark::State& state) {
    const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Md5::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Md5)->Arg(3)->Arg(1024)->Arg(10 * 1024);

void BM_Sha256(benchmark::State& state) {
    const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Sha256::hash(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(3)->Arg(1024)->Arg(10 * 1024);

void BM_HmacSha256(benchmark::State& state) {
    const Bytes key = random_bytes(32, 3);
    const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hmac_sha256(key, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(3)->Arg(1024)->Arg(10 * 1024);

void BM_RsaSign(benchmark::State& state) {
    Rng rng(5);
    const auto kp = rsa_generate(static_cast<std::size_t>(state.range(0)), rng);
    const Bytes msg = random_bytes(256, 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rsa_sign(kp.priv, msg));
    }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaVerify(benchmark::State& state) {
    Rng rng(7);
    const auto kp = rsa_generate(static_cast<std::size_t>(state.range(0)), rng);
    const Bytes msg = random_bytes(256, 8);
    const Bytes sig = rsa_sign(kp.priv, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rsa_verify(kp.pub, msg, sig));
    }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_Modexp(benchmark::State& state) {
    Rng rng(9);
    const auto kp = rsa_generate(static_cast<std::size_t>(state.range(0)), rng);
    const Montgomery mont(kp.pub.n);
    const BigUint base = BigUint::from_bytes_be(random_bytes(32, 10));
    for (auto _ : state) {
        benchmark::DoNotOptimize(mont.modexp(base, kp.priv.d));
    }
}
BENCHMARK(BM_Modexp)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RsaKeygen(benchmark::State& state) {
    std::uint64_t seed = 11;
    for (auto _ : state) {
        Rng rng(seed++);
        benchmark::DoNotOptimize(rsa_generate(static_cast<std::size_t>(state.range(0)), rng));
    }
}
BENCHMARK(BM_RsaKeygen)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_SignerBackends(benchmark::State& state) {
    const auto backend = state.range(0) == 0 ? KeyService::Backend::kHmac
                                             : KeyService::Backend::kRsa;
    KeyService keys(backend, 512, 12);
    keys.register_principal("p");
    const Bytes msg = random_bytes(300, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(keys.signer("p").sign(msg));
    }
    state.SetLabel(backend == KeyService::Backend::kHmac ? "hmac" : "rsa");
}
BENCHMARK(BM_SignerBackends)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
