// FIG6 — reproduces paper Figure 6: symmetric-total-order latency of small
// (3-byte) messages vs group size, NewTOP vs FS-NewTOP.
//
// Expected shape (paper §4): FS-NewTOP shows a fairly constant absolute
// latency overhead for small groups; the gap grows with group size, reaching
// ~50% relative overhead at 9-10 members; both curves grow with n.
#include "harness.hpp"

int main() {
    using namespace failsig;
    using namespace failsig::bench;

    print_header("FIG6: symmetric total order latency vs group size (3-byte messages)",
                 "constant FS gap for small n; ~50% overhead at n=9-10; both rise with n");

    std::printf("%-8s %-16s %-16s %-12s %-12s\n", "members", "NewTOP(ms)", "FS-NewTOP(ms)",
                "gap(ms)", "overhead");
    for (int n = 2; n <= 10; ++n) {
        ExperimentConfig cfg;
        cfg.group_size = n;
        cfg.msgs_per_member = 40;
        cfg.payload_size = 3;

        cfg.system = System::kNewTop;
        const auto newtop = run_experiment(cfg);
        cfg.system = System::kFsNewTop;
        const auto fsnewtop = run_experiment(cfg);

        const double gap = fsnewtop.mean_latency_ms - newtop.mean_latency_ms;
        const double overhead = newtop.mean_latency_ms > 0
                                    ? 100.0 * gap / newtop.mean_latency_ms
                                    : 0.0;
        std::printf("%-8d %-16.1f %-16.1f %-12.1f %6.0f%%%s\n", n, newtop.mean_latency_ms,
                    fsnewtop.mean_latency_ms, gap, overhead,
                    fsnewtop.fail_signals ? "  [UNEXPECTED FAIL-SIGNALS]" : "");
    }
    return 0;
}
