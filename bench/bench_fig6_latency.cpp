// FIG6 — reproduces paper Figure 6: symmetric-total-order latency of small
// (3-byte) messages vs group size, NewTOP vs FS-NewTOP.
//
// Expected shape (paper §4): FS-NewTOP shows a fairly constant absolute
// latency overhead for small groups; the gap grows with group size, reaching
// ~50% relative overhead at 9-10 members; both curves grow with n.
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace failsig;
    using namespace failsig::bench;

    const auto cli = scenario::parse_cli(argc, argv);
    if (cli.help) return 0;
    if (cli.error) return 1;
    std::vector<int> groups = cli.group_sizes;
    if (groups.empty()) {
        for (int n = 2; n <= 10; ++n) groups.push_back(n);
    }

    print_header("FIG6: symmetric total order latency vs group size (3-byte messages)",
                 "constant FS gap for small n; ~50% overhead at n=9-10; both rise with n");

    std::vector<ExperimentConfig> configs;
    for (const int n : groups) {
        ExperimentConfig cfg;
        cfg.group_size = n;
        cfg.msgs_per_member = cli.msgs_per_member > 0 ? cli.msgs_per_member : 40;
        cfg.payload_size = cli.payload_size > 0 ? cli.payload_size : 3;
        if (cli.seed_set) cfg.seed = cli.seed;
        cfg.system = System::kNewTop;
        configs.push_back(cfg);
        cfg.system = System::kFsNewTop;
        configs.push_back(cfg);
    }
    const auto reports = run_experiment_reports(configs, cli.jobs);

    std::printf("%-8s %-16s %-16s %-12s %-12s\n", "members", "NewTOP(ms)", "FS-NewTOP(ms)",
                "gap(ms)", "overhead");
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const int n = groups[g];
        const auto newtop = to_result(reports[2 * g]);
        const auto fsnewtop = to_result(reports[2 * g + 1]);

        const double gap = fsnewtop.mean_latency_ms - newtop.mean_latency_ms;
        const double overhead = newtop.mean_latency_ms > 0
                                    ? 100.0 * gap / newtop.mean_latency_ms
                                    : 0.0;
        std::printf("%-8d %-16.1f %-16.1f %-12.1f %6.0f%%%s\n", n, newtop.mean_latency_ms,
                    fsnewtop.mean_latency_ms, gap, overhead,
                    fsnewtop.fail_signals ? "  [UNEXPECTED FAIL-SIGNALS]" : "");
    }
    return maybe_write_report(cli, reports) ? 0 : 1;
}
