// AB3 — symmetric vs asymmetric total order.
//
// The paper's experiments deliberately use the symmetric protocol because it
// is "significantly message intensive" (it orders a message only after the
// message is logically acknowledged by all members), maximizing the
// self-checking load inside FS-GC. This ablation quantifies that choice:
// message counts and latency for both protocols, in both systems.
#include "harness.hpp"

int main(int argc, char** argv) {
    using namespace failsig;
    using namespace failsig::bench;

    const auto cli = scenario::parse_cli(argc, argv);
    if (cli.help) return 0;
    if (cli.error) return 1;
    const std::vector<int> groups =
        cli.group_sizes.empty() ? std::vector<int>{2, 4, 6, 8, 10} : cli.group_sizes;
    const int msgs = cli.msgs_per_member > 0 ? cli.msgs_per_member : 30;

    print_header("AB3: symmetric vs asymmetric total order (both systems)",
                 "symmetric sends O(n^2) acknowledgements per multicast and pays more latency; "
                 "asymmetric funnels through the sequencer with O(n) messages");

    const std::vector<newtop::ServiceType> services = {
        newtop::ServiceType::kSymmetricTotalOrder,
        newtop::ServiceType::kAsymmetricTotalOrder};
    std::vector<ExperimentConfig> configs;
    for (const int n : groups) {
        for (const auto svc : services) {
            ExperimentConfig cfg;
            cfg.group_size = n;
            cfg.msgs_per_member = msgs;
            if (cli.payload_size > 0) cfg.payload_size = cli.payload_size;
            if (cli.seed_set) cfg.seed = cli.seed;
            cfg.service = svc;
            cfg.system = System::kNewTop;
            configs.push_back(cfg);
            cfg.system = System::kFsNewTop;
            configs.push_back(cfg);
        }
    }
    const auto reports = run_experiment_reports(configs, cli.jobs);

    std::printf("%-8s %-12s %-14s %-14s %-16s %-16s\n", "members", "protocol", "NewTOP(ms)",
                "FS-NT(ms)", "NewTOP msgs", "FS-NT msgs");
    std::size_t next = 0;
    for (const int n : groups) {
        for (const auto svc : services) {
            const auto newtop = to_result(reports[next++]);
            const auto fsnewtop = to_result(reports[next++]);

            const double per_multicast_newtop =
                static_cast<double>(newtop.network_messages) / (static_cast<double>(msgs) * n);
            const double per_multicast_fs =
                static_cast<double>(fsnewtop.network_messages) / (static_cast<double>(msgs) * n);
            std::printf("%-8d %-12s %-14.1f %-14.1f %-16.1f %-16.1f\n", n,
                        svc == newtop::ServiceType::kSymmetricTotalOrder ? "symmetric"
                                                                         : "asymmetric",
                        newtop.mean_latency_ms, fsnewtop.mean_latency_ms, per_multicast_newtop,
                        per_multicast_fs);
        }
    }
    std::printf("(msgs columns: network messages per application multicast)\n");
    return maybe_write_report(cli, reports) ? 0 : 1;
}
