// NewTOP tests: wire codecs, the GC state machine driven directly through an
// in-memory message router (protocol-level properties under randomized
// network interleavings), and full simulated deployments (ORB + network +
// suspector), including the false-suspicion group split that motivates the
// paper.
#include <gtest/gtest.h>

#include <deque>

#include "newtop/deployment.hpp"

namespace failsig::newtop {
namespace {

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(NewTopWire, GcMessageRoundTrip) {
    GcMessage m;
    m.kind = GcKind::kOrder;
    m.sender = 3;
    m.service = ServiceType::kAsymmetricTotalOrder;
    m.sender_seq = 7;
    m.lamport_ts = 100;
    m.payload = bytes_of("payload");
    m.vector_clock = {1, 2, 3};
    m.global_seq = 55;
    m.origin = 2;
    m.view_id = 4;
    m.view_members = {0, 1, 2};
    const auto decoded = GcMessage::decode(m.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), m);
}

TEST(NewTopWire, GcMessageRejectsBadKind) {
    GcMessage m;
    Bytes wire = m.encode();
    wire[0] = 99;
    EXPECT_FALSE(GcMessage::decode(wire).has_value());
}

TEST(NewTopWire, MulticastRequestRoundTrip) {
    MulticastRequest r;
    r.service = ServiceType::kCausalOrder;
    r.payload = bytes_of("x");
    const auto decoded = MulticastRequest::decode(r.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value().service, ServiceType::kCausalOrder);
    EXPECT_EQ(decoded.value().payload, bytes_of("x"));
}

TEST(NewTopWire, DeliveryRoundTrip) {
    Delivery d;
    d.kind = Delivery::Kind::kView;
    d.view.view_id = 9;
    d.view.members = {1, 4};
    const auto decoded = Delivery::decode(d.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), d);
}

TEST(NewTopWire, TruncationRejected) {
    GcMessage m;
    m.payload = Bytes(100, 1);
    Bytes wire = m.encode();
    wire.resize(10);
    EXPECT_FALSE(GcMessage::decode(wire).has_value());
}

// ---------------------------------------------------------------------------
// FlushState codec fuzz corpus. Flush frames cross the network during the
// most delicate protocol phase and nest full GcMessages, so the decoder
// gets the same ASan-checked totality treatment as Batch::decode: garbage,
// every truncation, hostile count fields, and bit-flipped valid frames must
// decode to a value or an error — never crash, never over-read.
// ---------------------------------------------------------------------------

GcMessage flush_sym_entry(MemberId sender, std::uint64_t ts, const std::string& text) {
    GcMessage m;
    m.kind = GcKind::kData;
    m.sender = sender;
    m.stream_seq = ts;
    m.service = ServiceType::kSymmetricTotalOrder;
    m.sender_seq = ts;
    m.lamport_ts = ts;
    m.payload = bytes_of(text);
    return m;
}

FlushState sample_flush_state() {
    FlushState st;
    st.sym_watermark_ts = 41;
    st.sym_watermark_sender = 2;
    st.asym_delivered = 7;
    st.entries.push_back(flush_sym_entry(0, 42, "a"));
    st.entries.push_back(flush_sym_entry(1, 43, "bb"));
    GcMessage order;
    order.kind = GcKind::kOrder;
    order.sender = 1;
    order.service = ServiceType::kAsymmetricTotalOrder;
    order.sender_seq = 2;
    order.global_seq = 8;
    order.origin = 3;
    order.payload = bytes_of("ccc");
    st.entries.push_back(order);
    return st;
}

/// Totality oracle: whatever decodes must re-encode byte-identically
/// (decode is the inverse of encode on its accepting set); whatever fails
/// must carry a diagnosis.
void expect_total_flush_decode(const Bytes& input) {
    const auto result = FlushState::decode(input);
    if (result.has_value()) {
        EXPECT_EQ(result.value().encode(), input);
    } else {
        EXPECT_FALSE(result.error().message.empty());
    }
}

TEST(FlushStateCodecFuzz, RoundTripsIncludingEmptyCut) {
    const FlushState st = sample_flush_state();
    const auto decoded = FlushState::decode(st.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), st);

    const FlushState empty;
    const auto empty_decoded = FlushState::decode(empty.encode());
    ASSERT_TRUE(empty_decoded.has_value());
    EXPECT_EQ(empty_decoded.value(), empty);
}

TEST(FlushStateCodecFuzz, RandomGarbageNeverCrashesTheDecoder) {
    Rng rng(0xf1005eedULL);
    for (int round = 0; round < 2000; ++round) {
        Bytes noise(rng.uniform(160), 0);
        for (auto& b : noise) b = static_cast<std::uint8_t>(rng.uniform(256));
        expect_total_flush_decode(noise);
    }
}

TEST(FlushStateCodecFuzz, EveryTruncationOfAValidFrameIsRejected) {
    const Bytes frame = sample_flush_state().encode();
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        const Bytes prefix(frame.begin(), frame.begin() + static_cast<std::ptrdiff_t>(cut));
        const auto result = FlushState::decode(prefix);
        EXPECT_FALSE(result.has_value()) << "prefix of " << cut << " bytes decoded";
    }
}

TEST(FlushStateCodecFuzz, HostileCountFieldsAreErrorsNotOverReads) {
    // Entry count sits after the two watermarks (8 + 4 + 8 bytes in).
    Bytes frame = sample_flush_state().encode();
    const std::size_t count_at = 20;
    for (const std::uint32_t hostile : {70000u, 0xFFFFFFFFu}) {
        Bytes bad = frame;
        bad[count_at] = static_cast<std::uint8_t>(hostile);
        bad[count_at + 1] = static_cast<std::uint8_t>(hostile >> 8);
        bad[count_at + 2] = static_cast<std::uint8_t>(hostile >> 16);
        bad[count_at + 3] = static_cast<std::uint8_t>(hostile >> 24);
        EXPECT_FALSE(FlushState::decode(bad).has_value());
    }

    // An oversized view-member list inside a nested entry must surface as a
    // bad-entry error, not an allocation storm. view_members is the last
    // GcMessage field, so its little-endian count sits 16 bytes before the
    // end of the frame (4 count bytes + 3 members x 4 bytes).
    GcMessage entry = flush_sym_entry(0, 1, "x");
    entry.view_members = {0, 1, 2};
    FlushState st;
    st.entries.push_back(entry);
    Bytes wire = st.encode();
    const std::size_t inner_count_at = wire.size() - 16;
    ASSERT_EQ(wire[inner_count_at], 3u) << "fixture drifted: inner count not where expected";
    wire[inner_count_at + 3] = 0xFF;  // count becomes ~4 billion
    EXPECT_FALSE(FlushState::decode(wire).has_value());
}

TEST(FlushStateCodecFuzz, RandomMutationsOfValidFramesDecodeTotally) {
    Rng rng(0xdeadf1005);
    const Bytes frame = sample_flush_state().encode();
    for (int round = 0; round < 1000; ++round) {
        Bytes mutated = frame;
        const int flips = 1 + static_cast<int>(rng.uniform(4));
        for (int f = 0; f < flips; ++f) {
            mutated[rng.uniform(mutated.size())] ^=
                static_cast<std::uint8_t>(1u << rng.uniform(8));
        }
        expect_total_flush_decode(mutated);
    }
}

// ---------------------------------------------------------------------------
// In-memory protocol harness: drives GcService instances directly, with
// randomized cross-link interleaving but FIFO per directed link (matching
// the reliable-FIFO channel assumption).
// ---------------------------------------------------------------------------

class Harness {
public:
    explicit Harness(int n, std::uint64_t seed = 1) : rng_(seed) {
        std::vector<MemberId> ids;
        for (int i = 0; i < n; ++i) ids.push_back(static_cast<MemberId>(i));
        for (int i = 0; i < n; ++i) {
            GcConfig cfg;
            cfg.self = static_cast<MemberId>(i);
            cfg.initial_members = ids;
            for (int j = 0; j < n; ++j) {
                if (j != i) {
                    cfg.peers[static_cast<MemberId>(j)] =
                        fs::Destination::fs("m:" + std::to_string(j));
                }
            }
            cfg.delivery = fs::Destination::fs("app");
            members_.push_back(std::make_unique<GcService>(cfg));
            deliveries_.emplace_back();
            views_.emplace_back();
        }
    }

    GcService& member(int i) { return *members_[static_cast<std::size_t>(i)]; }

    void multicast(int from, ServiceType svc, const std::string& text) {
        MulticastRequest req;
        req.service = svc;
        req.payload = bytes_of(text);
        route(from, members_[static_cast<std::size_t>(from)]->process("multicast", req.encode()));
    }

    void suspect(int at, MemberId who) {
        ByteWriter w;
        w.u32(who);
        route(at, members_[static_cast<std::size_t>(at)]->process("suspect", w.take()));
    }

    /// Cuts both directions between a and b (messages silently dropped).
    void disconnect(int a, int b) {
        cut_.insert({a, b});
        cut_.insert({b, a});
    }

    /// Pumps until quiescent, choosing a random non-empty link each step.
    void run() {
        while (true) {
            std::vector<std::pair<int, int>> ready;
            for (auto& [link, queue] : links_) {
                if (!queue.empty()) ready.push_back(link);
            }
            if (ready.empty()) break;
            const auto link = ready[rng_.uniform(ready.size())];
            auto [op, body] = std::move(links_[link].front());
            links_[link].pop_front();
            const int dst = link.second;
            route(dst, members_[static_cast<std::size_t>(dst)]->process(op, body));
        }
    }

    /// Delivered payload texts at member i, with sender prefix "s:text".
    std::vector<std::string> delivered(int i) const { return deliveries_[static_cast<std::size_t>(i)]; }
    const std::vector<GroupView>& views(int i) const { return views_[static_cast<std::size_t>(i)]; }

private:
    void route(int from, const std::vector<fs::Outbound>& outputs) {
        for (const auto& out : outputs) {
            for (const auto& dest : out.dests) {
                if (dest.fs_name == "app") {
                    auto d = Delivery::decode(out.body);
                    ASSERT_TRUE(d.has_value());
                    if (d.value().kind == Delivery::Kind::kView) {
                        views_[static_cast<std::size_t>(from)].push_back(d.value().view);
                    } else if (d.value().kind == Delivery::Kind::kMessage) {
                        // kFlushBegin is protocol-internal (Invocation-layer
                        // gating); only real messages count here.
                        deliveries_[static_cast<std::size_t>(from)].push_back(
                            std::to_string(d.value().sender) + ":" +
                            string_of(d.value().payload));
                    }
                } else {
                    const int to = std::stoi(dest.fs_name.substr(2));
                    if (cut_.contains({from, to})) continue;
                    links_[{from, to}].emplace_back(out.operation, out.body);
                }
            }
        }
    }

    Rng rng_;
    std::vector<std::unique_ptr<GcService>> members_;
    std::map<std::pair<int, int>, std::deque<std::pair<std::string, Bytes>>> links_;
    std::set<std::pair<int, int>> cut_;
    std::vector<std::vector<std::string>> deliveries_;
    std::vector<std::vector<GroupView>> views_;
};

// --- symmetric total order -------------------------------------------------

class SymTotalOrderTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SymTotalOrderTest, AllMembersDeliverIdenticalSequences) {
    const auto [n, seed] = GetParam();
    Harness h(n, static_cast<std::uint64_t>(seed));
    // Interleaved multicasts from every member.
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < n; ++i) {
            h.multicast(i, ServiceType::kSymmetricTotalOrder,
                        "r" + std::to_string(round) + "m" + std::to_string(i));
        }
    }
    h.run();

    const auto reference = h.delivered(0);
    EXPECT_EQ(reference.size(), static_cast<std::size_t>(5 * n)) << "all messages delivered";
    for (int i = 1; i < n; ++i) {
        EXPECT_EQ(h.delivered(i), reference) << "member " << i << " disagrees on total order";
    }
}

INSTANTIATE_TEST_SUITE_P(GroupsAndSeeds, SymTotalOrderTest,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Values(1, 42, 777)));

TEST(SymTotalOrder, SingleMemberDeliversImmediately) {
    Harness h(1);
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "solo");
    h.run();
    EXPECT_EQ(h.delivered(0), std::vector<std::string>{"0:solo"});
}

TEST(SymTotalOrder, SenderDeliversItsOwnMessages) {
    Harness h(3);
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "a");
    h.run();
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(h.delivered(i), std::vector<std::string>{"0:a"});
    }
}

// --- asymmetric total order --------------------------------------------------

class AsymTotalOrderTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AsymTotalOrderTest, AllMembersDeliverIdenticalSequences) {
    const auto [n, seed] = GetParam();
    Harness h(n, static_cast<std::uint64_t>(seed));
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < n; ++i) {
            h.multicast(i, ServiceType::kAsymmetricTotalOrder,
                        "r" + std::to_string(round) + "m" + std::to_string(i));
        }
    }
    h.run();
    const auto reference = h.delivered(0);
    EXPECT_EQ(reference.size(), static_cast<std::size_t>(5 * n));
    for (int i = 1; i < n; ++i) EXPECT_EQ(h.delivered(i), reference);
}

INSTANTIATE_TEST_SUITE_P(GroupsAndSeeds, AsymTotalOrderTest,
                         ::testing::Combine(::testing::Values(2, 4, 7),
                                            ::testing::Values(3, 99)));

TEST(AsymTotalOrder, SequencerIsTheCoordinator) {
    Harness h(3);
    // Member 2 multicasts; only the sequencer (member 0) assigns the order.
    h.multicast(2, ServiceType::kAsymmetricTotalOrder, "x");
    h.run();
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(h.delivered(i), std::vector<std::string>{"2:x"});
    }
}

// --- causal order -------------------------------------------------------------

TEST(CausalOrder, CauseDeliversBeforeEffectEverywhere) {
    // Member 0 multicasts "question"; member 1, having seen it, multicasts
    // "answer". No member may deliver the answer before the question.
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Harness h(4, seed);
        h.multicast(0, ServiceType::kCausalOrder, "question");
        h.run();  // member 1 now saw the question
        h.multicast(1, ServiceType::kCausalOrder, "answer");
        h.run();
        for (int i = 0; i < 4; ++i) {
            const auto d = h.delivered(i);
            const auto q = std::find(d.begin(), d.end(), "0:question");
            const auto a = std::find(d.begin(), d.end(), "1:answer");
            ASSERT_NE(q, d.end());
            ASSERT_NE(a, d.end());
            EXPECT_LT(q - d.begin(), a - d.begin()) << "causality violated at member " << i;
        }
    }
}

TEST(CausalOrder, ConcurrentMessagesAllDelivered) {
    Harness h(3, 9);
    h.multicast(0, ServiceType::kCausalOrder, "a");
    h.multicast(1, ServiceType::kCausalOrder, "b");
    h.multicast(2, ServiceType::kCausalOrder, "c");
    h.run();
    for (int i = 0; i < 3; ++i) EXPECT_EQ(h.delivered(i).size(), 3u);
}

// --- reliable / unreliable multicast ---------------------------------------------

TEST(ReliableMulticast, PerSenderFifoHolds) {
    Harness h(3, 5);
    for (int k = 0; k < 10; ++k) {
        h.multicast(0, ServiceType::kReliableMulticast, "m" + std::to_string(k));
    }
    h.run();
    for (int i = 0; i < 3; ++i) {
        const auto d = h.delivered(i);
        ASSERT_EQ(d.size(), 10u);
        for (int k = 0; k < 10; ++k) {
            EXPECT_EQ(d[static_cast<std::size_t>(k)], "0:m" + std::to_string(k));
        }
    }
}

TEST(UnreliableMulticast, DeliversOnReceipt) {
    Harness h(2);
    h.multicast(0, ServiceType::kUnreliableMulticast, "u");
    h.run();
    EXPECT_EQ(h.delivered(1), std::vector<std::string>{"0:u"});
}

// --- membership -----------------------------------------------------------------

TEST(Membership, SuspicionShrinksViewAtAllCorrectMembers) {
    Harness h(4, 11);
    // Everyone suspects member 3 (e.g. it crashed).
    h.disconnect(0, 3);
    h.disconnect(1, 3);
    h.disconnect(2, 3);
    h.suspect(0, 3);
    h.suspect(1, 3);
    h.suspect(2, 3);
    h.run();
    for (int i = 0; i < 3; ++i) {
        const GroupView& v = h.member(i).view();
        EXPECT_EQ(v.members, (std::vector<MemberId>{0, 1, 2})) << "member " << i;
        EXPECT_GT(v.view_id, 1u);
    }
}

TEST(Membership, ViewsAgreeOnViewId) {
    Harness h(3, 13);
    h.disconnect(0, 2);
    h.disconnect(1, 2);
    h.suspect(0, 2);
    h.suspect(1, 2);
    h.run();
    EXPECT_EQ(h.member(0).view(), h.member(1).view());
}

TEST(Membership, TotalOrderResumesAfterViewChange) {
    Harness h(3, 17);
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "before");
    h.run();
    h.disconnect(0, 2);
    h.disconnect(1, 2);
    h.suspect(0, 2);
    h.suspect(1, 2);
    h.run();
    h.multicast(1, ServiceType::kSymmetricTotalOrder, "after");
    h.run();
    for (int i = 0; i < 2; ++i) {
        EXPECT_EQ(h.delivered(i), (std::vector<std::string>{"0:before", "1:after"}))
            << "member " << i;
    }
}

TEST(Membership, StabilityBlockedByCrashedMemberReleasesOnViewChange) {
    // A symmetric-TO message cannot stabilize while a silent member never
    // acks; removing the member via a view change must release it.
    Harness h(3, 19);
    h.disconnect(0, 2);
    h.disconnect(1, 2);
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "stuck");
    h.run();
    EXPECT_TRUE(h.delivered(0).empty()) << "message delivered without full acknowledgement";
    h.suspect(0, 2);
    h.suspect(1, 2);
    h.run();
    EXPECT_EQ(h.delivered(0), std::vector<std::string>{"0:stuck"});
    EXPECT_EQ(h.delivered(1), std::vector<std::string>{"0:stuck"});
}

TEST(Membership, DisjointSuspicionsSplitTheGroup) {
    // Partitionable semantics: {0,1} and {2,3} mutually suspect each other
    // and form two sub-views — the group has split.
    Harness h(4, 23);
    for (const int a : {0, 1}) {
        for (const int b : {2, 3}) {
            h.disconnect(a, b);
        }
    }
    h.suspect(0, 2);
    h.suspect(0, 3);
    h.suspect(1, 2);
    h.suspect(1, 3);
    h.suspect(2, 0);
    h.suspect(2, 1);
    h.suspect(3, 0);
    h.suspect(3, 1);
    h.run();
    EXPECT_EQ(h.member(0).view().members, (std::vector<MemberId>{0, 1}));
    EXPECT_EQ(h.member(1).view().members, (std::vector<MemberId>{0, 1}));
    EXPECT_EQ(h.member(2).view().members, (std::vector<MemberId>{2, 3}));
    EXPECT_EQ(h.member(3).view().members, (std::vector<MemberId>{2, 3}));
}

TEST(Membership, CascadingSuspicionsShrinkToSingleton)
{
    Harness h(3, 29);
    h.disconnect(0, 1);
    h.disconnect(0, 2);
    h.suspect(0, 1);
    h.suspect(0, 2);
    h.run();
    EXPECT_EQ(h.member(0).view().members, (std::vector<MemberId>{0}));
}

TEST(Membership, SelfSuspicionIgnored) {
    Harness h(2);
    h.suspect(0, 0);
    h.run();
    EXPECT_EQ(h.member(0).view().members, (std::vector<MemberId>{0, 1}));
}

TEST(Membership, ViewDeliveryReportedToApplication) {
    Harness h(3, 31);
    h.disconnect(0, 2);
    h.disconnect(1, 2);
    h.suspect(0, 2);
    h.suspect(1, 2);
    h.run();
    ASSERT_FALSE(h.views(0).empty());
    EXPECT_EQ(h.views(0).back().members, (std::vector<MemberId>{0, 1}));
}

// --- view-synchronous flush ------------------------------------------------

TEST(ViewFlush, PatchesSurvivorThatMissedAnInFlightMulticast) {
    // The agreement hole the flush closes: member 2's broadcast reaches
    // members 0 and 1 but the copy to 3 is lost when 2 crashes
    // mid-broadcast. Without a flush the survivors install the new view with
    // the message buffered at 0/1 and absent at 3 forever. The flush cut
    // must re-supply it so every survivor delivers it.
    Harness h(4, 7);
    h.disconnect(2, 3);  // 2 crashes before its copy to 3 leaves the node
    h.multicast(2, ServiceType::kSymmetricTotalOrder, "inflight");
    h.run();
    EXPECT_TRUE(h.delivered(3).empty());

    h.disconnect(0, 2);
    h.disconnect(1, 2);
    h.suspect(0, 2);
    h.suspect(1, 2);
    h.suspect(3, 2);
    h.run();

    const std::vector<std::string> want{"2:inflight"};
    for (const int i : {0, 1, 3}) {
        EXPECT_EQ(h.delivered(i), want) << "member " << i;
        ASSERT_FALSE(h.views(i).empty()) << "member " << i;
        EXPECT_EQ(h.views(i).back().members, (std::vector<MemberId>{0, 1, 3}));
        EXPECT_FALSE(h.member(i).flushing());
    }

    // Total order resumes in the installed view.
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "after");
    h.run();
    const std::vector<std::string> want_after{"2:inflight", "0:after"};
    for (const int i : {0, 1, 3}) {
        EXPECT_EQ(h.delivered(i), want_after) << "member " << i;
    }
}

TEST(ViewFlush, RetainedLogPatchesLaggardThatMissedADeliveredMessage) {
    // Harder variant: the in-flight message STABILIZES and is delivered at
    // members 0 and 1 before the view change (member 3's clock advances via
    // its ack of a later message), while 3 never receives it. Patching 3
    // requires the retained log of already-delivered messages, not just the
    // undelivered buffers.
    Harness h(4, 11);
    h.disconnect(2, 3);
    h.multicast(2, ServiceType::kSymmetricTotalOrder, "m");
    h.run();
    h.multicast(1, ServiceType::kSymmetricTotalOrder, "y");
    h.run();

    // 2's ack of "y" follows "m" in its FIFO stream, so 3 (missing "m")
    // resequences it into the holdback: "y" cannot stabilize at 3, and the
    // pre-flush states diverge exactly as a crash mid-broadcast allows.
    EXPECT_EQ(h.delivered(0), (std::vector<std::string>{"2:m", "1:y"}));
    EXPECT_EQ(h.delivered(1), (std::vector<std::string>{"2:m", "1:y"}));
    EXPECT_TRUE(h.delivered(3).empty());

    h.disconnect(0, 2);
    h.disconnect(1, 2);
    h.suspect(0, 2);
    h.suspect(1, 2);
    h.run();

    const std::vector<std::string> want{"2:m", "1:y"};
    for (const int i : {0, 1, 3}) {
        EXPECT_EQ(h.delivered(i), want) << "member " << i;
        ASSERT_FALSE(h.views(i).empty()) << "member " << i;
        EXPECT_EQ(h.views(i).back().members, (std::vector<MemberId>{0, 1, 3}));
    }
}

TEST(ViewFlush, SurvivorCrashMidFlushReproposesWithHigherViewId) {
    // Flush rounds are keyed by proposal id: when a survivor dies before
    // answering, suspicion re-proposes with a higher id and the stale round
    // is discarded — the flush must not wedge the group.
    Harness h(4, 13);
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "pre");
    h.run();

    // Member 3 crashes; member 1 crashes too, before it can answer the
    // first flush round.
    for (const int alive : {0, 1, 2}) h.disconnect(alive, 3);
    h.disconnect(0, 1);
    h.disconnect(2, 1);
    h.suspect(0, 3);
    h.suspect(2, 3);
    h.run();
    // The {0,1,2} round stalls waiting on 1: survivors are mid-flush.
    EXPECT_TRUE(h.member(0).flushing());

    // Application traffic submitted mid-flush is held, not lost.
    h.multicast(0, ServiceType::kSymmetricTotalOrder, "during");
    h.run();
    EXPECT_EQ(h.delivered(0), (std::vector<std::string>{"0:pre"}));

    h.suspect(0, 1);
    h.suspect(2, 1);
    h.run();

    const std::vector<std::string> want{"0:pre", "0:during"};
    for (const int i : {0, 2}) {
        EXPECT_EQ(h.delivered(i), want) << "member " << i;
        ASSERT_FALSE(h.views(i).empty()) << "member " << i;
        EXPECT_EQ(h.views(i).back().members, (std::vector<MemberId>{0, 2}));
        EXPECT_FALSE(h.member(i).flushing()) << "member " << i;
    }
    EXPECT_GE(h.views(0).back().view_id, 3u);
}

// ---------------------------------------------------------------------------
// Full simulated deployment (ORB + network + thread pools)
// ---------------------------------------------------------------------------

TEST(NewTopDeployment, SymmetricTotalOrderAcrossTheWire) {
    NewTopOptions opts;
    opts.group_size = 4;
    NewTopDeployment d(opts);

    std::vector<std::vector<std::string>> delivered(4);
    for (int i = 0; i < 4; ++i) {
        d.invocation(i).on_delivery([&delivered, i](const Delivery& dl) {
            delivered[static_cast<std::size_t>(i)].push_back(std::to_string(dl.sender) + ":" +
                                                             string_of(dl.payload));
        });
    }
    for (int k = 0; k < 5; ++k) {
        for (int i = 0; i < 4; ++i) {
            d.invocation(i).multicast(ServiceType::kSymmetricTotalOrder,
                                      bytes_of("k" + std::to_string(k) + "i" + std::to_string(i)));
        }
    }
    d.sim().run();

    EXPECT_EQ(delivered[0].size(), 20u);
    for (int i = 1; i < 4; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)], delivered[0]);
}

TEST(NewTopDeployment, CrashDetectionRemovesMemberFromView) {
    NewTopOptions opts;
    opts.group_size = 3;
    opts.start_suspectors = true;
    opts.suspector.ping_interval = 50 * kMillisecond;
    opts.suspector.suspect_timeout = 300 * kMillisecond;
    NewTopDeployment d(opts);

    // "Crash" member 2 by cutting its node off the network.
    d.faults().block(d.node_of(2), d.node_of(0));
    d.faults().block(d.node_of(2), d.node_of(1));

    d.sim().run_until(3 * kSecond);
    d.stop_suspectors();
    d.sim().run();

    EXPECT_EQ(d.gc(0).view().members, (std::vector<MemberId>{0, 1}));
    EXPECT_EQ(d.gc(1).view().members, (std::vector<MemberId>{0, 1}));
    EXPECT_GT(d.suspector(0).suspicions_raised(), 0u);
}

TEST(NewTopDeployment, FalseSuspicionSplitsGroupWithoutAnyFailure) {
    // The paper's motivating pathology: a delay surge (no crash!) makes the
    // timeout-based suspectors fire, and connected, operational processes
    // split into sub-groups.
    NewTopOptions opts;
    opts.group_size = 3;
    opts.start_suspectors = true;
    opts.suspector.ping_interval = 50 * kMillisecond;
    opts.suspector.suspect_timeout = 200 * kMillisecond;
    NewTopDeployment d(opts);

    d.sim().run_until(500 * kMillisecond);  // healthy phase
    EXPECT_EQ(d.gc(0).view().members, (std::vector<MemberId>{0, 1, 2}));

    // Delay surge far above the suspect timeout, for 2 simulated seconds.
    d.faults().delay_surge(1 * kSecond, d.sim().now() + 2 * kSecond);
    d.sim().run_until(d.sim().now() + 5 * kSecond);
    d.stop_suspectors();
    d.sim().run();

    // At least one member no longer has the full view: the group split even
    // though no process failed.
    const bool split = d.gc(0).view().members.size() < 3 ||
                       d.gc(1).view().members.size() < 3 ||
                       d.gc(2).view().members.size() < 3;
    EXPECT_TRUE(split);
}

TEST(NewTopDeployment, MessageSizeAffectsNothingButPayload) {
    NewTopOptions opts;
    opts.group_size = 2;
    NewTopDeployment d(opts);
    std::vector<Bytes> got;
    d.invocation(1).on_delivery([&](const Delivery& dl) { got.push_back(dl.payload); });
    const Bytes big(10000, 0xab);
    d.invocation(0).multicast(ServiceType::kSymmetricTotalOrder, big);
    d.sim().run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], big);
}

}  // namespace
}  // namespace failsig::newtop
