// Observability tests: histogram bucket geometry (zero/overflow/boundary),
// registry snapshot determinism, flight-recorder ring wraparound, span
// latency attribution through batch links, and the cross-stack contract —
// one obs-enabled run on each of the three systems stamps every lifecycle
// stage, and sweep exports are byte-identical at any worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/recorder.hpp"
#include "obs/span.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace failsig::obs {
namespace {

using scenario::Scenario;
using scenario::SystemKind;

// --- histogram geometry --------------------------------------------------------

TEST(ObsHistogram, ZeroAndNegativeSamplesLandInTheZeroBucket) {
    Histogram h;
    h.add(0);
    h.add(-5);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.zero_count(), 2u);
    EXPECT_EQ(h.sum(), -5);
    EXPECT_EQ(h.min(), -5);
    EXPECT_EQ(h.max(), 0);
    EXPECT_TRUE(h.buckets().empty()) << "zero bucket is not a log-linear bucket";
}

TEST(ObsHistogram, SmallValuesAreExact) {
    // 1..3 get dedicated buckets (indices 1..3): sub-microsecond noise never
    // merges with real latencies.
    EXPECT_EQ(Histogram::index_of(1), 1u);
    EXPECT_EQ(Histogram::index_of(2), 2u);
    EXPECT_EQ(Histogram::index_of(3), 3u);
    EXPECT_EQ(Histogram::lower_bound_of(1), 1u);
    EXPECT_EQ(Histogram::lower_bound_of(3), 3u);
}

TEST(ObsHistogram, OctaveBoundariesSplitIntoFourSubBuckets) {
    // Octave [8,16) = indices 8..11 with width-2 sub-buckets; 16 opens the
    // next octave. The [14,16) bucket is the canonical boundary case.
    EXPECT_EQ(Histogram::index_of(8), 8u);
    EXPECT_EQ(Histogram::index_of(9), 8u);
    EXPECT_EQ(Histogram::index_of(10), 9u);
    EXPECT_EQ(Histogram::index_of(14), 11u);
    EXPECT_EQ(Histogram::index_of(15), 11u);
    EXPECT_EQ(Histogram::index_of(16), 12u);
    EXPECT_EQ(Histogram::lower_bound_of(11), 14u);
    EXPECT_EQ(Histogram::lower_bound_of(12), 16u);
}

TEST(ObsHistogram, EverySampleFallsInsideItsBucketBounds) {
    // The log-linear invariant: lower_bound(index(v)) <= v < lower_bound of
    // the next bucket, at every magnitude up to the overflow cut.
    for (std::uint64_t v : {1ull, 3ull, 4ull, 7ull, 8ull, 15ull, 16ull, 100ull, 1023ull,
                            1024ull, 123456789ull, (1ull << 39), (1ull << 40) - 1}) {
        const std::size_t idx = Histogram::index_of(v);
        EXPECT_LE(Histogram::lower_bound_of(idx), v) << "v=" << v;
        EXPECT_GT(Histogram::lower_bound_of(idx + 1), v) << "v=" << v;
    }
}

TEST(ObsHistogram, HugeSamplesOverflowInsteadOfIndexingOutOfRange) {
    Histogram h;
    h.add(std::int64_t{1} << 40);        // exactly the cut
    h.add((std::int64_t{1} << 40) + 7);  // beyond it
    h.add(5);                            // one ordinary sample
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow_count(), 2u);
    ASSERT_EQ(h.buckets().size(), 1u);
    EXPECT_EQ(h.buckets()[0].first, 5u);  // octave [4,8) has exact width-1 sub-buckets
    EXPECT_EQ(h.buckets()[0].second, 1u);
    EXPECT_EQ(h.max(), (std::int64_t{1} << 40) + 7);
}

// --- registry determinism ------------------------------------------------------

TEST(ObsRegistry, SnapshotOrderIsIndependentOfRegistrationOrder) {
    MetricsRegistry a;
    a.counter("z.last").inc(3);
    a.counter("a.first").inc(1);
    a.gauge("m.middle").set(-7);
    a.histogram("h.lat").add(12);

    MetricsRegistry b;
    b.histogram("h.lat").add(12);
    b.gauge("m.middle").set(-7);
    b.counter("a.first").inc(1);
    b.counter("z.last").inc(3);

    EXPECT_EQ(a.to_json("run", 500), b.to_json("run", 500));
    EXPECT_EQ(a.to_prometheus(), b.to_prometheus());

    const auto snap = a.counter_snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].first, "a.first");
    EXPECT_EQ(snap[1].first, "z.last");
}

TEST(ObsRegistry, JsonCarriesTheFormatTagAndSimTickTimestamp) {
    MetricsRegistry m;
    m.counter("c").inc(9);
    const std::string json = m.to_json("my/scenario", 1234);
    EXPECT_NE(json.find("\"format\":\"failsig-metrics-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"scenario\":\"my/scenario\""), std::string::npos);
    EXPECT_NE(json.find("\"finished_at_us\":1234"), std::string::npos);
    EXPECT_NE(json.find("\"c\":9"), std::string::npos);
}

TEST(ObsRegistry, PrometheusBucketsAreCumulative) {
    MetricsRegistry m;
    Histogram& h = m.histogram("lat.us");
    h.add(0);
    h.add(5);
    h.add(5);
    const std::string text = m.to_prometheus();
    EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"0\"} 1"), std::string::npos);
    EXPECT_NE(text.find("lat_us_bucket{le=\"5\"} 3"), std::string::npos);  // [4,6)
    EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("lat_us_count 3"), std::string::npos);
}

// --- span tracker --------------------------------------------------------------

TEST(ObsSpan, StageLatencyIsMeasuredFromTheSubmitStamp) {
    MetricsRegistry m;
    SpanTracker t(m);
    t.stamp(Stage::kSubmit, 77, 0, 100);
    t.stamp(Stage::kNetSend, 77, 0, 130);
    t.stamp(Stage::kOrdered, 77, 1, 150);
    t.stamp(Stage::kDelivered, 77, 1, 160);
    EXPECT_EQ(m.histogram("span.send_latency_us").sum(), 30);
    EXPECT_EQ(m.histogram("span.order_latency_us").sum(), 50);
    EXPECT_EQ(m.histogram("span.e2e_latency_us").sum(), 60);
    EXPECT_EQ(t.stamps(Stage::kSubmit), 1u);
    EXPECT_EQ(t.stamps(Stage::kDelivered), 1u);
}

TEST(ObsSpan, BatchLinkAttributesTheUnitToTheEarliestSubmit) {
    MetricsRegistry m;
    SpanTracker t(m);
    t.stamp(Stage::kSubmit, 1, 0, 100);  // early request
    t.stamp(Stage::kSubmit, 2, 0, 300);  // late request, same batch
    t.link(42, 2, 0, 400);               // flush: unit 42 carries both
    t.link(42, 1, 0, 400);
    // Batch wait is per-request (100 + 300)...
    EXPECT_EQ(m.histogram("span.batch_wait_us").sum(), 400);
    EXPECT_EQ(m.histogram("span.batch_wait_us").count(), 2u);
    // ...and later stages measured on the unit key inherit the EARLIEST
    // submit, no matter the link order.
    t.stamp(Stage::kOrdered, 42, 1, 600);
    EXPECT_EQ(m.histogram("span.order_latency_us").sum(), 500);
}

TEST(ObsSpan, UntrackedKeysCountButAddNoLatencySample) {
    MetricsRegistry m;
    SpanTracker t(m);
    t.stamp(Stage::kOrdered, 999, 0, 50);  // never submitted: protocol-internal
    EXPECT_EQ(t.stamps(Stage::kOrdered), 1u);
    EXPECT_EQ(m.histogram("span.order_latency_us").count(), 0u);
}

// --- flight recorder -----------------------------------------------------------

TEST(ObsFlightRecorder, RingWrapsKeepingTheNewestEvents) {
    FlightRecorder r(4);
    for (int i = 0; i < 10; ++i) {
        r.record(0, i * 10, "event " + std::to_string(i));
    }
    EXPECT_EQ(r.recorded(), 10u);
    const auto events = r.events(0);
    ASSERT_EQ(events.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].what, "event " + std::to_string(6 + i)) << "oldest-first";
        EXPECT_EQ(events[i].at, (6 + i) * 10);
    }
    const std::string dump = r.dump();
    EXPECT_NE(dump.find("capacity 4"), std::string::npos);
    EXPECT_NE(dump.find("4 retained of 10 seen"), std::string::npos);
    EXPECT_NE(dump.find("event 9"), std::string::npos);
    EXPECT_EQ(dump.find("event 5"), std::string::npos) << "overwritten events are gone";
}

TEST(ObsFlightRecorder, GlobalAndPerNodeRingsAreSeparate) {
    FlightRecorder r(8);
    r.record(-1, 5, "scenario event: crash");
    r.record(2, 7, "delivered span=1");
    EXPECT_EQ(r.events(-1).size(), 1u);
    EXPECT_EQ(r.events(2).size(), 1u);
    EXPECT_TRUE(r.events(0).empty());
    const std::string dump = r.dump();
    EXPECT_NE(dump.find("node * (run-global)"), std::string::npos);
    EXPECT_NE(dump.find("node 2"), std::string::npos);
}

// --- the cross-stack lifecycle contract ----------------------------------------

Scenario obs_scenario(SystemKind system, int n) {
    Scenario s;
    s.name = "obs/conformance";
    s.system = system;
    s.group_size = n;
    s.seed = 7;
    s.workload.msgs_per_member = 4;
    s.obs.enabled = true;
    return s;
}

std::uint64_t counter_value(const scenario::ScenarioReport& report, const std::string& name) {
    for (const auto& [n, v] : report.obs_counters) {
        if (n == name) return v;
    }
    return 0;
}

TEST(ObsConformance, EveryStackStampsAllSevenLifecycleStages) {
    // The span contract that makes cross-stack latency attribution
    // comparable: submit/batched/encoded/net_send/receive/ordered/delivered
    // all fire on NewTOP, FS-NewTOP and PBFT alike.
    const struct {
        SystemKind system;
        int n;
    } cells[] = {{SystemKind::kNewTop, 3}, {SystemKind::kFsNewTop, 3},
                 {SystemKind::kPbft, 4}};
    for (const auto& cell : cells) {
        const auto report = scenario::run_scenario(obs_scenario(cell.system, cell.n));
        ASSERT_TRUE(report.all_invariants_passed()) << scenario::name_of(cell.system);
        for (int stage = 0; stage < kStageCount; ++stage) {
            const std::string name =
                std::string("span.stage.") + stage_name(static_cast<Stage>(stage));
            EXPECT_GT(counter_value(report, name), 0u)
                << scenario::name_of(cell.system) << " never stamped " << name;
        }
        // End-to-end latency must actually be attributed, not just counted:
        // the e2e histogram appears in the export with a nonzero count.
        EXPECT_NE(report.metrics_json.find("\"span.e2e_latency_us\""), std::string::npos);
        EXPECT_EQ(report.metrics_json.find("\"span.e2e_latency_us\":{\"count\":0"),
                  std::string::npos)
            << "no e2e samples on " << scenario::name_of(cell.system);
        EXPECT_FALSE(report.flight_dump.empty());
    }
}

TEST(ObsConformance, DisabledObsProducesNoArtifacts) {
    Scenario s = obs_scenario(SystemKind::kNewTop, 3);
    s.obs.enabled = false;
    const auto report = scenario::run_scenario(s);
    EXPECT_TRUE(report.metrics_json.empty());
    EXPECT_TRUE(report.flight_dump.empty());
    EXPECT_TRUE(report.obs_counters.empty());
}

TEST(ObsConformance, ObsNeverChangesTheTrace) {
    // Stamps are recording-only: the protocol state machines and the
    // schedule are untouched, so the canonical trace is byte-identical with
    // observability on and off.
    Scenario s = obs_scenario(SystemKind::kFsNewTop, 3);
    const auto with_obs = scenario::run_scenario(s);
    s.obs.enabled = false;
    const auto without = scenario::run_scenario(s);
    EXPECT_EQ(with_obs.trace.canonical(), without.trace.canonical());
}

TEST(ObsConformance, MetricsExportIsByteIdenticalAcrossJobCounts) {
    // The determinism guarantee --metrics-out relies on: snapshots are
    // sim-tick stamped and name-ordered, so a 4-worker sweep exports the
    // same bytes as a serial one.
    std::vector<Scenario> scenarios;
    scenarios.push_back(obs_scenario(SystemKind::kNewTop, 3));
    scenarios.push_back(obs_scenario(SystemKind::kFsNewTop, 3));
    scenarios.push_back(obs_scenario(SystemKind::kPbft, 4));
    scenarios.push_back(obs_scenario(SystemKind::kFsNewTop, 5));

    const auto serial = scenario::run_scenarios(scenarios, 1);
    const auto parallel = scenario::run_scenarios(scenarios, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].metrics_json.empty());
        EXPECT_EQ(serial[i].metrics_json, parallel[i].metrics_json) << scenarios[i].name;
        EXPECT_EQ(serial[i].flight_dump, parallel[i].flight_dump) << scenarios[i].name;
        EXPECT_EQ(serial[i].obs_counters, parallel[i].obs_counters) << scenarios[i].name;
    }
}

// --- the façade ----------------------------------------------------------------

TEST(ObsFacade, CryptoAndHoldbackFeedTheirHistograms) {
    Obs obs;
    obs.crypto_sign(120);
    obs.crypto_verify(80);
    obs.crypto_verify(90);
    obs.holdback_depth(3);
    EXPECT_EQ(obs.metrics().histogram("crypto.sign_us").count(), 1u);
    EXPECT_EQ(obs.metrics().histogram("crypto.sign_us").sum(), 120);
    EXPECT_EQ(obs.metrics().histogram("crypto.verify_us").count(), 2u);
    EXPECT_EQ(obs.metrics().histogram("gc.holdback_depth").sum(), 3);
}

TEST(ObsFacade, UnboundObsStampsAtTickZero) {
    Obs obs;
    EXPECT_EQ(obs.now(), 0);
    obs.note(1, "early event");
    const auto events = obs.flight().events(1);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].at, 0);
}

}  // namespace
}  // namespace failsig::obs
