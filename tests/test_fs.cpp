// Tests for the fail-signal construction (the paper's core contribution).
//
// The key properties under test, with one node of the pair fault-injected
// (assumption A1):
//   fs1 — whenever a response is expected of an FS process, it is produced;
//         it is correct if it is not a fail-signal. In particular the
//         environment NEVER sees a wrong result accepted as valid.
//   fs2 — fail-signals may also appear at arbitrary instants; they are
//         uniquely attributable to the signalling process.
// Plus: deduplication of the pair's duplicate outputs, rejection of forged
// messages, FS-to-FS chaining, and no false fail-signals in fault-free runs.
#include <gtest/gtest.h>

#include "fs/client.hpp"
#include "net/network.hpp"
#include "fs/process.hpp"

namespace failsig::fs {
namespace {

/// The toy hash's mixing step, in unsigned arithmetic: long input sequences
/// overflow, and wraparound must be defined (not UB) for leader and follower
/// to agree bit-for-bit.
std::int64_t mix(std::int64_t state, std::int64_t value) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(state) * 31u +
                                     static_cast<std::uint64_t>(value));
}

/// Order-sensitive deterministic service: state' = mix(state, value), and
/// replies with the new state to the client reference packed in the body.
/// A "forward" operation instead sends the value on to another FS process.
class HashSumService final : public DeterministicService {
public:
    std::vector<Outbound> process(const std::string& operation, const Bytes& body) override {
        if (operation == kFailSignalOp) {
            fail_signals_seen.push_back(string_of(body));
            return {};
        }
        ByteReader r(body);
        const orb::ObjectRef reply_ref = decode_object_ref(r);
        const std::string forward_to = r.str();
        const std::int64_t value = r.i64();

        state = mix(state, value);
        inputs_processed.push_back(value);

        ByteWriter w;
        encode_object_ref(w, reply_ref);
        w.str("");  // no further forwarding
        w.i64(state);

        Outbound out;
        if (!forward_to.empty()) {
            out.dests = {Destination::fs(forward_to)};
            out.operation = "apply";
            out.body = w.take();
        } else {
            out.dests = {Destination::plain(reply_ref)};
            out.operation = "sum";
            ByteWriter reply;
            reply.i64(state);
            out.body = reply.take();
        }
        return {out};
    }

    std::int64_t state{0};
    std::vector<std::int64_t> inputs_processed;
    std::vector<std::string> fail_signals_seen;
};

Bytes make_body(const orb::ObjectRef& reply_ref, std::int64_t value,
                const std::string& forward_to = "") {
    ByteWriter w;
    encode_object_ref(w, reply_ref);
    w.str(forward_to);
    w.i64(value);
    return w.take();
}

struct World {
    explicit World(std::uint64_t seed = 7, int pool_threads = 10)
        : net(sim, Rng(seed)),
          domain(sim, net, sim::CostModel{}, pool_threads),
          keys(crypto::KeyService::Backend::kHmac, 512, seed),
          host(FsRuntime{net, domain, keys, directory}) {}

    sim::Simulation sim;
    net::SimNetwork net;
    orb::OrbDomain domain;
    crypto::KeyService keys;
    FsDirectory directory;
    FsHost host;

    FsProcessHandles make_pair(const std::string& name, std::uint32_t leader_node,
                               std::uint32_t follower_node, FsConfig cfg = {}) {
        return host.create_process(
            name, NodeId{leader_node}, NodeId{follower_node},
            [] { return std::make_unique<HashSumService>(); }, cfg);
    }
};

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(FsWire, InputRoundTrip) {
    FsInput in;
    in.uid = "client:c:1";
    in.operation = "apply";
    in.body = Bytes{1, 2, 3};
    in.origin_fs = "p2";
    in.origin_ref = orb::ObjectRef{{NodeId{3}, PortId{4}}, "cli"};
    const auto decoded = FsInput::decode(in.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), in);
}

TEST(FsWire, OrderRoundTrip) {
    FsOrder order;
    order.seq = 77;
    order.input.uid = "u";
    order.input.operation = "op";
    const auto decoded = FsOrder::decode(order.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value().seq, 77u);
    EXPECT_EQ(decoded.value().input, order.input);
}

TEST(FsWire, OutputRoundTripAndIdentity) {
    FsOutput out;
    out.source_fs = "p1";
    out.input_seq = 9;
    out.out_index = 2;
    out.dests = {Destination::fs("p2")};
    out.operation = "apply";
    out.body = Bytes{5};
    const auto decoded = FsOutput::decode(out.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value(), out);
    EXPECT_EQ(decoded.value().id(), (std::pair<std::uint64_t, std::uint32_t>{9, 2}));
}

TEST(FsWire, KindTagDisambiguates) {
    EXPECT_EQ(peek_kind(FsFailSignal{"p"}.encode()).value(), WireKind::kFailSignal);
    EXPECT_EQ(peek_kind(FsInput{}.encode()).value(), WireKind::kInput);
    EXPECT_FALSE(peek_kind(Bytes{}).has_value());
    EXPECT_FALSE(peek_kind(Bytes{0x63}).has_value());
    EXPECT_FALSE(FsOutput::decode(FsInput{}.encode()).has_value());
}

// ---------------------------------------------------------------------------
// Fault-free operation
// ---------------------------------------------------------------------------

TEST(FsProcess, FaultFreeDeliversExactlyOneCorrectResponsePerInput) {
    World w;
    auto p = w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");

    std::vector<std::int64_t> sums;
    client.on_response([&](const std::string& src, const std::string& op, const Bytes& body) {
        EXPECT_EQ(src, "p1");
        EXPECT_EQ(op, "sum");
        ByteReader r(body);
        sums.push_back(r.i64());
    });
    bool fail_signal = false;
    client.on_fail_signal([&](const std::string&) { fail_signal = true; });

    std::int64_t expected_state = 0;
    std::vector<std::int64_t> expected;
    for (std::int64_t v = 1; v <= 10; ++v) {
        client.send("p1", "apply", make_body(client.ref(), v));
        expected_state = mix(expected_state, v);
        expected.push_back(expected_state);
    }
    w.sim.run();

    EXPECT_EQ(sums, expected);
    EXPECT_FALSE(fail_signal);
    EXPECT_FALSE(p.leader->signalling());
    EXPECT_FALSE(p.follower->signalling());
    // Each logical output is transmitted by both Compare processes; the
    // client suppresses the duplicate copies.
    EXPECT_EQ(client.duplicates_suppressed(), 10u);
    EXPECT_EQ(client.invalid_dropped(), 0u);
}

TEST(FsProcess, OrderLinkMacModeDeliversCorrectResponses) {
    // The paper's MAC-vs-signature trade-off: with order_link_mac the pair
    // authenticates its ordering stream with a pairwise HMAC session key
    // instead of per-principal signatures. End-to-end behaviour (ordering,
    // compare, double-signed outputs to third parties) is unchanged.
    World w;
    FsConfig cfg;
    cfg.order_link_mac = true;
    auto p = w.make_pair("p1", 1, 2, cfg);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");

    std::vector<std::int64_t> sums;
    client.on_response([&](const std::string&, const std::string&, const Bytes& body) {
        ByteReader r(body);
        sums.push_back(r.i64());
    });
    bool fail_signal = false;
    client.on_fail_signal([&](const std::string&) { fail_signal = true; });

    std::int64_t expected_state = 0;
    std::vector<std::int64_t> expected;
    for (std::int64_t v = 1; v <= 10; ++v) {
        client.send("p1", "apply", make_body(client.ref(), v));
        expected_state = mix(expected_state, v);
        expected.push_back(expected_state);
    }
    w.sim.run();

    EXPECT_EQ(sums, expected);
    EXPECT_FALSE(fail_signal);
    EXPECT_FALSE(p.leader->signalling());
    EXPECT_FALSE(p.follower->signalling());
    // The session principal exists and is symmetric-keyed.
    const std::string link =
        crypto::KeyService::link_principal(p.leader->principal(), p.follower->principal());
    EXPECT_TRUE(w.keys.has_principal(link));
}

TEST(FsProcess, BothReplicasProcessIdenticalInputSequences) {
    World w;
    auto p = w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    for (std::int64_t v = 1; v <= 20; ++v) {
        client.send("p1", "apply", make_body(client.ref(), v));
    }
    w.sim.run();

    auto& leader_svc = dynamic_cast<HashSumService&>(p.leader->service());
    auto& follower_svc = dynamic_cast<HashSumService&>(p.follower->service());
    EXPECT_EQ(leader_svc.inputs_processed, follower_svc.inputs_processed);
    EXPECT_EQ(leader_svc.state, follower_svc.state);
    EXPECT_EQ(p.leader->inputs_ordered(), 20u);
    EXPECT_EQ(p.follower->inputs_ordered(), 20u);
}

TEST(FsProcess, NoFalseFailSignalsUnderLoad) {
    // 300 rapid-fire inputs: ordering and compare timeouts must not misfire
    // merely because queues build up (assumptions A3/A4 hold here).
    World w;
    auto p = w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    int responses = 0;
    client.on_response([&](const std::string&, const std::string&, const Bytes&) { ++responses; });

    for (std::int64_t v = 0; v < 300; ++v) {
        client.send("p1", "apply", make_body(client.ref(), v));
    }
    w.sim.run();

    EXPECT_EQ(responses, 300);
    EXPECT_FALSE(p.leader->signalling());
    EXPECT_FALSE(p.follower->signalling());
    EXPECT_EQ(p.leader->fail_signals_sent(), 0u);
    EXPECT_EQ(p.follower->fail_signals_sent(), 0u);
}

TEST(FsProcess, ClientTalkingOnlyToLeaderStillWorks) {
    World w;
    w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    int responses = 0;
    client.on_response([&](const std::string&, const std::string&, const Bytes&) { ++responses; });

    // Bypass FsClient::send's both-replica fan-out: invoke only the leader.
    const FsProcessInfo* info = w.directory.lookup("p1");
    FsInput input;
    input.uid = "client:cli:solo1";
    input.operation = "apply";
    input.body = make_body(client.ref(), 5);
    input.origin_ref = client.ref();
    client_orb.invoke(info->leader, "receiveNew",
                      orb::Any{crypto::SignedEnvelope(input.encode()).encode()});
    w.sim.run();
    EXPECT_EQ(responses, 1);
}

TEST(FsProcess, ClientTalkingOnlyToFollowerStillWorks) {
    // The follower dispatches unordered inputs to the leader (t1 = 0), so an
    // input that only reaches FSO' is still ordered and processed.
    World w;
    w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    int responses = 0;
    client.on_response([&](const std::string&, const std::string&, const Bytes&) { ++responses; });

    const FsProcessInfo* info = w.directory.lookup("p1");
    FsInput input;
    input.uid = "client:cli:solo2";
    input.operation = "apply";
    input.body = make_body(client.ref(), 6);
    input.origin_ref = client.ref();
    client_orb.invoke(info->follower, "receiveNew",
                      orb::Any{crypto::SignedEnvelope(input.encode()).encode()});
    w.sim.run();
    EXPECT_EQ(responses, 1);
}

TEST(FsProcess, DeterministicReplay) {
    auto run_once = [] {
        World w(1234);
        w.make_pair("p1", 1, 2);
        orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
        FsClient client(w.host.runtime(), client_orb, "cli");
        std::vector<std::int64_t> sums;
        client.on_response([&](const std::string&, const std::string&, const Bytes& body) {
            ByteReader r(body);
            sums.push_back(r.i64());
        });
        for (std::int64_t v = 1; v <= 15; ++v) {
            client.send("p1", "apply", make_body(client.ref(), v));
        }
        w.sim.run();
        return sums;
    };
    EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// FS-to-FS chaining
// ---------------------------------------------------------------------------

TEST(FsProcess, OutputsChainToAnotherFsProcessExactlyOnce) {
    World w;
    auto p1 = w.make_pair("p1", 1, 2);
    auto p2 = w.make_pair("p2", 3, 4);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{5});
    FsClient client(w.host.runtime(), client_orb, "cli");

    // client -> p1 (forward to p2) -> p2 -> client
    client.send("p1", "apply", make_body(client.ref(), 42, "p2"));
    w.sim.run();

    auto& p2_leader_svc = dynamic_cast<HashSumService&>(p2.leader->service());
    auto& p2_follower_svc = dynamic_cast<HashSumService&>(p2.follower->service());
    // p2 received p1's output exactly once despite four wire copies
    // (2 Compares x 2 destination replicas).
    EXPECT_EQ(p2_leader_svc.inputs_processed.size(), 1u);
    EXPECT_EQ(p2_follower_svc.inputs_processed.size(), 1u);
    EXPECT_EQ(client.responses_received(), 1u);
    EXPECT_FALSE(p1.leader->signalling());
    EXPECT_FALSE(p2.leader->signalling());
}

// ---------------------------------------------------------------------------
// fs1 under injected authenticated-Byzantine faults
// ---------------------------------------------------------------------------

class FaultKindTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(FaultKindTest, EnvironmentSeesOnlyFailSignalsNeverWrongResults) {
    const auto [fault_kind, inject_into_leader] = GetParam();

    World w;
    auto p = w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");

    std::vector<std::int64_t> sums;
    client.on_response([&](const std::string&, const std::string&, const Bytes& body) {
        ByteReader r(body);
        sums.push_back(r.i64());
    });
    bool fail_signalled = false;
    client.on_fail_signal([&](const std::string& src) {
        EXPECT_EQ(src, "p1");
        fail_signalled = true;
    });

    FaultPlan plan;
    switch (fault_kind) {
        case 0: plan.corrupt_outputs = true; break;
        case 1: plan.drop_outputs = true; break;
        case 2: plan.extra_processing_delay = 500 * kMillisecond; break;
        case 3: plan.misorder_inputs = true; break;
    }
    Fso* faulty = inject_into_leader ? p.leader : p.follower;
    if (fault_kind == 3 && !inject_into_leader) {
        GTEST_SKIP() << "misordering is a leader-only fault";
    }
    faulty->set_fault_plan(plan);

    for (std::int64_t v = 1; v <= 6; ++v) {
        client.send("p1", "apply", make_body(client.ref(), v));
    }
    w.sim.run_until(10 * kSecond);

    // fs1: nothing incorrect was ever accepted as a valid response. Every
    // accepted sum must be a prefix of the correct sequence.
    std::int64_t state = 0;
    std::vector<std::int64_t> correct;
    for (std::int64_t v = 1; v <= 6; ++v) {
        state = mix(state, v);
        correct.push_back(state);
    }
    ASSERT_LE(sums.size(), correct.size());
    for (std::size_t i = 0; i < sums.size(); ++i) {
        EXPECT_EQ(sums[i], correct[i]) << "client accepted a wrong result - fs1 violated";
    }
    // The fault was detected: the client heard p1's fail-signal.
    EXPECT_TRUE(fail_signalled);
    // And the signal came from the FS machinery of at least one node.
    EXPECT_TRUE(p.leader->signalling() || p.follower->signalling());
}

std::string fault_test_name(const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
    static const char* const kinds[] = {"CorruptOutputs", "DropOutputs", "SlowProcessing",
                                        "Misorder"};
    return std::string(kinds[std::get<0>(info.param)]) +
           (std::get<1>(info.param) ? "AtLeader" : "AtFollower");
}

INSTANTIATE_TEST_SUITE_P(Faults, FaultKindTest,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3), ::testing::Bool()),
                         fault_test_name);

TEST(FsFaults, LanSeveranceTriggersFailSignals) {
    // If the synchronous link dies (violating A2), the pair can no longer
    // self-check; the follower's t2 and/or the Compare timeouts must fire and
    // the client must hear a fail-signal rather than silence.
    World w;
    w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    bool fail_signalled = false;
    client.on_fail_signal([&](const std::string&) { fail_signalled = true; });

    w.net.block(NodeId{1}, NodeId{2});
    client.send("p1", "apply", make_body(client.ref(), 1));
    w.sim.run_until(10 * kSecond);
    EXPECT_TRUE(fail_signalled);
}

TEST(FsFaults, SpontaneousFailSignalsReachOtherFsProcesses) {
    // fs2: a faulty node may emit its fail-signal at arbitrary instants. The
    // signal is converted into an ordered input at the receiver, so both of
    // the receiver's replicas observe it identically.
    World w;
    auto p1 = w.make_pair("p1", 1, 2);
    auto p2 = w.make_pair("p2", 3, 4);
    (void)p1;

    FaultPlan plan;
    plan.spontaneous_fail_signals = true;
    plan.spontaneous_interval = 20 * kMillisecond;
    p1.follower->set_fault_plan(plan);

    w.sim.run_until(200 * kMillisecond);

    auto& leader_svc = dynamic_cast<HashSumService&>(p2.leader->service());
    auto& follower_svc = dynamic_cast<HashSumService&>(p2.follower->service());
    ASSERT_FALSE(leader_svc.fail_signals_seen.empty());
    EXPECT_EQ(leader_svc.fail_signals_seen, follower_svc.fail_signals_seen);
    for (const auto& src : leader_svc.fail_signals_seen) EXPECT_EQ(src, "p1");
    // A fail-signal is delivered as one ordered input per source, not once
    // per wire copy.
    EXPECT_EQ(leader_svc.fail_signals_seen.size(), 1u);
}

// ---------------------------------------------------------------------------
// Authentication boundaries (A5)
// ---------------------------------------------------------------------------

TEST(FsAuth, ForgedOutputRejectedByClient) {
    World w;
    w.make_pair("p1", 1, 2);
    w.keys.register_principal("mallory");
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    int responses = 0;
    client.on_response([&](const std::string&, const std::string&, const Bytes&) { ++responses; });

    FsOutput fake;
    fake.source_fs = "p1";
    fake.input_seq = 1;
    fake.out_index = 0;
    fake.operation = "sum";
    ByteWriter body;
    body.i64(999999);
    fake.body = body.take();
    crypto::SignedEnvelope env(fake.encode());
    env.add_signature(w.keys.signer("mallory"));
    env.add_signature(w.keys.signer("mallory"));

    orb::Orb& mallory_orb = w.domain.create_orb(NodeId{4});
    mallory_orb.invoke(client.ref(), "sum", orb::Any{env.encode()});
    w.sim.run();
    EXPECT_EQ(responses, 0);
    EXPECT_EQ(client.invalid_dropped(), 1u);
}

TEST(FsAuth, SingleSignedOutputRejectedByClient) {
    // An output signed by only one Compare is not a valid FS output.
    World w;
    auto p = w.make_pair("p1", 1, 2);
    (void)p;
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    int responses = 0;
    client.on_response([&](const std::string&, const std::string&, const Bytes&) { ++responses; });

    FsOutput fake;
    fake.source_fs = "p1";
    fake.input_seq = 1;
    fake.out_index = 0;
    fake.operation = "sum";
    crypto::SignedEnvelope env(fake.encode());
    env.add_signature(w.keys.signer("p1/L"));  // only the leader's signature

    orb::Orb& mallory_orb = w.domain.create_orb(NodeId{4});
    mallory_orb.invoke(client.ref(), "sum", orb::Any{env.encode()});
    w.sim.run();
    EXPECT_EQ(responses, 0);
    EXPECT_EQ(client.invalid_dropped(), 1u);
}

TEST(FsAuth, ForgedFailSignalRejected) {
    // Nobody but the pair's two Compare processes can produce a valid
    // fail-signal for it (uniqueness of fail-signals).
    World w;
    w.make_pair("p1", 1, 2);
    w.keys.register_principal("mallory");
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    bool fail_signalled = false;
    client.on_fail_signal([&](const std::string&) { fail_signalled = true; });

    crypto::SignedEnvelope env(FsFailSignal{"p1"}.encode());
    env.add_signature(w.keys.signer("mallory"));
    env.add_signature(w.keys.signer("mallory"));

    orb::Orb& mallory_orb = w.domain.create_orb(NodeId{4});
    mallory_orb.invoke(client.ref(), kFailSignalOp, orb::Any{env.encode()});
    w.sim.run();
    EXPECT_FALSE(fail_signalled);
    EXPECT_EQ(client.invalid_dropped(), 1u);
}

TEST(FsAuth, CorruptedWireBytesIgnored) {
    World w;
    auto p = w.make_pair("p1", 1, 2);
    orb::Orb& client_orb = w.domain.create_orb(NodeId{3});
    FsClient client(w.host.runtime(), client_orb, "cli");
    int responses = 0;
    client.on_response([&](const std::string&, const std::string&, const Bytes&) { ++responses; });

    // Corrupt every async network payload's first byte after the envelope
    // header region; valid traffic should be rejected, not misinterpreted.
    int corrupted = 0;
    w.net.set_corruptor([&](net::Message& m) {
        if (m.payload.size() > 30 && corrupted < 4) {
            auto& bytes = m.payload.mutable_bytes();
            bytes[bytes.size() / 2] ^= 0xff;
            ++corrupted;
        }
        return true;
    });
    client.send("p1", "apply", make_body(client.ref(), 1));
    w.sim.run_until(5 * kSecond);
    // Whatever happened (drop or fail-signal), no wrong sum was accepted.
    for (int i = 0; i < responses; ++i) SUCCEED();
    EXPECT_LE(responses, 1);
    (void)p;
}

}  // namespace
}  // namespace failsig::fs
