// Fault-injection coverage: every fs::FaultPlan field exercised through the
// scenario engine and judged by the invariant checkers. The contract under
// test is the paper's §2 claim, per failure mode: whatever a single faulty
// pair node does — corrupt outputs, drop them, process slower than κ allows,
// misorder inputs, or emit fail-signals spontaneously — the environment
// observes only fs1/fs2 behaviour: a unique double-signed fail-signal and a
// clean exclusion, never a wrong result at a correct member.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"

namespace failsig::scenario {
namespace {

/// Campaign skeleton: 3 members, tagged symmetric-TO workload, one fault
/// plan injected at `node` of member 2's pair at t=150ms.
Scenario campaign(const fs::FaultPlan& plan, PairNode node = PairNode::kFollower,
                  TimePoint horizon = 45 * kSecond) {
    Scenario s;
    s.name = "fault-injection";
    s.system = SystemKind::kFsNewTop;
    s.group_size = 3;
    s.seed = 21;
    s.workload.msgs_per_member = 6;
    s.timeline.push_back(ScenarioEvent::fault(150 * kMillisecond, 2, node, plan));
    s.deadline = horizon;
    return s;
}

void expect_all_invariants(const ScenarioReport& report) {
    for (const auto& inv : report.invariants) {
        EXPECT_TRUE(inv.passed) << inv.name << ": " << inv.detail;
    }
}

std::vector<std::uint32_t> final_view_of(const ScenarioReport& report, int member) {
    const auto views = report.trace.views_by_member(report.scenario.group_size);
    const auto& mine = views[static_cast<std::size_t>(member)];
    return mine.empty() ? std::vector<std::uint32_t>{} : mine.back();
}

// --- corrupt_outputs --------------------------------------------------------

TEST(FaultInjection, CorruptOutputsTripsFailSignalAndExclusion) {
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    const auto report = run_scenario(campaign(plan));
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(final_view_of(report, 1), (std::vector<std::uint32_t>{0, 1}));
}

TEST(FaultInjection, CorruptOutputsAtLeaderNodeToo) {
    // A1 allows the fault at either node of the pair; the construction is
    // symmetric, so the leader-side fault must be detected identically.
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    const auto report = run_scenario(campaign(plan, PairNode::kLeader));
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
}

// --- drop_outputs ------------------------------------------------------------

TEST(FaultInjection, DropOutputsYieldsFailSignalNotSilence) {
    fs::FaultPlan plan;
    plan.drop_outputs = true;
    const auto report = run_scenario(campaign(plan, PairNode::kLeader, 60 * kSecond));
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(final_view_of(report, 1), (std::vector<std::uint32_t>{0, 1}));
}

// --- extra_processing_delay ---------------------------------------------------

TEST(FaultInjection, ProcessingSlowerThanKappaBoundIsDetected) {
    // A3 bounds the pair's relative processing speed by κ; a node that takes
    // 2 extra seconds per input blows every compare timeout and must be
    // detected — slow beyond the bound is indistinguishable from dead.
    fs::FaultPlan plan;
    plan.extra_processing_delay = 2 * kSecond;
    const auto report = run_scenario(campaign(plan, PairNode::kFollower, 90 * kSecond));
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
}

// --- misorder_inputs ----------------------------------------------------------

TEST(FaultInjection, MisorderedLeaderDivergesAndIsCaught) {
    // The Byzantine leader announces one order and executes another. The
    // replicas' outputs then diverge, the Compare processes cannot match
    // them, and the pair fail-signals. A burst of simultaneous multicasts
    // keeps several inputs in flight so the swap has material to work on.
    fs::FaultPlan plan;
    plan.misorder_inputs = true;
    Scenario s = campaign(plan, PairNode::kLeader, 90 * kSecond);
    s.timeline.push_back(ScenarioEvent::burst(200 * kMillisecond, 0, 8));
    s.timeline.push_back(ScenarioEvent::burst(200 * kMillisecond, 1, 8));
    const auto report = run_scenario(s);
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
}

// --- spontaneous_fail_signals + spontaneous_interval --------------------------

TEST(FaultInjection, SpontaneousFailSignalsExcludeOnlyTheirSource) {
    // fs2: the faulty node emits its pair's fail-signal at arbitrary times
    // while possibly still working. The other members must exclude member 2
    // and nobody else — and the checker confirms the signals all originate
    // from the genuinely faulted pair.
    fs::FaultPlan plan;
    plan.spontaneous_fail_signals = true;
    plan.spontaneous_interval = 30 * kMillisecond;
    const auto report = run_scenario(campaign(plan, PairNode::kLeader, 5 * kSecond));
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
    EXPECT_EQ(final_view_of(report, 1), (std::vector<std::uint32_t>{0, 1}));
}

// --- active_from gating --------------------------------------------------------

TEST(FaultInjection, ActiveFromInTheFutureMeansNoFaultYet) {
    // The plan is installed but gated to activate long after the run ends:
    // the pair must behave perfectly — no fail-signals, full view, all
    // messages delivered everywhere.
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    plan.active_from = 10 * 60 * kSecond;  // far beyond the horizon
    const auto report = run_scenario(campaign(plan, PairNode::kFollower, 10 * kSecond));
    EXPECT_EQ(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_TRUE(final_view_of(report, 0).empty()) << "no view change should ever happen";
    EXPECT_EQ(report.metrics.observed_deliveries, report.metrics.expected_deliveries);
}

TEST(FaultInjection, ActiveFromGatesTheSamePlanIntoFaultiness) {
    // The identical plan, gated into the middle of the run, must trip.
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    plan.active_from = 300 * kMillisecond;
    const auto report = run_scenario(campaign(plan));
    EXPECT_GT(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(final_view_of(report, 0), (std::vector<std::uint32_t>{0, 1}));
}

// --- probability ----------------------------------------------------------------

TEST(FaultInjection, ZeroProbabilityFaultNeverFires) {
    fs::FaultPlan plan;
    plan.corrupt_outputs = true;
    plan.probability = 0.0;
    const auto report = run_scenario(campaign(plan, PairNode::kFollower, 10 * kSecond));
    EXPECT_EQ(report.metrics.fail_signal_events, 0u);
    expect_all_invariants(report);
    EXPECT_EQ(report.metrics.observed_deliveries, report.metrics.expected_deliveries);
}

// --- determinism of fault campaigns ----------------------------------------------

TEST(FaultInjection, EveryCampaignIsSeedDeterministic) {
    fs::FaultPlan plan;
    plan.drop_outputs = true;
    const Scenario s = campaign(plan, PairNode::kLeader, 60 * kSecond);
    const auto a = run_scenario(s);
    const auto b = run_scenario(s);
    EXPECT_EQ(a.trace.canonical(), b.trace.canonical());
}

}  // namespace
}  // namespace failsig::scenario
