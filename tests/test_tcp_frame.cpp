// Wire-level tests for the TCP backend's codecs: the length-prefixed frame
// format (net/frame.hpp) and the node-id ↔ host:port directory
// (net/endpoint_map.hpp). The FrameReader sits directly behind the socket
// read loop, so it is fuzzed the way an adversarial or corrupt peer would
// exercise it: garbage streams, truncation at every offset, and hostile
// length fields. Finally, the published ephemeral-port directory of real
// TcpDeployments is checked — concurrent deployments must never collide.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "deploy/deployment.hpp"
#include "deploy/tcp.hpp"
#include "net/endpoint_map.hpp"
#include "net/frame.hpp"

namespace failsig::net {
namespace {

Bytes payload_of(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

Frame expect_one_frame(FrameReader& reader) {
    auto frame = reader.next();
    EXPECT_TRUE(frame.has_value());
    EXPECT_FALSE(reader.failed()) << reader.error();
    return frame.has_value() ? std::move(*frame) : Frame{};
}

TEST(Frame, RoundTripsThroughReader) {
    const Endpoint src{NodeId{7}, PortId{3}};
    const Endpoint dst{NodeId{1}, PortId{99}};
    const Bytes payload = payload_of({0xde, 0xad, 0xbe, 0xef});
    const Bytes wire = encode_frame(src, dst, payload);

    FrameReader reader;
    reader.feed(wire);
    const Frame frame = expect_one_frame(reader);
    EXPECT_EQ(frame.src, src);
    EXPECT_EQ(frame.dst, dst);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frame, EmptyPayloadIsLegal) {
    const Bytes wire = encode_frame(Endpoint{NodeId{1}, PortId{1}},
                                    Endpoint{NodeId{2}, PortId{2}}, Bytes{});
    FrameReader reader;
    reader.feed(wire);
    const Frame frame = expect_one_frame(reader);
    EXPECT_TRUE(frame.payload.empty());
}

TEST(Frame, ByteAtATimeFeedReassembles) {
    // A socket can hand the reader arbitrarily small chunks; the parser
    // must reassemble across every split point.
    const Bytes wire = encode_frame(Endpoint{NodeId{3}, PortId{4}},
                                    Endpoint{NodeId{5}, PortId{6}},
                                    payload_of({1, 2, 3, 4, 5, 6, 7}));
    FrameReader reader;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        reader.feed(std::span(&wire[i], 1));
        EXPECT_FALSE(reader.next().has_value()) << "frame complete too early at " << i;
        ASSERT_FALSE(reader.failed()) << reader.error();
    }
    reader.feed(std::span(&wire[wire.size() - 1], 1));
    const Frame frame = expect_one_frame(reader);
    EXPECT_EQ(frame.payload.size(), 7u);
}

TEST(Frame, BackToBackFramesInOneChunk) {
    Bytes wire = encode_frame(Endpoint{NodeId{1}, PortId{1}},
                              Endpoint{NodeId{2}, PortId{1}}, payload_of({0xaa}));
    const Bytes second = encode_frame(Endpoint{NodeId{2}, PortId{1}},
                                      Endpoint{NodeId{1}, PortId{1}}, payload_of({0xbb}));
    wire.insert(wire.end(), second.begin(), second.end());

    FrameReader reader;
    reader.feed(wire);
    EXPECT_EQ(expect_one_frame(reader).payload, payload_of({0xaa}));
    EXPECT_EQ(expect_one_frame(reader).payload, payload_of({0xbb}));
    EXPECT_FALSE(reader.next().has_value());
}

TEST(Frame, TruncatedFrameIsPendingNotPoisoned) {
    // Truncation is a normal stream condition (more bytes coming), never an
    // error: the reader reports "need more" and stays healthy.
    const Bytes wire = encode_frame(Endpoint{NodeId{1}, PortId{1}},
                                    Endpoint{NodeId{2}, PortId{2}},
                                    payload_of({9, 9, 9}));
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        FrameReader reader;
        reader.feed(std::span(wire.data(), cut));
        EXPECT_FALSE(reader.next().has_value()) << "cut at " << cut;
        EXPECT_FALSE(reader.failed()) << "cut at " << cut << ": " << reader.error();
    }
}

TEST(Frame, HostileLengthFieldPoisonsTheStream) {
    // A peer promising a 4 GiB body must be cut off before any allocation,
    // and the poison must be sticky — resync on a byte stream is impossible.
    for (const std::uint32_t hostile :
         {0xffffffffu, static_cast<std::uint32_t>(kMaxFrameBytes) + 1u}) {
        ByteWriter w;
        w.u32(hostile);
        FrameReader reader;
        reader.feed(w.take());
        EXPECT_FALSE(reader.next().has_value());
        EXPECT_TRUE(reader.failed());
        EXPECT_NE(reader.error().find("hostile length"), std::string::npos);

        // Sticky: even a well-formed frame afterwards is never surfaced.
        reader.feed(encode_frame(Endpoint{NodeId{1}, PortId{1}},
                                 Endpoint{NodeId{2}, PortId{2}}, payload_of({1})));
        EXPECT_FALSE(reader.next().has_value());
        EXPECT_TRUE(reader.failed());
    }
}

TEST(Frame, LengthBelowHeaderSizeIsHostile) {
    // The body must at least hold two endpoint headers; a shorter length is
    // a framing attack, not a short message.
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(2 * kEndpointWireBytes - 1));
    FrameReader reader;
    reader.feed(w.take());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.failed());
}

TEST(Frame, GarbageStreamsNeverCrashAndStayBounded) {
    // Deterministic garbage corpus: random byte streams fed in random chunk
    // sizes. The reader must never crash or grow unboundedly — every stream
    // either waits for more bytes or poisons itself.
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        Rng rng(seed);
        FrameReader reader;
        Bytes chunk;
        for (int round = 0; round < 64 && !reader.failed(); ++round) {
            chunk.resize(1 + rng.uniform(97));
            for (auto& b : chunk) b = static_cast<std::uint8_t>(rng.uniform(256));
            reader.feed(chunk);
            while (reader.next().has_value()) {
            }
        }
        EXPECT_LE(reader.buffered(), kMaxFrameBytes + 4) << "seed " << seed;
    }
}

TEST(Frame, TruncatedBodyDecodeReportsError) {
    const Bytes wire = encode_frame(Endpoint{NodeId{1}, PortId{1}},
                                    Endpoint{NodeId{2}, PortId{2}}, payload_of({1, 2}));
    // Strip the prefix, then truncate the body below the double header.
    const std::span<const std::uint8_t> body(wire.data() + 4, wire.size() - 4);
    const auto truncated = decode_frame_body(body.subspan(0, kEndpointWireBytes + 2));
    EXPECT_FALSE(truncated.has_value());
}

// ---------------------------------------------------------------------------
// EndpointMap
// ---------------------------------------------------------------------------

TEST(EndpointMap, CodecRoundTripsTheDirectory) {
    EndpointMap map;
    map.publish(NodeId{1}, {"127.0.0.1", 40001});
    map.publish(NodeId{2}, {"127.0.0.1", 40002});
    map.publish(NodeId{9}, {"10.0.0.7", 9});

    const auto result = EndpointMap::decode(map.encode());
    ASSERT_TRUE(result.has_value());
    const EndpointMap& decoded = result.value();
    EXPECT_EQ(decoded, map);
    ASSERT_NE(decoded.find(NodeId{9}), nullptr);
    EXPECT_EQ(decoded.find(NodeId{9})->host, "10.0.0.7");
    EXPECT_EQ(decoded.find(NodeId{3}), nullptr);
}

TEST(EndpointMap, PublishReplacesAndFindsByNode) {
    EndpointMap map;
    map.publish(NodeId{5}, {"127.0.0.1", 1000});
    map.publish(NodeId{5}, {"127.0.0.1", 2000});  // rebind replaces
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(NodeId{5}), nullptr);
    EXPECT_EQ(map.find(NodeId{5})->port, 2000);
}

TEST(EndpointMap, DecodeRejectsGarbageAndTruncation) {
    EXPECT_FALSE(EndpointMap::decode(payload_of({1, 2, 3})).has_value());

    EndpointMap map;
    map.publish(NodeId{1}, {"127.0.0.1", 7});
    const Bytes wire = map.encode();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        EXPECT_FALSE(
            EndpointMap::decode(std::span(wire.data(), cut)).has_value())
            << "cut at " << cut;
    }

    Bytes corrupt = wire;
    corrupt[0] ^= 0xff;  // break the magic
    EXPECT_FALSE(EndpointMap::decode(corrupt).has_value());
}

// ---------------------------------------------------------------------------
// Ephemeral ports on real deployments
// ---------------------------------------------------------------------------

TEST(EndpointMap, ConcurrentTcpDeploymentsPublishDisjointEphemeralPorts) {
    // Two live TCP deployments at once — the `ctest -j` situation. Every
    // node must have a published, kernel-chosen (nonzero) port, and the two
    // directories must not collide anywhere.
    deploy::DeploymentSpec spec;
    spec.group_size = 3;
    spec.seed = 5;
    spec.backend = deploy::Backend::kTcp;
    const auto a = deploy::make_deployment(deploy::SystemKind::kNewTop, spec);
    const auto b = deploy::make_deployment(deploy::SystemKind::kNewTop, spec);

    std::set<std::uint16_t> ports;
    for (const auto* d : {a.get(), b.get()}) {
        const auto* tcp = dynamic_cast<const deploy::TcpDeployment*>(d);
        ASSERT_NE(tcp, nullptr);
        EXPECT_GE(tcp->endpoints().size(), 3u);
        for (const auto& [node, addr] : tcp->endpoints().entries()) {
            EXPECT_NE(addr.port, 0) << "node " << node;
            EXPECT_TRUE(ports.insert(addr.port).second)
                << "port " << addr.port << " published twice";
        }
    }
}

}  // namespace
}  // namespace failsig::net
